from setuptools import setup

# Metadata lives in pyproject.toml; this shim exists for legacy
# `python setup.py develop` installs on offline machines without the
# `wheel` package (PEP-517 editable builds need it).
setup(
    entry_points={"console_scripts": ["fcma = repro.cli:main"]},
)
