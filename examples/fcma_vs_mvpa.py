#!/usr/bin/env python
"""FCMA vs amplitude MVPA: the experiment that motivates the paper.

The synthetic datasets plant information *only in voxel-pair
correlations* — every voxel's amplitude distribution is identical
across conditions.  This script scores the planted voxels three ways:

1. per-voxel amplitude MVPA (conventional univariate decoding),
2. whole-pattern amplitude MVPA (classic multivoxel decoding),
3. FCMA (classifying each voxel's whole-brain correlation vectors),

showing that only FCMA finds the information — the reason the paper
computes full correlation matrices at all.

Run:  python examples/fcma_vs_mvpa.py
"""

from __future__ import annotations

import numpy as np

from repro import FCMAConfig, generate_dataset, ground_truth_voxels, run_task
from repro.analysis import pattern_accuracy, score_voxels_amplitude
from repro.bench import render_table
from repro.data import SyntheticConfig


def main() -> None:
    cfg = SyntheticConfig(
        n_voxels=200,
        n_subjects=5,
        epochs_per_subject=12,
        epoch_length=12,
        n_informative=24,
        n_groups=4,
        seed=404,
        name="premise",
    )
    dataset = generate_dataset(cfg)
    truth = ground_truth_voxels(cfg)
    print(f"dataset: {dataset}")
    print(f"planted informative voxels: {len(truth)} "
          f"(information is correlation-coded by construction)\n")

    # 1 + 2: amplitude-based approaches on the *planted* voxels — the
    # best case for MVPA, since we hand it the right voxels.
    amp = score_voxels_amplitude(dataset, truth)
    pattern = pattern_accuracy(dataset, truth)

    # 3: FCMA on the same voxels.
    fcma = run_task(dataset, truth, FCMAConfig())

    # Chance reference: FCMA on uninformative voxels.
    others = np.setdiff1d(np.arange(cfg.n_voxels), truth)[: len(truth)]
    fcma_null = run_task(dataset, others, FCMAConfig())

    print(render_table(
        ["method", "mean held-out accuracy"],
        [
            ["per-voxel amplitude MVPA (planted voxels)", f"{amp.accuracies.mean():.3f}"],
            ["whole-pattern amplitude MVPA (planted voxels)", f"{pattern:.3f}"],
            ["FCMA (planted voxels)", f"{fcma.accuracies.mean():.3f}"],
            ["FCMA (uninformative voxels, chance ref)", f"{fcma_null.accuracies.mean():.3f}"],
        ],
        title="Can each method read correlation-coded information?",
    ))

    print("\nconclusion: amplitude-based decoding hovers at chance while "
          "FCMA classifies, because the\ncondition information lives in "
          "*which voxels co-fluctuate*, not in how active any voxel is.")
    assert fcma.accuracies.mean() > amp.accuracies.mean() + 0.2


if __name__ == "__main__":
    main()
