#!/usr/bin/env python
"""Quickstart: run FCMA voxel selection on a synthetic dataset.

Generates a small multi-subject fMRI dataset with planted
condition-dependent correlation structure, runs the three-stage FCMA
pipeline over every voxel, and checks that the top-ranked voxels
recover the planted ROI.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    FCMAConfig,
    generate_dataset,
    ground_truth_voxels,
    quickstart_config,
    serial_voxel_selection,
)
from repro.analysis import selection_precision, selection_recall


def main() -> None:
    # 1. Data: 300 voxels, 4 subjects, 8 epochs each (2 conditions).
    cfg = quickstart_config()
    dataset = generate_dataset(cfg)
    print(f"dataset: {dataset}")

    # 2. Run the optimized three-stage pipeline over the whole brain.
    fcma = FCMAConfig()  # blocked + merged + PhiSVM (the paper's fast path)
    t0 = time.perf_counter()
    scores = serial_voxel_selection(dataset, fcma)
    elapsed = time.perf_counter() - t0
    print(f"scored {len(scores)} voxels in {elapsed:.1f} s")

    # 3. The ROI: voxels whose correlation patterns classify condition.
    truth = ground_truth_voxels(cfg)
    top = scores.top(len(truth))
    print("\ntop 10 voxels (id, cross-validated accuracy):")
    for voxel, acc in zip(top.voxels[:10], top.accuracies[:10]):
        marker = "*" if voxel in truth else " "
        print(f"  {marker} voxel {voxel:4d}  accuracy {acc:.3f}")
    print("  (* = planted informative voxel)")

    precision = selection_precision(top.voxels, truth)
    recall = selection_recall(top.voxels, truth)
    chance = scores.accuracies[~np.isin(scores.voxels, truth)].mean()
    print(f"\nROI recovery: precision {precision:.2f}, recall {recall:.2f}")
    print(f"mean accuracy of uninformative voxels: {chance:.3f} (~chance)")
    assert precision > 0.7, "pipeline failed to recover the planted ROI"


if __name__ == "__main__":
    main()
