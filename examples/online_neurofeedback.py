#!/usr/bin/env python
"""Online analysis + closed-loop feedback simulation (paper Fig. 1, 5.2.2).

Emulates the paper's real-time scenario end to end:

1. A "scanning session" produces one subject's epoch-labeled BOLD data.
2. FCMA selects informative voxels from that subject only and trains a
   feedback classifier on their correlation patterns (the online mode:
   no nested cross-validation).
3. A second, held-out session from the *same brain* (fresh noise, same
   planted connectivity) streams in epoch by epoch; the classifier
   produces the condition feedback a closed-loop rtfMRI study would
   display to the subject.

Run:  python examples/online_neurofeedback.py
"""

from __future__ import annotations

import time

from repro import FCMAConfig, generate_dataset
from repro.analysis import run_online_analysis
from repro.data import SyntheticConfig


def main() -> None:
    # Two "sessions" of the same brain: identical planted connectivity
    # (same seed-derived informative set and group structure is
    # guaranteed by using the same config seed for ground truth), with
    # per-subject noise making session 2 genuinely unseen data.
    cfg = SyntheticConfig(
        n_voxels=400,
        n_subjects=2,          # subject 0 = training session, 1 = live run
        epochs_per_subject=16,
        epoch_length=12,
        n_informative=32,
        n_groups=4,
        seed=1234,
        name="rtfmri",
    )
    dataset = generate_dataset(cfg)

    # --- Training: select voxels and build the classifier online. -----
    fcma = FCMAConfig(online_folds=4)
    t0 = time.perf_counter()
    result = run_online_analysis(dataset, subject=0, config=fcma, top_k=20)
    select_time = time.perf_counter() - t0
    print(f"voxel selection + classifier training: {select_time:.1f} s")
    print(f"selected voxels: {result.selected.voxels[:10].tolist()} ...")
    print(f"training accuracy: {result.training_accuracy:.3f}")

    # --- Live run: stream the second session's epochs as feedback. ----
    live = dataset.single_subject(1)
    print("\nstreaming live session (subject 1):")
    correct = 0
    latencies = []
    epochs = list(live.epochs)
    for i, epoch in enumerate(epochs):
        window = live.epoch_matrix(epoch)
        t0 = time.perf_counter()
        feedback, confidence = result.classifier.classify_epoch_with_confidence(
            window
        )
        latencies.append(time.perf_counter() - t0)
        hit = feedback == epoch.condition
        correct += hit
        if i < 6:
            print(f"  epoch {i:2d}: true condition {epoch.condition}, "
                  f"feedback {feedback} (confidence {confidence:.2f}) "
                  f"{'OK' if hit else 'MISS'}")
    accuracy = correct / len(epochs)
    mean_ms = 1e3 * sum(latencies) / len(latencies)
    print(f"  ...")
    print(f"\nlive feedback accuracy: {accuracy:.3f} over {len(epochs)} epochs")
    print(f"mean per-epoch feedback latency: {mean_ms:.1f} ms "
          f"(scanner produces an epoch every ~18 s)")
    assert accuracy > 0.55, "feedback should beat chance on the live session"


if __name__ == "__main__":
    main()
