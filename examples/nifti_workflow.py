#!/usr/bin/env python
"""Scanner-format workflow: NIfTI in, FCMA, NIfTI accuracy map out.

Demonstrates the interchange path a lab would actually use:

1. synthesize a session and export it as 4D NIfTI volumes (one file per
   subject) plus a paper-style epoch text file — the on-disk inputs the
   paper's pipeline reads;
2. reload everything from disk (no in-memory shortcuts), mask to the
   brain, and run voxel selection;
3. write the resulting accuracy map as a 3D NIfTI overlay any
   neuroimaging viewer can display over anatomy.

Run:  python examples/nifti_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import FCMAConfig, generate_dataset, ground_truth_voxels
from repro.data import (
    BrainMask,
    EpochTable,
    FMRIDataset,
    SyntheticConfig,
    bold_from_nifti,
    load_epochs,
    read_nifti,
    save_epochs,
    write_nifti,
)
from repro.data.nifti import accuracy_map_to_nifti
from repro.parallel import serial_voxel_selection


def main() -> None:
    grid = (8, 8, 6)
    mask = BrainMask.ellipsoid(grid)
    cfg = SyntheticConfig(
        n_voxels=mask.n_voxels,
        n_subjects=3,
        epochs_per_subject=8,
        epoch_length=12,
        n_informative=20,
        n_groups=4,
        seed=31,
        name="nifti-demo",
    )
    dataset = generate_dataset(cfg)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)

        # --- 1. export: per-subject 4D NIfTI + epoch text file --------
        for s in dataset.subject_ids():
            volume = mask.unflatten(
                dataset.subject_data(s), fill=0.0
            ).astype(np.float32)
            # unflatten puts time last already: (nx, ny, nz, T)
            write_nifti(root / f"sub-{s:02d}_bold", volume, tr_seconds=1.5)
        save_epochs(dataset.epochs, root / "epochs.txt")
        files = sorted(p.name for p in root.iterdir())
        print("exported session:", ", ".join(files))

        # --- 2. reload from disk and run FCMA -------------------------
        epochs = load_epochs(root / "epochs.txt")
        data = {}
        for s in range(cfg.n_subjects):
            img = read_nifti(root / f"sub-{s:02d}_bold.nii")
            data[s] = bold_from_nifti(img, mask)
        reloaded = FMRIDataset(data, epochs, mask=mask, name="from-nifti")
        print(f"reloaded: {reloaded}")

        scores = serial_voxel_selection(reloaded, FCMAConfig(task_voxels=120))
        truth = ground_truth_voxels(cfg)
        top = scores.top(len(truth))
        hits = np.isin(top.voxels, truth).sum()
        print(f"ROI recovery from disk round trip: {hits}/{len(truth)}")

        # --- 3. write the viewer-ready accuracy overlay ----------------
        out = accuracy_map_to_nifti(
            root / "fcma_accuracy_map", mask, scores.voxels, scores.accuracies
        )
        overlay = read_nifti(out)
        print(f"accuracy map: {out.name}, grid {overlay.data.shape}, "
              f"max accuracy {overlay.data.max():.3f}")
        assert hits / len(truth) >= 0.7


if __name__ == "__main__":
    main()
