#!/usr/bin/env python
"""Cluster scaling study (paper Tables 3-4, Fig. 8).

Feeds per-task times from the kernel performance models into the
discrete-event cluster simulator and sweeps the coprocessor count,
regenerating the paper's offline and online scaling tables plus the
speedup curve — including where and why scaling bends (data
distribution, master serialization, last-wave imbalance).

Run:  python examples/cluster_scaling.py
"""

from __future__ import annotations

from repro.bench import render_table
from repro.bench.paperdata import (
    NODE_COUNTS,
    TABLE3_OFFLINE_SECONDS,
    TABLE4_ONLINE_SECONDS,
)
from repro.cluster import (
    ClusterConfig,
    offline_workload,
    online_workload,
    simulate,
)
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf import offline_task_seconds, online_task_seconds

TASK_VOXELS = {"face-scene": 120, "attention": 60}
SPECS = {"face-scene": FACE_SCENE, "attention": ATTENTION}


def main() -> None:
    for name, spec in SPECS.items():
        tv = TASK_VOXELS[name]

        # --- offline: nested LOSO over the whole dataset ---------------
        t_task = offline_task_seconds(spec, PHI_5110P, tv)
        workload = offline_workload(spec, t_task, tv)
        print(f"\n=== {name}: offline analysis "
              f"({workload.n_tasks} tasks x {t_task:.2f} s) ===")
        rows = []
        base = None
        for n in NODE_COUNTS:
            res = simulate(workload, ClusterConfig(n_workers=n))
            if base is None:
                base = res.elapsed_seconds
            paper = TABLE3_OFFLINE_SECONDS[name][n]
            rows.append([
                str(n),
                f"{res.elapsed_seconds:.0f}",
                str(paper),
                f"{base / res.elapsed_seconds:.1f}x",
                f"{res.utilization:.0%}",
            ])
        print(render_table(
            ["#coproc", "simulated s", "paper s", "speedup", "utilization"],
            rows,
        ))

        # --- online: single-subject selection ---------------------------
        t_online = online_task_seconds(spec, PHI_5110P, tv)
        online = online_workload(spec, t_online, tv)
        print(f"\n=== {name}: online voxel selection ===")
        rows = []
        for n in NODE_COUNTS:
            res = simulate(online, ClusterConfig(n_workers=n))
            paper = TABLE4_ONLINE_SECONDS[name].get(n)
            rows.append([
                str(n),
                f"{res.elapsed_seconds:.2f}",
                f"{paper:.2f}" if paper is not None else "-",
                f"{res.distribution_seconds:.2f}",
            ])
        print(render_table(
            ["#coproc", "simulated s", "paper s", "data distribution s"],
            rows,
        ))
        print("note: at high node counts online time saturates on the "
              "serialized data broadcast — the paper's ~2.2-2.5 s floor.")


if __name__ == "__main__":
    main()
