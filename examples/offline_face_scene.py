#!/usr/bin/env python
"""Offline analysis: nested leave-one-subject-out CV (paper Section 5.2.1).

Reproduces the paper's offline experiment on a scaled face-scene
surrogate: for each held-out subject, voxels are selected by FCMA on
the remaining subjects (inner LOSO cross-validation), a final
classifier is trained on the selected voxels' correlation patterns,
and generalization is measured on the held-out subject.  Voxels
selected consistently across folds form the reliable ROI.

Run:  python examples/offline_face_scene.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import FCMAConfig, generate_dataset, ground_truth_voxels
from repro.analysis import run_offline_analysis, selection_precision
from repro.data import face_scene_scaled
from repro.parallel import parallel_voxel_selection


def main() -> None:
    # Scaled face-scene surrogate: same epochs/subject (12) and epoch
    # length (12) as the real dataset, shrunk to 600 voxels x 5 subjects.
    cfg = face_scene_scaled(n_voxels=600, n_subjects=5)
    dataset = generate_dataset(cfg)
    print(f"dataset: {dataset}")

    fcma = FCMAConfig(task_voxels=120)  # the paper's task granularity
    top_k = 25

    # Inner voxel selection fans out across local cores, mirroring the
    # master-worker decomposition of the cluster runs.
    def runner(training, config):
        return parallel_voxel_selection(training, config)

    t0 = time.perf_counter()
    result = run_offline_analysis(
        dataset, fcma, top_k=top_k, selection_runner=runner
    )
    elapsed = time.perf_counter() - t0

    print(f"\nnested LOSO finished in {elapsed:.1f} s "
          f"({len(result.folds)} outer folds)")
    print(f"{'fold':>4}  {'held-out subject':>16}  {'test accuracy':>13}  "
          f"{'selection precision':>19}")
    truth = ground_truth_voxels(cfg)
    for i, fold in enumerate(result.folds):
        prec = selection_precision(fold.selected.voxels, truth)
        print(f"{i:>4}  {fold.held_out_subject:>16}  "
              f"{fold.test_accuracy:>13.3f}  {prec:>19.2f}")

    print(f"\nmean held-out accuracy: {result.mean_test_accuracy:.3f}")

    # Reliable ROI: voxels selected in most folds (paper: "the selected
    # voxels across different folds can be statistically compared").
    counts = result.selection_counts(cfg.n_voxels)
    reliable = result.reliable_voxels(cfg.n_voxels, min_folds=len(result.folds) - 1)
    hits = np.isin(reliable, truth).sum()
    print(f"reliable voxels (selected in >= {len(result.folds) - 1} folds): "
          f"{reliable.size}, of which {hits} are planted informative voxels")
    print(f"max selection count: {counts.max()} / {len(result.folds)} folds")


if __name__ == "__main__":
    main()
