#!/usr/bin/env python
"""Regenerate the paper's single-node performance story (Tables 1, 5-8).

Uses the hardware performance models at full paper scale (34,470-voxel
face-scene geometry on a Xeon Phi 5110P model) to print the baseline
instrumentation report, the per-kernel comparisons, and the resulting
Fig. 9 speedups — the numbers a perf engineer would use to decide where
to optimize next.

Run:  python examples/instrumentation_report.py
"""

from __future__ import annotations

from repro.bench import render_table
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import E5_2670, PHI_5110P
from repro.perf import (
    baseline_report,
    format_report,
    model_correlation_matmul,
    model_kernel_syrk,
    model_normalization,
    model_svm_cv,
    model_task,
    roofline_point,
)


def main() -> None:
    hw = PHI_5110P
    print(f"machine: {hw}\n")

    # --- Table 1: where does the baseline spend its time? -------------
    rows = baseline_report(FACE_SCENE, 120, hw)
    print(format_report(rows, title="Baseline instrumentation (Table 1)"))
    total = sum(r.time_ms for r in rows)
    print(f"{'Total':28s} {total:8.0f} ms\n")

    # --- Tables 5-8: each optimization, quantified. --------------------
    comparisons = [
        ("stage 1 correlation gemm",
         model_correlation_matmul(FACE_SCENE, 120, hw, "mkl"),
         model_correlation_matmul(FACE_SCENE, 120, hw, "ours")),
        ("stage 2 normalization",
         model_normalization(FACE_SCENE, 120, hw, "separated"),
         model_normalization(FACE_SCENE, 120, hw, "merged")),
        ("stage 3a kernel syrk",
         model_kernel_syrk(FACE_SCENE, 120, hw, "mkl"),
         model_kernel_syrk(FACE_SCENE, 120, hw, "ours")),
        ("stage 3b SVM CV",
         model_svm_cv(FACE_SCENE, 120, hw, "libsvm"),
         model_svm_cv(FACE_SCENE, 120, hw, "phisvm")),
    ]
    table = [
        [
            name,
            f"{before.milliseconds:.0f}",
            f"{after.milliseconds:.0f}",
            f"{before.seconds / after.seconds:.2f}x",
        ]
        for name, before, after in comparisons
    ]
    print(render_table(
        ["kernel", "baseline ms", "optimized ms", "speedup"],
        table,
        title="Per-kernel impact of the three optimization ideas",
    ))

    # --- Roofline placement of the two matmuls. ------------------------
    print("\nroofline placement (optimized kernels):")
    for name, est in (
        ("correlation gemm", model_correlation_matmul(FACE_SCENE, 120, hw, "ours")),
        ("kernel syrk", model_kernel_syrk(FACE_SCENE, 120, hw, "ours")),
    ):
        p = roofline_point(hw, est.counters, est.seconds)
        bound = "memory-bound" if p.memory_bound else "compute-bound"
        print(f"  {name:18s} AI {p.arithmetic_intensity:6.1f} flop/B, "
              f"attainable {p.attainable_gflops:5.0f} GF, "
              f"achieved {p.achieved_gflops:5.0f} GF  ({bound})")

    # --- Fig 9/10 headline speedups. -----------------------------------
    print("\nwhole-task speedups (optimized vs baseline, per voxel):")
    for spec in (FACE_SCENE, ATTENTION):
        for hw_name, machine in (("Phi 5110P", PHI_5110P), ("E5-2670", E5_2670)):
            base = model_task(spec, machine, "baseline").seconds_per_voxel
            opt = model_task(spec, machine, "optimized").seconds_per_voxel
            print(f"  {spec.name:12s} on {hw_name:10s}: {base / opt:5.2f}x")


if __name__ == "__main__":
    main()
