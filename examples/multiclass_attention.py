#!/usr/bin/env python
"""FCMA beyond two conditions: a three-way attention experiment.

The paper's datasets are binary (face/scene, left/right), but nothing
in FCMA is inherently two-class.  This example runs the full pipeline
on a synthetic three-condition design (attend-left / attend-right /
attend-neither): the SVM stage transparently switches to one-vs-one
voting (LibSVM's multiclass scheme), and voxel accuracies are judged
against a 1/3 chance level.

Run:  python examples/multiclass_attention.py
"""

from __future__ import annotations

import numpy as np

from repro import FCMAConfig, generate_dataset, ground_truth_voxels
from repro.analysis import accuracy_p_value, selection_precision
from repro.data import SyntheticConfig
from repro.parallel import serial_voxel_selection


def main() -> None:
    cfg = SyntheticConfig(
        n_voxels=240,
        n_subjects=5,
        epochs_per_subject=12,   # 4 epochs per condition per subject
        epoch_length=12,
        n_conditions=3,
        n_informative=24,
        n_groups=4,
        seed=2718,
        name="attention-3way",
    )
    dataset = generate_dataset(cfg)
    print(f"dataset: {dataset} ({dataset.epochs.n_conditions} conditions)")

    scores = serial_voxel_selection(dataset, FCMAConfig(task_voxels=80))
    truth = ground_truth_voxels(cfg)
    top = scores.top(len(truth))

    chance = 1.0 / 3.0
    print(f"\ntop voxels (chance level = {chance:.3f}):")
    for voxel, acc in zip(top.voxels[:10], top.accuracies[:10]):
        marker = "*" if voxel in truth else " "
        p = accuracy_p_value(acc, dataset.n_epochs, chance=chance)
        print(f"  {marker} voxel {voxel:4d}  accuracy {acc:.3f}  p={p:.2e}")

    informative_acc = scores.accuracies[np.isin(scores.voxels, truth)].mean()
    other_acc = scores.accuracies[~np.isin(scores.voxels, truth)].mean()
    precision = selection_precision(top.voxels, truth)
    print(f"\nmean accuracy: informative {informative_acc:.3f}, "
          f"uninformative {other_acc:.3f} (chance {chance:.3f})")
    print(f"top-k selection precision: {precision:.2f}")
    assert informative_acc > chance + 0.2
    assert abs(other_acc - chance) < 0.12


if __name__ == "__main__":
    main()
