"""Table 6 — combined matmul counters: refs, L2 misses, VI.

Shape claims: our blocking issues ~3.5x fewer memory references and
takes ~5.8x fewer L2 misses than MKL while reaching the ideal
vectorization intensity of 16.
"""

from repro.bench import paperdata, render_table, within_factor
from repro.data import FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.matmul_model import model_correlation_matmul, model_kernel_syrk


def _combined():
    out = {}
    for impl in ("ours", "mkl"):
        corr = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, impl)
        syrk = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, impl)
        out[impl] = corr.counters + syrk.counters
    return out


def test_table6_matmul_counters(benchmark, save_table):
    combined = benchmark(_combined)

    rows = []
    for impl, counters in combined.items():
        p_refs, p_miss, p_vi = paperdata.TABLE6_COUNTERS[impl]
        rows.append(
            [
                impl,
                f"{counters.mem_refs / 1e9:.2f} / {p_refs / 1e9:.2f}",
                f"{counters.l2_misses / 1e6:.1f} / {p_miss / 1e6:.1f}",
                f"{counters.vectorization_intensity:.1f} / {p_vi}",
            ]
        )
        assert within_factor(counters.mem_refs, p_refs, 1.1), impl
        assert within_factor(counters.l2_misses, p_miss, 1.15), impl
        assert within_factor(counters.vectorization_intensity, p_vi, 1.05), impl

    save_table(
        "table6_matmul_counters",
        render_table(
            ["impl", "refs G (ours/paper)", "L2 miss M", "VI"],
            rows,
            title="Table 6: matmul memory references, L2 misses, vector intensity",
        ),
    )

    refs_gap = combined["mkl"].mem_refs / combined["ours"].mem_refs
    miss_gap = combined["mkl"].l2_misses / combined["ours"].l2_misses
    assert within_factor(refs_gap, 3.49, 1.15)   # paper: 3.49x
    assert within_factor(miss_gap, 5.82, 1.35)   # paper: 5.82x
