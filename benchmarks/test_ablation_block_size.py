"""Ablation — stage-1 tile sizes (DESIGN.md: optimization idea #1).

Two views of the same design choice:

* modeled: L2 miss count as the voxel block grows (more B re-passes vs
  fewer, traded against tile residency), at paper scale;
* measured: real blocked-correlation wall time across target-block
  sizes on scaled data, verifying the implementation tolerates any
  tiling and that extreme tilings cost real time.
"""

import numpy as np
import pytest

from repro.bench import render_table
from repro.core.correlation import correlate_blocked, normalize_epoch_data
from repro.data import FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf import matmul_model


@pytest.fixture(scope="module")
def z():
    rng = np.random.default_rng(0)
    return normalize_epoch_data(
        rng.standard_normal((16, 1500, 12)).astype(np.float32)
    )


@pytest.mark.parametrize("target_block", [32, 128, 512, 1500])
def test_measured_target_block_sweep(benchmark, z, target_block):
    assigned = np.arange(32)
    out = benchmark(
        correlate_blocked, z, assigned,
        voxel_block=16, target_block=target_block,
    )
    assert out.shape == (32, 16, 1500)


def test_modeled_voxel_block_tradeoff(benchmark, save_table):
    """Larger voxel blocks mean fewer passes over B (fewer remote-L2
    refetches) — the reason the paper sizes blocks to the VPU width and
    no smaller."""

    def sweep():
        out = {}
        for vb in (4, 8, 16, 32):
            original = matmul_model.OURS_CORR_VOXEL_BLOCK
            matmul_model.OURS_CORR_VOXEL_BLOCK = vb
            try:
                est = matmul_model.model_correlation_matmul(
                    FACE_SCENE, 120, PHI_5110P, "ours"
                )
            finally:
                matmul_model.OURS_CORR_VOXEL_BLOCK = original
            out[vb] = est
        return out

    ests = benchmark(sweep)
    rows = [
        [
            str(vb),
            f"{est.counters.l2_remote_hits / 1e6:.1f}",
            f"{est.milliseconds:.0f}",
        ]
        for vb, est in ests.items()
    ]
    save_table(
        "ablation_voxel_block",
        render_table(
            ["voxel block", "remote-L2 refetches M", "modeled ms"],
            rows,
            title="Ablation: stage-1 voxel-block size (face-scene, 120-voxel task)",
        ),
    )
    # Monotone: fewer refetches with larger blocks.
    hits = [ests[vb].counters.l2_remote_hits for vb in (4, 8, 16, 32)]
    assert all(a >= b for a, b in zip(hits, hits[1:]))
