"""Measured (not modeled) kernel benchmarks on scaled-down data.

These time the actual numpy implementations of both code paths at a
size where a benchmark round completes in milliseconds.  Because the
Python/numpy substrate is not a KNC coprocessor, absolute numbers are
not comparable to the paper; these benches exist to (a) track
regressions in the real kernels and (b) verify the *numeric*
equivalence of every optimized/baseline pair under timing pressure.
"""

import numpy as np
import pytest

from repro.core.correlation import (
    correlate_baseline,
    correlate_blocked,
    normalize_epoch_data,
)
from repro.core.kernels import kernel_matrix_baseline, kernel_matrix_blocked
from repro.core.normalization import MergedNormalizer, normalize_separated
from repro.svm import LibSVMClassifier, PhiSVM, linear_kernel


@pytest.fixture(scope="module")
def stage1_inputs():
    rng = np.random.default_rng(0)
    z = normalize_epoch_data(
        rng.standard_normal((24, 2000, 12)).astype(np.float32)
    )
    assigned = np.arange(32)
    return z, assigned


@pytest.fixture(scope="module")
def svm_problem():
    rng = np.random.default_rng(1)
    x = rng.standard_normal((96, 400)).astype(np.float32)
    w = rng.standard_normal(400)
    labels = (x @ w + 0.5 * rng.standard_normal(96) > 0).astype(int)
    return linear_kernel(x), labels


class TestStage1:
    def test_correlation_baseline(self, benchmark, stage1_inputs):
        z, assigned = stage1_inputs
        out = benchmark(correlate_baseline, z, assigned)
        assert out.shape == (32, 24, 2000)

    def test_correlation_blocked(self, benchmark, stage1_inputs):
        z, assigned = stage1_inputs
        out = benchmark(
            correlate_blocked, z, assigned,
            voxel_block=16, target_block=512,
        )
        np.testing.assert_allclose(
            out, correlate_baseline(z, assigned), atol=3e-7, rtol=0
        )


class TestStage12Merged:
    def test_separated(self, benchmark, stage1_inputs):
        z, assigned = stage1_inputs

        def run():
            corr = correlate_baseline(z, assigned)
            return normalize_separated(corr, 4)

        out = benchmark(run)
        assert np.isfinite(out).all()

    def test_merged(self, benchmark, stage1_inputs):
        z, assigned = stage1_inputs

        def run():
            return correlate_blocked(
                z, assigned, voxel_block=16, target_block=512,
                epoch_block=4, tile_callback=MergedNormalizer(4),
            )

        merged = benchmark(run)
        separated = normalize_separated(correlate_baseline(z, assigned), 4)
        np.testing.assert_allclose(merged, separated, atol=1e-5)


class TestStage3Kernel:
    @pytest.fixture(scope="class")
    def voxel_matrix(self):
        rng = np.random.default_rng(2)
        return rng.standard_normal((96, 4000)).astype(np.float32)

    def test_syrk_baseline(self, benchmark, voxel_matrix):
        out = benchmark(kernel_matrix_baseline, voxel_matrix)
        assert out.shape == (96, 96)

    def test_syrk_blocked(self, benchmark, voxel_matrix):
        out = benchmark(kernel_matrix_blocked, voxel_matrix, 96)
        np.testing.assert_allclose(
            out, kernel_matrix_baseline(voxel_matrix), rtol=1e-4, atol=1e-2
        )


class TestSVMSolvers:
    def test_phisvm(self, benchmark, svm_problem):
        kernel, labels = svm_problem
        model = benchmark(PhiSVM().fit_kernel, kernel, labels)
        assert model.converged

    def test_libsvm_like(self, benchmark, svm_problem):
        kernel, labels = svm_problem
        model = benchmark(
            LibSVMClassifier().fit_kernel, kernel.astype(np.float64), labels
        )
        assert model.converged

    def test_solvers_agree(self, benchmark, svm_problem):
        kernel, labels = svm_problem

        def both():
            phi = PhiSVM(tol=1e-4).fit_kernel(kernel, labels)
            lib = LibSVMClassifier(tol=1e-4).fit_kernel(
                kernel.astype(np.float64), labels
            )
            return phi, lib

        phi, lib = benchmark(both)
        assert abs(phi.objective - lib.objective) < 1e-2 * max(
            1.0, abs(lib.objective)
        )
