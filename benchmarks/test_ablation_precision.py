"""Ablation — float32 vs float64 in the SVM solver (DESIGN.md: the
paper's single-precision decision).

The paper converted LibSVM's double-precision loops to float to double
VPU lanes, arguing "single precision floating point numbers are
accurate enough for our application".  This ablation verifies that on
FCMA-shaped problems the two precisions agree in objective and
accuracy, and measures both.
"""

import numpy as np
import pytest

from repro.bench import render_table
from repro.svm import linear_kernel, solve_smo


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(9)
    x = rng.standard_normal((160, 80)).astype(np.float32)
    w = rng.standard_normal(80)
    y = np.where(x @ w + 0.6 * rng.standard_normal(160) > 0, 1, -1)
    return linear_kernel(x), y


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_precision_solve(benchmark, problem, dtype):
    kernel, y = problem
    result = benchmark(solve_smo, kernel.astype(dtype), y)
    assert result.converged


def test_precisions_agree(benchmark, problem, save_table):
    kernel, y = problem

    def both():
        return (
            solve_smo(kernel.astype(np.float32), y, tol=1e-4),
            solve_smo(kernel.astype(np.float64), y, tol=1e-4),
        )

    r32, r64 = benchmark(both)
    rel_gap = abs(r32.objective - r64.objective) / max(abs(r64.objective), 1.0)
    pred32 = np.sign(kernel.astype(np.float64) @ (r32.alpha * y) - r32.rho)
    pred64 = np.sign(kernel.astype(np.float64) @ (r64.alpha * y) - r64.rho)
    agreement = float((pred32 == pred64).mean())

    save_table(
        "ablation_precision",
        render_table(
            ["metric", "value"],
            [
                ["float32 objective", f"{r32.objective:.4f}"],
                ["float64 objective", f"{r64.objective:.4f}"],
                ["relative objective gap", f"{rel_gap:.2e}"],
                ["prediction agreement", f"{agreement:.3f}"],
                ["float32 iterations", str(r32.iterations)],
                ["float64 iterations", str(r64.iterations)],
            ],
            title="Ablation: solver precision (160-sample linear problem)",
        ),
    )
    assert rel_gap < 1e-2
    assert agreement >= 0.97
