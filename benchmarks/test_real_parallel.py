"""Measured benchmarks of the parallel runtime on real FCMA work.

Runs the actual master-worker protocol and the process-pool executor
over a small synthetic dataset.  On a multi-core machine the pool shows
real speedup; on a single-core CI box these still verify the protocol's
overhead stays bounded and the outputs stay identical.
"""

import numpy as np
import pytest

from repro.core import FCMAConfig
from repro.data import SyntheticConfig, generate_dataset
from repro.parallel import (
    mpi_voxel_selection,
    parallel_voxel_selection,
    serial_voxel_selection,
)


@pytest.fixture(scope="module")
def workload():
    cfg = SyntheticConfig(
        n_voxels=90, n_subjects=3, epochs_per_subject=6, epoch_length=12,
        n_informative=12, n_groups=3, seed=5, name="bench",
    )
    return generate_dataset(cfg), FCMAConfig(task_voxels=30, target_block=64)


def test_serial_selection(benchmark, workload):
    ds, cfg = workload
    scores = benchmark(serial_voxel_selection, ds, cfg)
    assert len(scores) == 90


def test_mpi_protocol_selection(benchmark, workload):
    ds, cfg = workload
    scores = benchmark(mpi_voxel_selection, ds, cfg, 2)
    reference = serial_voxel_selection(ds, cfg)
    np.testing.assert_allclose(scores.accuracies, reference.accuracies)


def test_process_pool_selection(benchmark, workload):
    ds, cfg = workload
    scores = benchmark(parallel_voxel_selection, ds, cfg, 2)
    reference = serial_voxel_selection(ds, cfg)
    np.testing.assert_allclose(scores.accuracies, reference.accuracies)
