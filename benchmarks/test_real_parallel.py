"""Measured benchmarks of the execution core on real FCMA work.

Runs the actual executors — serial reference, master-worker protocol,
and zero-copy process pool — over a small synthetic dataset.  On a
multi-core machine the pool shows real speedup; on a single-core CI box
these still verify the protocol's overhead stays bounded and the
outputs stay identical.
"""

import numpy as np
import pytest

from repro.core import FCMAConfig
from repro.data import SyntheticConfig, generate_dataset
from repro.exec import (
    MasterWorkerExecutor,
    ProcessPoolExecutor,
    RunContext,
    SerialExecutor,
)


@pytest.fixture(scope="module")
def workload():
    cfg = SyntheticConfig(
        n_voxels=90, n_subjects=3, epochs_per_subject=6, epoch_length=12,
        n_informative=12, n_groups=3, seed=5, name="bench",
    )
    return generate_dataset(cfg), FCMAConfig(task_voxels=30, target_block=64)


def test_serial_selection(benchmark, workload):
    ds, cfg = workload
    scores = benchmark(lambda: SerialExecutor().run(ds, RunContext(cfg)))
    assert len(scores) == 90


def test_mpi_protocol_selection(benchmark, workload):
    ds, cfg = workload
    executor = MasterWorkerExecutor(n_workers=2)
    scores = benchmark(lambda: executor.run(ds, RunContext(cfg)))
    reference = SerialExecutor().run(ds, RunContext(cfg))
    np.testing.assert_allclose(scores.accuracies, reference.accuracies)


def test_process_pool_selection(benchmark, workload):
    ds, cfg = workload
    executor = ProcessPoolExecutor(n_workers=2)
    scores = benchmark(lambda: executor.run(ds, RunContext(cfg)))
    reference = SerialExecutor().run(ds, RunContext(cfg))
    np.testing.assert_allclose(scores.accuracies, reference.accuracies)
