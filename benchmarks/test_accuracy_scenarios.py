"""Ground-truth accuracy scenarios: is FCMA's voxel selection *right*?

Every other benchmark gates speed or bitwise equivalence; this suite
gates correctness against planted truth.  The default scenario matrix
(:func:`repro.eval.default_matrix`) sweeps the block, event-related,
and jittered-ISI designs across a descending SNR ladder with a known
set of informative voxels, runs real voxel selection on each, and
asserts the accuracy shape the generator must produce:

* ROC-AUC >= 0.9 at the high-SNR block preset (the acceptance floor);
* monotone degradation as SNR decreases, for every design;
* near-chance ranking at the bottom of the ladder (the planted signal,
  not an artifact, carries the accuracy).

The flattened ``acc.*`` metrics land in the benchmark-history registry
under the ``scenario-accuracy`` series — the record ``fcma perf check``
judges future runs against — and are mirrored to the legacy
``BENCH_accuracy.json`` blob for CI artifact uploads.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.eval import (
    default_matrix,
    format_accuracy_table,
    matrix_record,
    run_matrix,
)

BENCH_JSON = Path(__file__).parent.parent / "BENCH_accuracy.json"

#: The acceptance floor at the high-SNR block preset.
AUC_FLOOR = 0.9
#: Tolerance on the monotone-degradation check: adjacent SNR rungs may
#: tie within this band (low-SNR scores hover around chance).
MONOTONE_SLACK = 0.05
#: Every design must rank clearly above chance at the top of the ladder.
HIGH_SNR_AUC = 0.85
#: ... and close to chance at the bottom.
LOW_SNR_AUC_CEILING = 0.75


@pytest.fixture(scope="module")
def matrix():
    return default_matrix()


@pytest.fixture(scope="module")
def results(matrix):
    return run_matrix(matrix)


def _auc(results, kind: str, snr: float) -> float:
    for result in results:
        config = result.scenario.config
        if config.design.kind == kind and config.connectivity.snr == snr:
            return result.score.roc_auc
    raise AssertionError(f"no scenario for design={kind} snr={snr}")


class TestAccuracyScenarios:
    def test_high_snr_block_meets_floor(self, matrix, results):
        auc = _auc(results, "block", matrix.snrs[0])
        assert auc >= AUC_FLOOR, (
            f"block design at snr={matrix.snrs[0]:g} ranked the planted "
            f"set at AUC {auc:.3f} < {AUC_FLOOR}"
        )

    def test_every_design_informative_at_high_snr(self, matrix, results):
        for kind in matrix.designs:
            auc = _auc(results, kind, matrix.snrs[0])
            assert auc >= HIGH_SNR_AUC, (
                f"{kind} design at snr={matrix.snrs[0]:g}: AUC {auc:.3f}"
            )

    def test_monotone_degradation_with_snr(self, matrix, results):
        assert list(matrix.snrs) == sorted(matrix.snrs, reverse=True), (
            "matrix SNR grid must be descending for this check"
        )
        for kind in matrix.designs:
            ladder = [_auc(results, kind, snr) for snr in matrix.snrs]
            for rung, (hi, lo) in enumerate(zip(ladder, ladder[1:])):
                assert lo <= hi + MONOTONE_SLACK, (
                    f"{kind}: AUC rose from {hi:.3f} to {lo:.3f} when SNR "
                    f"dropped {matrix.snrs[rung]:g} -> "
                    f"{matrix.snrs[rung + 1]:g}"
                )

    def test_low_snr_near_chance(self, matrix, results):
        for kind in matrix.designs:
            auc = _auc(results, kind, matrix.snrs[-1])
            assert auc <= LOW_SNR_AUC_CEILING, (
                f"{kind} design still ranks AUC {auc:.3f} at "
                f"snr={matrix.snrs[-1]:g} — the planted signal should "
                f"be buried"
            )

    def test_hit_rate_tracks_auc_at_high_snr(self, matrix, results):
        for result in results:
            config = result.scenario.config
            if config.connectivity.snr != matrix.snrs[0]:
                continue
            assert result.score.top_k_hit_rate >= 0.5, (
                f"{result.scenario.key}: top-k hit rate "
                f"{result.score.top_k_hit_rate:.2f} despite AUC "
                f"{result.score.roc_auc:.3f}"
            )

    def test_records_history_and_legacy_mirror(
        self, matrix, results, record_benchmark, save_table
    ):
        record = matrix_record(matrix, results)
        payload: dict[str, object] = dict(record.metrics)
        payload.update(record.attrs)
        history_path = record_benchmark(
            "scenario-accuracy", payload, BENCH_JSON
        )
        assert history_path.exists()
        blob = json.loads(BENCH_JSON.read_text())
        auc_keys = [k for k in blob if k.endswith(".roc_auc")]
        assert len(auc_keys) == len(results)
        save_table("accuracy_scenarios", format_accuracy_table(results))
