"""Benchmark: sparse thresholded stage 1/2 vs dense-then-threshold.

The sparse engine (:func:`correlate_normalize_sparse_batched`) filters
each fused tile while it is L2-resident and emits CSR, so the dense
``(V, E, N)`` correlation buffer never exists.  The reference producing
*equal output* is the separated dense pipeline — ``correlate_batched``
followed by ``normalize_separated`` followed by
:func:`threshold_dense` — which the PR-3 equivalence suite proves
value-identical to the fused engine the sparse path shares.  This bench
times both at a 100k-target-voxel task, asserts the committed >= 3x
speedup floor and CSR equality, and checks the tentpole memory claim:
stage 1/2 on the full ``sparse-100k`` preset stays under 2 GB peak RSS
at 1% density (the dense buffer alone would be ~2.5 GB for one
256-voxel task).

Recorded metrics that must stay machine-independent (the drift gate
compares them cross-machine): ``nnz``, ``density``, ``top_k_nnz``.
Timing metrics (``*_seconds``, ``speedup``) only compare within one
machine fingerprint.
"""

import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.correlation import correlate_batched, normalize_epoch_data
from repro.core.normalization import normalize_separated
from repro.core.sparse import (
    correlate_normalize_sparse_batched,
    sparse_tile_plan,
    threshold_dense,
)
from repro.data import SPARSE_100K

#: Committed floor: sparse must beat dense-then-threshold by this.
SPEEDUP_FLOOR = 3.0

#: Committed ceiling for the 100k-preset stage-1/2 subprocess peak RSS.
RSS_CEILING_BYTES = 2 * 1024**3

BENCH_JSON = Path(__file__).parent.parent / "BENCH_sparse.json"

#: Task geometry for the timed comparison: a 64-voxel task against the
#: sparse-100k brain (3 subjects x 8 epochs, T=12, N=100k).
V, N_SUBJECTS, E_PER_SUBJECT, N, T = 64, 3, 8, 100_000, 12
E = N_SUBJECTS * E_PER_SUBJECT

#: Kept fraction the threshold is quantile-picked for.
TARGET_DENSITY = 0.01


@pytest.fixture(scope="module")
def sparse_task():
    rng = np.random.default_rng(2015)
    z = normalize_epoch_data(rng.standard_normal((E, N, T)).astype(np.float32))
    assigned = np.arange(V, dtype=np.int64)
    return z, assigned


@pytest.fixture(scope="module")
def tile_plan():
    """The engine's own dispatch-amortizing tiling (not the dense
    planner's L2 tiles, which drown this filter-bound loop in per-tile
    overhead)."""
    return sparse_tile_plan(V, E, N)


@pytest.fixture(scope="module")
def quantile_tau(sparse_task):
    """tau giving ~TARGET_DENSITY kept fraction.

    z-scores over E_PER_SUBJECT epochs are bounded at (n-1)/sqrt(n)
    ~ 2.47, so a useful tau must be quantile-picked on a small probe
    rather than chosen on an r-scale intuition.
    """
    z, assigned = sparse_task
    probe, _ = correlate_normalize_sparse_batched(
        z, assigned[:8], E_PER_SUBJECT, threshold=0.0
    )
    return float(np.quantile(np.abs(probe.data), 1.0 - TARGET_DENSITY))


@pytest.fixture()
def timing_enabled(request):
    """False under --benchmark-disable (the CI equivalence smoke)."""
    return not request.config.getoption("benchmark_disable", False)


class TestSparseStage12:
    def test_sparse_beats_dense_threshold_3x(
        self, timing_enabled, sparse_task, tile_plan, quantile_tau,
        save_table, record_benchmark,
    ):
        z, assigned = sparse_task
        tau = quantile_tau
        dense_out = np.empty((V, E, N), dtype=np.float32)

        def dense_threshold():
            correlate_batched(z, assigned, out=dense_out)
            normalize_separated(dense_out, E_PER_SUBJECT)
            return threshold_dense(dense_out, threshold=tau)

        def sparse():
            result, stats = correlate_normalize_sparse_batched(
                z, assigned, E_PER_SUBJECT, threshold=tau
            )
            return result, stats

        # Interleave reference and sparse shots so both sample the same
        # noise windows of a shared host (see test_batched_stage12).
        interleave = timing_enabled
        ref_shots: list[float] = []
        sparse_shots: list[float] = []
        for _ in range(2 if interleave else 1):
            t0 = time.perf_counter()
            reference = dense_threshold()
            ref_shots.append(time.perf_counter() - t0)
            for _ in range(2 if interleave else 1):
                t0 = time.perf_counter()
                result, stats = sparse()
                sparse_shots.append(time.perf_counter() - t0)
        reference_seconds = sorted(ref_shots)[len(ref_shots) // 2]

        # Equal output: the PR-3 equivalence suite proves the fused
        # engine value-identical to the separated pipeline, so the two
        # CSR results must agree exactly — same kept set, same values.
        np.testing.assert_array_equal(result.indptr, reference.indptr)
        np.testing.assert_array_equal(result.indices, reference.indices)
        np.testing.assert_allclose(result.data, reference.data, atol=3e-7)
        measured_density = stats.density
        assert 0.5 * TARGET_DENSITY < measured_density < 2 * TARGET_DENSITY

        if not timing_enabled:
            # --benchmark-disable (CI smoke): correctness checked above.
            return

        sparse_seconds = min(sparse_shots)
        speedup = reference_seconds / sparse_seconds
        assert speedup >= SPEEDUP_FLOOR, (
            f"sparse stage 1/2 only {speedup:.2f}x over dense+threshold "
            f"(floor {SPEEDUP_FLOOR}x)"
        )

        record = {
            "benchmark": "sparse thresholded stage 1/2 vs dense+threshold",
            "preset": f"sparse-100k task (V={V}, E={E}, N={N}, T={T})",
            "voxel_sweep": str(tile_plan[0]),
            "target_block": str(tile_plan[1]),
            "dense_threshold_seconds": round(reference_seconds, 4),
            "sparse_seconds": round(sparse_seconds, 4),
            "speedup": round(speedup, 2),
            "floor": str(SPEEDUP_FLOOR),
            # tau-mode density depends on BLAS last-bit behavior, so
            # it is an attr; top_k_nnz is the machine-exact count.
            "density": f"{measured_density:.5f}",
            "top_k_nnz": float(V * E * int(N * TARGET_DENSITY)),
        }
        record_benchmark("bench_sparse_stage12", record, BENCH_JSON)
        save_table(
            "sparse_stage12",
            f"sparse stage 1/2: {speedup:.1f}x over dense+threshold "
            f"({reference_seconds:.2f}s -> {sparse_seconds:.2f}s at "
            f"density {measured_density:.3%}), floor {SPEEDUP_FLOOR}x "
            f"[also in {BENCH_JSON.name}]",
        )

    def test_sparse_vs_fused_dense_secondary(
        self, timing_enabled, sparse_task, quantile_tau, save_table
    ):
        """Secondary (non-gated): ratio against the *fused* dense engine.

        The fused engine already avoids the separated path's extra
        normalization passes, so this ratio is smaller (~2x) — reported
        for honesty about where the gated win comes from, not gated.
        Same tau mode as the gated test for an apples-to-apples filter.
        """
        if not timing_enabled:
            pytest.skip("timing-only comparison")
        from repro.core.correlation import (
            NormalizationWorkspace,
            correlate_normalize_batched,
        )

        z, assigned = sparse_task
        out = np.empty((V, E, N), dtype=np.float32)
        ws = NormalizationWorkspace()

        t0 = time.perf_counter()
        correlate_normalize_batched(
            z, assigned, E_PER_SUBJECT, out=out, workspace=ws
        )
        fused_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        correlate_normalize_sparse_batched(
            z, assigned, E_PER_SUBJECT, threshold=quantile_tau
        )
        sparse_seconds = time.perf_counter() - t0

        ratio = fused_seconds / sparse_seconds
        save_table(
            "sparse_vs_fused_dense",
            f"sparse stage 1/2 vs fused dense (secondary, non-gated): "
            f"{ratio:.2f}x ({fused_seconds:.2f}s -> {sparse_seconds:.2f}s)",
        )
        assert ratio > 0  # informational only


RSS_SCRIPT = textwrap.dedent(
    """
    import json, resource, sys
    import numpy as np
    from repro.core.pipeline import preprocess_dataset
    from repro.core.sparse import correlate_normalize_sparse_batched
    from repro.data import generate_dataset, sparse_100k_config

    top_k = int(sys.argv[1])
    task_voxels = int(sys.argv[2])

    dataset = generate_dataset(sparse_100k_config())
    grouped, z = preprocess_dataset(dataset)
    e_per_subject = grouped.epochs.epochs_per_subject()
    assigned = np.arange(task_voxels, dtype=np.int64)
    result, stats = correlate_normalize_sparse_batched(
        z, assigned, e_per_subject, top_k=top_k
    )
    print(json.dumps({
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "nnz": int(stats.nnz),
        "density": stats.density,
        "n_voxels": dataset.n_voxels,
    }))
    """
)


class TestSparse100kMemory:
    def test_stage12_100k_preset_under_2gb(self, record_benchmark, save_table):
        """The tentpole claim: one 256-voxel stage-1/2 task on the full
        sparse-100k preset, at 1% density via top-k, finishes in a
        subprocess whose peak RSS stays under 2 GB.  The dense
        ``(256, 24, 100000)`` float32 buffer alone is ~2.5 GB, so this
        only passes because the dense tile never materializes."""
        top_k = int(SPARSE_100K.n_voxels * TARGET_DENSITY)
        proc = subprocess.run(
            [sys.executable, "-c", RSS_SCRIPT, str(top_k), "256"],
            capture_output=True,
            text=True,
            timeout=600,
            env={**os.environ},
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        payload = json.loads(proc.stdout.strip().splitlines()[-1])
        peak_bytes = payload["ru_maxrss_kb"] * 1024
        assert peak_bytes < RSS_CEILING_BYTES, (
            f"sparse 100k stage 1/2 peaked at {peak_bytes / 1024**3:.2f} GiB "
            f"(ceiling {RSS_CEILING_BYTES / 1024**3:.1f} GiB)"
        )
        # top-k nnz is exact and machine-independent: rows x k.
        assert payload["nnz"] == 256 * 24 * top_k
        record = {
            "benchmark": "sparse-100k stage 1/2 peak RSS",
            "preset": "sparse-100k (V=256 task, N=100000, top-k 1%)",
            # RSS is allocator/host-dependent: recorded as an attr so
            # the drift gate only judges the machine-independent nnz
            # and density; the 2 GB ceiling is asserted above.
            "peak_rss_bytes": str(peak_bytes),
            "rss_ceiling_bytes": str(RSS_CEILING_BYTES),
            "nnz": float(payload["nnz"]),
            "density": round(payload["density"], 5),
        }
        record_benchmark("bench_sparse_100k_rss", record)
        save_table(
            "sparse_100k_rss",
            f"sparse-100k stage 1/2 (256-voxel task, top-k 1%): peak RSS "
            f"{peak_bytes / 1024**3:.2f} GiB < "
            f"{RSS_CEILING_BYTES / 1024**3:.1f} GiB ceiling, "
            f"nnz={payload['nnz']}",
        )
