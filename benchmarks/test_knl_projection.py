"""Forward projection — FCMA on Knights Landing (paper Section 7).

The paper's future work: "we believe our implementation can be migrated
on to the next generation of Intel Xeon Phi (KNL) with moderate effort".
This bench runs the task models on the KNL 7250 description and projects
the expected gains: the 3x peak-FLOPS and 3x bandwidth uplift should
yield roughly a 3x per-task speedup for the already-optimized pipeline.
"""

from repro.bench import render_table, within_factor
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import KNL_7250, PHI_5110P
from repro.perf.task_model import model_task

SPECS = {"face-scene": FACE_SCENE, "attention": ATTENTION}


def _projection():
    out = {}
    for name, spec in SPECS.items():
        knc = model_task(spec, PHI_5110P, "optimized")
        knl = model_task(spec, KNL_7250, "optimized")
        out[name] = (knc, knl)
    return out


def test_knl_projection(benchmark, save_table):
    results = benchmark(_projection)

    rows = []
    for name, (knc, knl) in results.items():
        rows.append(
            [
                name,
                f"{knc.seconds_per_voxel * 1e3:.1f}",
                f"{knl.seconds_per_voxel * 1e3:.1f}",
                f"{knc.seconds_per_voxel / knl.seconds_per_voxel:.2f}x",
            ]
        )
    save_table(
        "knl_projection",
        render_table(
            ["dataset", "KNC ms/voxel", "KNL ms/voxel", "projected speedup"],
            rows,
            title="Projection: optimized FCMA on Xeon Phi 7250 (KNL)",
        ),
    )

    for name, (knc, knl) in results.items():
        speedup = knc.seconds_per_voxel / knl.seconds_per_voxel
        # Issue-bound stages scale with the ~2.8x sustained-issue uplift;
        # memory-bound pieces with the 3x bandwidth.
        assert within_factor(speedup, 3.0, 1.4), name
        # Every stage gets faster — no stage regresses on KNL.
        for stage in knc.stages:
            assert knl.stages[stage].seconds < knc.stages[stage].seconds


def test_knl_relieves_memory_pressure(benchmark):
    """MCDRAM's 3x bandwidth moves the correlation stage away from the
    bandwidth ceiling (the KNC bottleneck of Table 5)."""

    def bounds():
        knc = model_task(FACE_SCENE, PHI_5110P, "optimized").correlation
        knl = model_task(FACE_SCENE, KNL_7250, "optimized").correlation
        return knc, knl

    knc, knl = benchmark(bounds)
    knc_mem_share = knc.breakdown.bandwidth / knc.breakdown.elapsed
    knl_mem_share = knl.breakdown.bandwidth / knl.breakdown.elapsed
    assert knl_mem_share < knc_mem_share
