"""Ablation — dynamic pull scheduling vs static assignment.

The paper's framework is explicitly pull-based ("when a worker finishes
a task, it will receive a new task from the master").  This ablation
quantifies why: with heterogeneous workers (thermal throttling, shared
PCIe, attention's uneven epoch layouts), static round-robin assignment
strands work on slow nodes while dynamic self-scheduling load-balances.
"""

import pytest

from repro.bench import render_table
from repro.cluster import ClusterConfig, offline_workload, simulate
from repro.data import FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.task_model import offline_task_seconds


def _workload():
    t = offline_task_seconds(FACE_SCENE, PHI_5110P, 120)
    return offline_workload(FACE_SCENE, t, 120)


@pytest.mark.parametrize("schedule", ["dynamic", "static"])
def test_schedule_simulation(benchmark, schedule):
    workload = _workload()
    res = benchmark(
        simulate,
        workload,
        ClusterConfig(n_workers=32, heterogeneity=0.15, seed=7, schedule=schedule),
    )
    assert res.elapsed_seconds > 0


def test_dynamic_beats_static_under_heterogeneity(benchmark, save_table):
    workload = _workload()

    def run():
        out = {}
        for het in (0.0, 0.1, 0.2):
            row = {}
            for schedule in ("dynamic", "static"):
                cfg = ClusterConfig(
                    n_workers=32, heterogeneity=het, seed=7, schedule=schedule
                )
                row[schedule] = simulate(workload, cfg).elapsed_seconds
            out[het] = row
        return out

    results = benchmark(run)
    rows = [
        [
            f"{het:.0%}",
            f"{row['dynamic']:.0f}",
            f"{row['static']:.0f}",
            f"{row['static'] / row['dynamic']:.3f}x",
        ]
        for het, row in results.items()
    ]
    save_table(
        "ablation_scheduling",
        render_table(
            ["heterogeneity", "dynamic s", "static s", "static/dynamic"],
            rows,
            title="Ablation: pull scheduling vs static assignment (32 workers)",
        ),
    )

    # Homogeneous workers: the two are equivalent (same wave structure).
    assert results[0.0]["static"] <= results[0.0]["dynamic"] * 1.02
    # Heterogeneous workers: dynamic wins, and the gap grows.
    assert results[0.2]["static"] > results[0.2]["dynamic"] * 1.02
    gap_10 = results[0.1]["static"] / results[0.1]["dynamic"]
    gap_20 = results[0.2]["static"] / results[0.2]["dynamic"]
    assert gap_20 >= gap_10
