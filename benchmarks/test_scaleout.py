"""Strong/weak scaling of the 2-D tiled master-worker executor.

Regenerates the scale-out story of the paper's Fig. 8 at benchmark
scale: the tiled protocol runs at 1/2/4 workers, every run is verified
bitwise-equal to the serial reference, and the measured elapsed times
are recorded next to two predictions — the cluster-simulator replay of
the measured task stream (the predicted-vs-measured hook in
``ctx.metadata["predicted"]``) and the analytic wire model
(:func:`repro.perf.predict_scaleout`).

Single-core CI note: on a one-core box (``nproc`` = 1, the common CI
case) wall-clock cannot improve with worker count — thread workers
time-share the core — so the >= 1.5x strong-scaling gate is asserted on
the simulator replay, which is deterministic for a given task stream.
Measured elapsed is still recorded so multi-core machines show the real
curve in the history registry.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import ClusterConfig, FoldSpec, TaskSpec, Workload, simulate
from repro.core import FCMAConfig
from repro.data import SyntheticConfig, generate_dataset
from repro.data.presets import DatasetSpec
from repro.exec import RunContext, make_executor
from repro.exec.executors import predicted_schedule
from repro.hw import E5_2670
from repro.perf import IN_PROCESS, predict_scaleout

BENCH_JSON = Path(__file__).parent.parent / "BENCH_scaleout.json"
WORKERS = (1, 2, 4)
SPEEDUP_FLOOR = 1.5


@pytest.fixture(scope="module")
def workload():
    cfg = SyntheticConfig(
        n_voxels=240, n_subjects=4, epochs_per_subject=8, epoch_length=12,
        n_informative=24, n_groups=3, seed=11, name="scalebench",
    )
    fcma = FCMAConfig(task_voxels=60, voxel_block=8, target_block=32)
    return generate_dataset(cfg), fcma


@pytest.fixture(scope="module")
def serial_reference(workload):
    ds, cfg = workload
    ctx = RunContext(cfg)
    scores = make_executor("serial").run(ds, ctx)
    return scores, ctx


@pytest.fixture(scope="module")
def scaling_runs(workload):
    """One tiled thread-transport run per worker count."""
    ds, cfg = workload
    runs: dict[int, tuple] = {}
    for n in WORKERS:
        ctx = RunContext(cfg)
        executor = make_executor(
            "master-worker", n_workers=n, transport="thread",
            partition="tiles",
        )
        scores = executor.run(ds, ctx)
        runs[n] = (scores, ctx)
    return runs


class TestCorrectness:
    def test_every_worker_count_bitwise_equal_to_serial(
        self, scaling_runs, serial_reference
    ):
        reference, _ = serial_reference
        for n, (scores, _ctx) in scaling_runs.items():
            np.testing.assert_array_equal(
                scores.voxels, reference.voxels, err_msg=f"n_workers={n}"
            )
            np.testing.assert_array_equal(
                scores.accuracies,
                reference.accuracies,
                err_msg=f"n_workers={n}",
            )

    def test_tcp_localhost_bitwise_equal_to_serial(
        self, workload, serial_reference
    ):
        """1 master + 2 real worker processes over loopback TCP."""
        ds, cfg = workload
        reference, _ = serial_reference
        ctx = RunContext(cfg)
        executor = make_executor(
            "master-worker", n_workers=2, transport="tcp", partition="tiles",
        )
        scores = executor.run(ds, ctx)
        np.testing.assert_array_equal(scores.voxels, reference.voxels)
        np.testing.assert_array_equal(
            scores.accuracies, reference.accuracies
        )
        assert ctx.metadata["transport"] == "tcp"
        counters = ctx.metadata.get("counters", {})
        assert counters.get("comm.bytes_sent", 0) > 0
        assert counters.get("comm.bytes_recv", 0) > 0


class TestPredictedVsMeasured:
    def test_predicted_hook_lands_beside_measured(self, scaling_runs):
        for n, (_scores, ctx) in scaling_runs.items():
            predicted = ctx.metadata["predicted"]
            assert predicted["n_workers"] == n
            assert predicted["elapsed_s"] > 0
            assert 0 < predicted["utilization"] <= 1
            assert ctx.metadata["measured_elapsed_s"] > 0

    def test_simulator_strong_scaling_meets_floor(self, scaling_runs):
        """The acceptance gate: >= 1.5x predicted speedup at 4 workers.

        Replays the 1-worker measured task stream through the cluster
        simulator at each worker count — deterministic, so it holds on
        single-core CI where wall-clock cannot scale.
        """
        _, ctx1 = scaling_runs[1]
        ds_bytes_ctx = scaling_runs  # runs share the module workload
        del ds_bytes_ctx
        base = None
        speedups = {}
        for n in WORKERS:
            sim = _replay(ctx1, n)
            if base is None:
                base = sim.elapsed_seconds
            speedups[n] = base / sim.elapsed_seconds
        assert speedups[1] == pytest.approx(1.0)
        assert speedups[4] >= SPEEDUP_FLOOR
        assert speedups[2] <= speedups[4] + 1e-9

    def test_analytic_model_agrees_on_compute_bound_scaling(self, workload):
        ds, cfg = workload
        spec = _dataset_spec(ds)
        tile_cols = min(spec.n_voxels, 64)
        points = predict_scaleout(
            spec, E5_2670, IN_PROCESS, cfg.task_voxels, tile_cols,
            workers=WORKERS,
        )
        assert not points[0].comm_bound
        model_speedup = (
            points[0].elapsed_seconds / points[-1].elapsed_seconds
        )
        assert model_speedup >= SPEEDUP_FLOOR


class TestOverlapCounters:
    def test_overlap_and_wire_counters_recorded(self, scaling_runs):
        for n, (_scores, ctx) in scaling_runs.items():
            counters = ctx.metadata.get("counters", {})
            assert counters.get("overlap_hidden_seconds") is not None
            assert counters["overlap_hidden_seconds"] >= 0.0


def _replay(ctx, n_workers):
    """Cluster-simulator prediction for ``ctx``'s stream at ``n_workers``."""
    dataset_bytes = 240 * 4 * 8 * 12 * 8  # voxels x subj x epochs x len x f64
    result_bytes = ctx.config.task_voxels * 8
    fold = FoldSpec(
        tasks=tuple(
            TaskSpec(max(s, 1e-9), result_bytes=result_bytes)
            for s in ctx.task_seconds
        ),
        label="scaleout-replay",
    )
    workload = Workload(
        name="scaleout", dataset_bytes=dataset_bytes, folds=(fold,)
    )
    return simulate(workload, ClusterConfig(n_workers=n_workers))


def _weak_scaling_efficiency(ctx, n_workers):
    """Simulated weak scaling: n copies of the stream on n workers."""
    result_bytes = ctx.config.task_voxels * 8
    tasks = tuple(
        TaskSpec(max(s, 1e-9), result_bytes=result_bytes)
        for s in ctx.task_seconds
    )
    one = simulate(
        Workload(name="weak-1", dataset_bytes=0, folds=(FoldSpec(tasks),)),
        ClusterConfig(n_workers=1),
    )
    many = simulate(
        Workload(
            name=f"weak-{n_workers}",
            dataset_bytes=0,
            folds=(FoldSpec(tasks * n_workers),),
        ),
        ClusterConfig(n_workers=n_workers),
    )
    return one.elapsed_seconds / many.elapsed_seconds


def _dataset_spec(ds) -> DatasetSpec:
    return DatasetSpec(
        name="scalebench",
        n_voxels=ds.n_voxels,
        n_subjects=4,
        n_epochs=32,
        epoch_length=12,
    )


def test_record_scaling_curves(
    workload, scaling_runs, serial_reference, record_benchmark, save_table
):
    """Persist measured-vs-predicted curves to BENCH_scaleout.json."""
    ds, cfg = workload
    _, ctx1 = scaling_runs[1]
    spec = _dataset_spec(ds)
    tile_cols = int(scaling_runs[1][1].metadata.get("tile_cols", 64))
    model_points = {
        p.n_workers: p
        for p in predict_scaleout(
            spec, E5_2670, IN_PROCESS, cfg.task_voxels, tile_cols,
            workers=WORKERS,
        )
    }

    # Metric-name classes matter to the drift gate (`fcma perf check`):
    # names ending in ``_seconds``/``model_ratio`` are wall-clock class
    # (same-machine, generous tolerance); everything else is exact-gated
    # across machines, so only deterministic quantities (geometry and
    # the analytic model curve) may use bare names.
    record: dict = {
        "n_voxels": ds.n_voxels,
        "task_voxels": cfg.task_voxels,
        "tile_cols": tile_cols,
        "workers": list(WORKERS),
        "speedup_floor": SPEEDUP_FLOOR,
    }
    lines = [
        "strong scaling: tiled master-worker (thread transport)",
        f"  {'n':>3} {'measured_s':>11} {'sim_pred_s':>11} "
        f"{'sim_speedup':>11} {'model_speedup':>13} {'weak_eff':>9}",
    ]
    sim_base = _replay(ctx1, 1).elapsed_seconds
    model_base = model_points[1].elapsed_seconds
    for n in WORKERS:
        _scores, ctx = scaling_runs[n]
        measured = float(ctx.metadata["measured_elapsed_s"])
        sim = _replay(ctx1, n)
        sim_speedup = sim_base / sim.elapsed_seconds
        model_speedup = model_base / model_points[n].elapsed_seconds
        weak_eff = _weak_scaling_efficiency(ctx1, n)
        record[f"measured_{n}w_wall_seconds"] = measured
        record[f"sim_{n}w_elapsed_seconds"] = sim.elapsed_seconds
        record[f"sim_{n}w_speedup_model_ratio"] = sim_speedup
        record[f"sim_{n}w_utilization_model_ratio"] = sim.utilization
        record[f"model_speedup_{n}w"] = model_speedup
        record[f"weak_{n}w_efficiency_model_ratio"] = weak_eff
        record[f"hook_{n}w_elapsed_seconds"] = float(
            ctx.metadata["predicted"]["elapsed_s"]
        )
        lines.append(
            f"  {n:>3} {measured:>11.3f} {sim.elapsed_seconds:>11.3f} "
            f"{sim_speedup:>10.2f}x {model_speedup:>12.2f}x "
            f"{weak_eff:>8.2f}"
        )
    gate_speedup = record[f"sim_{WORKERS[-1]}w_speedup_model_ratio"]
    record["sim_speedup_meets_floor"] = gate_speedup >= SPEEDUP_FLOOR
    lines.append(
        f"  gate: simulator speedup at {WORKERS[-1]}w = "
        f"{gate_speedup:.2f}x (floor {SPEEDUP_FLOOR}x)"
    )
    assert record["sim_speedup_meets_floor"]

    path = record_benchmark("bench_scaleout", record, BENCH_JSON)
    save_table("scaleout", "\n".join(lines))
    assert BENCH_JSON.exists()
    assert json.loads(BENCH_JSON.read_text())["workers"] == list(WORKERS)
    assert path.exists()
