"""Benchmark: fused batched stage 1/2 vs the pre-PR blocked+callback path.

The reference is :func:`correlate_blocked_reference` driving
:class:`MergedNormalizer` — one tiny gemm per epoch per tile plus a
Python callback per tile, exactly the pre-batching optimized node.  The
fused engine replaces all of that with one epoch-batched 3D gemm and an
L2-sized voxel sweep of the vectorized normalizer, with the sweep width
chosen by the autotuned blocking planner.  This bench times both on the
face-scene-scaled task geometry, asserts the committed >= 3x speedup
floor, verifies the outputs agree, and records the measurement through
the benchmark history registry (plus the legacy ``BENCH_stage12.json``
mirror at the repo root) so regressions are diffable and checkable.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.blocking import PlanCache, plan_blocks
from repro.core.correlation import (
    NormalizationWorkspace,
    correlate_blocked_reference,
    correlate_normalize_batched,
    normalize_epoch_data,
)
from repro.core.normalization import MergedNormalizer
from repro.hw import E5_2670

#: Committed floor: the fused path must beat blocked+callback by this.
SPEEDUP_FLOOR = 3.0

BENCH_JSON = Path(__file__).parent.parent / "BENCH_stage12.json"

#: Face-scene-scaled task geometry: 120 assigned voxels (the paper's
#: task size), 6 subjects x 12 epochs, 1200 brain voxels, T=12.
V, N_SUBJECTS, E_PER_SUBJECT, N, T = 120, 6, 12, 1200, 12
E = N_SUBJECTS * E_PER_SUBJECT


@pytest.fixture(scope="module")
def stage12_task():
    rng = np.random.default_rng(2015)
    z = normalize_epoch_data(
        rng.standard_normal((E, N, T)).astype(np.float32)
    )
    assigned = np.arange(V, dtype=np.int64)
    return z, assigned


@pytest.fixture(scope="module")
def tuned_sweep(stage12_task):
    """Autotuned sweep width for this machine (memory-only cache)."""
    z, assigned = stage12_task
    plan = plan_blocks(
        E5_2670,
        epochs_per_subject=E_PER_SUBJECT,
        epoch_length=T,
        n_assigned=assigned.size,
        n_voxels=N,
        autotune=True,
        cache=PlanCache(),
    )
    return plan.voxel_block


class TestBatchedStage12:
    def test_fused_beats_blocked_callback_3x(
        self, benchmark, stage12_task, tuned_sweep, save_table,
        record_benchmark,
    ):
        z, assigned = stage12_task

        out = np.empty((V, E, N), dtype=np.float32)
        workspace = NormalizationWorkspace()

        # Reference: the pre-PR optimized node — blocked per-epoch gemms
        # with merged normalization through the tile callback.  The node
        # allocates its (V, E, N) output fresh on every task, so each
        # timed shot does too (the page faults are part of its per-task
        # cost).  Reference and fused shots are *interleaved* so both
        # sample the same noise windows of a shared host; the ratio of
        # ref-median to fused-min is then stable even when the machine
        # is not.
        interleave = not getattr(benchmark, "disabled", False)
        ref_shots: list[float] = []
        fused_shots: list[float] = []
        for _ in range(3 if interleave else 1):
            t0 = time.perf_counter()
            reference = correlate_blocked_reference(
                z,
                assigned,
                voxel_block=16,
                target_block=512,
                epoch_block=E_PER_SUBJECT,
                tile_callback=MergedNormalizer(E_PER_SUBJECT),
            )
            ref_shots.append(time.perf_counter() - t0)
            for _ in range(3 if interleave else 0):
                t0 = time.perf_counter()
                correlate_normalize_batched(
                    z,
                    assigned,
                    E_PER_SUBJECT,
                    voxel_sweep=tuned_sweep,
                    out=out,
                    workspace=workspace,
                )
                fused_shots.append(time.perf_counter() - t0)
        reference_seconds = sorted(ref_shots)[len(ref_shots) // 2]

        fused, _ = benchmark(
            correlate_normalize_batched,
            z,
            assigned,
            E_PER_SUBJECT,
            voxel_sweep=tuned_sweep,
            out=out,
            workspace=workspace,
        )

        # Both are Fisher-z + z-scored correlations of the same input.
        # Self-correlation columns (assigned ⊆ targets) have near-zero
        # within-subject variance after the clip, so their z-scores are
        # catastrophically cancellation-sensitive: zero them in both
        # before comparing.
        fused_cmp = fused.copy()
        ref_cmp = reference.copy()
        for vi, v in enumerate(assigned):
            fused_cmp[vi, :, v] = 0.0
            ref_cmp[vi, :, v] = 0.0
        np.testing.assert_allclose(fused_cmp, ref_cmp, atol=2e-4)

        if benchmark.stats is None:
            # --benchmark-disable (CI smoke): correctness checked above,
            # but there is no timing to assert or record.
            return

        fused_seconds = min(fused_shots + [benchmark.stats.stats.min])
        speedup = reference_seconds / fused_seconds
        assert speedup >= SPEEDUP_FLOOR, (
            f"fused batched stage 1/2 only {speedup:.2f}x over "
            f"blocked+callback (floor {SPEEDUP_FLOOR}x)"
        )

        record = {
            "benchmark": "fused batched stage 1/2 vs blocked+callback",
            "preset": (
                f"face-scene-scaled task (V={V}, E={E}, N={N}, T={T})"
            ),
            "voxel_sweep": int(tuned_sweep),
            "reference_seconds": round(reference_seconds, 4),
            "fused_seconds": round(fused_seconds, 4),
            "speedup": round(speedup, 2),
            "floor": SPEEDUP_FLOOR,
        }
        record_benchmark("bench_stage12", record, BENCH_JSON)
        save_table(
            "batched_stage12",
            f"fused batched stage 1/2: {speedup:.1f}x over blocked+callback "
            f"({reference_seconds * 1e3:.1f}ms -> {fused_seconds * 1e3:.1f}ms, "
            f"sweep={tuned_sweep}), floor {SPEEDUP_FLOOR}x "
            f"[also in {BENCH_JSON.name}]",
        )

    def test_batched_gemm_only(self, benchmark, stage12_task):
        """The epoch-batched gemm half in isolation, for profiling."""
        from repro.core.correlation import correlate_batched

        z, assigned = stage12_task
        out = np.empty((V, E, N), dtype=np.float32)
        result = benchmark(correlate_batched, z, assigned, out=out)
        assert result.shape == (V, E, N)
