"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures,
asserts its shape claims (who wins, by roughly what factor), and writes
the paper-vs-reproduced comparison to ``benchmarks/results/<name>.txt``
so the artifacts survive the run (``--benchmark-only`` captures stdout).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    """save_table(name, text): persist + echo one regenerated table."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
