"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables or figures,
asserts its shape claims (who wins, by roughly what factor), and writes
the paper-vs-reproduced comparison to ``benchmarks/results/<name>.txt``
so the artifacts survive the run (``--benchmark-only`` captures stdout).

Timed benchmarks additionally record their measurements through the
performance-observatory history registry
(``benchmarks/results/history.jsonl``; see :mod:`repro.obs.perf`), so
every run lands as a structured record with git sha, timestamp, and
machine fingerprint — the input ``fcma perf check`` judges future runs
against.  The legacy root-level ``BENCH_*.json`` files are kept as a
compatibility mirror for existing CI artifact uploads.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable, Mapping

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    """save_table(name, text): persist + echo one regenerated table."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture(scope="session")
def record_benchmark(
    results_dir,
) -> Callable[[str, Mapping[str, Any], Path | None], Path]:
    """record_benchmark(name, payload, legacy_path=None) -> history path.

    Splits the payload into metrics (numbers) and attrs (everything
    else), appends a :class:`~repro.obs.perf.BenchmarkRecord` to the
    history registry, and — when ``legacy_path`` is given — mirrors the
    raw payload to the legacy root-level JSON file.
    """
    from repro.obs.perf import BenchmarkRecord, HistoryRegistry

    env_path = os.environ.get("FCMA_HISTORY_PATH")
    registry = HistoryRegistry(
        env_path if env_path else results_dir / "history.jsonl"
    )

    def _record(
        name: str,
        payload: Mapping[str, Any],
        legacy_path: Path | None = None,
    ) -> Path:
        metrics: dict[str, float] = {}
        attrs: dict[str, Any] = {}
        for key, value in payload.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                attrs[key] = value
            else:
                metrics[key] = float(value)
        if legacy_path is not None:
            legacy_path.write_text(
                json.dumps(dict(payload), indent=2) + "\n"
            )
            attrs["legacy_mirror"] = legacy_path.name
        return registry.append(
            BenchmarkRecord(name=name, metrics=metrics, attrs=attrs)
        )

    return _record
