"""Table 5 — matmul routines: elapsed time and GFLOPS, ours vs MKL.

Shape claims: our blocking beats MKL on both shapes; the syrk reaches
several-fold higher GFLOPS than the write-dominated correlation gemm;
the MKL syrk is the slowest kernel by far.
"""

from repro.bench import paperdata, render_table, within_factor
from repro.data import FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.matmul_model import model_correlation_matmul, model_kernel_syrk


def _all_estimates():
    return {
        ("ours", "corr"): model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours"),
        ("ours", "syrk"): model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "ours"),
        ("mkl", "corr"): model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "mkl"),
        ("mkl", "syrk"): model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "mkl"),
    }


def test_table5_matmul_gflops(benchmark, save_table):
    ests = benchmark(_all_estimates)

    rows = []
    for key, est in ests.items():
        p_time, p_gflops = paperdata.TABLE5_MATMUL[key]
        rows.append(
            [
                f"{key[0]}/{key[1]}",
                f"{est.milliseconds:.0f} / {p_time:.0f}",
                f"{est.gflops:.0f} / {p_gflops:.0f}",
            ]
        )
        assert within_factor(est.milliseconds, p_time, 1.3), key
        assert within_factor(est.gflops, p_gflops, 1.3), key

    save_table(
        "table5_matmul_gflops",
        render_table(
            ["kernel", "time ms (ours/paper)", "GFLOPS (ours/paper)"],
            rows,
            title="Table 5: matmul routines (face-scene, 120-voxel task)",
        ),
    )

    # Orderings the paper reports:
    assert ests[("ours", "corr")].seconds < ests[("mkl", "corr")].seconds
    assert ests[("ours", "syrk")].seconds < ests[("mkl", "syrk")].seconds
    # "the latter reached 3.4x higher GFLOPS" (syrk vs corr, ours):
    ratio = ests[("ours", "syrk")].gflops / ests[("ours", "corr")].gflops
    assert within_factor(ratio, 3.4, 1.4)
    # MKL's syrk is ~4x slower than ours (1600 vs 400 ms):
    mkl_gap = ests[("mkl", "syrk")].seconds / ests[("ours", "syrk")].seconds
    assert within_factor(mkl_gap, 4.0, 1.4)
