"""Table 8 — SVM cross-validation: LibSVM vs optimized LibSVM vs PhiSVM.

Shape claims: float32 + dense loops (optimized LibSVM) gives ~3x over
stock LibSVM; PhiSVM's algorithm/occupancy changes a further ~3x
(~9.2x total).
"""

from repro.bench import paperdata, render_table, within_factor
from repro.data import FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.svm_model import model_svm_cv


def _variants():
    return {
        v: model_svm_cv(FACE_SCENE, 120, PHI_5110P, v)
        for v in ("libsvm", "libsvm-opt", "phisvm")
    }


def test_table8_svm(benchmark, save_table):
    ests = benchmark(_variants)

    rows = []
    for variant, est in ests.items():
        p_time, p_vi = paperdata.TABLE8_SVM[variant]
        rows.append(
            [
                variant,
                f"{est.milliseconds:.0f} / {p_time:.0f}",
                f"{est.counters.vectorization_intensity:.1f} / {p_vi}",
            ]
        )
        assert within_factor(est.milliseconds, p_time, 1.25), variant
        assert within_factor(
            est.counters.vectorization_intensity, p_vi, 1.05
        ), variant

    save_table(
        "table8_svm",
        render_table(
            ["implementation", "time ms (ours/paper)", "VI (ours/paper)"],
            rows,
            title="Table 8: SVM cross-validation (face-scene, 120 voxels)",
        ),
    )

    total_gap = ests["libsvm"].seconds / ests["phisvm"].seconds
    vector_gap = ests["libsvm"].seconds / ests["libsvm-opt"].seconds
    assert within_factor(total_gap, 9.2, 1.3)   # paper: 3600/390
    assert within_factor(vector_gap, 3.13, 1.3)  # paper: 3600/1150
    assert (
        ests["libsvm"].seconds
        > ests["libsvm-opt"].seconds
        > ests["phisvm"].seconds
    )
