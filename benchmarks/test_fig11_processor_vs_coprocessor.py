"""Fig. 11 — processor vs coprocessor, baseline and optimized.

Normalized to the E5-2670 baseline (= 1).  The paper's qualitative
results: the optimized coprocessor code is the fastest configuration
for both datasets, while the *baseline* on the coprocessor is slower
than on the processor (underutilized manycore) — which is exactly why
the optimizations matter.
"""

import pytest

from repro.bench import render_table
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import E5_2670, PHI_5110P
from repro.perf.task_model import model_task

SPECS = {"face-scene": FACE_SCENE, "attention": ATTENTION}


def _grid():
    out = {}
    for name, spec in SPECS.items():
        cells = {}
        for hw_name, hw in (("xeon", E5_2670), ("phi", PHI_5110P)):
            for variant in ("baseline", "optimized"):
                cells[(hw_name, variant)] = model_task(
                    spec, hw, variant
                ).seconds_per_voxel
        out[name] = cells
    return out


def test_fig11_processor_vs_coprocessor(benchmark, save_table):
    grid = benchmark(_grid)

    rows = []
    for name, cells in grid.items():
        ref = cells[("xeon", "baseline")]
        rows.append(
            [
                name,
                "1.00x",
                f"{ref / cells[('xeon', 'optimized')]:.2f}x",
                f"{ref / cells[('phi', 'baseline')]:.2f}x",
                f"{ref / cells[('phi', 'optimized')]:.2f}x",
            ]
        )

    save_table(
        "fig11_processor_vs_coprocessor",
        render_table(
            [
                "dataset",
                "E5 baseline",
                "E5 optimized",
                "Phi baseline",
                "Phi optimized",
            ],
            rows,
            title="Fig 11: relative performance (E5-2670 baseline = 1)",
        ),
    )

    for name, cells in grid.items():
        # Optimized coprocessor is the fastest configuration overall.
        fastest = min(cells, key=cells.get)
        assert fastest == ("phi", "optimized"), name
        # Optimized Phi beats optimized Xeon (Section 5.5's claim).
        assert cells[("phi", "optimized")] < cells[("xeon", "optimized")]
        # The naive baseline wastes the coprocessor: slower than host.
        assert cells[("phi", "baseline")] > cells[("xeon", "baseline")]
