"""Benchmark: batched stage 3 vs the per-voxel reference path.

The batched driver computes a block of voxel kernels in one stacked GEMM
and cross-validates the whole block through the multi-problem SMO
solver, paying the Python-interpreter cost of an SMO iteration once per
*sweep* instead of once per voxel.  This bench times both drivers on the
face-scene-scaled task geometry, asserts the committed >= 3x speedup
floor, verifies score equality, and records the measurement through the
benchmark history registry (plus the legacy ``BENCH_stage3.json`` mirror
at the repo root) so regressions are diffable and checkable.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.voxel_selection import score_voxels, score_voxels_reference
from repro.svm import PhiSVM

#: Committed floor: the batched path must beat per-voxel by this factor.
SPEEDUP_FLOOR = 3.0

BENCH_JSON = Path(__file__).parent.parent / "BENCH_stage3.json"


@pytest.fixture(scope="module")
def stage3_task():
    """One face-scene-scaled task: 96 assigned voxels, 6 subjects x 12
    epochs, 240 brain voxels, with a planted 8-voxel ROI."""
    rng = np.random.default_rng(2015)
    v, m, n = 96, 72, 240
    corr = rng.standard_normal((v, m, n)).astype(np.float32)
    labels = np.tile([0, 1], m // 2)
    corr[:8, labels == 1, :20] += 1.5
    folds = np.repeat(np.arange(6), 12)
    return corr, np.arange(v), labels, folds


class TestBatchedStage3:
    def test_batched_beats_reference_3x(
        self, benchmark, stage3_task, save_table, record_benchmark
    ):
        corr, ids, labels, folds = stage3_task
        svm = PhiSVM()

        batched = benchmark(
            score_voxels, corr, ids, labels, folds, svm, batch_voxels=64
        )

        t0 = time.perf_counter()
        reference = score_voxels_reference(corr, ids, labels, folds, svm)
        reference_seconds = time.perf_counter() - t0

        # Planted-ROI equality: trajectories are bitwise-equal, so the
        # accuracies must agree to float32 tolerance (in practice exactly).
        np.testing.assert_allclose(
            batched.accuracies, reference.accuracies, atol=1e-6
        )
        assert batched.accuracies[:8].mean() > batched.accuracies[8:].mean()

        if benchmark.stats is None:
            # --benchmark-disable (CI smoke): correctness checked above,
            # but there is no timing to assert or record.
            return

        batched_seconds = benchmark.stats.stats.min
        speedup = reference_seconds / batched_seconds
        assert speedup >= SPEEDUP_FLOOR, (
            f"batched stage 3 only {speedup:.2f}x over per-voxel "
            f"(floor {SPEEDUP_FLOOR}x)"
        )

        record = {
            "benchmark": "batched stage 3 vs per-voxel reference",
            "preset": "face-scene-scaled task (V=96, M=72, N=240, LOSO)",
            "batch_voxels": 64,
            "reference_seconds": round(reference_seconds, 4),
            "batched_seconds": round(batched_seconds, 4),
            "speedup": round(speedup, 2),
            "floor": SPEEDUP_FLOOR,
        }
        record_benchmark("bench_stage3", record, BENCH_JSON)
        save_table(
            "batched_stage3",
            f"batched stage 3: {speedup:.1f}x over per-voxel "
            f"({reference_seconds:.2f}s -> {batched_seconds:.2f}s), "
            f"floor {SPEEDUP_FLOOR}x [also in {BENCH_JSON.name}]",
        )

    def test_batched_kernels_only(self, benchmark, stage3_task):
        """The stacked-GEMM half in isolation (no SVM), for profiling."""
        from repro.core.kernels import kernel_matrix_batched

        corr, _, _, _ = stage3_task
        out = benchmark(kernel_matrix_batched, corr)
        assert out.shape == (96, 72, 72)
