"""Fig. 9 — single-coprocessor optimized-vs-baseline speedup.

Per-voxel normalized (the implementations take different task sizes:
the baseline is memory-limited to 120/60 voxels, the optimized pipeline
batches 240).  Paper: 5.24x (face-scene), 16.39x (attention); attention
gains more because its SVM stage dominates.
"""

import pytest

from repro.bench import paperdata, render_table, within_factor
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.task_model import model_task

SPECS = {"face-scene": FACE_SCENE, "attention": ATTENTION}


def _speedups():
    out = {}
    for name, spec in SPECS.items():
        base = model_task(spec, PHI_5110P, "baseline")
        opt = model_task(spec, PHI_5110P, "optimized")
        out[name] = (base, opt, base.seconds_per_voxel / opt.seconds_per_voxel)
    return out


def test_fig9_single_node_speedup(benchmark, save_table):
    speedups = benchmark(_speedups)

    rows = []
    for name, (base, opt, speedup) in speedups.items():
        paper = paperdata.FIG9_SPEEDUP[name]
        rows.append(
            [
                name,
                f"{base.seconds_per_voxel * 1e3:.1f}",
                f"{opt.seconds_per_voxel * 1e3:.1f}",
                f"{speedup:.2f}x / {paper}x",
            ]
        )
        assert within_factor(speedup, paper, 1.35), name

    save_table(
        "fig9_single_node_speedup",
        render_table(
            ["dataset", "baseline ms/voxel", "optimized ms/voxel", "speedup (ours/paper)"],
            rows,
            title="Fig 9: optimized over baseline, single coprocessor",
        ),
    )

    # Attention benefits far more (its SVM fraction dominates):
    assert speedups["attention"][2] > 2 * speedups["face-scene"][2]


def test_fig9_svm_fraction_explains_attention(benchmark):
    """The paper's stated mechanism: "For attention dataset, the
    fraction of time spent in SVM computation is significantly larger"."""

    def fractions():
        out = {}
        for name, spec in SPECS.items():
            base = model_task(spec, PHI_5110P, "baseline")
            out[name] = base.svm.seconds / base.seconds
        return out

    frac = benchmark(fractions)
    assert frac["attention"] > frac["face-scene"]
    assert frac["attention"] > 0.6
