"""Resilience study — elapsed time vs mid-run coprocessor failures.

Quantifies the operational benefit of the pull-scheduled, retrying
master-worker design: losing workers mid-run degrades elapsed time in
wave-quantized steps but never loses voxels.  (The real protocol's
behaviour under failure is tested in
``tests/parallel/test_fault_tolerance.py``; this is the 96-node-scale
projection.)
"""

import pytest

from repro.bench import render_table
from repro.cluster import ClusterConfig, offline_workload, simulate_with_failures
from repro.data import FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.task_model import offline_task_seconds

FAILURE_COUNTS = [0, 1, 4, 16, 48]


def _workload():
    t = offline_task_seconds(FACE_SCENE, PHI_5110P, 120)
    return offline_workload(FACE_SCENE, t, 120)


def _elapsed(n_failures: int) -> float:
    workload = _workload()
    failures = {k: 10.0 + k for k in range(n_failures)}
    return simulate_with_failures(
        workload, ClusterConfig(n_workers=96), failures
    ).elapsed_seconds


@pytest.mark.parametrize("n_failures", [0, 4])
def test_failure_simulation(benchmark, n_failures):
    elapsed = benchmark(_elapsed, n_failures)
    assert elapsed > 0


def test_failure_sweep(benchmark, save_table):
    results = benchmark(lambda: {k: _elapsed(k) for k in FAILURE_COUNTS})

    base = results[0]
    rows = [
        [str(k), f"{results[k]:.0f}", f"{results[k] / base:.2f}x", str(96 - k)]
        for k in FAILURE_COUNTS
    ]
    save_table(
        "failure_resilience",
        render_table(
            ["failed workers", "elapsed s", "vs healthy", "survivors"],
            rows,
            title="Resilience: face-scene offline on 96 coprocessors with mid-run failures",
        ),
    )

    # Monotone degradation; the run always completes.
    times = [results[k] for k in FAILURE_COUNTS]
    assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))
    # Even after losing half the machine, within ~2.5x of healthy
    # (survivor capacity bound: 96/48 = 2x, plus retry timeouts).
    assert results[48] < base * 2.6
