"""Resilience study — elapsed time vs mid-run coprocessor failures.

Quantifies the operational benefit of the pull-scheduled, retrying
master-worker design: losing workers mid-run degrades elapsed time in
wave-quantized steps but never loses voxels.  (The real protocol's
behaviour under failure is tested in
``tests/parallel/test_fault_tolerance.py``; this is the 96-node-scale
projection.)
"""

import pytest

from repro.bench import render_table
from repro.cluster import (
    ClusterConfig,
    FoldSpec,
    TaskSpec,
    Workload,
    offline_workload,
    simulate_with_failures,
)
from repro.data import FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.task_model import offline_task_seconds

FAILURE_COUNTS = [0, 1, 4, 16, 48]
#: Column tiles per row panel in the tile-granularity variant.
TILE_SPLIT = 4


def _workload():
    t = offline_task_seconds(FACE_SCENE, PHI_5110P, 120)
    return offline_workload(FACE_SCENE, t, 120)


def _elapsed(n_failures: int) -> float:
    workload = _workload()
    failures = {k: 10.0 + k for k in range(n_failures)}
    return simulate_with_failures(
        workload, ClusterConfig(n_workers=96), failures
    ).elapsed_seconds


@pytest.mark.parametrize("n_failures", [0, 4])
def test_failure_simulation(benchmark, n_failures):
    elapsed = benchmark(_elapsed, n_failures)
    assert elapsed > 0


def test_failure_sweep(benchmark, save_table):
    results = benchmark(lambda: {k: _elapsed(k) for k in FAILURE_COUNTS})

    base = results[0]
    rows = [
        [str(k), f"{results[k]:.0f}", f"{results[k] / base:.2f}x", str(96 - k)]
        for k in FAILURE_COUNTS
    ]
    save_table(
        "failure_resilience",
        render_table(
            ["failed workers", "elapsed s", "vs healthy", "survivors"],
            rows,
            title="Resilience: face-scene offline on 96 coprocessors with mid-run failures",
        ),
    )

    # Monotone degradation; the run always completes.
    times = [results[k] for k in FAILURE_COUNTS]
    assert all(a <= b + 1e-9 for a, b in zip(times, times[1:]))
    # Even after losing half the machine, within ~2.5x of healthy
    # (survivor capacity bound: 96/48 = 2x, plus retry timeouts).
    assert results[48] < base * 2.6


def _tiled_workload() -> Workload:
    """The same offline work carved at 2-D tile granularity.

    Every 120-voxel row-panel task splits into ``TILE_SPLIT`` column
    tiles of 1/TILE_SPLIT the compute and result payload — the carve
    :mod:`repro.parallel.tiled` actually dispatches.  More handouts,
    but a smaller re-execution quantum when a worker dies mid-task.
    """
    base = _workload()
    folds = []
    for fold in base.folds:
        tasks = []
        for t in fold.tasks:
            tasks.extend(
                TaskSpec(
                    t.compute_seconds / TILE_SPLIT,
                    task_bytes=t.task_bytes,
                    result_bytes=max(t.result_bytes // TILE_SPLIT, 1),
                )
                for _ in range(TILE_SPLIT)
            )
        folds.append(
            FoldSpec(
                tasks=tuple(tasks),
                serial_seconds=fold.serial_seconds,
                label=f"{fold.label}-tiled",
            )
        )
    return Workload(
        name=f"{base.name}-tiled",
        dataset_bytes=base.dataset_bytes,
        folds=tuple(folds),
    )


def test_tile_granularity_shrinks_failure_cost(save_table):
    """Satellite: tile-granularity retry loses at most one tile.

    A worker killed mid-task forfeits its in-flight quantum; at 2-D
    tile granularity that quantum is ``1/TILE_SPLIT`` of a row-panel
    task, so the recovery overhead over a healthy run shrinks while
    healthy elapsed stays within the master-handout noise.
    """
    config = ClusterConfig(n_workers=96)
    failures = {0: 10.0, 1: 25.0, 2: 40.0, 3: 55.0}

    panel_healthy = simulate_with_failures(_workload(), config, {})
    panel_failed = simulate_with_failures(_workload(), config, failures)
    tile_healthy = simulate_with_failures(_tiled_workload(), config, {})
    tile_failed = simulate_with_failures(_tiled_workload(), config, failures)

    panel_cost = panel_failed.elapsed_seconds - panel_healthy.elapsed_seconds
    tile_cost = tile_failed.elapsed_seconds - tile_healthy.elapsed_seconds

    rows = [
        [
            "row panel",
            f"{panel_healthy.elapsed_seconds:.1f}",
            f"{panel_failed.elapsed_seconds:.1f}",
            f"{panel_cost:.1f}",
        ],
        [
            f"2-D tile (1/{TILE_SPLIT})",
            f"{tile_healthy.elapsed_seconds:.1f}",
            f"{tile_failed.elapsed_seconds:.1f}",
            f"{tile_cost:.1f}",
        ],
    ]
    save_table(
        "failure_granularity",
        render_table(
            ["task granularity", "healthy s", "4 failures s", "recovery cost s"],
            rows,
            title="Recovery cost vs task granularity (96 workers, 4 mid-run deaths)",
        ),
    )

    # Both carves finish every voxel; the finer carve recovers cheaper.
    assert tile_cost <= panel_cost + 1e-9
    # Finer handouts must not blow up the healthy run (master overhead).
    assert tile_healthy.elapsed_seconds <= panel_healthy.elapsed_seconds * 1.15
