"""Table 3 — offline analysis elapsed time vs coprocessor count.

Per-task times come from the kernel performance models (optimized
variant); the cluster simulator then schedules the full nested LOSO
workload on 1..96 coprocessors.
"""

import pytest

from repro.bench import paperdata, render_table, within_factor
from repro.cluster import ClusterConfig, offline_workload, simulate
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.task_model import offline_task_seconds

TASK_VOXELS = {"face-scene": 120, "attention": 60}
SPECS = {"face-scene": FACE_SCENE, "attention": ATTENTION}


@pytest.mark.parametrize("name", ["face-scene", "attention"])
def test_table3_offline_scaling(name, benchmark, save_table):
    spec = SPECS[name]
    t_task = offline_task_seconds(spec, PHI_5110P, TASK_VOXELS[name])
    workload = offline_workload(spec, t_task, TASK_VOXELS[name])

    def run_all():
        return {
            n: simulate(workload, ClusterConfig(n_workers=n)).elapsed_seconds
            for n in paperdata.NODE_COUNTS
        }

    elapsed = benchmark(run_all)
    paper = paperdata.TABLE3_OFFLINE_SECONDS[name]

    rows = [
        [str(n), f"{elapsed[n]:.0f}", f"{paper[n]}", f"{elapsed[n] / paper[n]:.2f}x"]
        for n in paperdata.NODE_COUNTS
    ]
    save_table(
        f"table3_offline_scaling_{name}",
        render_table(
            ["#coprocessors", "simulated s", "paper s", "ratio"],
            rows,
            title=f"Table 3 ({name}): offline analysis elapsed time",
        ),
    )

    # Shape claims: every point within 1.5x of the paper; monotone
    # decreasing; near-linear region preserved.
    for n in paperdata.NODE_COUNTS:
        assert within_factor(elapsed[n], paper[n], 1.5), f"{name}@{n}"
    times = [elapsed[n] for n in paperdata.NODE_COUNTS]
    assert all(a > b for a, b in zip(times, times[1:]))
