"""Table 1 — baseline instrumentation on the coprocessor.

Regenerates the three instrumented rows (matrix multiplication,
normalization, LibSVM) for a 120-voxel face-scene task: elapsed time,
memory references, L2 misses, vectorization intensity.
"""

from repro.bench import paperdata, render_table, within_factor
from repro.data import FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.vtune import baseline_report


def test_table1_baseline_instrumentation(benchmark, save_table):
    rows = benchmark(baseline_report, FACE_SCENE, 120, PHI_5110P)
    by_name = {
        "matmul": rows[0],
        "normalization": rows[1],
        "libsvm": rows[2],
    }

    table_rows = []
    for key, row in by_name.items():
        p_time, p_refs, p_miss, p_vi = paperdata.TABLE1_BASELINE[key]
        table_rows.append(
            [
                key,
                f"{row.time_ms:.0f} / {p_time:.0f}",
                f"{row.mem_refs / 1e9:.1f} / {p_refs / 1e9:.1f}",
                f"{row.l2_misses / 1e6:.0f} / {p_miss / 1e6:.0f}",
                f"{row.vector_intensity:.1f} / {p_vi}",
            ]
        )
        assert within_factor(row.time_ms, p_time, 1.25), key
        assert within_factor(row.mem_refs, p_refs, 1.2), key
        assert within_factor(row.vector_intensity, p_vi, 1.05), key

    # L2 misses: matmul and normalization are sweep-derived (tight);
    # the paper's LibSVM 7M figure is a kernel-resident lower bound.
    assert within_factor(by_name["matmul"].l2_misses, 709e6, 1.2)
    assert within_factor(by_name["normalization"].l2_misses, 179e6, 1.2)
    assert within_factor(by_name["libsvm"].l2_misses, 7e6, 2.0)

    save_table(
        "table1_baseline_instrumentation",
        render_table(
            ["kernel", "time ms (ours/paper)", "refs G", "L2 miss M", "VI"],
            table_rows,
            title="Table 1: baseline instrumentation (face-scene, 120-voxel task, Phi 5110P)",
        ),
    )
