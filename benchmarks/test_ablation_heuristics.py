"""Ablation — SMO working-set heuristics (DESIGN.md: PhiSVM's adaptive
choice).

Measures real solver iterations and wall time per heuristic across a
batch of FCMA-shaped problems (few hundred samples, noisy labels), the
empirical basis for the SVM model's iteration factors.
"""

import numpy as np
import pytest

from repro.bench import render_table
from repro.svm import (
    AdaptiveSelector,
    FirstOrderSelector,
    SecondOrderSelector,
    linear_kernel,
    solve_smo,
)

SELECTORS = {
    "first-order": FirstOrderSelector,
    "second-order": SecondOrderSelector,
    "adaptive": AdaptiveSelector,
}


def make_problems(n_problems=6, m=120, d=60):
    problems = []
    for seed in range(n_problems):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, d)).astype(np.float32)
        w = rng.standard_normal(d)
        y = np.where(x @ w + 0.8 * rng.standard_normal(m) > 0, 1, -1)
        problems.append((linear_kernel(x.astype(np.float64)), y))
    return problems


@pytest.fixture(scope="module")
def problems():
    return make_problems()


@pytest.mark.parametrize("name", list(SELECTORS))
def test_heuristic_solve_batch(benchmark, problems, name):
    factory = SELECTORS[name]

    def solve_all():
        return [
            solve_smo(k, y, selector=factory(), tol=1e-4) for k, y in problems
        ]

    results = benchmark(solve_all)
    assert all(r.converged for r in results)


def test_heuristic_iteration_comparison(benchmark, problems, save_table):
    def iteration_counts():
        out = {}
        for name, factory in SELECTORS.items():
            iters = [
                solve_smo(k, y, selector=factory(), tol=1e-4).iterations
                for k, y in problems
            ]
            out[name] = float(np.mean(iters))
        return out

    means = benchmark(iteration_counts)
    rows = [[name, f"{mean:.0f}"] for name, mean in means.items()]
    save_table(
        "ablation_heuristics",
        render_table(
            ["heuristic", "mean SMO iterations"],
            rows,
            title="Ablation: working-set selection heuristics (6 FCMA-shaped problems)",
        ),
    )
    # Fan et al.'s result, reproduced: second-order needs fewer
    # iterations than first-order; the adaptive policy lands between.
    assert means["second-order"] < means["first-order"]
    assert means["adaptive"] <= means["first-order"] * 1.1
