"""Table 7 — retaining L2 contents across stages (merged vs separated).

The table covers the combined stage-1 + stage-2 work: the merged
pipeline normalizes tiles while cache-resident, cutting references
~2.3x, misses ~2.8x, and elapsed time ~24%.
"""

from repro.bench import paperdata, render_table, within_factor
from repro.data import FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.matmul_model import model_correlation_matmul
from repro.perf.norm_model import model_normalization


def _variants():
    corr = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
    out = {}
    for variant in ("merged", "separated"):
        norm = model_normalization(FACE_SCENE, 120, PHI_5110P, variant)
        out[variant] = (
            corr.milliseconds + norm.milliseconds,
            corr.counters + norm.counters,
        )
    return out


def test_table7_merged_vs_separated(benchmark, save_table):
    variants = benchmark(_variants)

    rows = []
    for variant, (time_ms, counters) in variants.items():
        p_time, p_refs, p_miss = paperdata.TABLE7_MERGING[variant]
        rows.append(
            [
                variant,
                f"{time_ms:.0f} / {p_time:.0f}",
                f"{counters.mem_refs / 1e9:.2f} / {p_refs / 1e9:.2f}",
                f"{counters.l2_misses / 1e6:.1f} / {p_miss / 1e6:.1f}",
            ]
        )
        assert within_factor(time_ms, p_time, 1.2), variant
        assert within_factor(counters.mem_refs, p_refs, 1.15), variant
        assert within_factor(counters.l2_misses, p_miss, 1.2), variant

    save_table(
        "table7_merged_vs_separated",
        render_table(
            ["method", "time ms (ours/paper)", "refs G", "L2 miss M"],
            rows,
            title="Table 7: merged vs separated stages (stage 1 + 2)",
        ),
    )

    t_merged, c_merged = variants["merged"]
    t_sep, c_sep = variants["separated"]
    # The paper's 24% elapsed-time reduction:
    reduction = 1.0 - t_merged / t_sep
    assert 0.12 < reduction < 0.4
    assert c_merged.mem_refs < c_sep.mem_refs / 1.8
    assert c_merged.l2_misses < c_sep.l2_misses / 2.0
