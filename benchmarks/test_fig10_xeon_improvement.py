"""Fig. 10 — the optimizations on a general-purpose Xeon E5-2670.

Paper: 1.4x (face-scene) and 2.5x (attention) — much smaller than on
the coprocessor because the host's big LLC, narrower vectors, and lack
of thread starvation shrink every one of the three gaps.
"""

from repro.bench import paperdata, render_table, within_factor
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import E5_2670, PHI_5110P
from repro.perf.task_model import model_task

SPECS = {"face-scene": FACE_SCENE, "attention": ATTENTION}


def _speedups(hw):
    out = {}
    for name, spec in SPECS.items():
        base = model_task(spec, hw, "baseline")
        opt = model_task(spec, hw, "optimized")
        out[name] = base.seconds_per_voxel / opt.seconds_per_voxel
    return out


def test_fig10_xeon_improvement(benchmark, save_table):
    xeon = benchmark(_speedups, E5_2670)
    phi = _speedups(PHI_5110P)

    rows = []
    for name in SPECS:
        paper = paperdata.FIG10_XEON_SPEEDUP[name]
        rows.append(
            [name, f"{xeon[name]:.2f}x", f"{paper}x", f"{phi[name]:.2f}x"]
        )
        assert within_factor(xeon[name], paper, 1.45), name

    save_table(
        "fig10_xeon_improvement",
        render_table(
            ["dataset", "Xeon speedup (ours)", "Xeon speedup (paper)", "Phi speedup (ours)"],
            rows,
            title="Fig 10: optimized over baseline on the E5-2670",
        ),
    )

    # The central comparison: gains on the host are far smaller than on
    # the coprocessor, for both datasets.
    for name in SPECS:
        assert phi[name] > 2 * xeon[name]
    # Both hosts still benefit (speedup > 1).
    assert min(xeon.values()) > 1.0
