"""Fig. 8 — speedup curves of the offline analysis.

Derived from the same simulations as Table 3: speedup relative to one
coprocessor, for both datasets.  Headline: 59.8x (face-scene) / 73.5x
(attention) at 96 coprocessors, attention scaling better because its
tasks are larger relative to the fixed overheads.
"""

import pytest

from repro.bench import paperdata, render_table, within_factor
from repro.cluster import offline_workload, speedup_curve
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.task_model import offline_task_seconds

TASK_VOXELS = {"face-scene": 120, "attention": 60}
SPECS = {"face-scene": FACE_SCENE, "attention": ATTENTION}


def _curve(name):
    spec = SPECS[name]
    t_task = offline_task_seconds(spec, PHI_5110P, TASK_VOXELS[name])
    workload = offline_workload(spec, t_task, TASK_VOXELS[name])
    return speedup_curve(workload, paperdata.NODE_COUNTS)


def test_fig8_speedup(benchmark, save_table):
    curves = benchmark(lambda: {name: _curve(name) for name in SPECS})

    rows = []
    for n in paperdata.NODE_COUNTS:
        rows.append(
            [
                str(n),
                f"{curves['face-scene'][n][1]:.1f}x",
                f"{curves['attention'][n][1]:.1f}x",
            ]
        )
    save_table(
        "fig8_speedup",
        render_table(
            ["#coprocessors", "face-scene speedup", "attention speedup"],
            rows,
            title="Fig 8: speedup of the optimized implementation",
        ),
    )

    fs96 = curves["face-scene"][96][1]
    att96 = curves["attention"][96][1]
    assert within_factor(fs96, paperdata.FIG8_SPEEDUP_96["face-scene"], 1.25)
    assert within_factor(att96, paperdata.FIG8_SPEEDUP_96["attention"], 1.25)
    # Attention scales better (its larger tasks amortize overheads).
    assert att96 > fs96
    # Near-linear through 32 nodes for both datasets.
    for name in SPECS:
        assert curves[name][32][1] > 32 * 0.8
