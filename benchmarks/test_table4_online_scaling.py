"""Table 4 — online voxel-selection time vs coprocessor count.

The online workload is one fold of single-subject voxel selection; the
interesting shape is the saturation at high node counts, where the
one-time data distribution and per-task handouts dominate (the paper's
~2.2-2.5 s floor at 96 coprocessors).
"""

import pytest

from repro.bench import paperdata, render_table, within_factor
from repro.cluster import ClusterConfig, online_workload, simulate
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.task_model import online_task_seconds

TASK_VOXELS = {"face-scene": 120, "attention": 60}
SPECS = {"face-scene": FACE_SCENE, "attention": ATTENTION}


@pytest.mark.parametrize("name", ["face-scene", "attention"])
def test_table4_online_scaling(name, benchmark, save_table):
    spec = SPECS[name]
    t_task = online_task_seconds(spec, PHI_5110P, TASK_VOXELS[name])
    workload = online_workload(spec, t_task, TASK_VOXELS[name])

    def run_all():
        return {
            n: simulate(workload, ClusterConfig(n_workers=n)).elapsed_seconds
            for n in paperdata.NODE_COUNTS
        }

    elapsed = benchmark(run_all)
    paper = paperdata.TABLE4_ONLINE_SECONDS[name]

    rows = [
        [
            str(n),
            f"{elapsed[n]:.2f}",
            f"{paper.get(n, float('nan')):.2f}" if n in paper else "-",
        ]
        for n in paperdata.NODE_COUNTS
    ]
    save_table(
        f"table4_online_scaling_{name}",
        render_table(
            ["#coprocessors", "simulated s", "paper s"],
            rows,
            title=f"Table 4 ({name}): online voxel-selection elapsed time",
        ),
    )

    # Endpoints within 2x (the online cost composition is the least
    # documented part of the paper; the saturation shape is the claim).
    assert within_factor(elapsed[1], paper[1], 2.0)
    assert within_factor(elapsed[96], paper[96], 2.5)
    # Saturation: 96 nodes nowhere near 96x faster than 1 node online.
    assert elapsed[1] / elapsed[96] < 20
    # Still fast enough for closed-loop feedback (paper: "within 3 s").
    assert elapsed[96] < 4.0
