"""Ablation — master task granularity (the paper's 120-voxel choice).

Tasks must be small enough that 96 workers load-balance and per-task
memory fits the device, but large enough that the serialized master
(handouts, results) doesn't become the bottleneck.  This sweep shows
the 96-coprocessor elapsed time across task sizes and checks the paper's
choice sits in the flat optimum.
"""

import math

import pytest

from repro.bench import render_table
from repro.cluster import ClusterConfig, offline_workload, simulate
from repro.data import FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.task_model import offline_task_seconds

TASK_SIZES = [15, 30, 60, 120, 240, 480, 960]


def _elapsed_for(task_voxels: int, n_workers: int = 96) -> float:
    t = offline_task_seconds(FACE_SCENE, PHI_5110P, task_voxels)
    workload = offline_workload(FACE_SCENE, t, task_voxels)
    return simulate(
        workload, ClusterConfig(n_workers=n_workers, heterogeneity=0.05, seed=3)
    ).elapsed_seconds


@pytest.mark.parametrize("task_voxels", [30, 120, 480])
def test_granularity_simulation(benchmark, task_voxels):
    elapsed = benchmark(_elapsed_for, task_voxels)
    assert elapsed > 0


def test_granularity_sweep(benchmark, save_table):
    results = benchmark(lambda: {tv: _elapsed_for(tv) for tv in TASK_SIZES})

    rows = [
        [
            str(tv),
            str(math.ceil(FACE_SCENE.n_voxels / tv)),
            f"{results[tv]:.0f}",
        ]
        for tv in TASK_SIZES
    ]
    save_table(
        "ablation_task_granularity",
        render_table(
            ["task voxels", "tasks/fold", "96-worker elapsed s"],
            rows,
            title="Ablation: task granularity (face-scene offline, 96 coprocessors)",
        ),
    )

    best = min(results.values())
    # The paper's 120-voxel tasks sit within 15% of the sweep optimum.
    assert results[120] <= best * 1.15
    # Coarse tasks visibly lose to last-wave imbalance (36 tasks on 96
    # workers leaves 60 idle); the fine-grained end stays flat because
    # the 1 ms master handout overlaps compute until well below 15
    # voxels per task.
    assert results[960] > 1.5 * results[120]
    assert results[480] > results[120]
