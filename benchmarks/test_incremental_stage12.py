"""Benchmark: incremental per-TR streaming vs full stage-1/2 recompute.

The streaming engine (:class:`~repro.core.incremental.IncrementalEmitter`)
folds each TR into running sums — an ``O(V*N)`` update whose cost does
not grow with the retained window — while the naive alternative a
pre-refactor feedback loop paid was re-running batch stage 1/2 over the
*whole* window on every refresh.  This bench streams an rtfmri-scale
session (V=20 selected voxels, N=2000 brain, T=12 TRs/epoch, 16-epoch
sliding window), interleaves incremental-step and full-recompute shots
TR by TR so both sample the same host noise, asserts the committed
>= 5x median-step speedup floor, and — timing on or off — checks the
tentpole bitwise claim: the streamed window equals the batch recompute
bit for bit after every epoch.

Recorded metrics that must stay machine-independent: ``trs_streamed``,
``epochs_completed``, ``epochs_evicted``, ``window_epochs``.  Timing
metrics (``*_seconds``, ``speedup``) only compare within one machine
fingerprint.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.correlation import (
    correlate_normalize_batched,
    normalize_epoch_data,
)
from repro.core.incremental import IncrementalEmitter

#: Committed floor: incremental median step must beat the full
#: window recompute by this (the ISSUE-7 acceptance criterion).
SPEEDUP_FLOOR = 5.0

BENCH_JSON = Path(__file__).parent.parent / "BENCH_incremental.json"

#: rtfmri-scale streaming geometry: a trained classifier's top-k voxels
#: against a small online brain, scanner epochs of 12 TRs, and a
#: 16-epoch sliding window (2 x the default training prefix).
V, N, T, WINDOW = 20, 2_000, 12, 16

#: Warm-up epochs streamed before timing starts (fills the window so
#: the full-recompute comparator pays its steady-state cost).
WARMUP_EPOCHS = WINDOW

#: Epochs streamed during the timed phase.
TIMED_EPOCHS = 3


@pytest.fixture()
def timing_enabled(request):
    """False under --benchmark-disable (the CI equivalence smoke)."""
    return not request.config.getoption("benchmark_disable", False)


def _epoch(rng):
    return rng.standard_normal((N, T)).astype(np.float32)


def _batch_recompute(retained, assigned):
    """The naive per-TR refresh: batch stage 1/2 over the window."""
    z = normalize_epoch_data(np.stack(retained))
    out, _ = correlate_normalize_batched(z, assigned, len(retained))
    return out


class TestIncrementalStage12:
    def test_incremental_beats_full_recompute_5x(
        self, timing_enabled, save_table, record_benchmark
    ):
        rng = np.random.default_rng(2026)
        assigned = np.arange(V, dtype=np.int64)
        emitter = IncrementalEmitter(assigned, N, window_epochs=WINDOW)
        partial_buf = np.empty((V, N), dtype=np.float32)
        retained: list[np.ndarray] = []

        def stream_epoch(window, step_shots=None, full_shots=None):
            for t in range(T):
                t0 = time.perf_counter()
                emitter.push_tr(window[:, t])
                emitter.partial_correlations(out=partial_buf)
                if step_shots is not None:
                    step_shots.append(time.perf_counter() - t0)
                if full_shots is not None:
                    # Interleaved comparator shot: same TR, same noise
                    # window, the full batch recompute of the retained
                    # epochs the naive loop would redo here.
                    t0 = time.perf_counter()
                    _batch_recompute(retained, assigned)
                    full_shots.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            emitter.complete_epoch()
            boundary = time.perf_counter() - t0
            retained.append(window)
            if len(retained) > WINDOW:
                retained.pop(0)
            return boundary

        for _ in range(WARMUP_EPOCHS):
            stream_epoch(_epoch(rng))

        # Bitwise claim at steady state: the streamed sliding window is
        # the batch recompute, bit for bit (checked timing on or off).
        np.testing.assert_array_equal(
            emitter.normalized(), _batch_recompute(retained, assigned)
        )
        assert emitter.window_size == WINDOW
        assert emitter.epochs_evicted == WARMUP_EPOCHS - WINDOW

        step_shots: list[float] = []
        full_shots: list[float] = []
        boundary_shots: list[float] = []
        for _ in range(TIMED_EPOCHS):
            boundary_shots.append(
                stream_epoch(_epoch(rng), step_shots, full_shots)
            )
        np.testing.assert_array_equal(
            emitter.normalized(), _batch_recompute(retained, assigned)
        )

        if not timing_enabled:
            # --benchmark-disable (CI smoke): correctness checked above.
            return

        median_step = float(np.median(step_shots))
        p99_step = float(np.percentile(step_shots, 99.0))
        median_full = float(np.median(full_shots))
        median_boundary = float(np.median(boundary_shots))
        speedup = median_full / median_step
        assert speedup >= SPEEDUP_FLOOR, (
            f"incremental step only {speedup:.2f}x over full recompute "
            f"(floor {SPEEDUP_FLOOR}x)"
        )

        record = {
            "benchmark": "incremental per-TR step vs full stage-1/2 recompute",
            "preset": f"rtfmri stream (V={V}, N={N}, T={T}, window={WINDOW})",
            "median_step_seconds": round(median_step, 6),
            "p99_step_seconds": round(p99_step, 6),
            "full_recompute_seconds": round(median_full, 6),
            "epoch_boundary_seconds": round(median_boundary, 6),
            "speedup": round(speedup, 2),
            "floor": str(SPEEDUP_FLOOR),
            "trs_streamed": float(emitter.trs_seen),
            "epochs_completed": float(emitter.epochs_completed),
            "epochs_evicted": float(emitter.epochs_evicted),
            "window_epochs": float(WINDOW),
        }
        record_benchmark("bench_incremental_stage12", record, BENCH_JSON)
        save_table(
            "incremental_stage12",
            f"incremental stage 1/2: {speedup:.1f}x over full recompute "
            f"({median_full * 1e3:.2f} ms -> {median_step * 1e3:.3f} ms "
            f"median step, p99 {p99_step * 1e3:.3f} ms, boundary "
            f"{median_boundary * 1e3:.2f} ms), floor {SPEEDUP_FLOOR}x "
            f"[also in {BENCH_JSON.name}]",
        )
