"""Unified execution core: stage graph, RunContext, pluggable executors.

This package is the single seam every FCMA entry point runs through:

* :mod:`repro.exec.partition` — the one task-partitioning helper;
* :mod:`repro.exec.context` — :class:`RunContext`, the shared carrier of
  config, seeds, hardware model, and per-stage instrumentation;
* :mod:`repro.exec.stage_graph` — the pipeline as explicit stage nodes
  with typed inputs/outputs;
* :mod:`repro.exec.registry` — named SVM backends and pipeline variants;
* :mod:`repro.exec.executors` — serial, process-pool, and master-worker
  executors producing bitwise-identical results from one task stream.

Exports resolve lazily (PEP 562): ``repro.parallel`` imports
``repro.exec.partition`` while ``repro.exec.executors`` imports
``repro.parallel`` back, and laziness keeps that cycle unwound.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .context import RunContext, StageStats, StageTimer
    from .executors import (
        EXECUTOR_NAMES,
        Executor,
        MasterWorkerExecutor,
        ProcessPoolExecutor,
        SerialExecutor,
        make_executor,
        predicted_schedule,
    )
    from .partition import (
        auto_chunksize,
        n_tasks,
        partition_rows_by_nnz,
        partition_tasks,
    )
    from .registry import (
        available_backends,
        available_variants,
        backend_factory,
        create_backend,
        graph_builder,
        register_backend,
        register_variant,
    )
    from .stage_graph import (
        Stage,
        StageGraph,
        StageGraphError,
        baseline_graph,
        build_graph,
        execute_task,
        optimized_batched_graph,
        optimized_graph,
        sparse_batched_graph,
    )

_EXPORTS = {
    "RunContext": "context",
    "StageStats": "context",
    "StageTimer": "context",
    "EXECUTOR_NAMES": "executors",
    "Executor": "executors",
    "MasterWorkerExecutor": "executors",
    "ProcessPoolExecutor": "executors",
    "SerialExecutor": "executors",
    "make_executor": "executors",
    "predicted_schedule": "executors",
    "auto_chunksize": "partition",
    "n_tasks": "partition",
    "partition_rows_by_nnz": "partition",
    "partition_tasks": "partition",
    "available_backends": "registry",
    "available_variants": "registry",
    "backend_factory": "registry",
    "create_backend": "registry",
    "graph_builder": "registry",
    "register_backend": "registry",
    "register_variant": "registry",
    "Stage": "stage_graph",
    "StageGraph": "stage_graph",
    "StageGraphError": "stage_graph",
    "baseline_graph": "stage_graph",
    "build_graph": "stage_graph",
    "execute_task": "stage_graph",
    "optimized_batched_graph": "stage_graph",
    "optimized_graph": "stage_graph",
    "sparse_batched_graph": "stage_graph",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))
