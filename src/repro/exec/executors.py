"""Pluggable executors: one task stream, three ways to run it.

Every executor consumes the same inputs — a dataset, a
:class:`~repro.exec.context.RunContext`, and the task stream produced by
:func:`repro.exec.partition.partition_tasks` — and returns the same
sorted :class:`~repro.core.results.VoxelScores`, bitwise-identical
across backends for a fixed seed (pinned by the cross-executor
equivalence test):

* :class:`SerialExecutor` — in-process reference loop;
* :class:`ProcessPoolExecutor` — the zero-copy shared-memory fan-out
  over a local process pool (absorbed from ``parallel/executor.py``);
* :class:`MasterWorkerExecutor` — the paper's pull-based master-worker
  protocol over thread ranks, which additionally replays its measured
  task stream through the discrete-event cluster simulator for a
  predicted-vs-measured schedule comparison.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor as _StdProcessPool
from typing import Any, Protocol, runtime_checkable

import numpy as np
from numpy.typing import NDArray

from ..cluster.simulator import ClusterConfig, SimulationResult, simulate
from ..cluster.workload import FoldSpec, TaskSpec, Workload
from ..core.pipeline import FCMAConfig, preprocess_dataset
from ..core.results import VoxelScores
from ..data.dataset import FMRIDataset
from ..obs.live.runtime import current_live
from ..parallel.comm import Comm, run_ranks
from ..parallel.executor import (
    SharedDatasetHandle,
    attach_shared_dataset,
    share_dataset,
)
from .context import RunContext
from .partition import auto_chunksize, partition_tasks
from .stage_graph import execute_task

__all__ = [
    "Executor",
    "MasterWorkerExecutor",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "EXECUTOR_NAMES",
    "make_executor",
    "predicted_schedule",
]


@runtime_checkable
class Executor(Protocol):
    """Anything that can run the FCMA task stream to completion."""

    #: Stable name (CLI ``--executor`` value, telemetry key).
    name: str

    def run(
        self,
        dataset: FMRIDataset,
        ctx: RunContext,
        voxels: NDArray[Any] | None = None,
    ) -> VoxelScores:
        """Run voxel selection; telemetry accumulates into ``ctx``."""
        ...


def _task_stream(
    dataset: FMRIDataset, ctx: RunContext, voxels: NDArray[Any] | None
) -> list[NDArray[np.int64]]:
    return partition_tasks(dataset.n_voxels, ctx.config.task_voxels, voxels)


def _finish(
    ctx: RunContext, executor: "Executor", n_tasks: int, elapsed: float
) -> None:
    ctx.metadata["executor"] = executor.name
    ctx.metadata["n_tasks"] = n_tasks
    ctx.metadata["measured_elapsed_s"] = elapsed


class SerialExecutor:
    """The single-process reference: tasks in order, one at a time."""

    name = "serial"

    def run(
        self,
        dataset: FMRIDataset,
        ctx: RunContext,
        voxels: NDArray[Any] | None = None,
    ) -> VoxelScores:
        with ctx.run_span(self.name, dataset):
            t0 = time.perf_counter()
            tasks = _task_stream(dataset, ctx, voxels)
            live = current_live()
            if live is not None:
                # Completions tick through the tracer's close listener
                # (every task span closes on ctx.tracer in-process), so
                # only the denominator is declared here.
                live.set_total("tasks", len(tasks))
            parts = [execute_task(dataset, task, ctx) for task in tasks]
            scores = VoxelScores.concatenate(parts).sorted_by_accuracy()
            _finish(ctx, self, len(tasks), time.perf_counter() - t0)
        return scores


# -- process pool ---------------------------------------------------------

# Worker-process globals installed by the pool initializer; module-level
# so the per-task pickle payload stays tiny.  The shared-memory segment
# is held to keep the dataset's zero-copy views backed for the worker's
# lifetime.
_WORKER_DATASET: FMRIDataset | None = None
_WORKER_CONFIG: FCMAConfig | None = None
_WORKER_SHM: Any = None


def _init_worker(handle: SharedDatasetHandle, config: FCMAConfig) -> None:
    global _WORKER_DATASET, _WORKER_CONFIG, _WORKER_SHM
    _WORKER_DATASET, _WORKER_SHM = attach_shared_dataset(handle)
    _WORKER_CONFIG = config
    # Warm the task-invariant preprocessing (grouped epochs + normalized
    # windows) once per worker instead of lazily inside the first task.
    preprocess_dataset(_WORKER_DATASET)


def _run_assigned_timed(
    assigned: NDArray[np.int64],
) -> tuple[VoxelScores, dict[str, Any]]:
    """Worker body: run one task, return scores + telemetry snapshot."""
    assert _WORKER_DATASET is not None and _WORKER_CONFIG is not None
    ctx = RunContext(_WORKER_CONFIG)
    scores = execute_task(_WORKER_DATASET, assigned, ctx)
    return scores, ctx.export()


class ProcessPoolExecutor:
    """Zero-copy shared-memory fan-out over a local process pool.

    The BOLD data is packed into one ``SharedMemory`` segment and
    workers attach views, so the per-pool pickle payload is metadata
    only; per-task messages carry voxel indices, scores, and a tiny
    telemetry snapshot that merges into the caller's context (stage
    seconds sum across workers, i.e. they report aggregate CPU time,
    not wall time).

    Falls back to the serial path for one worker (or one task) so
    worker-count sweeps stay uniform.
    """

    name = "pool"

    def __init__(self, n_workers: int | None = None):
        if n_workers is not None and n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = n_workers

    def run(
        self,
        dataset: FMRIDataset,
        ctx: RunContext,
        voxels: NDArray[Any] | None = None,
    ) -> VoxelScores:
        with ctx.run_span(self.name, dataset):
            t0 = time.perf_counter()
            n_workers = self.n_workers or os.cpu_count() or 1
            tasks = _task_stream(dataset, ctx, voxels)
            if n_workers == 1 or len(tasks) == 1:
                scores = SerialExecutor().run(dataset, ctx, voxels)
                ctx.metadata["executor"] = self.name
                ctx.metadata["n_workers"] = 1
                return scores
            workers = min(n_workers, len(tasks))
            config = ctx.config
            chunksize = (
                config.chunksize
                if config.chunksize is not None
                else auto_chunksize(len(tasks), workers)
            )
            live = current_live()
            if live is not None:
                live.set_total("tasks", len(tasks))
                live.set_gauge("n_workers", float(workers))
            shm, handle = share_dataset(dataset)
            try:
                with _StdProcessPool(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(handle, config),
                ) as pool:
                    # pool.map yields results lazily *in submission
                    # order* (results
                    # stay bitwise-identical to collecting the full
                    # list), which lets the parent tick live progress as
                    # each task's result arrives — worker-process task
                    # spans close out of reach of this process's tracer
                    # listener.
                    results: list[tuple[VoxelScores, dict[str, Any]]] = []
                    for item in pool.map(
                        _run_assigned_timed, tasks, chunksize=chunksize
                    ):
                        results.append(item)
                        if live is not None:
                            live.inc("tasks")
            finally:
                shm.close()
                shm.unlink()
            # Merging inside the run span re-roots every worker's task
            # spans under it, so the final trace is one tree.
            for _, payload in results:
                ctx.merge_export(payload)
            scores = VoxelScores.concatenate(
                [scores for scores, _ in results]
            ).sorted_by_accuracy()
            _finish(ctx, self, len(tasks), time.perf_counter() - t0)
            ctx.metadata["n_workers"] = workers
        return scores


# -- master-worker --------------------------------------------------------


#: Transport / partition names ``MasterWorkerExecutor`` accepts.
TRANSPORT_NAMES = ("thread", "tcp")
PARTITION_NAMES = ("rows", "tiles")


class MasterWorkerExecutor:
    """The paper's pull-based protocol over a pluggable transport.

    Wraps :mod:`repro.parallel.master_worker` (1-D row partitioning)
    and :mod:`repro.parallel.tiled` (2-D tile partitioning with
    communication/compute overlap): rank 0 serves work on demand and
    aggregates, ranks 1..n run the stage kernels.

    * ``transport="thread"`` (default) runs the ranks as in-process
      threads — the historical, bitwise-identical path.
    * ``transport="tcp"`` listens on ``host:port`` and runs the same
      protocol against real worker *processes* (spawned locally when
      ``spawn=True``, or joined externally via ``fcma worker
      --connect``), so the run spans multiple cores or hosts.

    After the run, the measured per-task stream is replayed through the
    cluster simulator (:func:`predicted_schedule`) and the predicted
    elapsed time lands in ``ctx.metadata["predicted"]`` next to the
    measured one — the predicted-vs-measured hook the perf models use.
    """

    name = "master-worker"

    def __init__(
        self,
        n_workers: int = 2,
        max_retries: int = 2,
        transport: str = "thread",
        partition: str = "rows",
        host: str = "127.0.0.1",
        port: int = 0,
        spawn: bool = True,
        tile_cols: int | None = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if transport not in TRANSPORT_NAMES:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {TRANSPORT_NAMES}"
            )
        if partition not in PARTITION_NAMES:
            raise ValueError(
                f"unknown partition {partition!r}; choose from {PARTITION_NAMES}"
            )
        if tile_cols is not None and tile_cols < 1:
            raise ValueError("tile_cols must be >= 1")
        self.n_workers = n_workers
        self.max_retries = max_retries
        self.transport = transport
        self.partition = partition
        self.host = host
        self.port = port
        self.spawn = spawn
        self.tile_cols = tile_cols

    def _timeout(self, ctx: RunContext) -> float:
        from ..parallel.comm import default_timeout

        configured = getattr(ctx.config, "comm_timeout", None)
        return default_timeout() if configured is None else float(configured)

    def _tile_stream(
        self,
        dataset: FMRIDataset,
        ctx: RunContext,
        voxels: NDArray[Any] | None,
        n_voxels: int,
    ) -> list[Any]:
        from .partition import partition_tiles, tile_cols_for

        config = ctx.config
        n_panels = len(_task_stream(dataset, ctx, voxels))
        cols = (
            self.tile_cols
            if self.tile_cols is not None
            else tile_cols_for(
                n_voxels, config.target_block, self.n_workers, n_panels
            )
        )
        ctx.metadata["tile_cols"] = cols
        return partition_tiles(n_voxels, config.task_voxels, cols, voxels)

    def run(
        self,
        dataset: FMRIDataset,
        ctx: RunContext,
        voxels: NDArray[Any] | None = None,
    ) -> VoxelScores:
        from ..parallel.master_worker import _master_loop, _worker_loop
        from ..parallel.tiled import tiled_master_loop, tiled_worker_loop

        timeout = self._timeout(ctx)
        with ctx.run_span(self.name, dataset):
            t0 = time.perf_counter()
            tasks = _task_stream(dataset, ctx, voxels)
            tiled = self.partition == "tiles"
            if tiled or self.transport == "tcp":
                # Tile geometry (and the TCP broadcast) need the
                # preprocessed shape; the per-process cache makes this
                # free for the workers that preprocess again.
                _, z = preprocess_dataset(dataset)
                n_epochs, n_voxels = z.shape[0], z.shape[1]
            tiles = (
                self._tile_stream(dataset, ctx, voxels, n_voxels)
                if tiled
                else []
            )
            n_work = len(tiles) + len(tasks) if tiled else len(tasks)
            live = current_live()
            if live is not None:
                # Declare the blocking plan's denominators up front so
                # the first snapshot already knows 0/N; the master loops
                # tick the matching counters as results arrive.
                live.set_total("tasks", len(tasks))
                if tiled:
                    live.set_total("tiles", len(tiles))
                live.set_gauge("n_workers", float(self.n_workers))

            if self.transport == "tcp":
                scores = self._run_tcp(dataset, ctx, tasks, tiles, timeout)
            else:
                # Per-rank contexts keep the hot path lock-free; merged below.
                worker_ctxs = [
                    RunContext(ctx.config) for _ in range(self.n_workers)
                ]
                # Rank 0's comm stats, surfaced after the join so the
                # counters attach to the run span (main thread), not a
                # detached counter root on the spmd thread.
                master_stats: list[Any] = []

                def spmd(comm: Comm) -> Any:
                    # The paper's master "first distributes brain data to
                    # the worker nodes": the broadcast shares the dataset
                    # reference.
                    ds = comm.bcast(dataset if comm.rank == 0 else None)
                    if comm.rank == 0:
                        if tiled:
                            result = tiled_master_loop(
                                comm,
                                tiles,
                                n_voxels,
                                n_epochs,
                                max_retries=self.max_retries,
                            )
                        else:
                            result = _master_loop(
                                comm, tasks, max_retries=self.max_retries
                            )
                        master_stats.append(comm.stats)
                        return result
                    wctx = worker_ctxs[comm.rank - 1]
                    if tiled:
                        return tiled_worker_loop(comm, ds, ctx.config, wctx)

                    def run_one(
                        d: FMRIDataset,
                        assigned: NDArray[np.int64],
                        _cfg: FCMAConfig,
                    ) -> VoxelScores:
                        return execute_task(d, assigned, wctx)

                    return _worker_loop(comm, ds, ctx.config, run=run_one)

                results = run_ranks(self.n_workers + 1, spmd, timeout=timeout)
                for wctx in worker_ctxs:
                    ctx.merge(wctx)
                for stats in master_stats:
                    ctx.increment("comm.bytes_sent", stats.bytes_sent)
                    ctx.increment("comm.bytes_recv", stats.bytes_recv)
                scores = results[0]

            assert isinstance(scores, VoxelScores)
            elapsed = time.perf_counter() - t0
            _finish(ctx, self, n_work, elapsed)
            ctx.metadata["n_workers"] = self.n_workers
            ctx.metadata["transport"] = self.transport
            ctx.metadata["partition"] = self.partition
            # The predicted-vs-measured replay runs inside the run span,
            # so the simulator's own kernel span lands in the trace.
            predicted = predicted_schedule(ctx, dataset, self.n_workers)
            ctx.metadata["predicted"] = {
                "elapsed_s": predicted.elapsed_seconds,
                "utilization": predicted.utilization,
                "n_workers": predicted.n_workers,
            }
        return scores

    def _run_tcp(
        self,
        dataset: FMRIDataset,
        ctx: RunContext,
        tasks: list[NDArray[np.int64]],
        tiles: list[Any],
        timeout: float,
    ) -> VoxelScores:
        from ..parallel.master_worker import _master_loop
        from ..parallel.tiled import collect_worker_reports, tiled_master_loop
        from ..parallel.transport import TcpListener, spawn_local_workers

        _, z = preprocess_dataset(dataset)
        n_epochs, n_voxels = z.shape[0], z.shape[1]
        listener = TcpListener(self.host, self.port)
        address = listener.address
        procs: list[Any] = []
        transport = None
        live = current_live()
        try:
            if self.spawn:
                procs = spawn_local_workers(
                    address, self.n_workers, timeout=timeout
                )
            transport = listener.accept(self.n_workers, timeout=timeout)
            if live is not None:
                # Socket-level heartbeat ages are fresher than protocol
                # traffic; snapshots read them straight off the transport.
                live.set_heartbeat_probe(transport.heartbeat_ages)
            comm = Comm(transport, 0)
            comm.bcast(
                {
                    "config": ctx.config,
                    "dataset": dataset,
                    "partition": self.partition,
                }
            )
            early_reports: dict[int, Any] = {}
            if self.partition == "tiles":
                scores = tiled_master_loop(
                    comm,
                    tiles,
                    n_voxels,
                    n_epochs,
                    max_retries=self.max_retries,
                    reports=early_reports,
                )
            else:
                scores = _master_loop(
                    comm,
                    tasks,
                    max_retries=self.max_retries,
                    reports=early_reports,
                )
            reports = collect_worker_reports(
                comm, set(transport.alive_workers()), early_reports
            )
            for _rank, report in sorted(reports.items()):
                ctx.merge_export(report["export"])
            stats = comm.stats
            ctx.increment("comm.bytes_sent", stats.bytes_sent)
            ctx.increment("comm.bytes_recv", stats.bytes_recv)
            ctx.metadata["tcp_address"] = list(address)
            return scores
        finally:
            if live is not None:
                live.set_heartbeat_probe(None)
            if transport is not None:
                transport.close()
            else:
                listener.close()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except Exception:
                    proc.kill()


def predicted_schedule(
    ctx: RunContext,
    dataset: FMRIDataset,
    n_workers: int,
    cluster: ClusterConfig | None = None,
) -> SimulationResult:
    """Replay a run's measured task stream through the cluster simulator.

    Builds a one-fold :class:`~repro.cluster.workload.Workload` whose
    per-task compute times are the seconds :func:`execute_task` actually
    recorded in ``ctx``, then schedules it on a simulated cluster —
    the predicted half of every predicted-vs-measured comparison.
    """
    task_seconds = ctx.task_seconds
    if not task_seconds:
        raise ValueError("context has no recorded tasks to replay")
    result_bytes = ctx.config.task_voxels * 8
    fold = FoldSpec(
        tasks=tuple(
            TaskSpec(max(s, 1e-9), result_bytes=result_bytes)
            for s in task_seconds
        ),
        label="measured-tasks",
    )
    workload = Workload(
        name="measured-replay",
        dataset_bytes=dataset.nbytes(),
        folds=(fold,),
    )
    config = cluster if cluster is not None else ClusterConfig(n_workers=n_workers)
    return simulate(workload, config)


#: CLI / factory names of the built-in executors.
EXECUTOR_NAMES = ("serial", "pool", "master-worker")


def make_executor(
    name: str,
    n_workers: int | None = None,
    **kwargs: Any,
) -> Executor:
    """Build a built-in executor by name (the CLI ``--executor`` values)."""
    if name == "serial":
        return SerialExecutor()
    if name == "pool":
        return ProcessPoolExecutor(n_workers=n_workers, **kwargs)
    if name == "master-worker":
        return MasterWorkerExecutor(n_workers=n_workers or 2, **kwargs)
    raise KeyError(
        f"unknown executor {name!r}; choose from {', '.join(EXECUTOR_NAMES)}"
    )
