"""RunContext: the one telemetry and configuration carrier of a run.

Every executor — serial, process pool, master-worker, and the rtfmri
closed loop — threads a :class:`RunContext` through the stage graph, so
per-stage wall time and simulated counter events are recorded the same
way no matter which path executed the work.  Perf models, reports, and
the ``--json`` CLI output all consume this object instead of scattering
``time.perf_counter()`` calls through the drivers.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Iterator, Mapping

import numpy as np

from ..hw.counters import PerfCounters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.pipeline import FCMAConfig
    from ..hw.spec import HardwareSpec

__all__ = ["RunContext", "StageStats", "StageTimer"]


@dataclass
class StageStats:
    """Accumulated telemetry of one pipeline stage."""

    #: Total wall-clock seconds spent in the stage across all tasks.
    seconds: float = 0.0
    #: Times the stage ran (== tasks for per-task stages).
    calls: int = 0
    #: Simulated hardware events attributed to the stage, if any model
    #: emitted them (the paper's Table-1 vocabulary).
    counters: PerfCounters = field(default_factory=PerfCounters)

    def merge(self, other: "StageStats") -> None:
        """Fold another stage's accumulation into this one."""
        self.seconds += other.seconds
        self.calls += other.calls
        for f in fields(PerfCounters):
            setattr(
                self.counters,
                f.name,
                getattr(self.counters, f.name) + getattr(other.counters, f.name),
            )


class StageTimer:
    """Handle yielded by :meth:`RunContext.timer`; read ``seconds`` after
    the ``with`` block for this call's own elapsed time."""

    def __init__(self) -> None:
        self.seconds: float = 0.0


class RunContext:
    """Configuration, determinism, and instrumentation for one run.

    Parameters
    ----------
    config:
        The pipeline configuration all tasks of the run share.
    seed:
        Seed for :meth:`rng`; deterministic components ignore it, but
        any stochastic stage (noise models, heterogeneity draws) must
        draw from here so executors stay seed-reproducible.
    hardware:
        Optional hardware model for stages that emit simulated counter
        events alongside wall time.

    All mutation is lock-protected: the master-worker executor's thread
    ranks may share one context.
    """

    def __init__(
        self,
        config: "FCMAConfig | None" = None,
        *,
        seed: int | None = None,
        hardware: "HardwareSpec | None" = None,
    ) -> None:
        if config is None:
            from ..core.pipeline import FCMAConfig

            config = FCMAConfig()
        self.config = config
        self.seed = seed
        self.hardware = hardware
        #: Free-form run annotations (executor name, worker count,
        #: predicted-vs-measured blocks, ...).
        self.metadata: dict[str, Any] = {}
        self._stages: dict[str, StageStats] = {}
        self._task_seconds: list[float] = []
        self._lock = threading.Lock()

    # -- determinism -----------------------------------------------------

    def rng(self) -> np.random.Generator:
        """A fresh generator from this run's seed (0 if unseeded)."""
        return np.random.default_rng(0 if self.seed is None else self.seed)

    # -- recording -------------------------------------------------------

    @contextmanager
    def timer(self, stage: str) -> Iterator[StageTimer]:
        """Time a block and charge it to ``stage``.

        The yielded :class:`StageTimer` carries this call's elapsed
        seconds after the block exits (for per-event latencies such as
        rtfmri feedback), while the context accumulates the total.
        """
        handle = StageTimer()
        t0 = time.perf_counter()
        try:
            yield handle
        finally:
            handle.seconds = time.perf_counter() - t0
            self.add_time(stage, handle.seconds)

    def add_time(self, stage: str, seconds: float, calls: int = 1) -> None:
        """Charge ``seconds`` of wall time to ``stage``."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        with self._lock:
            stats = self._stages.setdefault(stage, StageStats())
            stats.seconds += seconds
            stats.calls += calls

    def add_counters(self, stage: str, counters: PerfCounters) -> None:
        """Attribute simulated hardware events to ``stage``."""
        with self._lock:
            stats = self._stages.setdefault(stage, StageStats())
            stats.merge(StageStats(counters=counters))

    def increment(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the named run counter.

        Counters live in ``metadata["counters"]`` (autotuner cache
        hits/misses, tiles processed, ...), travel with :meth:`export`,
        and sum under :meth:`merge` / :meth:`merge_export`.
        """
        with self._lock:
            counters = self.metadata.setdefault("counters", {})
            counters[name] = counters.get(name, 0) + value

    def counter(self, name: str) -> int:
        """Current value of a run counter (0 if never incremented)."""
        with self._lock:
            counters = self.metadata.get("counters", {})
            return int(counters.get(name, 0))

    def record_task(self, seconds: float) -> None:
        """Record one completed task's total pipeline seconds.

        The per-task stream is what the cluster simulator replays for
        predicted-vs-measured schedule comparisons.
        """
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        with self._lock:
            self._task_seconds.append(seconds)

    def merge(self, other: "RunContext") -> None:
        """Fold another context's telemetry into this one.

        Used by executors whose workers each accumulate privately (the
        process pool cannot share memory; master-worker ranks could but
        merging keeps the hot path lock-free).
        """
        with self._lock:
            for stage, stats in other._stages.items():
                self._stages.setdefault(stage, StageStats()).merge(stats)
            self._task_seconds.extend(other._task_seconds)
            counters = self.metadata.setdefault("counters", {})
            for name, value in other.metadata.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value

    def export(self) -> dict[str, Any]:
        """Picklable telemetry snapshot (no locks, no config).

        This is the form process-pool workers ship home; fold it back
        with :meth:`merge_export`.
        """
        with self._lock:
            return {
                "stages": {
                    name: {"seconds": stats.seconds, "calls": stats.calls}
                    for name, stats in self._stages.items()
                },
                "task_seconds": list(self._task_seconds),
                "counters": dict(self.metadata.get("counters", {})),
            }

    def merge_export(self, payload: Mapping[str, Any]) -> None:
        """Fold an :meth:`export` snapshot from another process in."""
        for stage, stats in payload.get("stages", {}).items():
            self.add_time(stage, stats["seconds"], calls=stats["calls"])
        with self._lock:
            self._task_seconds.extend(payload.get("task_seconds", ()))
            counters = self.metadata.setdefault("counters", {})
            for name, value in payload.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value

    # -- reading ---------------------------------------------------------

    @property
    def stages(self) -> dict[str, StageStats]:
        """Snapshot of the per-stage telemetry (copy; safe to iterate)."""
        with self._lock:
            return {name: stats for name, stats in self._stages.items()}

    def stage_seconds(self) -> dict[str, float]:
        """Per-stage wall seconds, in first-recorded order."""
        with self._lock:
            return {name: stats.seconds for name, stats in self._stages.items()}

    @property
    def task_seconds(self) -> list[float]:
        """Per-task pipeline seconds, in completion order."""
        with self._lock:
            return list(self._task_seconds)

    def timing_report(self) -> dict[str, Any]:
        """JSON-serializable run telemetry (the ``--json`` CLI payload)."""
        with self._lock:
            stages = {
                name: {"seconds": stats.seconds, "calls": stats.calls}
                for name, stats in self._stages.items()
            }
            tasks = list(self._task_seconds)
        report: dict[str, Any] = {
            "stages": stages,
            "total_stage_seconds": sum(s["seconds"] for s in stages.values()),
            "n_tasks": len(tasks),
            "task_seconds": tasks,
        }
        report.update(self.metadata)
        return report
