"""RunContext: the one telemetry and configuration carrier of a run.

Every executor — serial, process pool, master-worker, and the rtfmri
closed loop — threads a :class:`RunContext` through the stage graph, so
per-stage wall time and simulated counter events are recorded the same
way no matter which path executed the work.  Perf models, reports, and
the ``--json`` CLI output all consume this object instead of scattering
``time.perf_counter()`` calls through the drivers.

Since the observability layer (:mod:`repro.obs`) landed, the context's
recording substrate is a span :class:`~repro.obs.tracer.Tracer`: timer
blocks open ``stage`` spans, tasks open ``task`` spans, and the legacy
views — :attr:`RunContext.stages`, :meth:`RunContext.stage_seconds`,
:attr:`RunContext.task_seconds` — are *derived* by aggregating the
span list.  ``add_time`` / ``record_task`` / ``add_counters`` remain as
recording APIs; they append synthetic (zero-width) spans.  Run counters
(:meth:`increment`) attach ``ctr.*`` metrics to the innermost open span
for per-task granularity and are mirrored in ``metadata["counters"]``
as the run-level aggregate.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, ContextManager, Iterator, Mapping

import numpy as np

from ..hw.counters import PerfCounters
from ..obs.span import Span
from ..obs.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..core.pipeline import FCMAConfig
    from ..hw.spec import HardwareSpec

__all__ = ["RunContext", "StageStats", "StageTimer"]

#: Metric prefix carrying PerfCounters fields on spans.
_PC_PREFIX = "pc."
#: Metric prefix carrying run counters on spans.
_CTR_PREFIX = "ctr."


@dataclass
class StageStats:
    """Accumulated telemetry of one pipeline stage."""

    #: Total wall-clock seconds spent in the stage across all tasks.
    seconds: float = 0.0
    #: Times the stage ran (== tasks for per-task stages).
    calls: int = 0
    #: Simulated hardware events attributed to the stage, if any model
    #: emitted them (the paper's Table-1 vocabulary).
    counters: PerfCounters = field(default_factory=PerfCounters)

    def merge(self, other: "StageStats") -> None:
        """Fold another stage's accumulation into this one."""
        self.seconds += other.seconds
        self.calls += other.calls
        for f in fields(PerfCounters):
            setattr(
                self.counters,
                f.name,
                getattr(self.counters, f.name) + getattr(other.counters, f.name),
            )


class StageTimer:
    """Handle yielded by :meth:`RunContext.timer`; read ``seconds`` after
    the ``with`` block for this call's own elapsed time."""

    def __init__(self) -> None:
        self.seconds: float = 0.0


class RunContext:
    """Configuration, determinism, and instrumentation for one run.

    Parameters
    ----------
    config:
        The pipeline configuration all tasks of the run share.
    seed:
        Seed for :meth:`rng`; deterministic components ignore it, but
        any stochastic stage (noise models, heterogeneity draws) must
        draw from here so executors stay seed-reproducible.
    hardware:
        Optional hardware model for stages that emit simulated counter
        events alongside wall time.
    tracer:
        The span tracer recording this run (default: a fresh enabled
        :class:`~repro.obs.tracer.Tracer`).  Inject one with a fake
        clock for deterministic trace tests, or a disabled tracer to
        measure tracing overhead.

    Mutation is lock-protected where state is shared (metadata
    counters); the tracer has its own internal locking, so the
    master-worker executor's thread ranks may share one context.
    """

    def __init__(
        self,
        config: "FCMAConfig | None" = None,
        *,
        seed: int | None = None,
        hardware: "HardwareSpec | None" = None,
        tracer: Tracer | None = None,
    ) -> None:
        if config is None:
            from ..core.pipeline import FCMAConfig

            config = FCMAConfig()
        self.config = config
        self.seed = seed
        self.hardware = hardware
        self.tracer = tracer if tracer is not None else Tracer()
        #: Free-form run annotations (executor name, worker count,
        #: predicted-vs-measured blocks, ...).
        self.metadata: dict[str, Any] = {}
        self._lock = threading.Lock()

    # -- determinism -----------------------------------------------------

    def rng(self) -> np.random.Generator:
        """A fresh generator from this run's seed (0 if unseeded)."""
        return np.random.default_rng(0 if self.seed is None else self.seed)

    # -- recording -------------------------------------------------------

    @contextmanager
    def timer(self, stage: str) -> Iterator[StageTimer]:
        """Time a block and charge it to ``stage``.

        Opens a ``stage`` span on the run's tracer; the yielded
        :class:`StageTimer` carries this call's elapsed seconds after
        the block exits (for per-event latencies such as rtfmri
        feedback), while the trace accumulates the total.
        """
        handle = StageTimer()
        span_cm = self.tracer.span(stage, kind="stage")
        span = span_cm.__enter__()
        try:
            yield handle
        finally:
            span_cm.__exit__(None, None, None)
            handle.seconds = span.duration

    def run_span(
        self, executor: str, dataset: Any = None
    ) -> ContextManager[Span | None]:
        """The root ``run`` span an executor wraps its whole run in.

        No-op (yields ``None``) if a run span is already open on the
        calling thread, so executors that delegate to one another —
        e.g. the pool's single-worker fallback to the serial path —
        do not nest a second root.

        When the executor passes the dataset it is running, the span
        carries the dataset *geometry* (voxels, subjects, epochs, epoch
        length) and the pipeline variant as attributes, so a trace file
        alone is enough for the performance observatory
        (:mod:`repro.obs.perf`) to recompute model predictions.
        """
        if "run" in self.tracer.open_kinds():
            return nullcontext(None)
        attrs: dict[str, Any] = {"executor": executor}
        attrs["variant"] = getattr(self.config, "variant", None)
        attrs["task_voxels"] = getattr(self.config, "task_voxels", None)
        if dataset is not None:
            attrs["dataset"] = getattr(dataset, "name", None)
            for key in ("n_voxels", "n_subjects", "n_epochs", "epoch_length"):
                value = getattr(dataset, key, None)
                if value is not None:
                    attrs[key] = int(value)
        return self.tracer.span("run", kind="run", attrs=attrs)

    def task_span(self, n_voxels: int, first_voxel: int) -> ContextManager[Span]:
        """The per-task span :func:`~repro.exec.stage_graph.execute_task`
        wraps one task's stage-graph run in."""
        return self.tracer.span(
            "task",
            kind="task",
            attrs={"n_voxels": int(n_voxels), "first_voxel": int(first_voxel)},
        )

    def add_time(self, stage: str, seconds: float, calls: int = 1) -> None:
        """Charge ``seconds`` of externally measured wall time to
        ``stage`` (recorded as a synthetic stage span)."""
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self.tracer.record(
            stage,
            kind="stage",
            seconds=seconds,
            metrics={"calls": float(calls)},
        )

    def add_counters(self, stage: str, counters: PerfCounters) -> None:
        """Attribute simulated hardware events to ``stage``.

        Recorded as a zero-width stage span carrying the counters as
        ``pc.*`` metrics (``calls=0`` so call counts stay timer-driven).
        """
        metrics: dict[str, float] = {"calls": 0.0}
        for f in fields(PerfCounters):
            value = float(getattr(counters, f.name))
            if value:
                metrics[_PC_PREFIX + f.name] = value
        self.tracer.record(stage, kind="stage", metrics=metrics)

    def increment(self, name: str, value: int | float = 1) -> None:
        """Add ``value`` to the named run counter.

        The counter lands twice, by design: as a ``ctr.<name>`` metric
        on the innermost open span (per-task/per-stage granularity in
        the trace) and aggregated in ``metadata["counters"]`` (the
        run-level view that travels with :meth:`export`, sums under
        :meth:`merge` / :meth:`merge_export`, and feeds ``--json``).
        Values are usually integral tallies but may be fractional
        (``stage12_density`` accumulates a kept-fraction per task);
        :meth:`counter` truncates, so read fractional counters from
        ``metadata["counters"]`` directly.
        """
        if not self.tracer.add_metric(_CTR_PREFIX + name, float(value)):
            # No span open (library use outside a run): keep the counter
            # in the trace anyway as a standalone counter span.
            self.tracer.record(
                name, kind="counter", metrics={_CTR_PREFIX + name: float(value)}
            )
        with self._lock:
            counters = self.metadata.setdefault("counters", {})
            counters[name] = counters.get(name, 0) + value

    def counter(self, name: str) -> int:
        """Current value of a run counter (0 if never incremented)."""
        with self._lock:
            counters = self.metadata.get("counters", {})
            return int(counters.get(name, 0))

    def record_task(self, seconds: float) -> None:
        """Record one completed task's total pipeline seconds.

        The per-task stream is what the cluster simulator replays for
        predicted-vs-measured schedule comparisons.  Tasks executed
        through :func:`~repro.exec.stage_graph.execute_task` record
        their span directly; this API remains for externally measured
        tasks and appends a synthetic task span.
        """
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        self.tracer.record("task", kind="task", seconds=seconds)

    def merge(self, other: "RunContext") -> None:
        """Fold another context's telemetry into this one.

        Used by executors whose workers each accumulate privately (the
        process pool cannot share memory; master-worker ranks could but
        merging keeps the hot path lock-free).  The other context's
        spans are re-rooted under the calling thread's open span (the
        run span, when merged by an executor).
        """
        self.tracer.merge(other.tracer)
        with self._lock:
            counters = self.metadata.setdefault("counters", {})
            for name, value in other.metadata.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value

    def export(self) -> dict[str, Any]:
        """Picklable telemetry snapshot (no locks, no config).

        This is the form process-pool workers ship home; fold it back
        with :meth:`merge_export`.  ``spans`` is the source of truth;
        the stage/task/counter summaries ride along for consumers that
        want the aggregate without reassembling the trace.
        """
        return {
            "stages": {
                name: {"seconds": stats.seconds, "calls": stats.calls}
                for name, stats in self.stages.items()
            },
            "task_seconds": list(self.task_seconds),
            "counters": dict(self.metadata.get("counters", {})),
            "spans": self.tracer.export(),
        }

    def merge_export(self, payload: Mapping[str, Any]) -> None:
        """Fold an :meth:`export` snapshot from another process in.

        Prefers the payload's span records (re-rooted under the calling
        thread's open span); falls back to the legacy stage/task
        summaries for payloads produced before the tracing layer.
        """
        spans = payload.get("spans")
        if spans:
            self.tracer.merge(spans)
        else:
            for stage, stats in payload.get("stages", {}).items():
                self.add_time(stage, stats["seconds"], calls=stats["calls"])
            for seconds in payload.get("task_seconds", ()):
                self.record_task(seconds)
        with self._lock:
            counters = self.metadata.setdefault("counters", {})
            for name, value in payload.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value

    # -- reading (derived views over the trace) --------------------------

    @property
    def stages(self) -> dict[str, StageStats]:
        """Per-stage telemetry, aggregated from the trace's stage spans.

        Keys appear in first-recorded order; seconds and calls sum over
        every closed span of the stage, and ``pc.*`` metrics fold back
        into :class:`~repro.hw.counters.PerfCounters`.
        """
        out: dict[str, StageStats] = {}
        for span in self.tracer.spans():
            if span.kind != "stage" or not span.closed:
                continue
            stats = out.setdefault(span.name, StageStats())
            stats.seconds += span.metrics.get("wall_seconds", span.duration)
            stats.calls += int(span.metrics.get("calls", 1.0))
            for mname, value in span.metrics.items():
                if mname.startswith(_PC_PREFIX):
                    pc_field = mname[len(_PC_PREFIX):]
                    setattr(
                        stats.counters,
                        pc_field,
                        getattr(stats.counters, pc_field) + value,
                    )
        return out

    def stage_seconds(self) -> dict[str, float]:
        """Per-stage wall seconds, in first-recorded order."""
        return {name: stats.seconds for name, stats in self.stages.items()}

    @property
    def task_seconds(self) -> list[float]:
        """Per-task pipeline seconds, in completion order (derived from
        the trace's task spans)."""
        return [
            span.metrics.get("wall_seconds", span.duration)
            for span in self.tracer.spans()
            if span.kind == "task" and span.closed
        ]

    def timing_report(self) -> dict[str, Any]:
        """JSON-serializable run telemetry (the ``--json`` CLI payload)."""
        stages = {
            name: {"seconds": stats.seconds, "calls": stats.calls}
            for name, stats in self.stages.items()
        }
        tasks = list(self.task_seconds)
        report: dict[str, Any] = {
            "stages": stages,
            "total_stage_seconds": sum(s["seconds"] for s in stages.values()),
            "n_tasks": len(tasks),
            "task_seconds": tasks,
            "n_spans": len(self.tracer),
        }
        report.update(self.metadata)
        return report
