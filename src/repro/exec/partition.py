"""Task partitioning: the single place voxel ranges are carved.

"The tasks are defined by partitioning the correlation matrices along
their rows" (paper Section 3.1.1).  Every execution path — the serial
driver, the process-pool executor, the master-worker protocol, and the
cluster simulator's workload builders — used to carve those row ranges
independently; they all delegate here now, so a change to the task
decomposition happens exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np
from numpy.typing import NDArray

from ..core.tiling import iter_blocks, n_blocks

__all__ = [
    "TileTask",
    "partition_tasks",
    "partition_tiles",
    "tile_cols_for",
    "n_tasks",
    "auto_chunksize",
    "partition_rows_by_nnz",
]


def partition_tasks(
    n_voxels: int,
    task_voxels: int,
    voxels: NDArray[Any] | None = None,
) -> list[NDArray[np.int64]]:
    """Partition voxels into master-assignable tasks of ``task_voxels``.

    With ``voxels=None`` the whole brain ``[0, n_voxels)`` is carved
    into contiguous ranges; otherwise the given index array is chunked
    in order.  The final task may be short.  Task order is the
    aggregation order every executor preserves, so identical inputs
    yield identical concatenated results on any backend.
    """
    if task_voxels < 1:
        raise ValueError("task_voxels must be >= 1")
    if voxels is None:
        if n_voxels < 1:
            raise ValueError("n_voxels must be >= 1")
        return [
            np.arange(start, stop, dtype=np.int64)
            for start, stop in iter_blocks(n_voxels, task_voxels)
        ]
    out = np.asarray(voxels, dtype=np.int64)
    if out.ndim != 1 or out.size == 0:
        raise ValueError("voxels must be a non-empty 1D index array")
    return [out[start:stop] for start, stop in iter_blocks(out.size, task_voxels)]


@dataclass(frozen=True)
class TileTask:
    """One 2-D tile of the (assigned × all-voxels) correlation matrix.

    Tiles partition the output of stage 1/2 both ways: ``rows`` is the
    row panel's assigned voxel ids (what 1-D partitioning called a
    task), ``col_start:col_stop`` the target-voxel column range.  A
    worker computes the tile's fused stage-1/2 block; the master merges
    column tiles back into full row panels
    (:class:`repro.core.results.PanelAssembler`) before stage 3 scores
    them.  ``index`` is the deterministic row-major dispatch order.
    """

    index: int
    #: Which row panel this tile extends (0-based, row-major).
    panel: int
    #: Assigned voxel ids of the row panel, shape (rows,).
    rows: NDArray[np.int64]
    #: Half-open target-voxel column range of this tile.
    col_start: int
    col_stop: int

    def __post_init__(self) -> None:
        if self.index < 0 or self.panel < 0:
            raise ValueError("tile index and panel must be >= 0")
        if not 0 <= self.col_start < self.col_stop:
            raise ValueError(
                f"bad column range [{self.col_start}, {self.col_stop})"
            )

    @property
    def n_rows(self) -> int:
        return int(self.rows.size)

    @property
    def n_cols(self) -> int:
        return self.col_stop - self.col_start

    def result_nbytes(self, n_epochs: int) -> int:
        """Bytes of the float32 normalized block this tile produces."""
        return self.n_rows * n_epochs * self.n_cols * 4


def tile_cols_for(
    n_voxels: int, target_block: int, n_workers: int, n_panels: int
) -> int:
    """Column width of a distributed tile.

    Multiple of the blocking planner's ``target_block`` (so each tile's
    inner gemm walks whole planner blocks), sized to give every worker
    a few tiles per row panel: enough parallelism for dynamic balance,
    few enough that per-tile message overhead stays amortized.
    """
    if min(n_voxels, target_block, n_workers, n_panels) < 1:
        raise ValueError("tile_cols_for arguments must be >= 1")
    # ~2 column tiles per worker per panel, at least one planner block.
    want = max(1, n_workers * 2 // max(n_panels, 1), n_workers // n_panels)
    cols = max(target_block, -(-n_voxels // max(want * target_block, 1)) * target_block)
    return min(cols, n_voxels)


def partition_tiles(
    n_voxels: int,
    task_voxels: int,
    tile_cols: int,
    voxels: NDArray[Any] | None = None,
) -> list[TileTask]:
    """2-D tile partition: row panels × target-column blocks.

    Row panels come from :func:`partition_tasks` (so the stage-3 unit
    of aggregation is unchanged); each panel is split into column tiles
    of ``tile_cols`` target voxels.  Tiles are ordered row-major —
    panel 0's columns left to right, then panel 1 — which is the
    deterministic dispatch order of the tiled master loop.
    """
    if tile_cols < 1:
        raise ValueError("tile_cols must be >= 1")
    panels = partition_tasks(n_voxels, task_voxels, voxels)
    tiles: list[TileTask] = []
    for panel_id, rows in enumerate(panels):
        for start, stop in iter_blocks(n_voxels, tile_cols):
            tiles.append(
                TileTask(
                    index=len(tiles),
                    panel=panel_id,
                    rows=rows,
                    col_start=start,
                    col_stop=stop,
                )
            )
    return tiles


def partition_rows_by_nnz(
    row_nnz: NDArray[Any],
    max_nnz: int,
    max_rows: int | None = None,
) -> list[tuple[int, int]]:
    """Carve contiguous row panels balanced by ragged per-row nnz.

    The sparse stage-1/2 output has wildly uneven rows (a hub voxel can
    carry orders of magnitude more surviving correlations than a quiet
    one), so fixed-width panels make some score batches Gram far more
    stored entries than others.  This greedily packs consecutive rows
    until adding the next row would push the panel past ``max_nnz``
    stored entries (or past ``max_rows`` rows); a single row heavier
    than the budget still gets its own panel, so every row is covered
    exactly once.

    Returns ``(start, stop)`` half-open panels covering
    ``range(len(row_nnz))`` in order.
    """
    counts = np.asarray(row_nnz, dtype=np.int64)
    if counts.ndim != 1:
        raise ValueError(f"row_nnz must be 1D, got shape {counts.shape}")
    if counts.size and counts.min() < 0:
        raise ValueError("row_nnz entries must be >= 0")
    if max_nnz < 1:
        raise ValueError("max_nnz must be >= 1")
    if max_rows is not None and max_rows < 1:
        raise ValueError("max_rows must be >= 1")
    panels: list[tuple[int, int]] = []
    start = 0
    filled = 0
    for row in range(counts.size):
        width = row - start
        if width > 0 and (
            filled + counts[row] > max_nnz
            or (max_rows is not None and width >= max_rows)
        ):
            panels.append((start, row))
            start = row
            filled = 0
        filled += int(counts[row])
    if start < counts.size:
        panels.append((start, counts.size))
    return panels


def n_tasks(n_voxels: int, task_voxels: int) -> int:
    """Number of tasks a partition produces (``ceil(n/task_voxels)``)."""
    if n_voxels < 1:
        raise ValueError("n_voxels must be >= 1")
    return n_blocks(n_voxels, task_voxels)


def auto_chunksize(n_tasks: int, n_workers: int) -> int:
    """Tasks per worker message: ~4 chunks per worker.

    Amortizes result round-trips while keeping the last wave short
    enough that dynamic scheduling can still balance it.
    """
    if n_tasks < 1 or n_workers < 1:
        raise ValueError("n_tasks and n_workers must be >= 1")
    return max(1, n_blocks(n_tasks, n_workers * 4))
