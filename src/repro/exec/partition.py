"""Task partitioning: the single place voxel ranges are carved.

"The tasks are defined by partitioning the correlation matrices along
their rows" (paper Section 3.1.1).  Every execution path — the serial
driver, the process-pool executor, the master-worker protocol, and the
cluster simulator's workload builders — used to carve those row ranges
independently; they all delegate here now, so a change to the task
decomposition happens exactly once.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from numpy.typing import NDArray

__all__ = ["partition_tasks", "n_tasks", "auto_chunksize"]


def partition_tasks(
    n_voxels: int,
    task_voxels: int,
    voxels: NDArray[Any] | None = None,
) -> list[NDArray[np.int64]]:
    """Partition voxels into master-assignable tasks of ``task_voxels``.

    With ``voxels=None`` the whole brain ``[0, n_voxels)`` is carved
    into contiguous ranges; otherwise the given index array is chunked
    in order.  The final task may be short.  Task order is the
    aggregation order every executor preserves, so identical inputs
    yield identical concatenated results on any backend.
    """
    if task_voxels < 1:
        raise ValueError("task_voxels must be >= 1")
    if voxels is None:
        if n_voxels < 1:
            raise ValueError("n_voxels must be >= 1")
        return [
            np.arange(start, min(start + task_voxels, n_voxels), dtype=np.int64)
            for start in range(0, n_voxels, task_voxels)
        ]
    out = np.asarray(voxels, dtype=np.int64)
    if out.ndim != 1 or out.size == 0:
        raise ValueError("voxels must be a non-empty 1D index array")
    return [out[s : s + task_voxels] for s in range(0, out.size, task_voxels)]


def n_tasks(n_voxels: int, task_voxels: int) -> int:
    """Number of tasks a partition produces (``ceil(n/task_voxels)``)."""
    if n_voxels < 1:
        raise ValueError("n_voxels must be >= 1")
    if task_voxels < 1:
        raise ValueError("task_voxels must be >= 1")
    return -(-n_voxels // task_voxels)


def auto_chunksize(n_tasks: int, n_workers: int) -> int:
    """Tasks per worker message: ~4 chunks per worker.

    Amortizes result round-trips while keeping the last wave short
    enough that dynamic scheduling can still balance it.
    """
    if n_tasks < 1 or n_workers < 1:
        raise ValueError("n_tasks and n_workers must be >= 1")
    return max(1, -(-n_tasks // (n_workers * 4)))
