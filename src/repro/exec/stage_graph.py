"""The FCMA pipeline as an explicit stage graph.

:class:`StageGraph` expresses the paper's three-stage pipeline —
correlate (Section 3.1 stage 1), normalize (stage 2), SVM-score
(stage 3) — as named nodes with declared inputs and outputs, replacing
the hard-coded sequencing that used to live inside ``run_task``.  Each
node's wall time is charged to the :class:`~repro.exec.context.RunContext`
under the node's name, so every executor emits identical per-stage
telemetry.

Two built-in graphs mirror ``FCMAConfig.variant``:

* ``baseline`` — three separate nodes (per-epoch gemm correlation,
  separated normalization, LibSVM-style scoring);
* ``optimized`` — the paper's idea #2 *merges* normalization into the
  blocked correlation while tiles are L2-resident, so the graph has a
  fused ``correlate+normalize`` node followed by ``score``;
* ``optimized-batched`` — the fused epoch-batched engine: one 3D batched
  gemm for the whole task plus an L2-sized voxel sweep of the vectorized
  normalizer, with the sweep width chosen by the blocking planner
  (optionally autotuned and plan-cached; see ``core.blocking``).

All graphs reproduce the legacy ``run_task`` results bitwise; the
equivalence is pinned by ``tests/exec/test_stage_graph.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np
from numpy.typing import NDArray

from ..core import blocking
from ..core.correlation import (
    correlate_baseline,
    correlate_blocked,
    stage1_input_copies,
)
from ..core.engine import DenseEmitter, run_engine
from ..core.kernels import kernel_matrix_baseline, kernel_matrix_blocked
from ..core.normalization import MergedNormalizer, normalize_separated
from ..core.results import VoxelScores
from ..core.sparse import CSREmitter, sparse_tile_plan
from ..core.voxel_selection import score_voxels, score_voxels_sparse
from ..svm.cross_validation import kfold_ids
from .context import RunContext
from .registry import create_backend, register_variant

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.dataset import FMRIDataset

__all__ = [
    "Stage",
    "StageGraph",
    "StageGraphError",
    "baseline_graph",
    "optimized_graph",
    "optimized_batched_graph",
    "sparse_batched_graph",
    "register_fused_stage",
    "build_graph",
    "execute_task",
]

#: A stage body: reads its declared inputs from the state mapping and
#: returns its outputs as a new mapping.
StageFn = Callable[[RunContext, Mapping[str, Any]], Mapping[str, Any]]


class StageGraphError(ValueError):
    """An ill-formed stage graph (dangling input, duplicate name, ...)."""


@dataclass(frozen=True)
class Stage:
    """One node of the pipeline: a named, typed transformation."""

    name: str
    fn: StageFn
    #: State keys the node reads; each must be seeded or produced by an
    #: earlier node.
    inputs: tuple[str, ...]
    #: State keys the node must produce.
    outputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise StageGraphError("stage name must be non-empty")
        if not self.outputs:
            raise StageGraphError(f"stage {self.name!r} declares no outputs")


@dataclass(frozen=True)
class StageGraph:
    """A linear chain of stages with validated dataflow.

    ``validate`` checks the chain once at build time: names unique,
    every input either in ``seeds`` (the keys the caller provides) or
    produced by an earlier stage.  ``run`` then executes the chain,
    timing each node through the context.
    """

    stages: tuple[Stage, ...]
    #: State keys the caller seeds (the graph's external inputs).
    seeds: tuple[str, ...]

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`StageGraphError` if the dataflow is broken."""
        if not self.stages:
            raise StageGraphError("a stage graph needs at least one stage")
        seen: set[str] = set()
        available = set(self.seeds)
        for stage in self.stages:
            if stage.name in seen:
                raise StageGraphError(f"duplicate stage name {stage.name!r}")
            seen.add(stage.name)
            missing = [k for k in stage.inputs if k not in available]
            if missing:
                raise StageGraphError(
                    f"stage {stage.name!r} reads {missing} before any "
                    f"earlier stage (or seed) produces them"
                )
            available.update(stage.outputs)

    @property
    def stage_names(self) -> tuple[str, ...]:
        """Node names in execution order (the timing keys)."""
        return tuple(s.name for s in self.stages)

    def run(self, ctx: RunContext, **seeds: Any) -> dict[str, Any]:
        """Execute the chain; returns the final state mapping."""
        missing = [k for k in self.seeds if k not in seeds]
        if missing:
            raise StageGraphError(f"missing seed values: {missing}")
        state: dict[str, Any] = dict(seeds)
        for stage in self.stages:
            inputs = {k: state[k] for k in stage.inputs}
            with ctx.timer(stage.name):
                produced = stage.fn(ctx, inputs)
            absent = [k for k in stage.outputs if k not in produced]
            if absent:
                raise StageGraphError(
                    f"stage {stage.name!r} did not produce {absent}"
                )
            state.update(produced)
        return state


# -- the FCMA stage bodies ------------------------------------------------


def _fold_ids(ctx: RunContext, ds: "FMRIDataset") -> NDArray[Any]:
    """CV fold assignment: LOSO across subjects, k-fold within one."""
    epochs = ds.epochs
    if epochs.n_subjects >= 2:
        return np.asarray(epochs.subjects())
    return np.asarray(kfold_ids(len(epochs), ctx.config.online_folds))


def _preprocess(ctx: RunContext, state: Mapping[str, Any]) -> Mapping[str, Any]:
    from ..core.pipeline import preprocess_dataset

    ds, z = preprocess_dataset(state["dataset"])
    return {"grouped": ds, "windows": z}


def _correlate_baseline(
    ctx: RunContext, state: Mapping[str, Any]
) -> Mapping[str, Any]:
    with ctx.tracer.span("correlate_baseline", kind="kernel") as span:
        corr = correlate_baseline(state["windows"], state["assigned"])
        span.add_metric("voxels", float(state["assigned"].size))
        span.add_metric("bytes_moved", float(state["windows"].nbytes + corr.nbytes))
    return {"correlations": corr}


def _normalize_separated(
    ctx: RunContext, state: Mapping[str, Any]
) -> Mapping[str, Any]:
    corr = state["correlations"]
    with ctx.tracer.span("normalize_separated", kind="kernel") as span:
        normalize_separated(corr, state["grouped"].epochs.epochs_per_subject())
        span.add_metric("bytes_moved", float(2 * corr.nbytes))
    return {"correlations": corr}


def _correlate_merged(
    ctx: RunContext, state: Mapping[str, Any]
) -> Mapping[str, Any]:
    config = ctx.config
    e_per_subject = state["grouped"].epochs.epochs_per_subject()
    merger = MergedNormalizer(e_per_subject)
    with ctx.tracer.span("correlate_blocked+merge", kind="kernel") as span:
        corr = correlate_blocked(
            state["windows"],
            state["assigned"],
            voxel_block=config.voxel_block,
            target_block=config.target_block,
            epoch_block=e_per_subject,
            tile_callback=merger,
        )
        span.add_metric("voxels", float(state["assigned"].size))
        span.add_metric(
            "bytes_moved", float(state["windows"].nbytes + corr.nbytes)
        )
    return {"correlations": corr}


def _resolve_blocking_plan(
    ctx: RunContext,
    z: NDArray[Any],
    assigned: NDArray[Any],
    e_per_subject: int,
) -> blocking.BlockingPlan:
    """Shared plan lookup of the batched stage bodies (dense + sparse):
    hardware-model default, plan-cache accounting, trace span, counters,
    and the run-metadata record."""
    config = ctx.config
    hw = ctx.hardware
    if hw is None:
        from ..hw import E5_2670

        hw = E5_2670
    cache_path = getattr(config, "plan_cache_path", None)
    # Looked up through the module so tests can swap the process-wide
    # default cache.
    cache = (
        blocking.PlanCache(cache_path)
        if cache_path
        else blocking.default_plan_cache()
    )
    hits0, misses0 = cache.hits, cache.misses
    with ctx.tracer.span("plan_blocks", kind="kernel") as span:
        plan = blocking.plan_blocks(
            hw,
            epochs_per_subject=e_per_subject,
            epoch_length=z.shape[2],
            n_assigned=assigned.size,
            n_voxels=z.shape[1],
            autotune=getattr(config, "autotune_blocks", False),
            cache=cache,
        )
        span.add_metric("cache_hits", float(cache.hits - hits0))
        span.add_metric("cache_misses", float(cache.misses - misses0))
    ctx.increment("plan_cache_hits", cache.hits - hits0)
    ctx.increment("plan_cache_misses", cache.misses - misses0)
    ctx.metadata["blocking_plan"] = {
        "voxel_block": plan.voxel_block,
        "target_block": plan.target_block,
        "epoch_block": plan.epoch_block,
    }
    return plan


def _note_emitter(ctx: RunContext, name: str) -> None:
    """Per-emitter RunContext accounting shared by the engine stages."""
    ctx.metadata["emitter"] = name
    ctx.increment(f"emitter_{name}_runs", 1)


def _correlate_batched_fused(
    ctx: RunContext, state: Mapping[str, Any]
) -> Mapping[str, Any]:
    z = state["windows"]
    assigned = state["assigned"]
    e_per_subject = state["grouped"].epochs.epochs_per_subject()
    plan = _resolve_blocking_plan(ctx, z, assigned, e_per_subject)
    input_copies = stage1_input_copies(z)
    emitter = DenseEmitter(voxel_sweep=plan.voxel_block)

    with ctx.tracer.span("correlate_normalize_batched", kind="kernel") as span:
        corr, n_tiles = run_engine(z, assigned, e_per_subject, emitter)
        span.add_metric("tiles", float(n_tiles))
        span.add_metric("voxels", float(assigned.size))
        span.add_metric("bytes_moved", float(z.nbytes + corr.nbytes))
    _note_emitter(ctx, "dense")
    ctx.increment("stage12_tiles", n_tiles)
    ctx.increment("emitter_dense_tiles", n_tiles)
    if input_copies:
        ctx.increment("stage12_out_copies", input_copies)
    return {"correlations": corr}


def _correlate_sparse_fused(
    ctx: RunContext, state: Mapping[str, Any]
) -> Mapping[str, Any]:
    config = ctx.config
    z = state["windows"]
    assigned = state["assigned"]
    e_per_subject = state["grouped"].epochs.epochs_per_subject()
    # The dense planner's L2 tiles are wrong for the filter-dominated
    # sparse loop — use the engine's dispatch-amortizing tile plan.
    sweep, t_block = sparse_tile_plan(assigned.size, z.shape[0], z.shape[1])
    ctx.metadata["blocking_plan"] = {
        "voxel_block": sweep,
        "target_block": t_block,
        "epoch_block": z.shape[0],
    }
    input_copies = stage1_input_copies(z)
    emitter = CSREmitter(
        threshold=config.threshold,
        top_k=config.top_k,
        voxel_sweep=sweep,
        target_block=t_block,
    )

    with ctx.tracer.span("correlate_normalize_sparse", kind="kernel") as span:
        result, stats = run_engine(z, assigned, e_per_subject, emitter)
        span.add_metric("tiles", float(stats.n_tiles))
        span.add_metric("tiles_pruned", float(stats.tiles_pruned))
        span.add_metric("voxels", float(assigned.size))
        span.add_metric("nnz", float(stats.nnz))
        span.add_metric("elements", float(stats.elements))
        span.add_metric("density", stats.density)
        span.add_metric("voxel_sweep", float(sweep))
        span.add_metric("target_block", float(t_block))
        span.add_metric(
            "bytes_moved",
            float(
                z.nbytes
                + result.data.nbytes
                + result.indices.nbytes
                + result.indptr.nbytes
            ),
        )
    _note_emitter(ctx, "csr")
    ctx.increment("stage12_tiles", stats.n_tiles)
    ctx.increment("emitter_csr_tiles", stats.n_tiles)
    ctx.increment("stage12_tiles_pruned", stats.tiles_pruned)
    ctx.increment("stage12_nnz", stats.nnz)
    ctx.increment("stage12_density", stats.density)
    if input_copies:
        ctx.increment("stage12_out_copies", input_copies)
    return {"sparse_correlations": result}


#: Engine stage bodies keyed by emitter name — the exec-layer dispatch
#: for the core engine's pluggable materializations.  A variant's graph
#: builder resolves ``config.resolved_emitter()`` through this table, so
#: registering a new emitter's stage body plugs it into the pipeline
#: without editing the builders.
FUSED_STAGE_BODIES: dict[str, StageFn] = {
    "dense": _correlate_batched_fused,
    "csr": _correlate_sparse_fused,
}


def register_fused_stage(
    emitter: str, fn: StageFn, *, overwrite: bool = False
) -> None:
    """Register the stage body that drives the engine for ``emitter``."""
    if not emitter:
        raise ValueError("emitter name must be non-empty")
    if emitter in FUSED_STAGE_BODIES and not overwrite:
        raise ValueError(f"stage body for emitter {emitter!r} already registered")
    FUSED_STAGE_BODIES[emitter] = fn


def _fused_stage_body(config: Any, default_emitter: str) -> StageFn:
    """Resolve a config's emitter to its registered engine stage body."""
    name = default_emitter
    if config is not None:
        resolver = getattr(config, "resolved_emitter", None)
        resolved = resolver() if callable(resolver) else None
        if resolved is not None:
            name = resolved
    try:
        return FUSED_STAGE_BODIES[name]
    except KeyError:
        raise StageGraphError(
            f"no engine stage body registered for emitter {name!r}; "
            f"known: {sorted(FUSED_STAGE_BODIES)}"
        ) from None


def _score_sparse(ctx: RunContext, state: Mapping[str, Any]) -> Mapping[str, Any]:
    grouped = state["grouped"]
    backend = create_backend(ctx.config)
    with ctx.tracer.span("score_voxels_sparse", kind="kernel") as span:
        scores = score_voxels_sparse(
            state["sparse_correlations"],
            state["assigned"],
            grouped.epochs.labels(),
            _fold_ids(ctx, grouped),
            backend,
            batch_voxels=ctx.config.batch_voxels,
        )
        span.add_metric("voxels", float(state["assigned"].size))
        span.add_metric("nnz", float(state["sparse_correlations"].nnz))
    return {"scores": scores}


def _make_score_stage(kernel_fn: Callable[..., Any]) -> StageFn:
    def _score(ctx: RunContext, state: Mapping[str, Any]) -> Mapping[str, Any]:
        grouped = state["grouped"]
        backend = create_backend(ctx.config)
        with ctx.tracer.span("score_voxels", kind="kernel") as span:
            scores = score_voxels(
                state["correlations"],
                state["assigned"],
                grouped.epochs.labels(),
                _fold_ids(ctx, grouped),
                backend,
                kernel_fn=kernel_fn,
                batch_voxels=ctx.config.batch_voxels,
            )
            span.add_metric("voxels", float(state["assigned"].size))
        return {"scores": scores}

    return _score


_SEEDS = ("dataset", "assigned")


def baseline_graph(config: Any = None) -> StageGraph:
    """The Section-3.2 pipeline: three separated stages."""
    return StageGraph(
        stages=(
            Stage("preprocess", _preprocess, ("dataset",), ("grouped", "windows")),
            Stage(
                "correlate",
                _correlate_baseline,
                ("windows", "assigned"),
                ("correlations",),
            ),
            Stage(
                "normalize",
                _normalize_separated,
                ("correlations", "grouped"),
                ("correlations",),
            ),
            Stage(
                "score",
                _make_score_stage(kernel_matrix_baseline),
                ("correlations", "assigned", "grouped"),
                ("scores",),
            ),
        ),
        seeds=_SEEDS,
    )


def optimized_graph(config: Any = None) -> StageGraph:
    """The Section-4 pipeline: normalization merged into correlation."""
    return StageGraph(
        stages=(
            Stage("preprocess", _preprocess, ("dataset",), ("grouped", "windows")),
            Stage(
                "correlate+normalize",
                _correlate_merged,
                ("windows", "assigned", "grouped"),
                ("correlations",),
            ),
            Stage(
                "score",
                _make_score_stage(kernel_matrix_blocked),
                ("correlations", "assigned", "grouped"),
                ("scores",),
            ),
        ),
        seeds=_SEEDS,
    )


def optimized_batched_graph(config: Any = None) -> StageGraph:
    """The fused epoch-batched pipeline (this repo's PR-3 engine)."""
    return StageGraph(
        stages=(
            Stage("preprocess", _preprocess, ("dataset",), ("grouped", "windows")),
            Stage(
                "correlate+normalize",
                _fused_stage_body(config, "dense"),
                ("windows", "assigned", "grouped"),
                ("correlations",),
            ),
            Stage(
                "score",
                _make_score_stage(kernel_matrix_blocked),
                ("correlations", "assigned", "grouped"),
                ("scores",),
            ),
        ),
        seeds=_SEEDS,
    )


def sparse_batched_graph(config: Any = None) -> StageGraph:
    """Threshold-during-fuse pipeline: CSR stage 1/2, sparse-Gram stage 3.

    Same plan lookup and fused tile engine as ``optimized-batched``, but
    each normalized tile is filtered (``config.threshold`` /
    ``config.top_k``) into a CSR block while cache-resident; stage 3
    Grams the CSR row bands in nnz-balanced panels through the same
    batched SMO.
    """
    return StageGraph(
        stages=(
            Stage("preprocess", _preprocess, ("dataset",), ("grouped", "windows")),
            Stage(
                "correlate+normalize",
                _fused_stage_body(config, "csr"),
                ("windows", "assigned", "grouped"),
                ("sparse_correlations",),
            ),
            Stage(
                "score",
                _score_sparse,
                ("sparse_correlations", "assigned", "grouped"),
                ("scores",),
            ),
        ),
        seeds=_SEEDS,
    )


register_variant("baseline", baseline_graph, overwrite=True)
register_variant("optimized", optimized_graph, overwrite=True)
register_variant("optimized-batched", optimized_batched_graph, overwrite=True)
register_variant("sparse-batched", sparse_batched_graph, overwrite=True)


def build_graph(config: Any) -> StageGraph:
    """The stage graph for a config's registered pipeline variant."""
    from .registry import graph_builder

    builder = graph_builder(config.variant)
    return builder(config)


def execute_task(
    dataset: "FMRIDataset",
    assigned: NDArray[Any],
    ctx: RunContext,
) -> VoxelScores:
    """Run one task's assigned voxels through the configured graph.

    This is the single implementation behind the legacy ``run_task``
    shim and every executor; the task runs inside a ``task`` span (so
    per-stage wall time lands in ``ctx`` and the task's total appears
    in ``ctx.task_seconds``, both derived from the trace).
    """
    assigned = np.asarray(assigned, dtype=np.int64)
    if assigned.ndim != 1 or assigned.size == 0:
        raise ValueError("assigned must be a non-empty 1D index array")
    graph = build_graph(ctx.config)
    with ctx.task_span(assigned.size, int(assigned[0])) as span:
        state = graph.run(ctx, dataset=dataset, assigned=assigned)
        span.add_metric("voxels", float(assigned.size))
    scores = state["scores"]
    assert isinstance(scores, VoxelScores)
    return scores
