"""Registries for SVM backends and pipeline variants.

These replace the ``Literal`` string dispatch that used to live in
``repro.core.pipeline``: third-party code registers a backend factory or
a stage-graph builder under a name, and every entry point — config
validation, ``make_backend``, the executors, the CLI — resolves through
the same tables without editing core.

The paper's own choices are pre-seeded: backends ``phisvm``, ``libsvm``
and ``libsvm-float32``; variants ``baseline``, ``optimized`` and
``optimized-batched`` (their graph builders live in
:mod:`repro.exec.stage_graph` and self-register on import, which
:func:`graph_builder` triggers lazily to keep the import graph acyclic).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import FCMAConfig
    from ..svm.cross_validation import KernelBackend
    from .stage_graph import StageGraph

__all__ = [
    "available_backends",
    "available_variants",
    "backend_factory",
    "create_backend",
    "graph_builder",
    "register_backend",
    "register_variant",
]

#: name -> factory building a (multiclass-wrapped) backend from a config.
BackendFactory = Callable[["FCMAConfig"], "KernelBackend"]
#: name -> builder producing the variant's stage graph from a config.
GraphBuilder = Callable[["FCMAConfig"], "StageGraph"]


def _phisvm(config: "FCMAConfig") -> "KernelBackend":
    from ..svm.multiclass import as_multiclass
    from ..svm.phisvm import PhiSVM

    return as_multiclass(PhiSVM(c=config.svm_c, tol=config.svm_tol))


def _libsvm(config: "FCMAConfig") -> "KernelBackend":
    from ..svm.libsvm_like import LibSVMClassifier
    from ..svm.multiclass import as_multiclass

    return as_multiclass(LibSVMClassifier(c=config.svm_c, tol=config.svm_tol))


def _libsvm_float32(config: "FCMAConfig") -> "KernelBackend":
    from ..svm.libsvm_like import LibSVMClassifier
    from ..svm.multiclass import as_multiclass

    return as_multiclass(
        LibSVMClassifier(c=config.svm_c, tol=config.svm_tol, single_precision=True)
    )


_BACKENDS: dict[str, BackendFactory] = {
    "phisvm": _phisvm,
    "libsvm": _libsvm,
    "libsvm-float32": _libsvm_float32,
}

#: Variant builders; the built-ins self-register when stage_graph loads.
_VARIANTS: dict[str, GraphBuilder] = {}
#: Names config validation accepts even before stage_graph has loaded.
_BUILTIN_VARIANTS = ("baseline", "optimized", "optimized-batched", "sparse-batched")


def register_backend(
    name: str, factory: BackendFactory, *, overwrite: bool = False
) -> None:
    """Register an SVM backend under ``name``.

    The factory receives the run's ``FCMAConfig`` and returns any object
    satisfying the :class:`~repro.svm.cross_validation.KernelBackend`
    protocol (wrap with ``as_multiclass`` for >2 conditions).
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    if not overwrite and name in _BACKENDS:
        raise ValueError(f"backend {name!r} is already registered")
    _BACKENDS[name] = factory


def register_variant(
    name: str, builder: GraphBuilder, *, overwrite: bool = False
) -> None:
    """Register a pipeline variant's stage-graph builder under ``name``."""
    if not name:
        raise ValueError("variant name must be non-empty")
    if not overwrite and name in _VARIANTS:
        raise ValueError(f"variant {name!r} is already registered")
    _VARIANTS[name] = builder


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def available_variants() -> tuple[str, ...]:
    """Registered variant names, sorted (built-ins always included)."""
    return tuple(sorted(set(_VARIANTS) | set(_BUILTIN_VARIANTS)))


def backend_factory(name: str) -> BackendFactory:
    """The factory registered under ``name``; KeyError lists options."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown svm backend {name!r}; registered: "
            f"{', '.join(available_backends())}"
        ) from None


def create_backend(config: "FCMAConfig") -> "KernelBackend":
    """Instantiate the config's (variant-resolved) SVM backend."""
    return backend_factory(config.resolved_backend())(config)


def graph_builder(name: str) -> GraphBuilder:
    """The stage-graph builder for a variant name.

    Importing :mod:`repro.exec.stage_graph` here (not at module import)
    lets core config validation consult this registry without creating
    an import cycle through the stage bodies.
    """
    if name in _BUILTIN_VARIANTS and name not in _VARIANTS:
        from . import stage_graph  # noqa: F401  (self-registers built-ins)
    try:
        return _VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown pipeline variant {name!r}; registered: "
            f"{', '.join(available_variants())}"
        ) from None


def _reset_to_defaults() -> None:
    """Test hook: drop third-party registrations."""
    _BACKENDS.clear()
    _BACKENDS.update(
        {"phisvm": _phisvm, "libsvm": _libsvm, "libsvm-float32": _libsvm_float32}
    )
    for name in [n for n in _VARIANTS if n not in _BUILTIN_VARIANTS]:
        del _VARIANTS[name]
