"""Selection accuracy: scoring FCMA voxel selection against planted truth.

The ground-truth generator (:mod:`repro.data.designs`) plants a known
set of informative voxels; FCMA ranks every voxel by cross-validation
accuracy.  This module turns that ranking into standard retrieval
metrics against the planted set:

* **ROC-AUC** — probability that a random informative voxel outranks a
  random uninformative one (rank statistic, average ranks on ties);
* **average precision** — area under the precision-recall curve of the
  ranking (ties broken deterministically by voxel id, matching
  :meth:`~repro.core.results.VoxelScores.sorted_by_accuracy`);
* **top-k hit rate** — fraction of the k selected voxels that are truly
  informative (k defaults to the planted set size, where precision@k
  equals recall@k).

All three are pure functions of the ranking and the planted set, so
they are exactly as deterministic as the pipeline that produced the
scores — the property the accuracy drift gate relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.results import VoxelScores

__all__ = [
    "SelectionScore",
    "average_precision",
    "roc_auc",
    "score_selection",
    "top_k_hit_rate",
]


def _validated(
    values: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    values = np.asarray(values, dtype=np.float64)
    labels = np.asarray(labels, dtype=bool)
    if values.ndim != 1 or values.shape != labels.shape:
        raise ValueError("values and labels must be 1D and equal length")
    n_pos = int(labels.sum())
    if n_pos == 0 or n_pos == labels.size:
        raise ValueError(
            "need at least one positive and one negative label "
            f"(got {n_pos} positives of {labels.size})"
        )
    return values, labels


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks of ``values``, ties sharing their average rank."""
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    ranks = np.empty(values.size, dtype=np.float64)
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    return ranks


def roc_auc(values: np.ndarray, labels: np.ndarray) -> float:
    """Area under the ROC curve of ranking ``labels`` by ``values``.

    Computed as the Mann-Whitney U statistic with average ranks on
    ties, so exchanging tied voxels never changes the result.
    """
    values, labels = _validated(values, labels)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    ranks = _average_ranks(values)
    u = float(ranks[labels].sum()) - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def average_precision(values: np.ndarray, labels: np.ndarray) -> float:
    """Average precision of ranking ``labels`` by descending ``values``.

    Ties are broken by ascending index — the same deterministic order
    as :meth:`repro.core.results.VoxelScores.sorted_by_accuracy` — so
    the metric is a pure function of the selection output.
    """
    values, labels = _validated(values, labels)
    order = np.lexsort((np.arange(values.size), -values))
    hits = labels[order]
    precision_at = np.cumsum(hits) / np.arange(1, values.size + 1)
    return float(precision_at[hits].sum() / hits.sum())


def top_k_hit_rate(scores: VoxelScores, truth: np.ndarray, k: int) -> float:
    """Fraction of the ``k`` best-classifying voxels that are planted."""
    if k < 1:
        raise ValueError("k must be >= 1")
    truth = np.asarray(truth, dtype=np.int64)
    selected = scores.top(k).voxels
    hits = np.intersect1d(selected, truth).size
    return hits / min(k, truth.size) if truth.size else 0.0


@dataclass(frozen=True)
class SelectionScore:
    """The accuracy verdict for one selection against planted truth."""

    roc_auc: float
    average_precision: float
    top_k_hit_rate: float
    #: The k used for the hit rate (defaults to the planted set size).
    top_k: int
    #: Size of the planted informative set.
    n_informative: int
    #: Total voxels the selection ranked.
    n_scored: int

    def as_metrics(self, prefix: str = "") -> dict[str, float]:
        """Flat metric dict (registry vocabulary under ``prefix``)."""
        return {
            f"{prefix}roc_auc": self.roc_auc,
            f"{prefix}average_precision": self.average_precision,
            f"{prefix}top_k_hit_rate": self.top_k_hit_rate,
        }


def score_selection(
    scores: VoxelScores,
    truth: np.ndarray,
    top_k: int | None = None,
) -> SelectionScore:
    """Score an FCMA selection against the planted informative set.

    ``truth`` holds the planted voxel ids
    (:func:`repro.data.designs.design_ground_truth`); every planted id
    must have been scored.  ``top_k`` defaults to the planted set size.
    """
    truth = np.unique(np.asarray(truth, dtype=np.int64))
    if truth.size == 0:
        raise ValueError("truth must name at least one planted voxel")
    missing = np.setdiff1d(truth, scores.voxels)
    if missing.size:
        raise ValueError(
            f"planted voxels were never scored: {missing[:5].tolist()}..."
            if missing.size > 5
            else f"planted voxels were never scored: {missing.tolist()}"
        )
    labels = np.isin(scores.voxels, truth)
    k = int(truth.size if top_k is None else top_k)
    return SelectionScore(
        roc_auc=roc_auc(scores.accuracies, labels),
        average_precision=average_precision(scores.accuracies, labels),
        top_k_hit_rate=top_k_hit_rate(scores, truth, k),
        top_k=k,
        n_informative=int(truth.size),
        n_scored=len(scores),
    )
