"""Scenario matrix: sweep design x SNR x SF x subjects, gate accuracy.

A :class:`Scenario` is one complete simulated experiment
(:class:`~repro.data.designs.GroundTruthConfig`); a
:class:`ScenarioMatrix` sweeps the grid the TMFC pipelines vary —
design kind, SNR, scaling factor SF, and subject count.  Running a
scenario generates the dataset, runs FCMA voxel selection through a
real executor, and scores the ranking against the planted informative
set (:func:`repro.eval.accuracy.score_selection`).

Results flatten into the benchmark-history registry under the ``acc.*``
metric vocabulary: ``acc.<design>.snr<q>.sf<q>.subj<n>.roc_auc`` (and
``.average_precision`` / ``.top_k_hit_rate``) are deterministic metrics
— ``fcma perf check`` compares them cross-machine at exact tolerance,
drift-gating accuracy exactly like timing; the per-scenario
``...wall_seconds`` lands in the timing class (same-machine only).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..core.pipeline import FCMAConfig
from ..core.results import VoxelScores
from ..data.designs import (
    DESIGN_PRESETS,
    ConnectivityConfig,
    GroundTruthConfig,
    design_ground_truth,
    generate_design_dataset,
)
from ..exec.context import RunContext
from ..exec.executors import make_executor
from ..obs.perf.registry import BenchmarkRecord, config_fingerprint
from .accuracy import SelectionScore, score_selection

__all__ = [
    "Scenario",
    "ScenarioMatrix",
    "ScenarioResult",
    "default_matrix",
    "format_accuracy_table",
    "matrix_record",
    "max_roc_auc",
    "run_matrix",
    "run_scenario",
    "scenario_fcma_config",
    "smoke_matrix",
]


def scenario_fcma_config() -> FCMAConfig:
    """The pipeline configuration every accuracy scenario runs under.

    One shared config keeps the recorded ``acc.*`` metrics comparable
    across the CLI, the benchmark suite, and CI — the drift gate judges
    like against like.
    """
    return FCMAConfig(target_block=64)


@dataclass(frozen=True)
class Scenario:
    """One simulated experiment plus how to score its selection."""

    config: GroundTruthConfig
    #: Hit-rate cutoff; ``None`` uses the planted set size.
    top_k: int | None = None

    @property
    def key(self) -> str:
        """Stable metric-key segment: ``block.snr6.sf1.subj4``."""
        conn = self.config.connectivity
        return (
            f"{self.config.design.kind}"
            f".snr{conn.snr:g}.sf{conn.sf:g}"
            f".subj{self.config.n_subjects}"
        )


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario's accuracy verdict plus the raw selection."""

    scenario: Scenario
    score: SelectionScore
    selection: VoxelScores
    wall_seconds: float

    def metrics(self) -> dict[str, float]:
        """Registry metrics under the scenario's ``acc.`` prefix."""
        prefix = f"acc.{self.scenario.key}"
        out = self.score.as_metrics(f"{prefix}.")
        out[f"{prefix}.wall_seconds"] = self.wall_seconds
        return out


@dataclass(frozen=True)
class ScenarioMatrix:
    """The sweep grid: design x SNR x SF x subjects at fixed geometry."""

    designs: tuple[str, ...] = ("block", "event", "jittered")
    #: Descending SNR grid (the accuracy table's columns).
    snrs: tuple[float, ...] = (6.0, 1.0, 0.3)
    sfs: tuple[float, ...] = (1.0,)
    subjects: tuple[int, ...] = (4,)
    n_voxels: int = 96
    seed: int = 2015
    connectivity: ConnectivityConfig = field(
        default_factory=ConnectivityConfig
    )

    def __post_init__(self) -> None:
        if not self.designs or not self.snrs or not self.sfs:
            raise ValueError("designs, snrs, and sfs must be non-empty")
        if not self.subjects:
            raise ValueError("subjects must be non-empty")
        unknown = [d for d in self.designs if d not in DESIGN_PRESETS]
        if unknown:
            raise ValueError(
                f"unknown designs {unknown}; "
                f"choose from {sorted(DESIGN_PRESETS)}"
            )
        if any(n < 1 for n in self.subjects):
            raise ValueError("subject counts must be >= 1")

    def __len__(self) -> int:
        return (
            len(self.designs)
            * len(self.snrs)
            * len(self.sfs)
            * len(self.subjects)
        )

    def scaled(self, **overrides: object) -> "ScenarioMatrix":
        """Copy of this matrix with fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    def scenarios(self) -> list[Scenario]:
        """The grid flattened in design-major, SNR-descending order."""
        out: list[Scenario] = []
        for kind in self.designs:
            for snr in self.snrs:
                for sf in self.sfs:
                    for n_subjects in self.subjects:
                        config = GroundTruthConfig(
                            design=DESIGN_PRESETS[kind](),
                            connectivity=self.connectivity.scaled(
                                snr=snr, sf=sf
                            ),
                            n_voxels=self.n_voxels,
                            n_subjects=n_subjects,
                            seed=self.seed,
                            name=f"scenario-{kind}",
                        )
                        out.append(Scenario(config))
        return out


def smoke_matrix() -> ScenarioMatrix:
    """The CI smoke grid: block design at the SNR extremes (2 runs)."""
    return ScenarioMatrix(designs=("block",), snrs=(6.0, 0.3))


def default_matrix() -> ScenarioMatrix:
    """The full preset grid: every design across the SNR ladder."""
    return ScenarioMatrix()


def run_scenario(
    scenario: Scenario,
    *,
    executor: str = "serial",
    n_workers: int = 2,
    fcma: FCMAConfig | None = None,
) -> ScenarioResult:
    """Generate, select, and score one scenario end to end."""
    config = fcma if fcma is not None else scenario_fcma_config()
    dataset = generate_design_dataset(scenario.config)
    truth = design_ground_truth(scenario.config)
    t0 = time.perf_counter()
    runner = make_executor(executor, n_workers=n_workers)
    selection = runner.run(
        dataset, RunContext(config, seed=scenario.config.seed)
    )
    wall = time.perf_counter() - t0
    score = score_selection(selection, truth, top_k=scenario.top_k)
    return ScenarioResult(
        scenario=scenario,
        score=score,
        selection=selection,
        wall_seconds=wall,
    )


def run_matrix(
    matrix: ScenarioMatrix,
    *,
    executor: str = "serial",
    n_workers: int = 2,
    fcma: FCMAConfig | None = None,
    progress: Callable[[ScenarioResult], None] | None = None,
) -> list[ScenarioResult]:
    """Run every scenario of the matrix; ``progress`` sees each result."""
    results: list[ScenarioResult] = []
    for scenario in matrix.scenarios():
        result = run_scenario(
            scenario, executor=executor, n_workers=n_workers, fcma=fcma
        )
        results.append(result)
        if progress is not None:
            progress(result)
    return results


def matrix_record(
    matrix: ScenarioMatrix,
    results: list[ScenarioResult],
    *,
    name: str = "scenario-accuracy",
    executor: str = "serial",
) -> BenchmarkRecord:
    """Flatten a matrix run into one benchmark-history record."""
    if not results:
        raise ValueError("cannot record an empty matrix run")
    metrics: dict[str, float] = {}
    for result in results:
        metrics.update(result.metrics())
    attrs: dict[str, Any] = {
        "suite": "scenario-accuracy",
        "executor": executor,
        "n_scenarios": len(results),
        "designs": list(matrix.designs),
        "snrs": list(matrix.snrs),
        "sfs": list(matrix.sfs),
        "subjects": list(matrix.subjects),
        "n_voxels": matrix.n_voxels,
        "seed": matrix.seed,
    }
    return BenchmarkRecord(
        name=name,
        metrics=metrics,
        config_hash=config_fingerprint(matrix, scenario_fcma_config()),
        attrs=attrs,
    )


def format_accuracy_table(results: list[ScenarioResult]) -> str:
    """Render a per-SNR ROC-AUC table (rows: design/sf/subjects).

    Cells show ``auc (hit)`` — the ROC-AUC of the planted-set ranking
    and the top-k hit rate at the planted set size.  Columns follow the
    matrix's SNR order (descending by convention), so a healthy
    generator reads as monotone decay left to right.
    """
    if not results:
        return "(no scenarios)"
    snrs: list[float] = []
    rows: dict[tuple[str, float, int], dict[float, SelectionScore]] = {}
    for result in results:
        config = result.scenario.config
        conn = config.connectivity
        if conn.snr not in snrs:
            snrs.append(conn.snr)
        row = rows.setdefault(
            (config.design.kind, conn.sf, config.n_subjects), {}
        )
        row[conn.snr] = result.score
    header = ["design", "sf", "subj"] + [f"snr={s:g}" for s in snrs]
    table = [header]
    for (kind, sf, n_subjects), cells in rows.items():
        line = [kind, f"{sf:g}", str(n_subjects)]
        for snr in snrs:
            score = cells.get(snr)
            line.append(
                "-"
                if score is None
                else f"{score.roc_auc:.3f} ({score.top_k_hit_rate:.2f})"
            )
        table.append(line)
    widths = [
        max(len(row[col]) for row in table) for col in range(len(header))
    ]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in table
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    return "\n".join(lines)


def max_roc_auc(results: list[ScenarioResult]) -> float:
    """The best ROC-AUC across a matrix run (the CLI floor gate)."""
    if not results:
        raise ValueError("no scenarios were run")
    return max(result.score.roc_auc for result in results)
