"""Accuracy evaluation: scoring FCMA against planted ground truth.

The :mod:`repro.eval` package closes the loop the benchmarks leave
open: every perf suite gates *speed* and *bitwise equivalence*, this
package gates whether voxel selection is *right*.  It scores rankings
against the planted informative set (:mod:`repro.eval.accuracy`) and
sweeps scenario grids whose results land in the benchmark-history
registry under the ``acc.*`` vocabulary (:mod:`repro.eval.scenarios`),
so ``fcma perf check`` drift-gates accuracy exactly like timing.
"""

from .accuracy import (
    SelectionScore,
    average_precision,
    roc_auc,
    score_selection,
    top_k_hit_rate,
)
from .scenarios import (
    Scenario,
    ScenarioMatrix,
    ScenarioResult,
    default_matrix,
    format_accuracy_table,
    matrix_record,
    max_roc_auc,
    run_matrix,
    run_scenario,
    scenario_fcma_config,
    smoke_matrix,
)

__all__ = [
    "Scenario",
    "ScenarioMatrix",
    "ScenarioResult",
    "SelectionScore",
    "average_precision",
    "default_matrix",
    "format_accuracy_table",
    "matrix_record",
    "max_roc_auc",
    "roc_auc",
    "run_matrix",
    "run_scenario",
    "scenario_fcma_config",
    "score_selection",
    "smoke_matrix",
    "top_k_hit_rate",
]
