"""Kernel functions for the SVM backends.

FCMA uses the linear kernel exclusively (Section 3.1: "we use linear SVM
to avoid overfitting" on ~35,000-dimensional correlation vectors with a
few hundred samples), but the solver is kernel-agnostic, so the standard
alternatives are provided for completeness and for tests that need
non-linear separability.
"""

from __future__ import annotations

import numpy as np

__all__ = ["linear_kernel", "polynomial_kernel", "rbf_kernel", "validate_kernel_matrix"]


def linear_kernel(x: np.ndarray, z: np.ndarray | None = None) -> np.ndarray:
    """Gram matrix ``X Z^T`` (or ``X X^T``), in X's floating dtype.

    This is exactly the paper's kernel-precompute stage reduced to one
    BLAS call; the blocked equivalent lives in
    :func:`repro.core.kernels.kernel_matrix_blocked`.
    """
    x = np.asarray(x)
    if x.ndim != 2:
        raise ValueError(f"x must be 2D (samples, features), got {x.shape}")
    if z is None:
        return x @ x.T
    z = np.asarray(z)
    if z.ndim != 2 or z.shape[1] != x.shape[1]:
        raise ValueError(
            f"z must be 2D with {x.shape[1]} features, got {z.shape}"
        )
    return x @ z.T


def polynomial_kernel(
    x: np.ndarray,
    z: np.ndarray | None = None,
    degree: int = 3,
    gamma: float | None = None,
    coef0: float = 1.0,
) -> np.ndarray:
    """``(gamma <x, z> + coef0) ** degree``; gamma defaults to 1/n_features."""
    if degree < 1:
        raise ValueError("degree must be >= 1")
    base = linear_kernel(x, z)
    g = 1.0 / x.shape[1] if gamma is None else gamma
    return (g * base + coef0) ** degree


def rbf_kernel(
    x: np.ndarray, z: np.ndarray | None = None, gamma: float | None = None
) -> np.ndarray:
    """``exp(-gamma ||x - z||^2)``; gamma defaults to 1/n_features."""
    x = np.asarray(x, dtype=np.float64)
    zz = x if z is None else np.asarray(z, dtype=np.float64)
    if zz.ndim != 2 or zz.shape[1] != x.shape[1]:
        raise ValueError("z must be 2D with matching feature count")
    g = 1.0 / x.shape[1] if gamma is None else gamma
    if g <= 0:
        raise ValueError("gamma must be positive")
    sq_x = (x * x).sum(axis=1)[:, None]
    sq_z = (zz * zz).sum(axis=1)[None, :]
    d2 = np.maximum(sq_x + sq_z - 2.0 * (x @ zz.T), 0.0)
    return np.exp(-g * d2)


def validate_kernel_matrix(kernel: np.ndarray, atol: float = 1e-4) -> np.ndarray:
    """Check a precomputed kernel is square, finite, and symmetric.

    Returns the validated array (no copy).  A loose symmetry tolerance is
    used because float32 syrk-style accumulation is not bitwise
    symmetric.
    """
    kernel = np.asarray(kernel)
    if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
        raise ValueError(f"kernel must be square, got shape {kernel.shape}")
    if not np.isfinite(kernel).all():
        raise ValueError("kernel contains non-finite values")
    scale = max(float(np.abs(kernel).max()), 1.0)
    if not np.allclose(kernel, kernel.T, atol=atol * scale):
        raise ValueError("kernel matrix is not symmetric")
    return kernel
