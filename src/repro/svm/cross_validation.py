"""Cross-validation over precomputed kernel matrices.

FCMA scores each voxel by "leave one subject out at a time"
cross-validation (Section 3.1): for each fold, the SVM trains on the
kernel submatrix of the remaining subjects' epochs and is tested on the
held-out subject's rows.  Because the full M x M kernel is precomputed,
both the training submatrix and the test-versus-train block are simple
slices — no kernel recomputation per fold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

__all__ = [
    "KernelBackend",
    "BatchKernelBackend",
    "CrossValidationResult",
    "BatchCrossValidationResult",
    "grouped_cross_validation",
    "grouped_cross_validation_batch",
    "loso_cross_validation",
    "kfold_ids",
]


class KernelBackend(Protocol):
    """Any SVM backend trainable from a precomputed kernel."""

    def fit_kernel(self, kernel: np.ndarray, labels: np.ndarray): ...


class BatchKernelBackend(Protocol):
    """An SVM backend that can train many stacked kernels jointly."""

    def fit_kernel_batch(self, kernels: np.ndarray, labels: np.ndarray): ...


@dataclass(frozen=True)
class CrossValidationResult:
    """Per-fold outcomes of one grouped cross-validation."""

    #: Distinct fold ids in evaluation order.
    folds: np.ndarray
    #: Held-out accuracy per fold.
    fold_accuracies: np.ndarray
    #: Held-out sample count per fold.
    fold_sizes: np.ndarray
    #: Solver iterations per fold (load indicator for the perf models).
    fold_iterations: np.ndarray

    @property
    def accuracy(self) -> float:
        """Sample-weighted mean held-out accuracy."""
        total = self.fold_sizes.sum()
        if total == 0:
            return 0.0
        return float((self.fold_accuracies * self.fold_sizes).sum() / total)

    @property
    def total_iterations(self) -> int:
        """Total SMO iterations across folds."""
        return int(self.fold_iterations.sum())


def grouped_cross_validation(
    backend: KernelBackend,
    kernel: np.ndarray,
    labels: np.ndarray,
    fold_ids: np.ndarray,
) -> CrossValidationResult:
    """Grouped CV: one fold per distinct value of ``fold_ids``.

    Skips degenerate folds whose *training* set would contain fewer than
    two classes (cannot train an SVM) — such folds get accuracy 0, which
    penalizes rather than silently inflates the voxel's score.
    """
    kernel = np.asarray(kernel)
    labels = np.asarray(labels)
    fold_ids = np.asarray(fold_ids)
    n = kernel.shape[0]
    if kernel.ndim != 2 or kernel.shape[1] != n:
        raise ValueError(f"kernel must be square, got {kernel.shape}")
    if labels.shape != (n,) or fold_ids.shape != (n,):
        raise ValueError("labels and fold_ids must match the kernel size")
    folds = np.unique(fold_ids)
    if folds.size < 2:
        raise ValueError("grouped CV needs at least 2 folds")

    accuracies = np.zeros(folds.size)
    sizes = np.zeros(folds.size, dtype=np.int64)
    iterations = np.zeros(folds.size, dtype=np.int64)
    for k, fold in enumerate(folds):
        test_mask = fold_ids == fold
        train_mask = ~test_mask
        train_idx = np.nonzero(train_mask)[0]
        test_idx = np.nonzero(test_mask)[0]
        sizes[k] = test_idx.size
        train_labels = labels[train_idx]
        if np.unique(train_labels).size < 2:
            accuracies[k] = 0.0
            continue
        sub_kernel = kernel[np.ix_(train_idx, train_idx)]
        model = backend.fit_kernel(sub_kernel, train_labels)
        test_block = kernel[np.ix_(test_idx, train_idx)]
        accuracies[k] = model.accuracy(test_block, labels[test_idx])
        iterations[k] = model.iterations
    return CrossValidationResult(
        folds=folds,
        fold_accuracies=accuracies,
        fold_sizes=sizes,
        fold_iterations=iterations,
    )


@dataclass(frozen=True)
class BatchCrossValidationResult:
    """Per-fold outcomes of one grouped CV over ``B`` stacked problems."""

    #: Distinct fold ids in evaluation order, shape (F,).
    folds: np.ndarray
    #: Held-out accuracy per problem and fold, shape (B, F).
    fold_accuracies: np.ndarray
    #: Held-out sample count per fold (shared by all problems), shape (F,).
    fold_sizes: np.ndarray
    #: Solver iterations per problem and fold, shape (B, F).
    fold_iterations: np.ndarray

    @property
    def accuracies(self) -> np.ndarray:
        """Sample-weighted mean held-out accuracy per problem, shape (B,)."""
        total = self.fold_sizes.sum()
        if total == 0:
            return np.zeros(self.fold_accuracies.shape[0])
        return (self.fold_accuracies * self.fold_sizes[None, :]).sum(
            axis=1
        ) / total

    @property
    def total_iterations(self) -> np.ndarray:
        """Total SMO iterations per problem across folds, shape (B,)."""
        return self.fold_iterations.sum(axis=1)

    def problem(self, b: int) -> CrossValidationResult:
        """Problem ``b``'s folds as a scalar :class:`CrossValidationResult`."""
        return CrossValidationResult(
            folds=self.folds,
            fold_accuracies=self.fold_accuracies[b],
            fold_sizes=self.fold_sizes,
            fold_iterations=self.fold_iterations[b],
        )


def grouped_cross_validation_batch(
    backend: BatchKernelBackend,
    kernels: np.ndarray,
    labels: np.ndarray,
    fold_ids: np.ndarray,
) -> BatchCrossValidationResult:
    """Grouped CV over ``B`` stacked kernel matrices at once.

    The batched counterpart of :func:`grouped_cross_validation` for the
    FCMA stage-3 situation: every problem (voxel) shares the epochs, so
    the fold partition is common and each fold's training kernels are
    pure stacked submatrix slices ``kernels[:, train, train]``.  Fold
    semantics are identical to the sequential driver, including the
    degenerate-training-fold rule (accuracy 0 for every problem).
    """
    kernels = np.asarray(kernels)
    labels = np.asarray(labels)
    fold_ids = np.asarray(fold_ids)
    if kernels.ndim != 3 or kernels.shape[1] != kernels.shape[2]:
        raise ValueError(
            f"kernels must be (problems, n, n), got {kernels.shape}"
        )
    b, n = kernels.shape[0], kernels.shape[1]
    if labels.shape != (n,) or fold_ids.shape != (n,):
        raise ValueError("labels and fold_ids must match the kernel size")
    folds = np.unique(fold_ids)
    if folds.size < 2:
        raise ValueError("grouped CV needs at least 2 folds")

    accuracies = np.zeros((b, folds.size))
    sizes = np.zeros(folds.size, dtype=np.int64)
    iterations = np.zeros((b, folds.size), dtype=np.int64)
    for k, fold in enumerate(folds):
        test_mask = fold_ids == fold
        train_idx = np.nonzero(~test_mask)[0]
        test_idx = np.nonzero(test_mask)[0]
        sizes[k] = test_idx.size
        train_labels = labels[train_idx]
        if np.unique(train_labels).size < 2:
            continue
        sub_kernels = kernels[:, train_idx[:, None], train_idx[None, :]]
        models = backend.fit_kernel_batch(sub_kernels, train_labels)
        test_blocks = kernels[:, test_idx[:, None], train_idx[None, :]]
        accuracies[:, k] = models.accuracy(test_blocks, labels[test_idx])
        iterations[:, k] = models.iterations
    return BatchCrossValidationResult(
        folds=folds,
        fold_accuracies=accuracies,
        fold_sizes=sizes,
        fold_iterations=iterations,
    )


def loso_cross_validation(
    backend: KernelBackend,
    kernel: np.ndarray,
    labels: np.ndarray,
    subjects: np.ndarray,
) -> CrossValidationResult:
    """Leave-one-subject-out CV: folds are the subject ids.

    This is the paper's voxel-scoring procedure verbatim; it is a named
    alias of :func:`grouped_cross_validation` to keep call sites
    self-documenting.
    """
    return grouped_cross_validation(backend, kernel, labels, subjects)


def kfold_ids(n_samples: int, n_folds: int) -> np.ndarray:
    """Contiguous k-fold assignment for single-subject (online) CV.

    Online analysis has only one subject, so LOSO is unavailable; the
    paper's online mode cross-validates within the subject's epochs.
    Contiguous blocks (not interleaved) keep temporally adjacent epochs
    in the same fold, reducing leakage between train and test.
    """
    if n_folds < 2:
        raise ValueError("n_folds must be >= 2")
    if n_folds > n_samples:
        raise ValueError(
            f"n_folds {n_folds} exceeds n_samples {n_samples}"
        )
    return (np.arange(n_samples) * n_folds) // n_samples
