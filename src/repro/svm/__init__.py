"""SVM substrate: SMO solver, selection heuristics, PhiSVM, and the
LibSVM-like baseline."""

from .cross_validation import (
    BatchCrossValidationResult,
    CrossValidationResult,
    grouped_cross_validation,
    grouped_cross_validation_batch,
    kfold_ids,
    loso_cross_validation,
)
from .heuristics import (
    AdaptiveSelector,
    FirstOrderSelector,
    SecondOrderSelector,
    SelectionState,
    WorkingSetSelector,
)
from .kernels import (
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
    validate_kernel_matrix,
)
from .grid import GridResult, default_c_grid, select_c
from .libsvm_like import CachedLinearKernel, LibSVMClassifier, SparseNodes
from .multiclass import OneVsOneClassifier, OneVsOneModel, as_multiclass
from .model import BatchSVMModel, SVMModel
from .phisvm import PhiSVM
from .platt import PlattScaler, fit_platt
from .smo import (
    BatchSMOResult,
    DenseKernel,
    KernelOracle,
    SMOResult,
    solve_smo,
    solve_smo_batch,
)

__all__ = [
    "AdaptiveSelector",
    "BatchCrossValidationResult",
    "BatchSMOResult",
    "BatchSVMModel",
    "CachedLinearKernel",
    "CrossValidationResult",
    "DenseKernel",
    "FirstOrderSelector",
    "GridResult",
    "KernelOracle",
    "LibSVMClassifier",
    "OneVsOneClassifier",
    "OneVsOneModel",
    "PhiSVM",
    "PlattScaler",
    "SMOResult",
    "SVMModel",
    "SecondOrderSelector",
    "SelectionState",
    "SparseNodes",
    "WorkingSetSelector",
    "as_multiclass",
    "default_c_grid",
    "fit_platt",
    "grouped_cross_validation",
    "grouped_cross_validation_batch",
    "kfold_ids",
    "linear_kernel",
    "loso_cross_validation",
    "polynomial_kernel",
    "rbf_kernel",
    "select_c",
    "solve_smo",
    "solve_smo_batch",
    "validate_kernel_matrix",
]
