"""LibSVM-like baseline classifier (the paper's Section 3.2 / 3.3.3 foil).

A faithful algorithmic port of the pieces of LibSVM that FCMA's baseline
exercised, including the traits the paper identifies as performance
problems on the coprocessor:

* **Sparse node storage**: samples are stored as (index, value) node
  arrays even when dense, exactly like ``svm_node`` — "it stores data in
  sparse index set instead of dense matrix".
* **Double precision** in all numeric loops — "uses double precision
  values in the computationally intensive loops", with input data
  converted from float32 ("unnecessary data type conversions").
* **On-demand kernel rows through an LRU cache** (LibSVM's kernel cache)
  when training from raw features, or a precomputed kernel matrix (the
  ``-t 4`` mode FCMA's baseline used after its ``ssyrk`` precompute).
* **Second-order working-set selection** (WSS 2) — LibSVM's default.
* **Shrinking** (LibSVM's ``-h 1``, on by default): bounded variables
  are periodically dropped from the working set, with full-set
  re-verification before declaring convergence.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from scipy import sparse as sp

from .heuristics import SecondOrderSelector
from .kernels import validate_kernel_matrix
from .model import SVMModel, encode_labels
from .smo import solve_smo

__all__ = ["SparseNodes", "CachedLinearKernel", "LibSVMClassifier"]


class SparseNodes:
    """``svm_node``-style storage: per-sample (index, value) arrays.

    Values are stored in double precision regardless of input dtype,
    mirroring LibSVM's conversion of incoming data.
    """

    def __init__(self, x: np.ndarray, threshold: float = 0.0):
        x = np.asarray(x)
        if x.ndim != 2:
            raise ValueError(f"x must be 2D, got shape {x.shape}")
        self.n_samples, self.n_features = x.shape
        self._rows: list[tuple[np.ndarray, np.ndarray]] = []
        nnz = 0
        for row in x:
            keep = np.nonzero(np.abs(row) > threshold)[0]
            self._rows.append(
                (keep.astype(np.int32), row[keep].astype(np.float64))
            )
            nnz += keep.size
        self.nnz = nnz

    def row_nodes(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """(indices, values) node arrays for sample ``i``."""
        return self._rows[i]

    def to_csr(self) -> sp.csr_matrix:
        """The samples as a CSR matrix (double precision)."""
        indptr = np.zeros(self.n_samples + 1, dtype=np.int64)
        for i, (idx, _) in enumerate(self._rows):
            indptr[i + 1] = indptr[i] + idx.size
        indices = np.concatenate([idx for idx, _ in self._rows]) if self.nnz else np.empty(0, np.int32)
        data = np.concatenate([val for _, val in self._rows]) if self.nnz else np.empty(0, np.float64)
        return sp.csr_matrix(
            (data, indices, indptr), shape=(self.n_samples, self.n_features)
        )

    def dense_row(self, i: int) -> np.ndarray:
        """Sample ``i`` densified to a float64 vector."""
        out = np.zeros(self.n_features, dtype=np.float64)
        idx, val = self._rows[i]
        out[idx] = val
        return out


class CachedLinearKernel:
    """Linear-kernel oracle with LibSVM's LRU row cache.

    Rows are computed as sparse matrix-vector products against the full
    sample set and cached up to ``cache_bytes`` (LibSVM's ``-m``,
    default 100 MB).
    """

    def __init__(self, nodes: SparseNodes, cache_bytes: int = 100 * 1024**2):
        if cache_bytes <= 0:
            raise ValueError("cache_bytes must be positive")
        self._nodes = nodes
        self._csr = nodes.to_csr()
        n = nodes.n_samples
        row_bytes = n * 8
        self._max_rows = max(2, cache_bytes // max(row_bytes, 1))
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._diag = np.array(
            [float(val @ val) for _, val in (nodes.row_nodes(i) for i in range(n))],
            dtype=np.float64,
        )
        #: Cache statistics (for the perf model and tests).
        self.hits = 0
        self.misses = 0

    @property
    def shape(self) -> tuple[int, int]:
        n = self._nodes.n_samples
        return (n, n)

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(np.float64)

    def row(self, i: int) -> np.ndarray:
        if i in self._cache:
            self.hits += 1
            self._cache.move_to_end(i)
            return self._cache[i]
        self.misses += 1
        row = self._csr @ self._nodes.dense_row(i)
        if len(self._cache) >= self._max_rows:
            self._cache.popitem(last=False)
        self._cache[i] = row
        return row

    def diagonal(self) -> np.ndarray:
        return self._diag


class LibSVMClassifier:
    """The baseline SVM: LibSVM's algorithm and storage discipline.

    Parameters mirror LibSVM's: ``c`` (``-c``), ``tol`` (``-e``),
    ``cache_bytes`` (``-m``), ``shrinking`` (``-h``).
    ``single_precision=True`` gives the paper's "optimized LibSVM"
    variant of Table 8 — same algorithm and sparse storage, but float32
    numeric loops.
    """

    def __init__(
        self,
        c: float = 1.0,
        tol: float = 1e-3,
        max_iter: int | None = None,
        cache_bytes: int = 100 * 1024**2,
        single_precision: bool = False,
        shrinking: bool = True,
    ):
        if c <= 0:
            raise ValueError("C must be positive")
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.c = c
        self.tol = tol
        self.max_iter = max_iter
        self.cache_bytes = cache_bytes
        self.single_precision = single_precision
        self.shrinking = shrinking
        #: Kernel oracle used by the most recent raw-feature fit.
        self.last_kernel: CachedLinearKernel | None = None

    def _dtype(self) -> type:
        return np.float32 if self.single_precision else np.float64

    def fit(self, x: np.ndarray, labels: np.ndarray) -> SVMModel:
        """Train from raw features via sparse nodes + cached kernel rows."""
        nodes = SparseNodes(x)
        oracle = CachedLinearKernel(nodes, cache_bytes=self.cache_bytes)
        self.last_kernel = oracle
        y, classes = encode_labels(labels)
        result = solve_smo(
            oracle,
            y,
            c=self.c,
            tol=self.tol,
            max_iter=self.max_iter,
            selector=SecondOrderSelector(),
            shrinking=self.shrinking,
        )
        return SVMModel(
            dual_coef=(result.alpha * y).astype(self._dtype()),
            rho=result.rho,
            classes=classes,
            c=self.c,
            iterations=result.iterations,
            converged=result.converged,
            objective=result.objective,
        )

    def fit_kernel(self, kernel: np.ndarray, labels: np.ndarray) -> SVMModel:
        """Train on a precomputed kernel (LibSVM's ``-t 4`` mode).

        This is how FCMA's baseline invoked LibSVM after precomputing
        kernel matrices with ``cblas_ssyrk``.  The kernel is converted to
        the backend's working precision first (float64 unless
        ``single_precision``) — the paper's "unnecessary data type
        conversions".
        """
        kernel = validate_kernel_matrix(kernel)
        kernel = np.ascontiguousarray(kernel, dtype=self._dtype())
        y, classes = encode_labels(labels)
        result = solve_smo(
            kernel,
            y,
            c=self.c,
            tol=self.tol,
            max_iter=self.max_iter,
            selector=SecondOrderSelector(),
            shrinking=self.shrinking,
        )
        return SVMModel(
            dual_coef=(result.alpha * y).astype(self._dtype()),
            rho=result.rho,
            classes=classes,
            c=self.c,
            iterations=result.iterations,
            converged=result.converged,
            objective=result.objective,
        )

    def __repr__(self) -> str:
        precision = "float32" if self.single_precision else "float64"
        return f"LibSVMClassifier(c={self.c}, tol={self.tol}, {precision})"
