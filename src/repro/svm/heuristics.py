"""Working-set selection heuristics for SMO.

The paper's PhiSVM "adaptively chooses the faster heuristic (either first
order [Keerthi et al. 2001] or second order [Fan et al. 2005]) based on
the convergence rate on the specific training data" (Section 4.4).  This
module implements all three:

* :class:`FirstOrderSelector` — maximal violating pair (WSS 1).
* :class:`SecondOrderSelector` — second-order gain rule (WSS 2, LibSVM's
  default).
* :class:`AdaptiveSelector` — PhiSVM's runtime choice between the two.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Protocol

import numpy as np

__all__ = [
    "SelectionState",
    "WorkingSetSelector",
    "FirstOrderSelector",
    "SecondOrderSelector",
    "AdaptiveSelector",
]

_TAU = 1e-12


@dataclass
class SelectionState:
    """Live solver state a selector reads (views, never copies).

    ``kernel_row(i)`` returns kernel row ``K[i, :]``; routing row access
    through a callable lets the LibSVM-like backend serve rows from its
    LRU cache while PhiSVM serves dense-matrix views.
    """

    kernel_row: Callable[[int], np.ndarray]
    y: np.ndarray
    alpha: np.ndarray
    grad: np.ndarray
    diag: np.ndarray
    c: float
    #: Optional shrinking mask: selectors only consider active variables
    #: (LibSVM's shrinking heuristic restricts the working set this way).
    active: np.ndarray | None = None

    def masks(self) -> tuple[np.ndarray, np.ndarray]:
        """(I_up, I_low) membership masks of Keerthi et al.

        Restricted to the active set when shrinking is in effect.
        """
        pos = self.y > 0
        at_upper = self.alpha >= self.c
        at_lower = self.alpha <= 0.0
        i_up = (pos & ~at_upper) | (~pos & ~at_lower)
        i_low = (pos & ~at_lower) | (~pos & ~at_upper)
        if self.active is not None:
            i_up &= self.active
            i_low &= self.active
        return i_up, i_low


class WorkingSetSelector(Protocol):
    """Strategy interface: pick the next working pair.

    ``select`` returns ``(i, j, gap)`` where ``gap = m(a) - M(a)`` is the
    maximal KKT violation used for the stopping test.  When the problem
    is already optimal the indices may be arbitrary (gap <= tol stops the
    solver before they are used).
    """

    def select(self, state: SelectionState) -> tuple[int, int, float]: ...


def _first_order_pair(state: SelectionState) -> tuple[int, int, float, float]:
    """Maximal violating pair; returns (i, j, gmax, gap)."""
    minus_yg = -(state.y * state.grad)
    i_up, i_low = state.masks()
    if not i_up.any() or not i_low.any():
        # Degenerate (single-class or empty feasible direction): optimal.
        return 0, 0, 0.0, 0.0
    up_vals = np.where(i_up, minus_yg, -np.inf)
    low_vals = np.where(i_low, minus_yg, np.inf)
    i = int(np.argmax(up_vals))
    j = int(np.argmin(low_vals))
    gmax = float(up_vals[i])
    gap = gmax - float(low_vals[j])
    return i, j, gmax, gap


class FirstOrderSelector:
    """WSS 1: maximal violating pair (Keerthi et al. 2001).

    Cheapest per iteration — two masked reductions — but may need many
    more iterations than the second-order rule on ill-conditioned
    problems.
    """

    #: Relative per-iteration cost (used by AdaptiveSelector's model).
    relative_cost = 1.0

    def select(self, state: SelectionState) -> tuple[int, int, float]:
        i, j, _, gap = _first_order_pair(state)
        return i, j, gap


class SecondOrderSelector:
    """WSS 2: second-order gain rule (Fan et al. 2005; LibSVM default).

    ``i`` is the maximal violator; ``j`` maximizes the guaranteed
    objective decrease ``b^2 / a`` over eligible partners, requiring one
    kernel row per iteration.
    """

    relative_cost = 2.0

    def select(self, state: SelectionState) -> tuple[int, int, float]:
        i, j_fallback, gmax, gap = _first_order_pair(state)
        if gap <= 0.0:
            return i, j_fallback, gap
        minus_yg = -(state.y * state.grad)
        _, i_low = state.masks()
        eligible = i_low & (minus_yg < gmax)
        if not eligible.any():
            return i, j_fallback, gap
        # a_it = K_ii + K_tt - 2 K_it; b_it = gmax - (-y_t G_t) > 0.
        k_row = state.kernel_row(i)
        a = state.diag[i] + state.diag - 2.0 * k_row
        a = np.where(a <= 0.0, _TAU, a)
        b = gmax - minus_yg
        gain = np.where(eligible, (b * b) / a, -np.inf)
        j = int(np.argmax(gain))
        return i, j, gap


class AdaptiveSelector:
    """PhiSVM's adaptive heuristic choice (paper Section 4.4).

    Alternates short *probe* phases of each heuristic, measures the
    per-unit-cost convergence rate (log-decrease of the KKT gap divided
    by the heuristic's relative iteration cost), then *commits* to the
    faster one for a longer phase; re-probes periodically in case the
    problem's local geometry changes.
    """

    def __init__(
        self,
        probe_iters: int = 8,
        commit_iters: int = 64,
        first: WorkingSetSelector | None = None,
        second: WorkingSetSelector | None = None,
    ):
        if probe_iters < 2:
            raise ValueError("probe_iters must be >= 2")
        if commit_iters < 1:
            raise ValueError("commit_iters must be >= 1")
        self._probe_iters = probe_iters
        self._commit_iters = commit_iters
        self._first = first if first is not None else FirstOrderSelector()
        self._second = second if second is not None else SecondOrderSelector()
        # Phase machine: probe first -> probe second -> commit winner.
        self._phase = "probe_first"
        self._phase_left = probe_iters
        self._gap_at_phase_start: float | None = None
        self._rates: dict[str, float] = {}
        self._committed: WorkingSetSelector = self._second
        #: Count of iterations delegated to each heuristic (introspection).
        self.usage = {"first": 0, "second": 0}

    def _rate(self, gap_start: float, gap_end: float, cost: float) -> float:
        """Convergence per unit cost: log gap shrinkage / (iters * cost)."""
        if gap_start <= 0 or gap_end <= 0:
            return math.inf  # converged during the phase: infinitely good
        shrink = math.log(gap_start / max(gap_end, 1e-300))
        return shrink / (self._probe_iters * cost)

    def _advance_phase(self, gap: float) -> None:
        start = self._gap_at_phase_start
        if self._phase == "probe_first":
            assert start is not None
            self._rates["first"] = self._rate(start, gap, self._first.relative_cost)
            self._phase = "probe_second"
            self._phase_left = self._probe_iters
        elif self._phase == "probe_second":
            assert start is not None
            self._rates["second"] = self._rate(start, gap, self._second.relative_cost)
            if self._rates["first"] > self._rates["second"]:
                self._committed = self._first
            else:
                self._committed = self._second
            self._phase = "commit"
            self._phase_left = self._commit_iters
        else:  # commit expired: re-probe
            self._phase = "probe_first"
            self._phase_left = self._probe_iters
        self._gap_at_phase_start = gap

    def _current(self) -> WorkingSetSelector:
        if self._phase == "probe_first":
            return self._first
        if self._phase == "probe_second":
            return self._second
        return self._committed

    @property
    def committed_heuristic(self) -> str:
        """'first' or 'second': the currently committed choice."""
        return "first" if self._committed is self._first else "second"

    def select(self, state: SelectionState) -> tuple[int, int, float]:
        if self._gap_at_phase_start is None:
            # Seed with the initial gap so the first probe has a baseline.
            _, _, _, gap0 = _first_order_pair(state)
            self._gap_at_phase_start = gap0
        selector = self._current()
        i, j, gap = selector.select(state)
        self.usage["first" if selector is self._first else "second"] += 1
        self._phase_left -= 1
        if self._phase_left <= 0:
            self._advance_phase(gap)
        return i, j, gap
