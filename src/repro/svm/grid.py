"""Hyperparameter selection: cross-validated C search.

FCMA fixes C = 1 (robust for its high-dimension / few-sample regime),
but a production user tuning the classifier for a new experiment needs
the standard LibSVM-style grid search over the box constraint, driven
by the same grouped cross-validation used for voxel scoring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .cross_validation import KernelBackend, grouped_cross_validation

__all__ = ["GridResult", "default_c_grid", "select_c"]


@dataclass(frozen=True)
class GridResult:
    """Outcome of a C grid search."""

    #: Candidate C values in evaluation order.
    c_values: np.ndarray
    #: Grouped-CV accuracy per candidate.
    accuracies: np.ndarray
    #: The winning C (highest accuracy; ties -> smallest C, preferring
    #: the stronger regularizer).
    best_c: float
    best_accuracy: float


def default_c_grid() -> np.ndarray:
    """LibSVM's customary log grid: 2^-5 .. 2^7."""
    return np.float_power(2.0, np.arange(-5, 8, 2))


def select_c(
    backend_factory: Callable[[float], KernelBackend],
    kernel: np.ndarray,
    labels: np.ndarray,
    fold_ids: np.ndarray,
    c_values: Sequence[float] | None = None,
) -> GridResult:
    """Pick C by grouped cross-validation.

    ``backend_factory(c)`` builds a backend with the candidate box
    constraint (e.g. ``lambda c: PhiSVM(c=c)``).
    """
    grid = np.asarray(
        default_c_grid() if c_values is None else list(c_values), dtype=np.float64
    )
    if grid.ndim != 1 or grid.size == 0:
        raise ValueError("c_values must be a non-empty 1D sequence")
    if (grid <= 0).any():
        raise ValueError("all C candidates must be positive")

    accuracies = np.empty(grid.size)
    for i, c in enumerate(grid):
        backend = backend_factory(float(c))
        accuracies[i] = grouped_cross_validation(
            backend, kernel, labels, fold_ids
        ).accuracy
    # ties -> smallest C: stable argmax over (accuracy, -C)
    order = np.lexsort((grid, -accuracies))
    best = order[0]
    return GridResult(
        c_values=grid,
        accuracies=accuracies,
        best_c=float(grid[best]),
        best_accuracy=float(accuracies[best]),
    )
