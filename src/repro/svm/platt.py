"""Platt scaling: probability outputs for SVM decisions (LibSVM's -b).

Closed-loop neurofeedback wants graded confidence, not just a sign —
e.g. deBettencourt et al. (the paper's reference [7]) modulate the
stimulus by the decoder's *confidence*.  Platt scaling fits a sigmoid

    P(y = +1 | f) = 1 / (1 + exp(A f + B))

to held-out decision values, using the regularized maximum-likelihood
procedure of Lin, Lin & Weng (2007) — the same algorithm LibSVM runs
for ``-b 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PlattScaler", "fit_platt"]


@dataclass(frozen=True)
class PlattScaler:
    """A fitted sigmoid ``P(+1 | f) = 1 / (1 + exp(A f + B))``."""

    a: float
    b: float

    def predict_proba(self, decision_values: np.ndarray) -> np.ndarray:
        """Probability of the positive class per decision value."""
        f = np.asarray(decision_values, dtype=np.float64)
        z = self.a * f + self.b
        # numerically stable sigmoid of -z
        out = np.empty_like(z)
        pos = z >= 0
        out[pos] = np.exp(-z[pos]) / (1.0 + np.exp(-z[pos]))
        out[~pos] = 1.0 / (1.0 + np.exp(z[~pos]))
        return out

    def confidence(self, decision_values: np.ndarray) -> np.ndarray:
        """Confidence of the *predicted* class: max(p, 1-p)."""
        p = self.predict_proba(decision_values)
        return np.maximum(p, 1.0 - p)


def fit_platt(
    decision_values: np.ndarray,
    labels: np.ndarray,
    max_iter: int = 100,
    min_step: float = 1e-10,
    sigma: float = 1e-12,
) -> PlattScaler:
    """Fit the sigmoid by Lin-Lin-Weng's Newton method with backtracking.

    ``labels`` are in {-1, +1} (or two arbitrary values with the larger
    mapped to +1).  Targets are the usual regularized frequencies so the
    fit is well-posed even for separable data.
    """
    f = np.asarray(decision_values, dtype=np.float64).ravel()
    labels = np.asarray(labels).ravel()
    if f.shape != labels.shape:
        raise ValueError("decision_values and labels must match in length")
    if f.size < 2:
        raise ValueError("need at least 2 samples")
    uniq = np.unique(labels)
    if uniq.size != 2:
        raise ValueError("need exactly 2 classes")
    y = labels == uniq.max()

    prior1 = float(y.sum())
    prior0 = float(y.size - prior1)
    hi = (prior1 + 1.0) / (prior1 + 2.0)
    lo = 1.0 / (prior0 + 2.0)
    t = np.where(y, hi, lo)

    a, b = 0.0, np.log((prior0 + 1.0) / (prior1 + 1.0))

    def objective(a_: float, b_: float) -> float:
        z = a_ * f + b_
        # -sum(t*log(p) + (1-t)*log(1-p)) in the stable LLW form
        return float(
            np.sum(np.where(z >= 0, t * z + np.log1p(np.exp(-z)),
                            (t - 1.0) * z + np.log1p(np.exp(z))))
        )

    fval = objective(a, b)
    for _ in range(max_iter):
        z = a * f + b
        p = np.where(z >= 0, np.exp(-z) / (1 + np.exp(-z)),
                     1 / (1 + np.exp(z)))
        d1 = t - p                      # dE/dz (LLW's sign convention)
        d2 = p * (1.0 - p)              # d2E/dz2
        g1 = float(np.sum(f * d1))
        g0 = float(np.sum(d1))
        if abs(g1) < 1e-5 and abs(g0) < 1e-5:
            break
        h11 = float(np.sum(f * f * d2)) + sigma
        h22 = float(np.sum(d2)) + sigma
        h21 = float(np.sum(f * d2))
        det = h11 * h22 - h21 * h21
        da = -(h22 * g1 - h21 * g0) / det
        db = -(-h21 * g1 + h11 * g0) / det
        gd = g1 * da + g0 * db

        step = 1.0
        while step >= min_step:
            new_a, new_b = a + step * da, b + step * db
            new_f = objective(new_a, new_b)
            if new_f < fval + 1e-4 * step * gd:
                a, b, fval = new_a, new_b, new_f
                break
            step /= 2.0
        else:
            break  # line search failed: accept current point
    return PlattScaler(a=a, b=b)
