"""Sequential Minimal Optimization (SMO) for the SVM dual problem.

This is the solver both SVM backends share.  It solves the standard
C-SVC dual

    min_a  (1/2) a^T Q a - e^T a
    s.t.   0 <= a_i <= C,   y^T a = 0,        Q_ij = y_i y_j K_ij

by repeatedly picking a *working set* of two variables (the heuristics
live in :mod:`repro.svm.heuristics`) and solving the two-variable
subproblem analytically, exactly as LibSVM does (Platt's SMO with the
Keerthi et al. / Fan et al. selection rules the paper cites).

Kernels are supplied either as a dense precomputed matrix (the paper's
optimized pipeline, where an ``ssyrk``-style stage produces the linear
kernel before cross-validation) or as any object satisfying
:class:`KernelOracle` (the LibSVM-like backend computes rows on demand
through an LRU cache, as LibSVM itself does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from .heuristics import SelectionState, WorkingSetSelector, SecondOrderSelector

__all__ = ["KernelOracle", "DenseKernel", "SMOResult", "solve_smo"]

#: Lower bound used in place of a non-positive second derivative
#: (LibSVM's TAU).
_TAU = 1e-12


@runtime_checkable
class KernelOracle(Protocol):
    """Row-wise access to a (possibly virtual) kernel matrix."""

    @property
    def shape(self) -> tuple[int, int]: ...

    @property
    def dtype(self) -> np.dtype: ...

    def row(self, i: int) -> np.ndarray:
        """Kernel row ``K[i, :]`` as a 1D array."""
        ...

    def diagonal(self) -> np.ndarray:
        """Kernel diagonal ``K[i, i]`` as a 1D array."""
        ...


class DenseKernel:
    """KernelOracle over a dense in-memory matrix."""

    def __init__(self, kernel: np.ndarray):
        kernel = np.asarray(kernel)
        if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
            raise ValueError(f"kernel must be square, got shape {kernel.shape}")
        if not np.issubdtype(kernel.dtype, np.floating):
            kernel = kernel.astype(np.float64)
        self._k = kernel

    @property
    def shape(self) -> tuple[int, int]:
        return self._k.shape  # type: ignore[return-value]

    @property
    def dtype(self) -> np.dtype:
        return self._k.dtype

    def row(self, i: int) -> np.ndarray:
        return self._k[i]

    def diagonal(self) -> np.ndarray:
        return np.ascontiguousarray(np.diagonal(self._k))


@dataclass(frozen=True)
class SMOResult:
    """Output of one SMO solve."""

    #: Dual coefficients, shape (n_samples,), in the kernel dtype.
    alpha: np.ndarray
    #: Offset rho; the decision function is ``K @ (alpha * y) - rho``.
    rho: float
    #: Number of working-set iterations performed.
    iterations: int
    #: Whether the duality-gap stopping criterion was met.
    converged: bool
    #: Final dual objective value (1/2 a^T Q a - e^T a).
    objective: float
    #: Per-iteration KKT violation gaps (for convergence-rate studies).
    gap_history: np.ndarray
    #: Number of shrink passes that removed at least one variable.
    shrink_events: int = 0
    #: Smallest active-set size reached (== n without shrinking).
    min_active: int = 0


def _calculate_rho(
    y: np.ndarray, grad: np.ndarray, alpha: np.ndarray, c: float
) -> float:
    """LibSVM's rho: mean of y*G over free SVs, else midpoint of bounds."""
    yg = y * grad
    free = (alpha > 0.0) & (alpha < c)
    if free.any():
        return float(yg[free].mean())
    upper = ((y > 0) & (alpha <= 0.0)) | ((y < 0) & (alpha >= c))
    lower = ((y > 0) & (alpha >= c)) | ((y < 0) & (alpha <= 0.0))
    ub = float(yg[upper].min()) if upper.any() else np.inf
    lb = float(yg[lower].max()) if lower.any() else -np.inf
    if not np.isfinite(ub) and not np.isfinite(lb):
        return 0.0
    if not np.isfinite(ub):
        return lb
    if not np.isfinite(lb):
        return ub
    return (ub + lb) / 2.0


def solve_smo(
    kernel: np.ndarray | KernelOracle,
    y: np.ndarray,
    c: float = 1.0,
    tol: float = 1e-3,
    max_iter: int | None = None,
    selector: WorkingSetSelector | None = None,
    shrinking: bool = False,
) -> SMOResult:
    """Solve the C-SVC dual.

    Parameters
    ----------
    kernel:
        Symmetric PSD kernel: a dense ``(n, n)`` array or a
        :class:`KernelOracle`.  The solve runs in the kernel's floating
        dtype (float32 for PhiSVM, float64 for the LibSVM-like backend).
    y:
        Labels in {-1, +1}, shape ``(n,)``.
    c:
        Box constraint.
    tol:
        Stop when the maximal KKT violation ``m(a) - M(a)`` drops below
        this (LibSVM's ``eps``, default 1e-3).
    max_iter:
        Iteration cap; defaults to ``max(10_000, 100 * n)`` like LibSVM.
    selector:
        Working-set heuristic; defaults to second-order (LibSVM's WSS2).
    shrinking:
        Enable LibSVM's shrinking heuristic: variables pinned at a bound
        and violating no KKT condition are periodically removed from the
        selectors' working set (LibSVM's ``-h 1``).  When the shrunk
        problem converges, optimality is re-verified on the full set and
        solving resumes if any shrunk variable still violates — so the
        returned solution is identical to the unshrunk one.  (This
        implementation keeps the full gradient up to date each
        iteration, so shrinking here models the *algorithm*; the memory
        -traffic savings it buys native LibSVM are captured by the perf
        models, not by numpy wall time.)
    """
    oracle: KernelOracle
    if isinstance(kernel, np.ndarray) or not isinstance(kernel, KernelOracle):
        oracle = DenseKernel(np.asarray(kernel))
    else:
        oracle = kernel
    n = oracle.shape[0]
    y = np.asarray(y)
    if y.shape != (n,):
        raise ValueError(f"y must have shape ({n},), got {y.shape}")
    if not np.isin(y, (-1, 1)).all():
        raise ValueError("labels must be -1 or +1")
    if c <= 0:
        raise ValueError("C must be positive")
    if tol <= 0:
        raise ValueError("tol must be positive")
    dtype = np.dtype(oracle.dtype)
    if max_iter is None:
        max_iter = max(10_000, 100 * n)
    if selector is None:
        selector = SecondOrderSelector()

    yf = y.astype(dtype)
    alpha = np.zeros(n, dtype=dtype)
    grad = np.full(n, -1.0, dtype=dtype)  # G = Q alpha - e at alpha = 0
    diag = oracle.diagonal().astype(dtype)
    cval = float(c)
    gaps: list[float] = []
    converged = False
    it = 0

    active = np.ones(n, dtype=bool)
    state = SelectionState(
        kernel_row=oracle.row,
        y=yf,
        alpha=alpha,
        grad=grad,
        diag=diag,
        c=cval,
        active=active if shrinking else None,
    )
    shrink_interval = min(n, 1000)
    shrink_events = 0
    min_active = n

    def maybe_shrink() -> None:
        """LibSVM''s be_shrunk rule over the current active set."""
        nonlocal shrink_events, min_active
        i_up, i_low = state.masks()
        minus_yg = -(yf * grad)
        if not i_up.any() or not i_low.any():
            return
        gmax1 = float(np.max(np.where(i_up, minus_yg, -np.inf)))
        gmax2 = float(np.max(np.where(i_low, yf * grad, -np.inf)))
        at_upper = alpha >= cval
        at_lower = alpha <= 0.0
        pos = yf > 0
        # be_shrunk: bounded variables whose gradient says they will
        # stay bounded near the optimum.
        shrunk_upper = at_upper & np.where(pos, -grad > gmax1, -grad > gmax2)
        shrunk_lower = at_lower & np.where(pos, grad > gmax2, grad > gmax1)
        removable = active & (shrunk_upper | shrunk_lower)
        if removable.any():
            active[removable] = False
            shrink_events += 1
            min_active = min(min_active, int(active.sum()))

    while it < max_iter:
        i, j, gap = selector.select(state)
        if shrinking and gap < tol and not active.all():
            # Shrunk problem converged: re-verify on the full set.
            active[:] = True
            i, j, gap = selector.select(state)
        gaps.append(gap)
        if gap < tol:
            converged = True
            break
        it += 1
        if shrinking and it % shrink_interval == 0:
            maybe_shrink()

        # Q rows needed for the update (Q_ab = y_a y_b K_ab).
        q_i = yf[i] * (yf * oracle.row(i))
        q_j = yf[j] * (yf * oracle.row(j))
        old_ai = float(alpha[i])
        old_aj = float(alpha[j])

        if yf[i] != yf[j]:
            quad = float(diag[i] + diag[j] + 2.0 * q_i[j])
            if quad <= 0:
                quad = _TAU
            delta = (-grad[i] - grad[j]) / quad
            diff = alpha[i] - alpha[j]
            alpha[i] += delta
            alpha[j] += delta
            if diff > 0:
                if alpha[j] < 0:
                    alpha[j] = 0
                    alpha[i] = diff
            else:
                if alpha[i] < 0:
                    alpha[i] = 0
                    alpha[j] = -diff
            if diff > 0:
                if alpha[i] > cval:
                    alpha[i] = cval
                    alpha[j] = cval - diff
            else:
                if alpha[j] > cval:
                    alpha[j] = cval
                    alpha[i] = cval + diff
        else:
            quad = float(diag[i] + diag[j] - 2.0 * q_i[j])
            if quad <= 0:
                quad = _TAU
            delta = (grad[i] - grad[j]) / quad
            total = alpha[i] + alpha[j]
            alpha[i] -= delta
            alpha[j] += delta
            if total > cval:
                if alpha[i] > cval:
                    alpha[i] = cval
                    alpha[j] = total - cval
            else:
                if alpha[j] < 0:
                    alpha[j] = 0
                    alpha[i] = total
            if total > cval:
                if alpha[j] > cval:
                    alpha[j] = cval
                    alpha[i] = total - cval
            else:
                if alpha[i] < 0:
                    alpha[i] = 0
                    alpha[j] = total

        d_ai = alpha[i] - old_ai
        d_aj = alpha[j] - old_aj
        if d_ai != 0.0 or d_aj != 0.0:
            grad += q_i * d_ai + q_j * d_aj

    # grad = Qa - e, hence 1/2 a^T Q a - e^T a = 1/2 a^T grad - 1/2 e^T a.
    objective = float(0.5 * (alpha @ grad) - 0.5 * alpha.sum())

    rho = _calculate_rho(yf, grad, alpha, cval)
    return SMOResult(
        alpha=alpha,
        rho=rho,
        iterations=it,
        converged=converged,
        objective=objective,
        gap_history=np.asarray(gaps, dtype=np.float64),
        shrink_events=shrink_events,
        min_active=min_active if shrinking else n,
    )
