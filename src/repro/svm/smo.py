"""Sequential Minimal Optimization (SMO) for the SVM dual problem.

This is the solver both SVM backends share.  It solves the standard
C-SVC dual

    min_a  (1/2) a^T Q a - e^T a
    s.t.   0 <= a_i <= C,   y^T a = 0,        Q_ij = y_i y_j K_ij

by repeatedly picking a *working set* of two variables (the heuristics
live in :mod:`repro.svm.heuristics`) and solving the two-variable
subproblem analytically, exactly as LibSVM does (Platt's SMO with the
Keerthi et al. / Fan et al. selection rules the paper cites).

Kernels are supplied either as a dense precomputed matrix (the paper's
optimized pipeline, where an ``ssyrk``-style stage produces the linear
kernel before cross-validation) or as any object satisfying
:class:`KernelOracle` (the LibSVM-like backend computes rows on demand
through an LRU cache, as LibSVM itself does).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable, Protocol, TypeVar, runtime_checkable

import numpy as np

from ..obs.runtime import kernel_span
from .heuristics import SelectionState, WorkingSetSelector, SecondOrderSelector

__all__ = [
    "KernelOracle",
    "DenseKernel",
    "SMOResult",
    "solve_smo",
    "BatchSMOResult",
    "solve_smo_batch",
]

#: Lower bound used in place of a non-positive second derivative
#: (LibSVM's TAU).
_TAU = 1e-12

_F = TypeVar("_F", bound=Callable[..., Any])


def _traced(
    name: str, metrics: Callable[[Any], dict[str, float]]
) -> Callable[[_F], _F]:
    """Record a solve as a kernel span on the ambient tracer, if any.

    The span only exists when a :class:`~repro.obs.tracer.Tracer` is
    ambient (i.e. the solve runs under an open run/task span), so
    library callers pay nothing.
    """

    def deco(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with kernel_span(name) as span:
                result = fn(*args, **kwargs)
                if span is not None:
                    for mname, value in metrics(result).items():
                        span.add_metric(mname, value)
                return result

        return wrapper  # type: ignore[return-value]

    return deco


@runtime_checkable
class KernelOracle(Protocol):
    """Row-wise access to a (possibly virtual) kernel matrix."""

    @property
    def shape(self) -> tuple[int, int]: ...

    @property
    def dtype(self) -> np.dtype: ...

    def row(self, i: int) -> np.ndarray:
        """Kernel row ``K[i, :]`` as a 1D array."""
        ...

    def diagonal(self) -> np.ndarray:
        """Kernel diagonal ``K[i, i]`` as a 1D array."""
        ...


class DenseKernel:
    """KernelOracle over a dense in-memory matrix."""

    def __init__(self, kernel: np.ndarray):
        kernel = np.asarray(kernel)
        if kernel.ndim != 2 or kernel.shape[0] != kernel.shape[1]:
            raise ValueError(f"kernel must be square, got shape {kernel.shape}")
        if not np.issubdtype(kernel.dtype, np.floating):
            kernel = kernel.astype(np.float64)
        self._k = kernel

    @property
    def shape(self) -> tuple[int, int]:
        return self._k.shape  # type: ignore[return-value]

    @property
    def dtype(self) -> np.dtype:
        return self._k.dtype

    def row(self, i: int) -> np.ndarray:
        return self._k[i]

    def diagonal(self) -> np.ndarray:
        return np.ascontiguousarray(np.diagonal(self._k))


@dataclass(frozen=True)
class SMOResult:
    """Output of one SMO solve."""

    #: Dual coefficients, shape (n_samples,), in the kernel dtype.
    alpha: np.ndarray
    #: Offset rho; the decision function is ``K @ (alpha * y) - rho``.
    rho: float
    #: Number of working-set iterations performed.
    iterations: int
    #: Whether the duality-gap stopping criterion was met.
    converged: bool
    #: Final dual objective value (1/2 a^T Q a - e^T a).
    objective: float
    #: Per-iteration KKT violation gaps (for convergence-rate studies).
    gap_history: np.ndarray
    #: Number of shrink passes that removed at least one variable.
    shrink_events: int = 0
    #: Smallest active-set size reached (== n without shrinking).
    min_active: int = 0


def _calculate_rho(
    y: np.ndarray, grad: np.ndarray, alpha: np.ndarray, c: float
) -> float:
    """LibSVM's rho: mean of y*G over free SVs, else midpoint of bounds."""
    yg = y * grad
    free = (alpha > 0.0) & (alpha < c)
    if free.any():
        return float(yg[free].mean())
    upper = ((y > 0) & (alpha <= 0.0)) | ((y < 0) & (alpha >= c))
    lower = ((y > 0) & (alpha >= c)) | ((y < 0) & (alpha <= 0.0))
    ub = float(yg[upper].min()) if upper.any() else np.inf
    lb = float(yg[lower].max()) if lower.any() else -np.inf
    if not np.isfinite(ub) and not np.isfinite(lb):
        return 0.0
    if not np.isfinite(ub):
        return lb
    if not np.isfinite(lb):
        return ub
    return (ub + lb) / 2.0


@_traced("smo.solve", lambda r: {"iterations": float(r.iterations)})
def solve_smo(
    kernel: np.ndarray | KernelOracle,
    y: np.ndarray,
    c: float = 1.0,
    tol: float = 1e-3,
    max_iter: int | None = None,
    selector: WorkingSetSelector | None = None,
    shrinking: bool = False,
    alpha0: np.ndarray | None = None,
) -> SMOResult:
    """Solve the C-SVC dual.

    Parameters
    ----------
    kernel:
        Symmetric PSD kernel: a dense ``(n, n)`` array or a
        :class:`KernelOracle`.  The solve runs in the kernel's floating
        dtype (float32 for PhiSVM, float64 for the LibSVM-like backend).
    y:
        Labels in {-1, +1}, shape ``(n,)``.
    c:
        Box constraint.
    tol:
        Stop when the maximal KKT violation ``m(a) - M(a)`` drops below
        this (LibSVM's ``eps``, default 1e-3).
    max_iter:
        Iteration cap; defaults to ``max(10_000, 100 * n)`` like LibSVM.
    selector:
        Working-set heuristic; defaults to second-order (LibSVM's WSS2).
    shrinking:
        Enable LibSVM's shrinking heuristic: variables pinned at a bound
        and violating no KKT condition are periodically removed from the
        selectors' working set (LibSVM's ``-h 1``).  When the shrunk
        problem converges, optimality is re-verified on the full set and
        solving resumes if any shrunk variable still violates — so the
        returned solution is identical to the unshrunk one.  (This
        implementation keeps the full gradient up to date each
        iteration, so shrinking here models the *algorithm*; the memory
        -traffic savings it buys native LibSVM are captured by the perf
        models, not by numpy wall time.)
    alpha0:
        Optional warm start, shape ``(n,)``: the dual variables to
        resume from (e.g. a previous solve on a superset of the same
        data, padded with zeros for new samples).  Must be feasible —
        inside ``[0, C]`` and satisfying ``y @ alpha0 == 0`` — because
        SMO's two-variable steps preserve the equality constraint rather
        than restore it.  The gradient is rebuilt from the kernel rows
        of the nonzero entries, so a warm start costs ``O(nnz(alpha0)
        * n)`` up front and typically repays it in far fewer working-set
        iterations.  The converged solution is identical either way
        (same optimum, up to the stopping tolerance).
    """
    oracle: KernelOracle
    if isinstance(kernel, np.ndarray) or not isinstance(kernel, KernelOracle):
        oracle = DenseKernel(np.asarray(kernel))
    else:
        oracle = kernel
    n = oracle.shape[0]
    y = np.asarray(y)
    if y.shape != (n,):
        raise ValueError(f"y must have shape ({n},), got {y.shape}")
    if not np.isin(y, (-1, 1)).all():
        raise ValueError("labels must be -1 or +1")
    if c <= 0:
        raise ValueError("C must be positive")
    if tol <= 0:
        raise ValueError("tol must be positive")
    dtype = np.dtype(oracle.dtype)
    if max_iter is None:
        max_iter = max(10_000, 100 * n)
    if selector is None:
        selector = SecondOrderSelector()

    yf = y.astype(dtype)
    alpha = np.zeros(n, dtype=dtype)
    grad = np.full(n, -1.0, dtype=dtype)  # G = Q alpha - e at alpha = 0
    if alpha0 is not None:
        a0 = np.asarray(alpha0, dtype=dtype)
        if a0.shape != (n,):
            raise ValueError(f"alpha0 must have shape ({n},), got {a0.shape}")
        if (a0 < 0).any() or (a0 > c).any():
            raise ValueError("alpha0 must lie in [0, C]")
        residual = float(yf @ a0)
        if abs(residual) > 1e-6 * max(1.0, float(np.abs(a0).sum())):
            raise ValueError(
                "alpha0 violates the equality constraint y @ alpha == 0 "
                f"(residual {residual:g}); pad new samples with zeros "
                "instead of dropping old ones"
            )
        alpha[:] = a0
        # Rebuild G = Q alpha - e from the rows alpha touches.
        for k in np.flatnonzero(alpha):
            grad += (yf[k] * alpha[k]) * (yf * oracle.row(k).astype(dtype))
    diag = oracle.diagonal().astype(dtype)
    cval = float(c)
    gaps: list[float] = []
    converged = False
    it = 0

    active = np.ones(n, dtype=bool)
    state = SelectionState(
        kernel_row=oracle.row,
        y=yf,
        alpha=alpha,
        grad=grad,
        diag=diag,
        c=cval,
        active=active if shrinking else None,
    )
    shrink_interval = min(n, 1000)
    shrink_events = 0
    min_active = n

    def maybe_shrink() -> None:
        """LibSVM''s be_shrunk rule over the current active set."""
        nonlocal shrink_events, min_active
        i_up, i_low = state.masks()
        minus_yg = -(yf * grad)
        if not i_up.any() or not i_low.any():
            return
        gmax1 = float(np.max(np.where(i_up, minus_yg, -np.inf)))
        gmax2 = float(np.max(np.where(i_low, yf * grad, -np.inf)))
        at_upper = alpha >= cval
        at_lower = alpha <= 0.0
        pos = yf > 0
        # be_shrunk: bounded variables whose gradient says they will
        # stay bounded near the optimum.
        shrunk_upper = at_upper & np.where(pos, -grad > gmax1, -grad > gmax2)
        shrunk_lower = at_lower & np.where(pos, grad > gmax2, grad > gmax1)
        removable = active & (shrunk_upper | shrunk_lower)
        if removable.any():
            active[removable] = False
            shrink_events += 1
            min_active = min(min_active, int(active.sum()))

    while it < max_iter:
        i, j, gap = selector.select(state)
        if shrinking and gap < tol and not active.all():
            # Shrunk problem converged: re-verify on the full set.
            active[:] = True
            i, j, gap = selector.select(state)
        gaps.append(gap)
        if gap < tol:
            converged = True
            break
        it += 1
        if shrinking and it % shrink_interval == 0:
            maybe_shrink()

        # Q rows needed for the update (Q_ab = y_a y_b K_ab).
        q_i = yf[i] * (yf * oracle.row(i))
        q_j = yf[j] * (yf * oracle.row(j))
        old_ai = float(alpha[i])
        old_aj = float(alpha[j])

        if yf[i] != yf[j]:
            quad = float(diag[i] + diag[j] + 2.0 * q_i[j])
            if quad <= 0:
                quad = _TAU
            delta = (-grad[i] - grad[j]) / quad
            diff = alpha[i] - alpha[j]
            alpha[i] += delta
            alpha[j] += delta
            if diff > 0:
                if alpha[j] < 0:
                    alpha[j] = 0
                    alpha[i] = diff
            else:
                if alpha[i] < 0:
                    alpha[i] = 0
                    alpha[j] = -diff
            if diff > 0:
                if alpha[i] > cval:
                    alpha[i] = cval
                    alpha[j] = cval - diff
            else:
                if alpha[j] > cval:
                    alpha[j] = cval
                    alpha[i] = cval + diff
        else:
            quad = float(diag[i] + diag[j] - 2.0 * q_i[j])
            if quad <= 0:
                quad = _TAU
            delta = (grad[i] - grad[j]) / quad
            total = alpha[i] + alpha[j]
            alpha[i] -= delta
            alpha[j] += delta
            if total > cval:
                if alpha[i] > cval:
                    alpha[i] = cval
                    alpha[j] = total - cval
            else:
                if alpha[j] < 0:
                    alpha[j] = 0
                    alpha[i] = total
            if total > cval:
                if alpha[j] > cval:
                    alpha[j] = cval
                    alpha[i] = total - cval
            else:
                if alpha[i] < 0:
                    alpha[i] = 0
                    alpha[j] = total

        d_ai = alpha[i] - old_ai
        d_aj = alpha[j] - old_aj
        if d_ai != 0.0 or d_aj != 0.0:
            grad += q_i * d_ai + q_j * d_aj

    # grad = Qa - e, hence 1/2 a^T Q a - e^T a = 1/2 a^T grad - 1/2 e^T a.
    objective = float(0.5 * (alpha @ grad) - 0.5 * alpha.sum())

    rho = _calculate_rho(yf, grad, alpha, cval)
    return SMOResult(
        alpha=alpha,
        rho=rho,
        iterations=it,
        converged=converged,
        objective=objective,
        gap_history=np.asarray(gaps, dtype=np.float64),
        shrink_events=shrink_events,
        min_active=min_active if shrinking else n,
    )


# ---------------------------------------------------------------------------
# Multi-problem (voxel-batched) SMO
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BatchSMOResult:
    """Output of one batched SMO solve over ``B`` independent problems."""

    #: Dual coefficients, shape (B, n), in the kernel dtype.
    alpha: np.ndarray
    #: Per-problem offsets; decision function b is ``K @ (a_b y_b) - rho_b``.
    rho: np.ndarray
    #: Working-set iterations each problem performed before freezing.
    iterations: np.ndarray
    #: Whether each problem met the duality-gap stopping criterion.
    converged: np.ndarray
    #: Final dual objective per problem.
    objective: np.ndarray
    #: Final KKT violation gap per problem.
    gap: np.ndarray
    #: Batch sweeps executed (== max(iterations) unless capped).
    sweeps: int


def _batch_calculate_rho(
    y: np.ndarray, grad: np.ndarray, alpha: np.ndarray, c: float
) -> np.ndarray:
    """Vectorized :func:`_calculate_rho` over the batch axis."""
    yg = y * grad
    free = (alpha > 0.0) & (alpha < c)
    n_free = free.sum(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        rho_free = np.where(free, yg, 0.0).sum(axis=1) / np.maximum(n_free, 1)
    upper = ((y > 0) & (alpha <= 0.0)) | ((y < 0) & (alpha >= c))
    lower = ((y > 0) & (alpha >= c)) | ((y < 0) & (alpha <= 0.0))
    ub = np.where(upper, yg, np.inf).min(axis=1)
    lb = np.where(lower, yg, -np.inf).max(axis=1)
    with np.errstate(invalid="ignore"):  # inf + -inf in unselected lanes
        rho_bound = np.where(
            np.isfinite(ub) & np.isfinite(lb),
            (ub + lb) / 2.0,
            np.where(np.isfinite(ub), ub, np.where(np.isfinite(lb), lb, 0.0)),
        )
    return np.asarray(np.where(n_free > 0, rho_free, rho_bound), dtype=np.float64)


class _BatchAdaptivePhases:
    """Vectorized mirror of :class:`~repro.svm.heuristics.AdaptiveSelector`.

    All live problems advance one SMO iteration per batch sweep, so the
    probe/commit *timing* (probe first-order, probe second-order, commit
    the winner, re-probe) is shared scalar state, while the measured
    convergence rates — and therefore the committed heuristic — are
    per-problem arrays.
    """

    def __init__(self, n_problems: int, probe_iters: int = 8, commit_iters: int = 64):
        self._probe = probe_iters
        self._commit = commit_iters
        self._phase = "probe_first"
        self._phase_left = probe_iters
        self._gap_start: np.ndarray | None = None
        self._rate_first = np.zeros(n_problems)
        #: Committed choice per problem; second-order initially (the
        #: sequential selector's default commitment).
        self.use_second = np.ones(n_problems, dtype=bool)

    def current_use_second(self) -> np.ndarray:
        if self._phase == "probe_first":
            return np.zeros_like(self.use_second)
        if self._phase == "probe_second":
            return np.ones_like(self.use_second)
        return self.use_second

    def _rates(self, gap_end: np.ndarray, cost: float) -> np.ndarray:
        assert self._gap_start is not None
        start = self._gap_start
        with np.errstate(divide="ignore", invalid="ignore"):
            shrink = np.log(
                np.maximum(start, 1e-300) / np.maximum(gap_end, 1e-300)
            )
            rate = shrink / (self._probe * cost)
        return np.where((start <= 0) | (gap_end <= 0), np.inf, rate)

    def step(self, gap: np.ndarray) -> None:
        """Advance one iteration; ``gap`` is this sweep's KKT violation."""
        if self._gap_start is None:
            self._gap_start = gap.copy()
        self._phase_left -= 1
        if self._phase_left > 0:
            return
        if self._phase == "probe_first":
            self._rate_first = self._rates(gap, cost=1.0)
            self._phase, self._phase_left = "probe_second", self._probe
        elif self._phase == "probe_second":
            rate_second = self._rates(gap, cost=2.0)
            # Mirrors the sequential rule: first order wins only on a
            # strictly greater per-cost rate.
            self.use_second = ~(self._rate_first > rate_second)
            self._phase, self._phase_left = "commit", self._commit
        else:
            self._phase, self._phase_left = "probe_first", self._probe
        self._gap_start = gap.copy()


@_traced(
    "smo.solve_batch",
    lambda r: {
        "iterations": float(r.iterations.sum()),
        "voxels": float(r.alpha.shape[0]),
    },
)
def solve_smo_batch(
    kernels: np.ndarray,
    y: np.ndarray,
    c: float = 1.0,
    tol: float = 1e-3,
    max_iter: int | None = None,
    selection: str = "adaptive",
) -> BatchSMOResult:
    """Solve ``B`` independent C-SVC duals simultaneously.

    The paper keeps 240+ voxel problems resident on the coprocessor with
    one thread per problem; here the batch axis plays that role: every
    SMO ingredient — working-set selection, the two-variable analytic
    update, gradient maintenance — is one vectorized operation across
    all live problems, so the Python-interpreter cost of an iteration is
    paid once per *sweep* instead of once per problem.  Problems whose
    KKT gap drops below ``tol`` freeze (their variables stop moving) and
    the batch loops until every problem converges or ``max_iter`` sweeps
    elapse.

    Parameters
    ----------
    kernels:
        Stacked symmetric PSD kernels, shape ``(B, n, n)``.  The solve
        runs in the stack's floating dtype (float32 for PhiSVM).
    y:
        Labels in {-1, +1}: shape ``(n,)`` (shared by all problems — the
        FCMA case, where every voxel sees the same epochs) or ``(B, n)``.
    c, tol, max_iter:
        As in :func:`solve_smo`; ``max_iter`` caps batch sweeps, which
        equals the per-problem iteration cap of the sequential solver.
    selection:
        ``"adaptive"`` (default, mirrors PhiSVM's
        :class:`~repro.svm.heuristics.AdaptiveSelector` per problem),
        ``"second"`` (WSS 2 throughout) or ``"first"`` (WSS 1).

    A problem solved in a batch follows the same iterate trajectory as
    :func:`solve_smo` on it alone with the matching selector: selection
    argmax/argmin tie-breaks, the update arithmetic, and the float32
    rounding are identical.
    """
    kernels = np.asarray(kernels)
    if kernels.ndim != 3 or kernels.shape[1] != kernels.shape[2]:
        raise ValueError(
            f"kernels must be (problems, n, n), got {kernels.shape}"
        )
    if selection not in ("adaptive", "second", "first"):
        raise ValueError(f"unknown selection {selection!r}")
    if not np.issubdtype(kernels.dtype, np.floating):
        kernels = kernels.astype(np.float64)
    b, n = kernels.shape[0], kernels.shape[1]
    y = np.asarray(y)
    if y.shape == (n,):
        y = np.broadcast_to(y, (b, n))
    elif y.shape != (b, n):
        raise ValueError(f"y must have shape ({n},) or ({b}, {n}), got {y.shape}")
    if not np.isin(y, (-1, 1)).all():
        raise ValueError("labels must be -1 or +1")
    if c <= 0:
        raise ValueError("C must be positive")
    if tol <= 0:
        raise ValueError("tol must be positive")
    dtype = kernels.dtype
    if max_iter is None:
        max_iter = max(10_000, 100 * n)

    yf = np.ascontiguousarray(y, dtype=dtype)
    alpha = np.zeros((b, n), dtype=dtype)
    grad = np.full((b, n), -1.0, dtype=dtype)  # G = Q alpha - e at alpha = 0
    diag = np.ascontiguousarray(
        np.diagonal(kernels, axis1=1, axis2=2), dtype=dtype
    )
    cval = dtype.type(c)
    rows = np.arange(b)
    live = np.ones(b, dtype=bool)
    iterations = np.zeros(b, dtype=np.int64)
    final_gap = np.zeros(b, dtype=np.float64)
    adaptive = (
        _BatchAdaptivePhases(b) if selection == "adaptive" else None
    )
    sweeps = 0

    with np.errstate(invalid="ignore", over="ignore", divide="ignore"):
        while sweeps < max_iter:
            # --- working-set selection (all problems at once) -------------
            minus_yg = -(yf * grad)
            pos = yf > 0
            at_upper = alpha >= cval
            at_lower = alpha <= 0.0
            i_up = (pos & ~at_upper) | (~pos & ~at_lower)
            i_low = (pos & ~at_lower) | (~pos & ~at_upper)
            up_vals = np.where(i_up, minus_yg, -np.inf)
            low_vals = np.where(i_low, minus_yg, np.inf)
            i = np.argmax(up_vals, axis=1)
            gmax = up_vals[rows, i]
            gmin = low_vals.min(axis=1)
            # Degenerate problems (empty I_up or I_low) are optimal,
            # matching the sequential selector's (0, 0, 0.0) return.
            degenerate = ~np.isfinite(gmax) | ~np.isfinite(gmin)
            gap = np.where(degenerate, 0.0, gmax - gmin)
            final_gap = np.where(live, gap, final_gap)
            if adaptive is not None:
                use_second = adaptive.current_use_second()
                adaptive.step(gap)
            elif selection == "second":
                use_second = np.ones(b, dtype=bool)
            else:
                use_second = np.zeros(b, dtype=bool)

            live &= gap >= tol
            if not live.any():
                break
            sweeps += 1
            iterations[live] += 1

            # Kernel rows K[b, i_b, :] / K[b, j_b, :]: needed for the
            # second-order gain and for the gradient update.
            k_i = np.take_along_axis(kernels, i[:, None, None], axis=1)[:, 0, :]
            j_first = np.argmin(low_vals, axis=1)
            if use_second.any():
                a_coef = diag[rows, i][:, None] + diag - 2.0 * k_i
                a_coef = np.where(a_coef <= 0.0, dtype.type(_TAU), a_coef)
                b_coef = gmax[:, None] - minus_yg
                eligible = i_low & (minus_yg < gmax[:, None])
                gain = np.where(eligible, (b_coef * b_coef) / a_coef, -np.inf)
                j_second = np.where(
                    eligible.any(axis=1), np.argmax(gain, axis=1), j_first
                )
                j = np.where(use_second, j_second, j_first)
            else:
                j = j_first
            k_j = np.take_along_axis(kernels, j[:, None, None], axis=1)[:, 0, :]

            # --- two-variable analytic update (vectorized) ----------------
            yi = yf[rows, i]
            yj = yf[rows, j]
            gi = grad[rows, i]
            gj = grad[rows, j]
            ai = alpha[rows, i]
            aj = alpha[rows, j]
            q_ij = yi * yj * k_i[rows, j]
            di = diag[rows, i]
            dj = diag[rows, j]
            same = yi == yj

            quad = np.where(same, di + dj - 2.0 * q_ij, di + dj + 2.0 * q_ij)
            quad = np.where(quad <= 0.0, dtype.type(_TAU), quad)
            delta = np.where(same, gi - gj, -gi - gj) / quad

            # Different-sign branch: alpha_i, alpha_j move together.
            diff = ai - aj
            d_ai = ai + delta
            d_aj = aj + delta
            clip = (diff > 0) & (d_aj < 0)
            d_aj = np.where(clip, 0.0, d_aj)
            d_ai = np.where(clip, diff, d_ai)
            clip = (diff <= 0) & (d_ai < 0)
            d_ai = np.where(clip, 0.0, d_ai)
            d_aj = np.where(clip, -diff, d_aj)
            clip = (diff > 0) & (d_ai > cval)
            d_ai = np.where(clip, cval, d_ai)
            d_aj = np.where(clip, cval - diff, d_aj)
            clip = (diff <= 0) & (d_aj > cval)
            d_aj = np.where(clip, cval, d_aj)
            d_ai = np.where(clip, cval + diff, d_ai)

            # Same-sign branch: alpha_i + alpha_j conserved.
            total = ai + aj
            s_ai = ai - delta
            s_aj = aj + delta
            clip = (total > cval) & (s_ai > cval)
            s_ai = np.where(clip, cval, s_ai)
            s_aj = np.where(clip, total - cval, s_aj)
            clip = (total <= cval) & (s_aj < 0)
            s_aj = np.where(clip, 0.0, s_aj)
            s_ai = np.where(clip, total, s_ai)
            clip = (total > cval) & (s_aj > cval)
            s_aj = np.where(clip, cval, s_aj)
            s_ai = np.where(clip, total - cval, s_ai)
            clip = (total <= cval) & (s_ai < 0)
            s_ai = np.where(clip, 0.0, s_ai)
            s_aj = np.where(clip, total, s_aj)

            new_ai = np.where(same, s_ai, d_ai).astype(dtype, copy=False)
            new_aj = np.where(same, s_aj, d_aj).astype(dtype, copy=False)
            step_i = np.where(live, new_ai - ai, dtype.type(0.0))
            step_j = np.where(live, new_aj - aj, dtype.type(0.0))
            # Assign (not +=): the sequential solver stores the clipped
            # values directly, and `a + (new - a)` can differ by an ulp.
            alpha[rows, i] = np.where(live, new_ai, ai)
            alpha[rows, j] = np.where(live, new_aj, aj)

            moved = (step_i != 0.0) | (step_j != 0.0)
            if moved.any():
                q_i_rows = yi[:, None] * (yf * k_i)
                q_j_rows = yj[:, None] * (yf * k_j)
                grad += q_i_rows * step_i[:, None] + q_j_rows * step_j[:, None]

    converged = ~live
    objective = (
        0.5 * (alpha * grad).sum(axis=1) - 0.5 * alpha.sum(axis=1)
    ).astype(np.float64)
    rho = _batch_calculate_rho(yf, grad, alpha, float(c))
    return BatchSMOResult(
        alpha=alpha,
        rho=rho,
        iterations=iterations,
        converged=converged,
        objective=objective,
        gap=final_gap,
        sweeps=sweeps,
    )
