"""PhiSVM: the paper's fast SVM for many small problems (Section 4.4).

Design points reproduced from the paper:

* **Dense single precision** throughout ("we used float type in
  PhiSVM"), avoiding LibSVM's sparse node storage and double-precision
  inner loops.
* **Precomputed linear kernel** input — the kernel matrix arrives from
  the blocked ``ssyrk`` stage, so training touches only the small
  ``M x M`` matrix.
* **Adaptive working-set selection**: chooses between the first-order
  (Keerthi) and second-order (Fan) heuristics at runtime "based on the
  convergence rate on the specific training data".
* One solver instance per voxel problem ("a thread takes full
  responsibility for the cross validation of one voxel") — here each
  ``fit`` is one such problem; parallelism across voxels is provided by
  :mod:`repro.parallel`.
"""

from __future__ import annotations

import numpy as np

from .heuristics import (
    AdaptiveSelector,
    FirstOrderSelector,
    SecondOrderSelector,
    WorkingSetSelector,
)
from .kernels import linear_kernel, validate_kernel_matrix
from .model import BatchSVMModel, SVMModel, encode_labels
from .smo import solve_smo, solve_smo_batch

__all__ = ["PhiSVM"]


class PhiSVM:
    """Fast dense float32 C-SVC over precomputed kernels.

    Parameters
    ----------
    c:
        Box constraint (LibSVM's ``-c``), default 1.0 as in FCMA.
    tol:
        SMO stopping tolerance, default 1e-3 (LibSVM's default).
    max_iter:
        Optional iteration cap; ``None`` uses the solver default.
    selector_factory:
        Callable creating a fresh working-set selector per fit; defaults
        to :class:`~repro.svm.heuristics.AdaptiveSelector` (the PhiSVM
        behaviour).  Passing e.g. ``SecondOrderSelector`` turns this into
        a dense-float32 LibSVM for ablation studies.
    """

    def __init__(
        self,
        c: float = 1.0,
        tol: float = 1e-3,
        max_iter: int | None = None,
        selector_factory: type[WorkingSetSelector] | None = None,
    ):
        if c <= 0:
            raise ValueError("C must be positive")
        if tol <= 0:
            raise ValueError("tol must be positive")
        self.c = c
        self.tol = tol
        self.max_iter = max_iter
        self._selector_factory = (
            selector_factory if selector_factory is not None else AdaptiveSelector
        )
        #: Selector used by the most recent fit (introspection/ablation).
        self.last_selector: WorkingSetSelector | None = None

    def fit_kernel(
        self,
        kernel: np.ndarray,
        labels: np.ndarray,
        alpha0: np.ndarray | None = None,
    ) -> SVMModel:
        """Train on a precomputed kernel matrix (the FCMA fast path).

        ``kernel`` is cast to float32 if needed; ``labels`` may be any
        two distinct integer classes.  ``alpha0`` warm-starts the SMO
        solve (see :func:`~repro.svm.smo.solve_smo`) — the streaming
        loop's retrains resume from the previous model's duals padded
        with zeros for the newly arrived epochs.
        """
        kernel = validate_kernel_matrix(kernel)
        kernel = np.ascontiguousarray(kernel, dtype=np.float32)
        y, classes = encode_labels(labels)
        selector = self._selector_factory()
        self.last_selector = selector
        result = solve_smo(
            kernel,
            y,
            c=self.c,
            tol=self.tol,
            max_iter=self.max_iter,
            selector=selector,
            alpha0=alpha0,
        )
        return SVMModel(
            dual_coef=(result.alpha * y).astype(np.float32),
            rho=result.rho,
            classes=classes,
            c=self.c,
            iterations=result.iterations,
            converged=result.converged,
            objective=result.objective,
        )

    def _batch_selection(self) -> str:
        """solve_smo_batch selection mode mirroring the selector factory."""
        if self._selector_factory is AdaptiveSelector:
            return "adaptive"
        if self._selector_factory is FirstOrderSelector:
            return "first"
        if self._selector_factory is SecondOrderSelector:
            return "second"
        raise NotImplementedError(
            f"no batched equivalent of {self._selector_factory.__name__}; "
            "use the per-voxel path"
        )

    def fit_kernel_batch(
        self, kernels: np.ndarray, labels: np.ndarray
    ) -> BatchSVMModel:
        """Train ``B`` voxel problems jointly on stacked kernels.

        ``kernels`` has shape ``(B, n, n)``; all problems share
        ``labels`` (the FCMA case — every voxel classifies the same
        epochs).  This is the batch analogue of :meth:`fit_kernel`:
        each problem follows the same SMO trajectory it would follow
        alone, but the working-set selection and updates for all B
        problems are single vectorized operations per sweep.
        """
        kernels = np.asarray(kernels)
        if kernels.ndim != 3 or kernels.shape[1] != kernels.shape[2]:
            raise ValueError(
                f"kernels must be (problems, n, n), got {kernels.shape}"
            )
        kernels = np.ascontiguousarray(kernels, dtype=np.float32)
        y, classes = encode_labels(labels)
        result = solve_smo_batch(
            kernels,
            y,
            c=self.c,
            tol=self.tol,
            max_iter=self.max_iter,
            selection=self._batch_selection(),
        )
        return BatchSVMModel(
            dual_coef=(result.alpha * y[None, :].astype(np.float32)).astype(
                np.float32
            ),
            rho=result.rho,
            classes=classes,
            c=self.c,
            iterations=result.iterations,
            converged=result.converged,
            objective=result.objective,
        )

    def fit(self, x: np.ndarray, labels: np.ndarray) -> SVMModel:
        """Train on raw feature rows via the linear kernel.

        Convenience for callers without a precomputed kernel; computes
        ``X X^T`` in float32 and delegates to :meth:`fit_kernel`.
        """
        x = np.ascontiguousarray(x, dtype=np.float32)
        return self.fit_kernel(linear_kernel(x), labels)

    def cross_val_accuracy(
        self,
        kernel: np.ndarray,
        labels: np.ndarray,
        fold_ids: np.ndarray,
    ) -> float:
        """Grouped cross-validation accuracy over a precomputed kernel.

        ``fold_ids`` assigns each sample to a fold (e.g. subject ids for
        leave-one-subject-out).  Returns mean accuracy over held-out
        samples, weighted by fold size.
        """
        from .cross_validation import grouped_cross_validation

        return grouped_cross_validation(self, kernel, labels, fold_ids).accuracy

    def __repr__(self) -> str:
        return (
            f"PhiSVM(c={self.c}, tol={self.tol}, "
            f"selector={self._selector_factory.__name__})"
        )
