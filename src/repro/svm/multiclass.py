"""Multiclass classification via one-vs-one voting (LibSVM's scheme).

The paper's experiments use two conditions, but nothing in FCMA is
inherently binary — an attention study could contrast left/right/none.
LibSVM handles k classes by training k(k-1)/2 pairwise binary machines
and voting; this module reproduces that on precomputed kernels so the
whole pipeline (voxel scoring, cross-validation, online feedback) works
unchanged for any number of conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from .cross_validation import KernelBackend
from .model import SVMModel

__all__ = ["OneVsOneModel", "OneVsOneClassifier", "as_multiclass"]


@dataclass(frozen=True)
class OneVsOneModel:
    """k(k-1)/2 pairwise binary models plus voting."""

    #: Sorted distinct class labels.
    classes: tuple[int, ...]
    #: Pairwise models keyed by (class_a, class_b), a < b.
    machines: dict[tuple[int, int], SVMModel]
    #: For each pair, the training-sample indices (into the full
    #: training set) that pair's model was fit on.
    pair_indices: dict[tuple[int, int], np.ndarray]
    #: Size of the full training set (kernel-block width expected).
    n_train: int

    def predict(self, kernel_block: np.ndarray) -> np.ndarray:
        """Vote across pairwise machines.

        ``kernel_block`` is test-vs-*full-training* of shape
        ``(n_test, n_train)``; each machine reads its own columns.
        Ties break toward the lower class label (LibSVM's behaviour).
        """
        kernel_block = np.atleast_2d(np.asarray(kernel_block))
        if kernel_block.shape[1] != self.n_train:
            raise ValueError(
                f"kernel block has {kernel_block.shape[1]} columns, "
                f"expected {self.n_train}"
            )
        n_test = kernel_block.shape[0]
        class_pos = {c: i for i, c in enumerate(self.classes)}
        votes = np.zeros((n_test, len(self.classes)), dtype=np.int64)
        for (a, b), model in self.machines.items():
            cols = self.pair_indices[(a, b)]
            pred = model.predict(kernel_block[:, cols])
            votes[np.arange(n_test), [class_pos[p] for p in pred]] += 1
        winners = votes.argmax(axis=1)  # argmax takes the first (lowest) max
        return np.asarray([self.classes[w] for w in winners], dtype=np.int64)

    def accuracy(self, kernel_block: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correct voted predictions."""
        labels = np.asarray(labels)
        pred = self.predict(kernel_block)
        if pred.shape != labels.shape:
            raise ValueError("labels shape mismatch")
        return float((pred == labels).mean())

    @property
    def iterations(self) -> int:
        """Total solver iterations across pairwise machines."""
        return sum(m.iterations for m in self.machines.values())

    @property
    def converged(self) -> bool:
        """True if every pairwise machine converged."""
        return all(m.converged for m in self.machines.values())


class OneVsOneClassifier:
    """Multiclass wrapper over any binary kernel backend."""

    def __init__(self, backend: KernelBackend):
        self._backend = backend

    def fit_kernel(
        self,
        kernel: np.ndarray,
        labels: np.ndarray,
        alpha0: np.ndarray | None = None,
    ):
        """Train; returns a binary :class:`SVMModel` for 2 classes, a
        :class:`OneVsOneModel` otherwise (so binary problems stay on the
        fast path with zero overhead).  ``alpha0`` warm-starts binary
        solves on backends that support it; the pairwise machines of a
        multiclass fit always start cold (the duals don't decompose)."""
        kernel = np.asarray(kernel)
        labels = np.asarray(labels)
        classes = np.unique(labels)
        if classes.size < 2:
            raise ValueError("need at least 2 classes")
        if classes.size == 2:
            if alpha0 is not None:
                return self._backend.fit_kernel(kernel, labels, alpha0=alpha0)
            return self._backend.fit_kernel(kernel, labels)
        machines: dict[tuple[int, int], SVMModel] = {}
        pair_indices: dict[tuple[int, int], np.ndarray] = {}
        for a, b in combinations(classes.tolist(), 2):
            idx = np.nonzero((labels == a) | (labels == b))[0]
            sub = kernel[np.ix_(idx, idx)]
            machines[(a, b)] = self._backend.fit_kernel(sub, labels[idx])
            pair_indices[(a, b)] = idx
        return OneVsOneModel(
            classes=tuple(int(c) for c in classes),
            machines=machines,
            pair_indices=pair_indices,
            n_train=kernel.shape[0],
        )

    def fit_kernel_batch(self, kernels: np.ndarray, labels: np.ndarray):
        """Batched training passthrough for binary problems.

        Binary label sets delegate to the wrapped backend's
        ``fit_kernel_batch`` (zero overhead, like the scalar path);
        multiclass batches are not vectorized — callers fall back to the
        per-voxel loop, which votes pairwise machines per problem.
        """
        labels = np.asarray(labels)
        if np.unique(labels).size != 2:
            raise NotImplementedError(
                "batched training supports binary problems only"
            )
        fit_batch = getattr(self._backend, "fit_kernel_batch", None)
        if fit_batch is None:
            raise NotImplementedError(
                f"{type(self._backend).__name__} has no batched trainer"
            )
        return fit_batch(np.asarray(kernels), labels)


def as_multiclass(backend: KernelBackend) -> OneVsOneClassifier:
    """Wrap a binary backend for arbitrary class counts."""
    return OneVsOneClassifier(backend)
