"""Trained SVM model: coefficients, offset, and prediction.

Both backends (:class:`~repro.svm.phisvm.PhiSVM`,
:class:`~repro.svm.libsvm_like.LibSVMClassifier`) produce an
:class:`SVMModel`.  Because FCMA trains on precomputed linear kernels,
prediction takes the *test-versus-training kernel block* rather than raw
features; helpers for the raw-feature linear case are included.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SVMModel", "BatchSVMModel"]


@dataclass(frozen=True)
class SVMModel:
    """A trained binary C-SVC.

    The decision function for a test block ``K_test`` of shape
    ``(n_test, n_train)`` is ``K_test @ dual_coef - rho``; predictions
    map positive scores to ``classes[1]`` and the rest to ``classes[0]``.
    """

    #: ``alpha_i * y_i`` per training sample, shape (n_train,).
    dual_coef: np.ndarray
    #: Decision-function offset (LibSVM's rho).
    rho: float
    #: Original class labels; classes[0] -> -1, classes[1] -> +1.
    classes: tuple[int, int]
    #: Box constraint the model was trained with.
    c: float
    #: Working-set iterations the solver used.
    iterations: int
    #: Whether the solver met its tolerance.
    converged: bool
    #: Final dual objective.
    objective: float

    def __post_init__(self) -> None:
        if self.dual_coef.ndim != 1:
            raise ValueError("dual_coef must be 1D")
        if len(self.classes) != 2 or self.classes[0] == self.classes[1]:
            raise ValueError("classes must be two distinct labels")

    @property
    def n_train(self) -> int:
        """Number of training samples the model was fit on."""
        return self.dual_coef.shape[0]

    @property
    def support_mask(self) -> np.ndarray:
        """Boolean mask of support vectors (non-zero dual coefficients)."""
        return self.dual_coef != 0.0

    @property
    def n_support(self) -> int:
        """Number of support vectors."""
        return int(np.count_nonzero(self.dual_coef))

    def decision_function(self, kernel_block: np.ndarray) -> np.ndarray:
        """Scores for a ``(n_test, n_train)`` test-vs-train kernel block."""
        kernel_block = np.atleast_2d(np.asarray(kernel_block))
        if kernel_block.shape[1] != self.n_train:
            raise ValueError(
                f"kernel block has {kernel_block.shape[1]} columns, "
                f"model expects {self.n_train}"
            )
        return kernel_block @ self.dual_coef - self.rho

    def predict(self, kernel_block: np.ndarray) -> np.ndarray:
        """Predicted class labels for a test-vs-train kernel block."""
        scores = self.decision_function(kernel_block)
        out = np.where(scores > 0.0, self.classes[1], self.classes[0])
        return out.astype(np.int64)

    def accuracy(self, kernel_block: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correct predictions on a test block."""
        labels = np.asarray(labels)
        pred = self.predict(kernel_block)
        if pred.shape != labels.shape:
            raise ValueError(
                f"labels shape {labels.shape} != predictions {pred.shape}"
            )
        return float((pred == labels).mean())

    def linear_weights(self, x_train: np.ndarray) -> np.ndarray:
        """Primal weight vector ``w = X^T (alpha * y)`` for linear kernels.

        Only meaningful when the model was trained on a linear kernel of
        ``x_train``; lets online feedback score new samples with a single
        dot product instead of a kernel block.
        """
        x_train = np.asarray(x_train)
        if x_train.shape[0] != self.n_train:
            raise ValueError(
                f"x_train has {x_train.shape[0]} rows, model expects "
                f"{self.n_train}"
            )
        return x_train.T @ self.dual_coef


@dataclass(frozen=True)
class BatchSVMModel:
    """``B`` binary C-SVCs trained jointly on stacked kernels.

    The batched counterpart of :class:`SVMModel`: problem ``b``'s
    decision function for a test block ``K_test[b]`` of shape
    ``(n_test, n_train)`` is ``K_test[b] @ dual_coef[b] - rho[b]``.
    All problems share the training epochs (and therefore the class
    pair) — the FCMA stage-3 situation, where the batch axis is voxels.
    """

    #: ``alpha_i * y_i`` per problem and training sample, shape (B, n_train).
    dual_coef: np.ndarray
    #: Per-problem decision-function offsets, shape (B,).
    rho: np.ndarray
    #: Original class labels; classes[0] -> -1, classes[1] -> +1.
    classes: tuple[int, int]
    #: Box constraint the models were trained with.
    c: float
    #: Working-set iterations per problem, shape (B,).
    iterations: np.ndarray
    #: Per-problem convergence flags, shape (B,).
    converged: np.ndarray
    #: Final dual objective per problem, shape (B,).
    objective: np.ndarray

    def __post_init__(self) -> None:
        if self.dual_coef.ndim != 2:
            raise ValueError("dual_coef must be (problems, n_train)")
        if len(self.classes) != 2 or self.classes[0] == self.classes[1]:
            raise ValueError("classes must be two distinct labels")

    def __len__(self) -> int:
        return self.dual_coef.shape[0]

    @property
    def n_train(self) -> int:
        """Number of training samples each problem was fit on."""
        return self.dual_coef.shape[1]

    def model(self, b: int) -> SVMModel:
        """Problem ``b`` as a standalone :class:`SVMModel`."""
        return SVMModel(
            dual_coef=self.dual_coef[b],
            rho=float(self.rho[b]),
            classes=self.classes,
            c=self.c,
            iterations=int(self.iterations[b]),
            converged=bool(self.converged[b]),
            objective=float(self.objective[b]),
        )

    def _check_blocks(self, kernel_blocks: np.ndarray) -> np.ndarray:
        kernel_blocks = np.asarray(kernel_blocks)
        if kernel_blocks.ndim == 2:
            # One shared test block (e.g. identical fold slices).
            kernel_blocks = np.broadcast_to(
                kernel_blocks, (len(self),) + kernel_blocks.shape
            )
        if kernel_blocks.ndim != 3 or kernel_blocks.shape[0] != len(self):
            raise ValueError(
                f"kernel blocks must be ({len(self)}, n_test, {self.n_train}), "
                f"got {kernel_blocks.shape}"
            )
        if kernel_blocks.shape[2] != self.n_train:
            raise ValueError(
                f"kernel blocks have {kernel_blocks.shape[2]} columns, "
                f"models expect {self.n_train}"
            )
        return kernel_blocks

    def decision_function(self, kernel_blocks: np.ndarray) -> np.ndarray:
        """Scores for stacked ``(B, n_test, n_train)`` test blocks."""
        kernel_blocks = self._check_blocks(kernel_blocks)
        scores = kernel_blocks @ self.dual_coef[:, :, None]
        return scores[:, :, 0] - self.rho[:, None]

    def predict(self, kernel_blocks: np.ndarray) -> np.ndarray:
        """Predicted labels per problem, shape ``(B, n_test)``."""
        scores = self.decision_function(kernel_blocks)
        out = np.where(scores > 0.0, self.classes[1], self.classes[0])
        return out.astype(np.int64)

    def accuracy(self, kernel_blocks: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Per-problem fraction of correct predictions, shape ``(B,)``."""
        labels = np.asarray(labels)
        pred = self.predict(kernel_blocks)
        if labels.shape != (pred.shape[1],):
            raise ValueError(
                f"labels must have shape ({pred.shape[1]},), got {labels.shape}"
            )
        return (pred == labels[None, :]).mean(axis=1)


def encode_labels(labels: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
    """Map two arbitrary integer class labels onto {-1, +1}.

    Returns ``(y, classes)`` with ``classes`` sorted ascending so the
    encoding is deterministic.
    """
    labels = np.asarray(labels)
    uniq = np.unique(labels)
    if uniq.size != 2:
        raise ValueError(
            f"binary classification requires exactly 2 classes, got {uniq.size}"
        )
    classes = (int(uniq[0]), int(uniq[1]))
    y = np.where(labels == classes[1], 1, -1).astype(np.int64)
    return y, classes
