"""Experiment registry: regenerate any paper table/figure by id.

Backs the ``fcma reproduce`` CLI command.  Each entry returns the
rendered paper-vs-reproduced table as text; the same computations run
(with assertions and timing) in ``benchmarks/``.
"""

from __future__ import annotations

from typing import Callable

from ..data.presets import ATTENTION, FACE_SCENE
from . import paperdata
from .tables import render_table

__all__ = ["EXPERIMENTS", "run_experiment", "list_experiments"]

_SPECS = {"face-scene": FACE_SCENE, "attention": ATTENTION}
_TASK_VOXELS = {"face-scene": 120, "attention": 60}


def _table1() -> str:
    from ..hw import PHI_5110P
    from ..perf.vtune import baseline_report

    rows = baseline_report(FACE_SCENE, 120, PHI_5110P)
    keys = ["matmul", "normalization", "libsvm"]
    out = []
    for key, row in zip(keys, rows):
        p_time, p_refs, p_miss, p_vi = paperdata.TABLE1_BASELINE[key]
        out.append([
            row.name,
            f"{row.time_ms:.0f} / {p_time:.0f}",
            f"{row.mem_refs / 1e9:.1f} / {p_refs / 1e9:.1f}",
            f"{row.l2_misses / 1e6:.0f} / {p_miss / 1e6:.0f}",
            f"{row.vector_intensity:.1f} / {p_vi}",
        ])
    return render_table(
        ["kernel", "time ms (repro/paper)", "refs G", "L2 miss M", "VI"],
        out,
        title="Table 1: baseline instrumentation (face-scene, 120 voxels, Phi)",
    )


def _scaling(mode: str) -> str:
    from ..cluster import ClusterConfig, offline_workload, online_workload, simulate
    from ..hw import PHI_5110P
    from ..perf.task_model import offline_task_seconds, online_task_seconds

    rows = []
    for name, spec in _SPECS.items():
        tv = _TASK_VOXELS[name]
        if mode == "offline":
            workload = offline_workload(
                spec, offline_task_seconds(spec, PHI_5110P, tv), tv
            )
            paper = paperdata.TABLE3_OFFLINE_SECONDS[name]
        else:
            workload = online_workload(
                spec, online_task_seconds(spec, PHI_5110P, tv), tv
            )
            paper = paperdata.TABLE4_ONLINE_SECONDS[name]
        for n in paperdata.NODE_COUNTS:
            sim = simulate(workload, ClusterConfig(n_workers=n)).elapsed_seconds
            ref = paper.get(n)
            rows.append([
                name, str(n), f"{sim:.2f}",
                f"{ref:.2f}" if ref is not None else "-",
            ])
    title = (
        "Table 3: offline elapsed seconds" if mode == "offline"
        else "Table 4: online voxel-selection seconds"
    )
    return render_table(
        ["dataset", "#coprocessors", "simulated s", "paper s"], rows, title=title
    )


def _fig8() -> str:
    from ..cluster import offline_workload, speedup_curve
    from ..hw import PHI_5110P
    from ..perf.task_model import offline_task_seconds

    rows = []
    curves = {}
    for name, spec in _SPECS.items():
        tv = _TASK_VOXELS[name]
        workload = offline_workload(
            spec, offline_task_seconds(spec, PHI_5110P, tv), tv
        )
        curves[name] = speedup_curve(workload, paperdata.NODE_COUNTS)
    for n in paperdata.NODE_COUNTS:
        rows.append([
            str(n),
            f"{curves['face-scene'][n][1]:.1f}x",
            f"{curves['attention'][n][1]:.1f}x",
        ])
    return render_table(
        ["#coprocessors", "face-scene", "attention"], rows,
        title="Fig 8: speedup (paper at 96: 59.8x / 73.5x)",
    )


def _table5() -> str:
    from ..hw import PHI_5110P
    from ..perf.matmul_model import model_correlation_matmul, model_kernel_syrk

    rows = []
    for impl in ("ours", "mkl"):
        for kind, fn in (("corr", model_correlation_matmul), ("syrk", model_kernel_syrk)):
            est = fn(FACE_SCENE, 120, PHI_5110P, impl)
            p_time, p_gf = paperdata.TABLE5_MATMUL[(impl, kind)]
            rows.append([
                f"{impl}/{kind}",
                f"{est.milliseconds:.0f} / {p_time:.0f}",
                f"{est.gflops:.0f} / {p_gf:.0f}",
            ])
    return render_table(
        ["kernel", "time ms (repro/paper)", "GFLOPS"], rows,
        title="Table 5: matmul routines",
    )


def _table6() -> str:
    from ..hw import PHI_5110P
    from ..perf.matmul_model import model_correlation_matmul, model_kernel_syrk

    rows = []
    for impl in ("ours", "mkl"):
        c = (
            model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, impl).counters
            + model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, impl).counters
        )
        p_refs, p_miss, p_vi = paperdata.TABLE6_COUNTERS[impl]
        rows.append([
            impl,
            f"{c.mem_refs / 1e9:.2f} / {p_refs / 1e9:.2f}",
            f"{c.l2_misses / 1e6:.1f} / {p_miss / 1e6:.1f}",
            f"{c.vectorization_intensity:.1f} / {p_vi}",
        ])
    return render_table(
        ["impl", "refs G (repro/paper)", "L2 miss M", "VI"], rows,
        title="Table 6: matmul counters",
    )


def _table7() -> str:
    from ..hw import PHI_5110P
    from ..perf.matmul_model import model_correlation_matmul
    from ..perf.norm_model import model_normalization

    corr = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
    rows = []
    for variant in ("merged", "separated"):
        norm = model_normalization(FACE_SCENE, 120, PHI_5110P, variant)
        t = corr.milliseconds + norm.milliseconds
        c = corr.counters + norm.counters
        p_time, p_refs, p_miss = paperdata.TABLE7_MERGING[variant]
        rows.append([
            variant,
            f"{t:.0f} / {p_time:.0f}",
            f"{c.mem_refs / 1e9:.2f} / {p_refs / 1e9:.2f}",
            f"{c.l2_misses / 1e6:.1f} / {p_miss / 1e6:.1f}",
        ])
    return render_table(
        ["method", "time ms (repro/paper)", "refs G", "L2 miss M"], rows,
        title="Table 7: merged vs separated stages",
    )


def _table8() -> str:
    from ..hw import PHI_5110P
    from ..perf.svm_model import model_svm_cv

    rows = []
    for variant in ("libsvm", "libsvm-opt", "phisvm"):
        est = model_svm_cv(FACE_SCENE, 120, PHI_5110P, variant)
        p_time, p_vi = paperdata.TABLE8_SVM[variant]
        rows.append([
            variant,
            f"{est.milliseconds:.0f} / {p_time:.0f}",
            f"{est.counters.vectorization_intensity:.1f} / {p_vi}",
        ])
    return render_table(
        ["implementation", "time ms (repro/paper)", "VI"], rows,
        title="Table 8: SVM cross-validation",
    )


def _fig9() -> str:
    from ..hw import PHI_5110P
    from ..perf.task_model import per_voxel_seconds

    rows = []
    for name, spec in _SPECS.items():
        base = per_voxel_seconds(spec, PHI_5110P, "baseline")
        opt = per_voxel_seconds(spec, PHI_5110P, "optimized")
        rows.append([
            name, f"{base / opt:.2f}x", f"{paperdata.FIG9_SPEEDUP[name]}x",
        ])
    return render_table(
        ["dataset", "repro", "paper"], rows,
        title="Fig 9: optimized vs baseline, one coprocessor (per voxel)",
    )


def _fig10() -> str:
    from ..hw import E5_2670
    from ..perf.task_model import per_voxel_seconds

    rows = []
    for name, spec in _SPECS.items():
        base = per_voxel_seconds(spec, E5_2670, "baseline")
        opt = per_voxel_seconds(spec, E5_2670, "optimized")
        rows.append([
            name, f"{base / opt:.2f}x", f"{paperdata.FIG10_XEON_SPEEDUP[name]}x",
        ])
    return render_table(
        ["dataset", "repro", "paper"], rows,
        title="Fig 10: optimized vs baseline on the E5-2670",
    )


def _fig11() -> str:
    from ..hw import E5_2670, PHI_5110P
    from ..perf.task_model import model_task

    rows = []
    for name, spec in _SPECS.items():
        cells = {
            (hw_name, variant): model_task(spec, hw, variant).seconds_per_voxel
            for hw_name, hw in (("xeon", E5_2670), ("phi", PHI_5110P))
            for variant in ("baseline", "optimized")
        }
        ref = cells[("xeon", "baseline")]
        rows.append([
            name,
            "1.00x",
            f"{ref / cells[('xeon', 'optimized')]:.2f}x",
            f"{ref / cells[('phi', 'baseline')]:.2f}x",
            f"{ref / cells[('phi', 'optimized')]:.2f}x",
        ])
    return render_table(
        ["dataset", "E5 base", "E5 opt", "Phi base", "Phi opt"], rows,
        title="Fig 11: relative performance (E5 baseline = 1)",
    )


EXPERIMENTS: dict[str, Callable[[], str]] = {
    "table1": _table1,
    "table3": lambda: _scaling("offline"),
    "table4": lambda: _scaling("online"),
    "table5": _table5,
    "table6": _table6,
    "table7": _table7,
    "table8": _table8,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
}


def list_experiments() -> list[str]:
    """Known experiment ids, sorted."""
    return sorted(EXPERIMENTS)


def run_experiment(exp_id: str) -> str:
    """Regenerate one experiment's table; KeyError lists known ids."""
    try:
        fn = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {', '.join(list_experiments())}"
        ) from None
    return fn()
