"""The paper's published numbers, transcribed for bench comparisons.

Every benchmark that regenerates a table or figure compares its modeled
or measured output against these reference values and reports the ratio.
Nothing here feeds the models — see :mod:`repro.perf.calibration` for
the few measured microarchitectural descriptors that do.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_BASELINE",
    "TABLE3_OFFLINE_SECONDS",
    "TABLE4_ONLINE_SECONDS",
    "TABLE5_MATMUL",
    "TABLE6_COUNTERS",
    "TABLE7_MERGING",
    "TABLE8_SVM",
    "FIG8_SPEEDUP_96",
    "FIG9_SPEEDUP",
    "FIG10_XEON_SPEEDUP",
    "NODE_COUNTS",
]

#: Worker counts of the scaling studies (the tables' column heads).
NODE_COUNTS = [1, 8, 16, 32, 64, 96]

#: Table 1 — baseline instrumentation on the coprocessor, face-scene,
#: 120-voxel task: (time_ms, mem_refs, l2_misses, vector_intensity).
TABLE1_BASELINE = {
    "matmul": (1830.0, 34.9e9, 709e6, 3.6),
    "normalization": (766.0, 6.2e9, 179e6, 8.5),
    "libsvm": (3600.0, 23.0e9, 7e6, 1.9),
}

#: Table 3 — offline analysis elapsed seconds vs coprocessor count.
TABLE3_OFFLINE_SECONDS = {
    "face-scene": {1: 5101, 8: 694, 16: 385, 32: 242, 64: 124, 96: 85},
    "attention": {1: 54506, 8: 6813, 16: 3620, 32: 2172, 64: 1099, 96: 741},
}

#: Table 4 — online voxel-selection elapsed seconds vs coprocessor count.
TABLE4_ONLINE_SECONDS = {
    "face-scene": {1: 12.00, 96: 2.21},
    "attention": {1: 16.50, 8: 0.20, 96: 2.51},
}
# NOTE: the published attention row (16.50 at 1 node, 0.20 at 8 nodes)
# is internally inconsistent (a 82x speedup on 8 nodes); the 8-node
# entry is widely regarded as a typo.  Benches compare the 1- and
# 96-node endpoints only.

#: Table 5 — matmul routines: (time_ms, gflops).
TABLE5_MATMUL = {
    ("ours", "corr"): (170.0, 126.0),
    ("ours", "syrk"): (400.0, 430.0),
    ("mkl", "corr"): (230.0, 93.0),
    ("mkl", "syrk"): (1600.0, 108.0),
}

#: Table 6 — combined matmul counters: (mem_refs, l2_misses, vi).
TABLE6_COUNTERS = {
    "ours": (9_974_870_500.0, 121_800_000.0, 16.0),
    "mkl": (34_858_368_500.0, 708_900_000.0, 3.6),
}

#: Table 7 — merged vs separated stage 1+2: (time_ms, refs, misses).
TABLE7_MERGING = {
    "merged": (320.0, 1_925_806_500.0, 67_500_000.0),
    "separated": (420.0, 4_347_490_500.0, 188_100_000.0),
}

#: Table 8 — SVM cross-validation: (time_ms, vector_intensity).
TABLE8_SVM = {
    "libsvm": (3600.0, 1.9),
    "libsvm-opt": (1150.0, 7.3),
    "phisvm": (390.0, 9.8),
}

#: Fig. 8 — speedup at 96 coprocessors.
FIG8_SPEEDUP_96 = {"face-scene": 59.8, "attention": 73.5}

#: Fig. 9 — optimized over baseline per-voxel speedup on one coprocessor.
FIG9_SPEEDUP = {"face-scene": 5.24, "attention": 16.39}

#: Fig. 10 — optimized over baseline on one E5-2670.
FIG10_XEON_SPEEDUP = {"face-scene": 1.4, "attention": 2.5}
