"""Benchmark harness support: paper reference data and table rendering."""

from . import paperdata
from .experiments import EXPERIMENTS, list_experiments, run_experiment
from .tables import compare_row, render_table, within_factor

__all__ = [
    "EXPERIMENTS",
    "compare_row",
    "list_experiments",
    "paperdata",
    "render_table",
    "run_experiment",
    "within_factor",
]
