"""Plain-text table rendering for the benchmark harness.

Benchmarks print the same rows/series the paper reports; these helpers
keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "compare_row", "within_factor"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with a header rule."""
    if not headers:
        raise ValueError("headers must be non-empty")
    str_rows = [[str(c) for c in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(
        "  ".join(c.ljust(w) for c, w in zip(row, widths)) for row in str_rows
    )
    return "\n".join(lines)


def compare_row(
    label: str, modeled: float, paper: float, unit: str = ""
) -> list[str]:
    """A [label, modeled, paper, ratio] row for reproduction tables."""
    ratio = modeled / paper if paper else float("inf")
    return [
        label,
        f"{modeled:,.2f}{unit}",
        f"{paper:,.2f}{unit}",
        f"{ratio:.2f}x",
    ]


def within_factor(modeled: float, paper: float, factor: float) -> bool:
    """True when two positive quantities agree within ``factor``.

    ``within_factor(a, b, 1.3)`` accepts a in [b/1.3, b*1.3].  This is
    the acceptance criterion the reproduction benches assert: shapes and
    factors, not absolute testbed numbers.
    """
    if factor < 1.0:
        raise ValueError("factor must be >= 1")
    if modeled <= 0 or paper <= 0:
        return False
    ratio = modeled / paper
    return 1.0 / factor <= ratio <= factor
