"""Command-line interface: ``python -m repro <command>`` (or ``fcma``).

Commands
--------
``generate``  write a synthetic dataset to a .npz file
``scenarios`` ground-truth accuracy matrix: sweep design x SNR x SF x
              subjects, score voxel selection against planted truth,
              and optionally record ``acc.*`` metrics to the history
``run``       voxel selection on any executor, with per-stage timings
``select``    run FCMA voxel selection on a dataset file
``offline``   nested leave-one-subject-out analysis
``online``    single-subject voxel selection + classifier summary
``report``    the paper's Table-1 style instrumentation report
``simulate``  cluster scaling simulation (Tables 3-4 / Fig. 8 style)
``trace``     inspect or convert a span trace written by ``run --trace``
``top``       live dashboard over the snapshot stream a ``run --live
              --live-events`` (or ``rtfmri --live-events``) is writing
``perf``      the performance observatory: record runs into the
              benchmark history, check for drift, render
              predicted-vs-measured and roofline reports, and gate
              model calibration against the paper's numbers
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Sequence

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fcma",
        description="Full Correlation Matrix Analysis (Wang et al., SC'15 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset (.npz)")
    gen.add_argument("output", help="output .npz path")
    gen.add_argument("--preset",
                     choices=["quickstart", "face-scene", "attention",
                              "sparse-100k"],
                     default="quickstart")
    gen.add_argument("--voxels", type=int, default=None,
                     help="override voxel count")
    gen.add_argument("--subjects", type=int, default=None,
                     help="override subject count")
    gen.add_argument("--epochs-per-subject", type=int, default=None,
                     help="override epochs per subject")
    gen.add_argument("--seed", type=int, default=None)
    gen.add_argument("--design", choices=["block", "event", "jittered"],
                     default=None,
                     help="generate a ground-truth scenario dataset from "
                          "this task design instead of a --preset")
    gen.add_argument("--snr", type=float, default=None,
                     help="--design only: target SNR = SD_signal/SD_noise "
                          "(<= 0 disables noise)")
    gen.add_argument("--sf", type=float, default=None,
                     help="--design only: TMFC scaling factor "
                          "SF = SD_oscill/SD_coact (<= 0 disables "
                          "co-activations)")

    scn = sub.add_parser(
        "scenarios",
        help="run the ground-truth accuracy matrix and score selection "
             "against the planted informative set",
    )
    scn.add_argument("--matrix", choices=["smoke", "default"],
                     default="default",
                     help="preset grid: smoke = block design at the SNR "
                          "extremes; default = every design across the "
                          "SNR ladder")
    scn.add_argument("--design", action="append",
                     choices=["block", "event", "jittered"], default=None,
                     help="restrict to these designs (repeatable)")
    scn.add_argument("--snr", type=float, nargs="+", default=None,
                     help="override the SNR grid")
    scn.add_argument("--sf", type=float, nargs="+", default=None,
                     help="override the scaling-factor grid")
    scn.add_argument("--subjects", type=int, nargs="+", default=None,
                     help="override the subject-count grid")
    scn.add_argument("--voxels", type=int, default=None,
                     help="override the voxel count")
    scn.add_argument("--seed", type=int, default=None,
                     help="override the scenario seed")
    scn.add_argument("--executor",
                     choices=["serial", "pool", "master-worker"],
                     default="serial",
                     help="executor running voxel selection (all produce "
                          "identical selections)")
    scn.add_argument("--workers", type=int, default=2,
                     help="worker count for pool/master-worker")
    scn.add_argument("--min-auc", type=float, default=None,
                     help="fail (exit 1) when the best ROC-AUC across "
                          "the matrix is below this floor")
    scn.add_argument("--json", action="store_true",
                     help="emit the matrix report as JSON")
    scn.add_argument("--history", default=None, metavar="PATH",
                     help="append the matrix's acc.* metrics to the "
                          "benchmark history registry at PATH (gate with "
                          "'fcma perf check --latest')")
    scn.add_argument("--history-name", default="scenario-accuracy",
                     metavar="NAME",
                     help="series name the history record is filed under")

    run = sub.add_parser(
        "run",
        help="voxel selection on a chosen executor, timings via RunContext",
    )
    run.add_argument("dataset", help="input .npz dataset")
    run.add_argument("--executor", choices=["serial", "pool", "master-worker"],
                     default="serial",
                     help="execution backend (all produce identical results)")
    run.add_argument("--workers", type=int, default=None,
                     help="worker count (pool defaults to CPUs, "
                          "master-worker to 2)")
    run.add_argument("--transport", choices=["thread", "tcp"],
                     default="thread",
                     help="master-worker rank fabric: in-process threads "
                          "or real processes over length-prefixed TCP")
    run.add_argument("--partition", choices=["rows", "tiles"],
                     default="rows",
                     help="master-worker work decomposition: 1-D row "
                          "panels or 2-D correlation tiles with "
                          "comm/compute overlap")
    run.add_argument("--listen", default=None, metavar="HOST:PORT",
                     help="tcp transport: address to listen on "
                          "(default 127.0.0.1:0 = any free port)")
    run.add_argument("--hosts", type=int, default=None, metavar="N",
                     help="tcp transport: wait for N externally started "
                          "workers ('fcma worker --connect HOST:PORT' on "
                          "each host) instead of spawning local processes")
    run.add_argument("--tile-cols", type=int, default=None,
                     help="tiles partition: fixed tile column width "
                          "(default: sized from the blocking planner)")
    run.add_argument("--comm-timeout", type=float, default=None,
                     help="communicator timeout in seconds (default: "
                          "FCMA_COMM_TIMEOUT or 120)")
    run.add_argument("--variant",
                     choices=["optimized", "baseline", "optimized-batched",
                              "sparse-batched"],
                     default=None,
                     help="pipeline variant (default: optimized, or the "
                          "--emitter's native engine variant)")
    run.add_argument("--emitter",
                     choices=["dense", "csr"],
                     default=None,
                     help="engine emitter materializing stage-1/2 tiles; "
                          "without --variant this implies the matching "
                          "engine variant (dense -> optimized-batched, "
                          "csr -> sparse-batched)")
    run.add_argument("--task-voxels", type=int, default=120)
    run.add_argument("--threshold", type=float, default=None,
                     help="sparse-batched: keep normalized correlations "
                          "with |value| >= THRESHOLD")
    run.add_argument("--top-k", type=int, default=None,
                     help="sparse-batched: keep the K strongest "
                          "correlations per (voxel, epoch) row")
    run.add_argument("--autotune", action="store_true",
                     help="optimized-batched: measure candidate blocking "
                          "plans instead of trusting the analytic model")
    run.add_argument("--plan-cache", default=None, metavar="PATH",
                     help="JSON file persisting autotuned blocking plans "
                          "across runs (default: in-memory only)")
    run.add_argument("--top", type=int, default=20, help="voxels to report")
    run.add_argument("--seed", type=int, default=None,
                     help="RunContext seed (stochastic components only)")
    run.add_argument("--json", action="store_true",
                     help="emit the run report (per-stage timings, task "
                          "stream, top voxels) as JSON")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="write the run's span trace to PATH")
    run.add_argument("--trace-format", choices=["jsonl", "chrome"],
                     default="jsonl",
                     help="trace file format: JSON-lines span records or "
                          "a Chrome trace_event file for chrome://tracing")
    run.add_argument("--history", default=None, metavar="PATH",
                     help="append this run's metrics to the benchmark "
                          "history registry at PATH (JSON-lines)")
    run.add_argument("--history-name", default="fcma-run", metavar="NAME",
                     help="series name the history record is filed under")
    _add_live_args(run)

    wrk = sub.add_parser(
        "worker",
        help="join a listening 'fcma run --transport tcp' master as one "
             "TCP worker rank",
    )
    wrk.add_argument("--connect", required=True, metavar="HOST:PORT",
                     help="address the master is listening on")
    wrk.add_argument("--timeout", type=float, default=None,
                     help="communicator timeout in seconds (default: "
                          "FCMA_COMM_TIMEOUT or 120)")

    sel = sub.add_parser("select", help="run voxel selection on a dataset")
    sel.add_argument("dataset", help="input .npz dataset")
    sel.add_argument("--top", type=int, default=20, help="voxels to report")
    sel.add_argument("--variant",
                     choices=["optimized", "baseline", "optimized-batched",
                              "sparse-batched"],
                     default="optimized")
    sel.add_argument("--threshold", type=float, default=None,
                     help="sparse-batched: keep normalized correlations "
                          "with |value| >= THRESHOLD")
    sel.add_argument("--top-k", type=int, default=None,
                     help="sparse-batched: keep the K strongest "
                          "correlations per (voxel, epoch) row")
    sel.add_argument("--workers", type=int, default=1,
                     help="process-pool workers (1 = serial)")
    sel.add_argument("--task-voxels", type=int, default=120)
    sel.add_argument("--output", default=None,
                     help="optional CSV of all voxel scores")

    off = sub.add_parser("offline", help="nested LOSO analysis")
    off.add_argument("dataset")
    off.add_argument("--top", type=int, default=20)
    off.add_argument("--task-voxels", type=int, default=120)

    onl = sub.add_parser("online", help="single-subject voxel selection")
    onl.add_argument("dataset")
    onl.add_argument("--subject", type=int, default=0)
    onl.add_argument("--top", type=int, default=20)
    onl.add_argument("--folds", type=int, default=4)

    rt = sub.add_parser(
        "rtfmri", help="closed-loop streaming session (train, then "
                       "per-TR incremental feedback)"
    )
    rt.add_argument("dataset", help="input .npz dataset (replayed as a scan)")
    rt.add_argument("--subject", type=int, default=0)
    rt.add_argument("--training-epochs", type=int, default=8,
                    help="completed epochs accumulated before training")
    rt.add_argument("--top-k", type=int, default=20,
                    help="voxels selected for the feedback classifier")
    rt.add_argument("--folds", type=int, default=4,
                    help="within-subject CV folds for voxel selection")
    rt.add_argument("--retrain-every", type=int, default=None,
                    help="adaptive mode: refresh the decoder after every "
                         "N feedback epochs (warm-started SMO)")
    rt.add_argument("--window-epochs", type=int, default=None,
                    help="sliding window: retain only the most recent N "
                         "completed epochs (default: keep everything)")
    rt.add_argument("--latency-budget-ms", type=float, default=None,
                    help="fail (exit 1) when the p99 per-TR step latency "
                         "exceeds this many milliseconds")
    rt.add_argument("--json", action="store_true",
                    help="emit the session report as JSON")
    rt.add_argument("--history", default=None, metavar="PATH",
                    help="append the session's latency/accuracy metrics "
                         "to the benchmark history registry at PATH "
                         "(gate drift with 'fcma perf check --latest')")
    rt.add_argument("--history-name", default="rtfmri-session",
                    metavar="NAME",
                    help="series name the history record is filed under")
    _add_live_args(rt)

    rep = sub.add_parser("report", help="instrumentation report (Table 1)")
    rep.add_argument("--dataset", choices=["face-scene", "attention"],
                     default="face-scene")
    rep.add_argument("--machine", choices=["phi", "xeon", "knl"], default="phi")
    rep.add_argument("--task-voxels", type=int, default=120)

    rep2 = sub.add_parser(
        "reproduce", help="regenerate a paper table/figure by id"
    )
    rep2.add_argument(
        "experiment", nargs="?", default=None,
        help="e.g. table1, table3, fig8; omit to list all",
    )

    sim = sub.add_parser("simulate", help="cluster scaling simulation")
    sim.add_argument("--dataset", choices=["face-scene", "attention"],
                     default="face-scene")
    sim.add_argument("--mode", choices=["offline", "online"], default="offline")
    sim.add_argument("--nodes", type=int, nargs="+",
                     default=[1, 8, 16, 32, 64, 96])
    sim.add_argument("--task-voxels", type=int, default=None,
                     help="defaults to the paper's 120/60 per dataset")
    sim.add_argument("--trace", default=None, metavar="PATH",
                     help="write the simulated schedule of the largest "
                          "node count as a span trace (jsonl)")

    trc = sub.add_parser(
        "trace", help="inspect or convert a span trace (run --trace)"
    )
    trc.add_argument("trace_file", help="JSON-lines trace written by "
                                        "'fcma run --trace'")
    trc.add_argument("--view", choices=["tree", "table", "chrome"],
                     default="tree",
                     help="tree: indented span hierarchy; table: per-stage "
                          "metric totals; chrome: trace_event JSON")
    trc.add_argument("--max-depth", type=int, default=None,
                     help="tree view: clip spans deeper than this")
    trc.add_argument("--output", default=None, metavar="PATH",
                     help="write the view here instead of stdout")

    top = sub.add_parser(
        "top",
        help="live dashboard over a snapshot stream "
             "(run --live --live-events PATH)",
    )
    top.add_argument("events", help="JSON-lines snapshot stream written by "
                                    "'fcma run --live --live-events'")
    top.add_argument("--follow", action="store_true",
                     help="keep refreshing until the run publishes its "
                          "final snapshot")
    top.add_argument("--refresh", type=float, default=1.0, metavar="SECONDS",
                     help="--follow: redraw interval (default 1.0)")

    perf = sub.add_parser(
        "perf", help="performance observatory (history, drift, reports)"
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    def _add_history_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("--history", default=None, metavar="PATH",
                       help="history registry path (default: "
                            "benchmarks/results/history.jsonl, or "
                            "$FCMA_HISTORY_PATH)")
        p.add_argument("--name", default="fcma-run", metavar="NAME",
                       help="series name in the registry")

    def _add_run_opts(p: argparse.ArgumentParser) -> None:
        p.add_argument("--variant",
                       choices=["optimized", "baseline", "optimized-batched",
                                "sparse-batched"],
                       default="optimized-batched")
        p.add_argument("--task-voxels", type=int, default=120)
        p.add_argument("--threshold", type=float, default=None,
                       help="sparse-batched: |value| >= THRESHOLD filter")
        p.add_argument("--top-k", type=int, default=None,
                       help="sparse-batched: per-row top-K filter")
        p.add_argument("--machine", choices=["phi", "xeon", "knl"],
                       default="xeon",
                       help="machine model used for counter enrichment")

    rec = perf_sub.add_parser(
        "record",
        help="run a dataset (serial), enrich the trace with model "
             "predictions, and append a record to the history registry",
    )
    rec.add_argument("dataset", nargs="?", default=None,
                     help="input .npz dataset (omit with --ingest)")
    _add_history_opts(rec)
    _add_run_opts(rec)
    rec.add_argument("--trace", default=None, metavar="PATH",
                     help="also write the enriched span trace to PATH")
    rec.add_argument("--ingest", default=None, metavar="BENCH_JSON",
                     help="instead of running: ingest a legacy "
                          "BENCH_*.json blob into the registry")
    rec.add_argument("--json", action="store_true",
                     help="emit the appended record as JSON")

    chk = perf_sub.add_parser(
        "check",
        help="judge a run against the recorded history; exits 1 on "
             "drift, 2 when nothing was checkable",
    )
    chk.add_argument("dataset", nargs="?", default=None,
                     help="dataset to run and check (omit with --latest)")
    _add_history_opts(chk)
    _add_run_opts(chk)
    chk.add_argument("--latest", action="store_true",
                     help="check the registry's newest record of the "
                          "series against the rest instead of running")
    chk.add_argument("--timing-tolerance", type=float, default=None,
                     help="relative band for wall-clock metrics "
                          "(default 0.5)")
    chk.add_argument("--exact-tolerance", type=float, default=None,
                     help="relative band for deterministic metrics "
                          "(default 1e-6)")
    chk.add_argument("--timing-slack", type=float, default=None,
                     metavar="SECONDS",
                     help="absolute delta under which seconds-valued "
                          "timing metrics always pass (default 0.01)")
    chk.add_argument("--min-history", type=int, default=1,
                     help="comparable observations required per metric")

    prep = perf_sub.add_parser(
        "report",
        help="predicted-vs-measured + roofline report from a trace file",
    )
    prep.add_argument("trace_file",
                      help="JSON-lines trace (run --trace / perf record "
                           "--trace); enriched on the fly if needed")
    prep.add_argument("--machine", choices=["phi", "xeon", "knl"],
                      default="xeon")

    hist = perf_sub.add_parser(
        "history", help="list records in the history registry"
    )
    hist.add_argument("--history", default=None, metavar="PATH")
    hist.add_argument("--name", default=None, metavar="NAME",
                      help="restrict to one series")
    hist.add_argument("--limit", type=int, default=None,
                      help="show only the newest N records")
    hist.add_argument("--json", action="store_true",
                      help="emit the records as JSON lines")

    cal = perf_sub.add_parser(
        "calibrate",
        help="check model calibration against the paper's published "
             "tables; exits 1 on drift",
    )
    cal.add_argument("--tolerance", type=float, default=1.0,
                     help="uniform scale on every tolerance band "
                          "(1.0 = defaults)")
    return parser


def _add_live_args(p: argparse.ArgumentParser) -> None:
    """The live telemetry plane's flags (``run`` and ``rtfmri``)."""
    p.add_argument("--live", action="store_true",
                   help="publish in-flight progress/ETA snapshots while "
                        "the run executes (implied by --live-events / "
                        "--prom-file)")
    p.add_argument("--live-events", default=None, metavar="PATH",
                   help="stream repro.live/v1 snapshots to PATH as JSON "
                        "lines ('fcma top PATH --follow' watches it)")
    p.add_argument("--prom-file", default=None, metavar="PATH",
                   help="atomically rewrite PATH with the latest snapshot "
                        "in Prometheus text format (node_exporter "
                        "textfile-collector style)")
    p.add_argument("--live-interval", type=float, default=0.5,
                   metavar="SECONDS",
                   help="snapshot publish interval (default 0.5)")


def _spec_for(name: str):
    from .data import ATTENTION, FACE_SCENE

    return FACE_SCENE if name == "face-scene" else ATTENTION


def _machine_for(name: str):
    from .hw import E5_2670, KNL_7250, PHI_5110P

    return {"phi": PHI_5110P, "xeon": E5_2670, "knl": KNL_7250}[name]


def _cmd_generate_design(args: argparse.Namespace) -> int:
    """The ``--design`` path: a ground-truth scenario dataset."""
    from .data import (
        DESIGN_PRESETS,
        GroundTruthConfig,
        design_ground_truth,
        generate_design_dataset,
        save_dataset,
    )

    design = DESIGN_PRESETS[args.design]()
    if args.epochs_per_subject is not None:
        per_condition, rem = divmod(
            args.epochs_per_subject, design.n_conditions
        )
        if rem or per_condition < 1:
            print(
                f"error: --epochs-per-subject must be a positive "
                f"multiple of {design.n_conditions} (the design's "
                f"condition count)",
                file=sys.stderr,
            )
            return 2
        design = design.scaled(epochs_per_condition=per_condition)
    cfg = GroundTruthConfig(design=design, name=f"scenario-{args.design}")
    overrides: dict[str, object] = {}
    if args.voxels is not None:
        overrides["n_voxels"] = args.voxels
    if args.subjects is not None:
        overrides["n_subjects"] = args.subjects
    if args.seed is not None:
        overrides["seed"] = args.seed
    conn_overrides: dict[str, object] = {}
    if args.snr is not None:
        conn_overrides["snr"] = args.snr
    if args.sf is not None:
        conn_overrides["sf"] = args.sf
    if conn_overrides:
        overrides["connectivity"] = cfg.connectivity.scaled(**conn_overrides)
    if overrides:
        cfg = cfg.scaled(**overrides)
    dataset = generate_design_dataset(cfg)
    path = save_dataset(dataset, args.output)
    truth = design_ground_truth(cfg)
    print(f"wrote {dataset} -> {path}")
    print(f"design: {args.design} (snr={cfg.connectivity.snr:g}, "
          f"sf={cfg.connectivity.sf:g}, {truth.size} planted voxels)")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .data import (
        attention_scaled,
        face_scene_scaled,
        generate_dataset,
        quickstart_config,
        save_dataset,
        sparse_100k_config,
    )

    if args.design is not None:
        return _cmd_generate_design(args)
    if args.snr is not None or args.sf is not None:
        print("error: --snr/--sf require --design", file=sys.stderr)
        return 2
    if args.preset == "quickstart":
        cfg = quickstart_config()
    elif args.preset == "face-scene":
        cfg = face_scene_scaled()
    elif args.preset == "sparse-100k":
        cfg = sparse_100k_config()
    else:
        cfg = attention_scaled()
    overrides = {}
    if args.voxels is not None:
        overrides["n_voxels"] = args.voxels
        overrides["n_informative"] = max(8, args.voxels // 25)
    if args.subjects is not None:
        overrides["n_subjects"] = args.subjects
    if args.epochs_per_subject is not None:
        overrides["epochs_per_subject"] = args.epochs_per_subject
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        cfg = cfg.scaled(**overrides)
    dataset = generate_dataset(cfg)
    path = save_dataset(dataset, args.output)
    print(f"wrote {dataset} -> {path}")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from .eval import (
        default_matrix,
        format_accuracy_table,
        matrix_record,
        max_roc_auc,
        run_matrix,
        smoke_matrix,
    )

    matrix = smoke_matrix() if args.matrix == "smoke" else default_matrix()
    overrides: dict[str, object] = {}
    if args.design:
        overrides["designs"] = tuple(dict.fromkeys(args.design))
    if args.snr:
        overrides["snrs"] = tuple(args.snr)
    if args.sf:
        overrides["sfs"] = tuple(args.sf)
    if args.subjects:
        overrides["subjects"] = tuple(args.subjects)
    if args.voxels is not None:
        overrides["n_voxels"] = args.voxels
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        matrix = matrix.scaled(**overrides)

    def _progress(result) -> None:
        if not args.json:
            print(f"  {result.scenario.key}: "
                  f"auc={result.score.roc_auc:.3f} "
                  f"({result.wall_seconds:.1f} s)", file=sys.stderr)

    results = run_matrix(
        matrix,
        executor=args.executor,
        n_workers=args.workers,
        progress=_progress,
    )
    best = max_roc_auc(results)
    below_floor = args.min_auc is not None and best < args.min_auc

    history_path = None
    if args.history:
        from .obs.perf import HistoryRegistry

        record = matrix_record(
            matrix, results, name=args.history_name, executor=args.executor
        )
        history_path = str(HistoryRegistry(args.history).append(record))

    if args.json:
        report: dict[str, object] = {
            "matrix": {
                "designs": list(matrix.designs),
                "snrs": list(matrix.snrs),
                "sfs": list(matrix.sfs),
                "subjects": list(matrix.subjects),
                "n_voxels": matrix.n_voxels,
                "seed": matrix.seed,
            },
            "executor": args.executor,
            "n_scenarios": len(results),
            "scenarios": [
                {
                    "key": r.scenario.key,
                    "roc_auc": r.score.roc_auc,
                    "average_precision": r.score.average_precision,
                    "top_k_hit_rate": r.score.top_k_hit_rate,
                    "wall_seconds": r.wall_seconds,
                }
                for r in results
            ],
            "max_roc_auc": best,
        }
        if args.min_auc is not None:
            report["min_auc"] = args.min_auc
            report["passed"] = not below_floor
        if history_path is not None:
            report["history"] = {
                "path": history_path,
                "name": args.history_name,
            }
        print(json.dumps(report, indent=2))
    else:
        print(format_accuracy_table(results))
        print(f"best ROC-AUC {best:.3f} across {len(results)} scenario(s) "
              f"on executor '{args.executor}'")
        if args.min_auc is not None:
            verdict = "BELOW" if below_floor else "meets"
            print(f"accuracy floor: best ROC-AUC {best:.3f} {verdict} "
                  f"{args.min_auc:.3f}")
        if history_path is not None:
            print(f"history: recorded '{args.history_name}' "
                  f"-> {history_path}")
    return 1 if below_floor else 0


def _write_trace(spans, path: str, fmt: str) -> int:
    """Write a span list to ``path`` in the requested format.

    The write goes through a sibling temp file + ``os.replace`` so a
    reader (or a crash) never observes a half-written file — the same
    path may hold the crash-durable incremental trace of the run that
    just finished, and this rewrite must not tear it.
    """
    from .obs import to_chrome_trace, write_jsonl

    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        if fmt == "chrome":
            with open(tmp, "w") as fh:
                json.dump(to_chrome_trace(spans), fh, indent=2)
            n_spans = len(spans)
        else:
            n_spans = write_jsonl(spans, tmp)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.unlink(tmp)
    return n_spans


class _LivePlane:
    """CLI-side assembly of the live telemetry plane (``--live``).

    Owns the :class:`~repro.obs.live.LiveRuntime`, the sink stack
    (in-memory ring always; JSON-lines / Prometheus when asked for),
    and the periodic publisher.  ``start``/``stop`` bracket the run:
    activation makes the runtime visible to executors and loops via
    :func:`~repro.obs.live.current_live`, and ``stop`` returns the
    final snapshot for the run report.
    """

    def __init__(self, args: argparse.Namespace) -> None:
        self.enabled = bool(args.live or args.live_events or args.prom_file)
        self.final: dict | None = None
        self.runtime = None
        self._publisher = None
        self._tracer = None
        if not self.enabled:
            return
        from .obs.live import (
            JsonlSink,
            LiveRuntime,
            PrometheusFileSink,
            RingSink,
            SnapshotPublisher,
        )

        self.runtime = LiveRuntime()
        self.ring = RingSink()
        sinks = [self.ring]
        if args.live_events:
            sinks.append(JsonlSink(args.live_events))
        if args.prom_file:
            sinks.append(PrometheusFileSink(args.prom_file))
        self._publisher = SnapshotPublisher(
            self.runtime, sinks, interval=args.live_interval
        )

    def start(self, tracer=None) -> None:
        if not self.enabled:
            return
        from .obs.live import activate

        if tracer is not None:
            self._tracer = tracer
            self.runtime.attach_tracer(tracer)
        activate(self.runtime)
        self._publisher.start()

    def stop(self) -> dict | None:
        if not self.enabled or self._publisher is None:
            return None
        from .obs.live import deactivate

        self.final = self._publisher.stop()
        self._publisher = None
        deactivate()
        if self._tracer is not None:
            self.runtime.detach_tracer(self._tracer)
            self._tracer = None
        return self.final

    def summary_line(self) -> str | None:
        """One text-mode line describing what the plane observed."""
        if self.final is None:
            return None
        progress = self.final.get("progress", {})
        done = progress.get("done", 0)
        total = progress.get("total", 0)
        fraction = progress.get("fraction")
        pct = f"{fraction:.0%}" if fraction is not None else "n/a"
        return (f"live: {self.final.get('seq', 0) + 1} snapshots, "
                f"progress {done:g}/{total:g} ({pct})")


def _cmd_run(args: argparse.Namespace) -> int:
    from .core import FCMAConfig
    from .data import load_dataset
    from .exec import RunContext, make_executor

    dataset = load_dataset(args.dataset)
    variant = args.variant
    if variant is None:
        # --emitter alone implies its native engine variant; config
        # validation rejects any explicit variant/emitter mismatch.
        variant = {"dense": "optimized-batched", "csr": "sparse-batched"}.get(
            args.emitter, "optimized"
        )
    config = FCMAConfig(
        variant=variant,
        task_voxels=args.task_voxels,
        autotune_blocks=args.autotune,
        plan_cache_path=args.plan_cache,
        threshold=args.threshold,
        top_k=args.top_k,
        emitter=args.emitter,
        comm_timeout=args.comm_timeout,
    )
    ctx = RunContext(config, seed=args.seed)
    mw_opts: dict[str, object] = {}
    if args.transport != "thread" or args.partition != "rows":
        if args.executor != "master-worker":
            print(
                "error: --transport/--partition require "
                "--executor master-worker",
                file=sys.stderr,
            )
            return 2
    if args.executor == "master-worker":
        mw_opts["transport"] = args.transport
        mw_opts["partition"] = args.partition
        if args.tile_cols is not None:
            mw_opts["tile_cols"] = args.tile_cols
        if args.listen is not None:
            from .parallel.tcp_worker import parse_endpoint

            host, port = parse_endpoint(args.listen)
            mw_opts["host"] = host
            mw_opts["port"] = port
        if args.hosts is not None:
            if args.listen is None or mw_opts.get("port", 0) == 0:
                print(
                    "error: --hosts needs --listen HOST:PORT with an "
                    "explicit port so workers know where to connect",
                    file=sys.stderr,
                )
                return 2
            # External workers join via 'fcma worker --connect'.
            mw_opts["spawn"] = False
            args.workers = args.hosts
            print(
                f"waiting for {args.hosts} worker(s) on {args.listen} "
                f"('fcma worker --connect {args.listen}')",
                file=sys.stderr,
            )
    executor = make_executor(args.executor, n_workers=args.workers, **mw_opts)

    # Crash durability: while the run is in flight every closing span
    # is appended (and flushed) straight to the trace path, so a killed
    # process still leaves a readable prefix.  On success the standard
    # counted-header rewrite below replaces it atomically.
    inc_writer = None
    if args.trace and args.trace_format == "jsonl":
        from .obs import IncrementalJsonlWriter

        inc_writer = IncrementalJsonlWriter(args.trace)
        ctx.tracer.add_listener(inc_writer.on_span_close)

    live = _LivePlane(args)
    live.start(ctx.tracer)
    try:
        scores = executor.run(dataset, ctx)
    finally:
        live.stop()
        if inc_writer is not None:
            ctx.tracer.remove_listener(inc_writer.on_span_close)
            inc_writer.close()
    top = scores.top(args.top)

    trace_info = None
    history_path = None
    spans = ctx.tracer.spans()
    if args.trace or args.history:
        # Attach model predictions (pc.* counters, predicted_seconds,
        # predicted_gflops) to the kernel spans before they leave the
        # process; the trace file then carries measured-vs-predicted.
        from .obs.perf import enrich_spans

        enrich_spans(spans)
    if args.trace:
        n_spans = _write_trace(spans, args.trace, args.trace_format)
        trace_info = {
            "path": args.trace,
            "format": args.trace_format,
            "n_spans": n_spans,
        }
    if args.history:
        from .obs.perf import (
            HistoryRegistry,
            config_fingerprint,
            record_from_trace,
        )

        record = record_from_trace(
            spans,
            args.history_name,
            config_hash=config_fingerprint(config),
            attrs={"executor": args.executor},
        )
        history_path = str(HistoryRegistry(args.history).append(record))

    if args.json:
        report = ctx.timing_report()
        report["dataset"] = str(dataset)
        report["variant"] = config.variant
        report["emitter"] = config.resolved_emitter()
        report["top"] = [
            {"voxel": int(v), "accuracy": float(a)}
            for v, a in zip(top.voxels, top.accuracies)
        ]
        if trace_info is not None:
            report["trace"] = trace_info
        if history_path is not None:
            report["history"] = {
                "path": history_path,
                "name": args.history_name,
            }
        if live.final is not None:
            report["live"] = live.final
        print(json.dumps(report, indent=2))
        return 0

    print(f"dataset: {dataset}")
    print(f"executor: {ctx.metadata['executor']} "
          f"({ctx.metadata['n_tasks']} tasks, "
          f"{ctx.metadata['measured_elapsed_s']:.3f} s elapsed)")
    print("per-stage wall time:")
    for stage, stats in ctx.stages.items():
        print(f"  {stage:24s} {stats.seconds:8.3f} s  ({stats.calls} calls)")
    predicted = ctx.metadata.get("predicted")
    if predicted is not None:
        print(f"simulated schedule: {predicted['elapsed_s']:.3f} s predicted "
              f"vs {ctx.metadata['measured_elapsed_s']:.3f} s measured "
              f"({predicted['utilization']:.0%} predicted utilization)")
    print(f"top {len(top)} voxels by cross-validated accuracy:")
    for voxel, acc in zip(top.voxels, top.accuracies):
        print(f"  voxel {voxel:6d}  accuracy {acc:.3f}")
    if trace_info is not None:
        print(f"trace: {trace_info['n_spans']} spans "
              f"({trace_info['format']}) -> {trace_info['path']}")
    if history_path is not None:
        print(f"history: appended '{args.history_name}' -> {history_path}")
    live_line = live.summary_line()
    if live_line is not None:
        print(live_line)
        if args.live_events:
            print(f"live events: {args.live_events} "
                  f"('fcma top {args.live_events}' to view)")
        if args.prom_file:
            print(f"prometheus exposition: {args.prom_file}")
    return 0


def _cmd_select(args: argparse.Namespace) -> int:
    from .core import FCMAConfig
    from .data import load_dataset
    from .exec import RunContext, make_executor

    dataset = load_dataset(args.dataset)
    config = FCMAConfig(variant=args.variant, task_voxels=args.task_voxels,
                        threshold=args.threshold, top_k=args.top_k)
    executor = make_executor("pool" if args.workers > 1 else "serial",
                             n_workers=args.workers)
    scores = executor.run(dataset, RunContext(config))
    top = scores.top(args.top)
    print(f"dataset: {dataset}")
    print(f"top {len(top)} voxels by cross-validated accuracy:")
    for voxel, acc in zip(top.voxels, top.accuracies):
        print(f"  voxel {voxel:6d}  accuracy {acc:.3f}")
    if args.output:
        ordered = scores.sorted_by_accuracy()
        with open(args.output, "w") as fh:
            fh.write("voxel,accuracy\n")
            for voxel, acc in zip(ordered.voxels, ordered.accuracies):
                fh.write(f"{voxel},{acc:.6f}\n")
        print(f"wrote all {len(scores)} scores to {args.output}")
    return 0


def _cmd_offline(args: argparse.Namespace) -> int:
    from .analysis import run_offline_analysis
    from .core import FCMAConfig
    from .data import load_dataset

    dataset = load_dataset(args.dataset)
    config = FCMAConfig(task_voxels=args.task_voxels)
    result = run_offline_analysis(dataset, config, top_k=args.top)
    print(f"nested LOSO over {len(result.folds)} subjects:")
    for fold in result.folds:
        print(f"  held-out subject {fold.held_out_subject}: "
              f"test accuracy {fold.test_accuracy:.3f}")
    print(f"mean held-out accuracy: {result.mean_test_accuracy:.3f}")
    counts = result.selection_counts(dataset.n_voxels)
    stable = int((counts >= len(result.folds) - 1).sum())
    print(f"voxels selected in >= {len(result.folds) - 1} folds: {stable}")
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    from .analysis import run_online_analysis
    from .core import FCMAConfig
    from .data import load_dataset

    dataset = load_dataset(args.dataset)
    config = FCMAConfig(online_folds=args.folds)
    result = run_online_analysis(
        dataset, subject=args.subject, config=config, top_k=args.top
    )
    print(f"subject {args.subject}: selected {len(result.selected)} voxels")
    print(f"  mean selection accuracy: {result.selected.accuracies.mean():.3f}")
    print(f"  classifier training accuracy: {result.training_accuracy:.3f}")
    print(f"  voxels: {result.selected.voxels.tolist()}")
    return 0


def _cmd_rtfmri(args: argparse.Namespace) -> int:
    from .core import FCMAConfig
    from .data import load_dataset
    from .rtfmri import ClosedLoopSession, ScannerSimulator

    dataset = load_dataset(args.dataset)
    config = FCMAConfig(online_folds=args.folds)
    scanner = ScannerSimulator(dataset, subject=args.subject)
    session = ClosedLoopSession(
        scanner,
        config,
        training_epochs=args.training_epochs,
        top_k=args.top_k,
        retrain_every=args.retrain_every,
        window_epochs=args.window_epochs,
    )
    live = _LivePlane(args)
    if live.enabled and args.latency_budget_ms is not None:
        live.runtime.set_gauge(
            "rtfmri_latency_budget_s", args.latency_budget_ms / 1e3
        )
    # The session's internal training/retrain executors declare task
    # totals through the process-global hook; the matching completions
    # tick through the tracer's close listener, so both seams attach.
    live.start(session.context.tracer)
    try:
        result = session.run()
    finally:
        live.stop()
    stats = result.streaming
    p99_ms = stats.p99_step_latency_s * 1e3

    history_path = None
    if args.history:
        from .obs.perf import (
            BenchmarkRecord,
            HistoryRegistry,
            config_fingerprint,
        )

        record = BenchmarkRecord(
            name=args.history_name,
            metrics={
                "median_step_seconds": stats.median_step_latency_s,
                "p99_step_seconds": stats.p99_step_latency_s,
                "max_step_seconds": stats.max_step_latency_s,
                "training_wall_seconds": result.training_latency_s,
                "feedback_wall_seconds": result.max_feedback_latency_s,
                "feedback_accuracy": result.feedback_accuracy,
                "feedback_events": float(len(result.events)),
                "trs_streamed": float(stats.trs_streamed),
                "partial_updates": float(stats.partial_updates),
                "epochs_completed": float(stats.epochs_completed),
                "epochs_evicted": float(stats.epochs_evicted),
                "warm_started_retrains": float(stats.warm_started_retrains),
            },
            config_hash=config_fingerprint(
                config,
                {
                    "training_epochs": args.training_epochs,
                    "top_k": args.top_k,
                    "retrain_every": args.retrain_every,
                    "window_epochs": args.window_epochs,
                },
            ),
            attrs={"subject": args.subject, "dataset": str(dataset)},
        )
        history_path = str(HistoryRegistry(args.history).append(record))

    over_budget = (
        args.latency_budget_ms is not None
        and p99_ms > args.latency_budget_ms
    )
    if args.json:
        report = {
            "dataset": str(dataset),
            "subject": args.subject,
            "feedback_events": len(result.events),
            "feedback_accuracy": result.feedback_accuracy,
            "training_latency_s": result.training_latency_s,
            "max_feedback_latency_s": result.max_feedback_latency_s,
            "retrain_count": session.retrain_count,
            "streaming": {
                "trs_streamed": stats.trs_streamed,
                "partial_updates": stats.partial_updates,
                "epochs_completed": stats.epochs_completed,
                "epochs_evicted": stats.epochs_evicted,
                "warm_started_retrains": stats.warm_started_retrains,
                "median_step_ms": stats.median_step_latency_s * 1e3,
                "p99_step_ms": p99_ms,
                "max_step_ms": stats.max_step_latency_s * 1e3,
            },
        }
        if args.latency_budget_ms is not None:
            report["latency_budget_ms"] = args.latency_budget_ms
            report["within_budget"] = not over_budget
        if history_path is not None:
            report["history"] = {
                "path": history_path,
                "name": args.history_name,
            }
        if live.final is not None:
            report["live"] = live.final
        print(json.dumps(report, indent=2))
    else:
        print(f"dataset: {dataset}")
        print(f"feedback: {len(result.events)} events, "
              f"accuracy {result.feedback_accuracy:.3f}")
        print(f"training: {result.training_latency_s:.3f} s"
              + (f", {session.retrain_count} retrains "
                 f"({stats.warm_started_retrains} warm-started)"
                 if session.retrain_count else ""))
        print(f"streaming: {stats.trs_streamed} TRs, "
              f"{stats.epochs_completed} epochs completed, "
              f"{stats.epochs_evicted} evicted")
        print(f"step latency: median "
              f"{stats.median_step_latency_s * 1e3:.3f} ms, "
              f"p99 {p99_ms:.3f} ms, "
              f"max {stats.max_step_latency_s * 1e3:.3f} ms")
        if args.latency_budget_ms is not None:
            verdict = "OVER" if over_budget else "within"
            print(f"latency budget: p99 {p99_ms:.3f} ms {verdict} "
                  f"{args.latency_budget_ms:.3f} ms")
        if history_path is not None:
            print(f"history: recorded '{args.history_name}' "
                  f"-> {history_path}")
        live_line = live.summary_line()
        if live_line is not None:
            print(live_line)
    return 1 if over_budget else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .perf import baseline_report, format_report, model_task

    spec = _spec_for(args.dataset)
    hw = _machine_for(args.machine)
    print(f"machine: {hw}")
    rows = baseline_report(spec, args.task_voxels, hw)
    print(format_report(rows, title=f"Baseline instrumentation ({spec.name})"))
    base = model_task(spec, hw, "baseline")
    opt = model_task(spec, hw, "optimized")
    print(f"\noptimized-over-baseline speedup (per voxel): "
          f"{base.seconds_per_voxel / opt.seconds_per_voxel:.2f}x")
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .bench import list_experiments, run_experiment

    if args.experiment is None:
        print("experiments:", ", ".join(list_experiments()))
        return 0
    try:
        print(run_experiment(args.experiment))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .cluster import ClusterConfig, offline_workload, online_workload, simulate
    from .hw import PHI_5110P
    from .perf import offline_task_seconds, online_task_seconds

    spec = _spec_for(args.dataset)
    task_voxels = args.task_voxels
    if task_voxels is None:
        task_voxels = 120 if spec.name == "face-scene" else 60
    if args.mode == "offline":
        t_task = offline_task_seconds(spec, PHI_5110P, task_voxels)
        workload = offline_workload(spec, t_task, task_voxels)
    else:
        t_task = online_task_seconds(spec, PHI_5110P, task_voxels)
        workload = online_workload(spec, t_task, task_voxels)
    print(f"{args.mode} workload on {spec.name}: "
          f"{workload.n_tasks} tasks x {t_task * 1e3:.1f} ms")
    base = None
    for n in args.nodes:
        res = simulate(workload, ClusterConfig(n_workers=n))
        if base is None:
            base = res.elapsed_seconds
        print(f"  {n:4d} coprocessors: {res.elapsed_seconds:10.2f} s  "
              f"(speedup {base / res.elapsed_seconds:6.1f}x, "
              f"utilization {res.utilization:.0%})")
    if args.trace:
        from .cluster.trace import simulate_with_trace
        from .obs import spans_from_cluster_trace, write_jsonl

        n = max(args.nodes)
        trace = simulate_with_trace(workload, ClusterConfig(n_workers=n))
        n_spans = write_jsonl(spans_from_cluster_trace(trace), args.trace)
        print(f"trace: {n_spans} spans ({n}-worker schedule) "
              f"-> {args.trace}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .obs import (
        format_metrics_table,
        metrics_table,
        read_jsonl,
        render_tree,
        to_chrome_trace,
    )

    try:
        spans = read_jsonl(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    if args.view == "chrome":
        text = json.dumps(to_chrome_trace(spans), indent=2)
    elif args.view == "table":
        text = format_metrics_table(metrics_table(spans))
    else:
        text = render_tree(spans, max_depth=args.max_depth)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.view} view of {len(spans)} spans "
              f"to {args.output}")
    else:
        print(text)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time

    from .obs.live import read_latest_snapshot, render_snapshot

    if not args.follow:
        snapshot = read_latest_snapshot(args.events)
        if snapshot is None:
            print(f"top: no snapshots in {args.events}", file=sys.stderr)
            return 1
        print(render_snapshot(snapshot))
        return 0

    last_seq = None
    while True:
        snapshot = read_latest_snapshot(args.events)
        if snapshot is not None and snapshot.get("seq") != last_seq:
            last_seq = snapshot.get("seq")
            # ANSI clear + home keeps the dashboard in place on a
            # terminal; redirected output degrades to appended frames.
            if sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            print(render_snapshot(snapshot))
        if snapshot is not None and snapshot.get("final"):
            return 0
        time.sleep(args.refresh)


def _perf_run_record(args: argparse.Namespace):
    """Run a dataset serially, enrich the trace, build a history record."""
    from .core import FCMAConfig
    from .data import load_dataset
    from .exec import RunContext, make_executor
    from .obs.perf import config_fingerprint, enrich_spans, record_from_trace

    dataset = load_dataset(args.dataset)
    config = FCMAConfig(variant=args.variant, task_voxels=args.task_voxels,
                        threshold=args.threshold, top_k=args.top_k)
    ctx = RunContext(config)
    make_executor("serial").run(dataset, ctx)
    spans = ctx.tracer.spans()
    enrich_spans(spans, hw=_machine_for(args.machine))
    record = record_from_trace(
        spans,
        args.name,
        config_hash=config_fingerprint(config, {"machine": args.machine}),
        attrs={"machine_model": args.machine},
    )
    return record, spans


def _cmd_perf_record(args: argparse.Namespace) -> int:
    from .obs.perf import HistoryRegistry, ingest_legacy_bench

    registry = HistoryRegistry(args.history)
    if args.ingest:
        record = ingest_legacy_bench(args.ingest)
    elif args.dataset:
        record, spans = _perf_run_record(args)
        if args.trace:
            n_spans = _write_trace(spans, args.trace, "jsonl")
            print(f"trace: {n_spans} spans -> {args.trace}", file=sys.stderr)
    else:
        print("perf record: need a dataset or --ingest", file=sys.stderr)
        return 2
    path = registry.append(record)
    if args.json:
        print(json.dumps(record.to_dict(), indent=2))
    else:
        print(f"recorded '{record.name}' ({len(record.metrics)} metrics, "
              f"sha {record.git_sha[:12]}, machine {record.machine_id}) "
              f"-> {path}")
    return 0


def _cmd_perf_check(args: argparse.Namespace) -> int:
    from .obs.perf import (
        DEFAULT_EXACT_TOLERANCE,
        DEFAULT_TIMING_SLACK_SECONDS,
        DEFAULT_TIMING_TOLERANCE,
        HistoryRegistry,
        check_record,
    )

    registry = HistoryRegistry(args.history)
    if args.latest:
        records = registry.records(args.name)
        if not records:
            print(f"perf check: no '{args.name}' records in "
                  f"{registry.path}", file=sys.stderr)
            return 2
        current, history = records[-1], records[:-1]
    elif args.dataset:
        current, _ = _perf_run_record(args)
        history = registry.records(args.name)
    else:
        print("perf check: need a dataset or --latest", file=sys.stderr)
        return 2

    report = check_record(
        current,
        history,
        timing_tolerance=(
            DEFAULT_TIMING_TOLERANCE
            if args.timing_tolerance is None
            else args.timing_tolerance
        ),
        exact_tolerance=(
            DEFAULT_EXACT_TOLERANCE
            if args.exact_tolerance is None
            else args.exact_tolerance
        ),
        timing_slack_seconds=(
            DEFAULT_TIMING_SLACK_SECONDS
            if args.timing_slack is None
            else args.timing_slack
        ),
        min_history=args.min_history,
    )
    print(report.summary())
    for finding in report.findings:
        if not finding.ok:
            kind = "timing" if finding.timing else "deterministic"
            print(f"  DRIFT {finding.metric}: {finding.current:.6g} vs "
                  f"median {finding.baseline:.6g} over {finding.n_history} "
                  f"records ({kind}, deviation {finding.deviation:.1%} > "
                  f"±{finding.tolerance:.1%})")
    known_hashes = {r.config_hash for r in history if r.config_hash}
    if current.config_hash and known_hashes and (
        current.config_hash not in known_hashes
    ):
        print(f"  note: config hash {current.config_hash} not seen in "
              f"history ({len(known_hashes)} known) — deltas may reflect "
              f"a config change, not a regression")
    if report.checked == 0:
        print("  nothing checkable against history "
              "(fresh series or all-foreign machines)", file=sys.stderr)
        return 2
    return 0 if report.ok else 1


def _cmd_perf_report(args: argparse.Namespace) -> int:
    from .obs import read_jsonl
    from .obs.perf import enrich_spans, format_perf_report

    try:
        spans = read_jsonl(args.trace_file)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    hw = _machine_for(args.machine)
    enrich_spans(spans, hw=hw)  # no-op on already-enriched traces
    print(format_perf_report(spans, hw))
    return 0


def _cmd_perf_history(args: argparse.Namespace) -> int:
    from .obs.perf import HistoryRegistry

    registry = HistoryRegistry(args.history)
    records = registry.records(args.name)
    if args.limit is not None:
        records = records[-args.limit:]
    if args.json:
        for record in records:
            print(json.dumps(record.to_dict(), sort_keys=True))
        return 0
    if not records:
        print(f"no records in {registry.path}"
              + (f" for series '{args.name}'" if args.name else ""))
        return 0
    print(f"{len(records)} record(s) in {registry.path}:")
    for record in records:
        print(f"  {record.timestamp}  {record.git_sha[:12]:<12} "
              f"{record.machine_id}  {record.name:<24} "
              f"{len(record.metrics)} metrics")
    return 0


def _cmd_perf_calibrate(args: argparse.Namespace) -> int:
    from .obs.perf import run_calibration

    return run_calibration(args.tolerance)


def _cmd_perf(args: argparse.Namespace) -> int:
    return {
        "record": _cmd_perf_record,
        "check": _cmd_perf_check,
        "report": _cmd_perf_report,
        "history": _cmd_perf_history,
        "calibrate": _cmd_perf_calibrate,
    }[args.perf_command](args)


def _cmd_worker(args: argparse.Namespace) -> int:
    from .parallel.tcp_worker import main as worker_main

    argv = ["--connect", args.connect]
    if args.timeout is not None:
        argv += ["--timeout", str(args.timeout)]
    return worker_main(argv)


_COMMANDS = {
    "generate": _cmd_generate,
    "scenarios": _cmd_scenarios,
    "run": _cmd_run,
    "worker": _cmd_worker,
    "select": _cmd_select,
    "offline": _cmd_offline,
    "online": _cmd_online,
    "rtfmri": _cmd_rtfmri,
    "report": _cmd_report,
    "reproduce": _cmd_reproduce,
    "simulate": _cmd_simulate,
    "trace": _cmd_trace,
    "top": _cmd_top,
    "perf": _cmd_perf,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    np.set_printoptions(precision=3, suppress=True)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error. Detach
        # stdout so the interpreter's exit-time flush doesn't re-raise.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
