"""repro — Full Correlation Matrix Analysis (FCMA) of fMRI data.

A complete reproduction of *"Full Correlation Matrix Analysis of fMRI
Data on Intel Xeon Phi Coprocessors"* (Wang et al., SC '15): the
three-stage FCMA pipeline with both the baseline (MKL/LibSVM-style) and
optimized (blocked/merged/PhiSVM) implementations, the SVM solvers, a
master-worker parallel runtime, hardware performance models that
regenerate the paper's instrumentation tables, and a cluster simulator
that regenerates its scaling results.

Quickstart::

    from repro import generate_dataset, quickstart_config, FCMAConfig
    from repro import parallel_voxel_selection

    dataset = generate_dataset(quickstart_config())
    scores = parallel_voxel_selection(dataset, FCMAConfig())
    print(scores.top(10).voxels)

Subpackages
-----------
``repro.core``      the three-stage pipeline (the paper's contribution)
``repro.exec``      execution core: stage graph, RunContext, executors
``repro.svm``       SMO solver, PhiSVM, LibSVM-like baseline
``repro.data``      dataset model, synthetic fMRI generator, presets
``repro.parallel``  MPI-like comm, master-worker protocol, process pool
``repro.cluster``   network model + discrete-event cluster simulator
``repro.hw``        machine specs, cache simulator, timing model
``repro.perf``      kernel performance models (Tables 1, 5-8; Figs 9-11)
``repro.analysis``  offline nested CV, online selection, MVPA foil, ROI stats
``repro.rtfmri``    closed-loop system (Fig. 1): scanner sim + feedback loop
``repro.bench``     paper reference data + table rendering
"""

from .analysis import (
    OfflineResult,
    OnlineResult,
    run_offline_analysis,
    run_online_analysis,
)
from .core import (
    FCMAConfig,
    VoxelScores,
    run_task,
    task_partition,
)
from .data import (
    ATTENTION,
    FACE_SCENE,
    BrainMask,
    DatasetSpec,
    Epoch,
    EpochTable,
    FMRIDataset,
    SyntheticConfig,
    attention_scaled,
    face_scene_scaled,
    generate_dataset,
    ground_truth_voxels,
    load_dataset,
    quickstart_config,
    save_dataset,
)
from .exec import (
    MasterWorkerExecutor,
    ProcessPoolExecutor,
    RunContext,
    SerialExecutor,
    make_executor,
)
from .parallel import (
    mpi_voxel_selection,
    parallel_voxel_selection,
    serial_voxel_selection,
)
from .rtfmri import ClosedLoopSession, ScannerSimulator
from .svm import LibSVMClassifier, PhiSVM, SVMModel

__version__ = "1.0.0"

__all__ = [
    "ATTENTION",
    "BrainMask",
    "ClosedLoopSession",
    "DatasetSpec",
    "Epoch",
    "EpochTable",
    "FACE_SCENE",
    "FCMAConfig",
    "FMRIDataset",
    "LibSVMClassifier",
    "MasterWorkerExecutor",
    "OfflineResult",
    "OnlineResult",
    "PhiSVM",
    "ProcessPoolExecutor",
    "RunContext",
    "SVMModel",
    "ScannerSimulator",
    "SerialExecutor",
    "SyntheticConfig",
    "VoxelScores",
    "attention_scaled",
    "face_scene_scaled",
    "generate_dataset",
    "ground_truth_voxels",
    "load_dataset",
    "make_executor",
    "mpi_voxel_selection",
    "parallel_voxel_selection",
    "quickstart_config",
    "run_offline_analysis",
    "run_online_analysis",
    "run_task",
    "save_dataset",
    "serial_voxel_selection",
    "task_partition",
    "__version__",
]
