"""FCMA stage 2: within-subject normalization (Sections 3.1, 4.3).

Correlation coefficients are Fisher-transformed (equation 4) and then
z-scored within subject (equation 5): for each (voxel, target-voxel,
subject) triple, the population is that subject's ``E`` epoch values —
the "sub-column of E values" of Fig. 4.

Two execution strategies, numerically identical:

* :func:`normalize_separated` — a standalone pass over the full
  correlation array (the baseline; re-reads everything from memory).
* :func:`MergedNormalizer` — a tile callback for
  :func:`repro.core.correlation.correlate_blocked` that normalizes each
  tile while it is still cache-resident (optimization idea #2).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "fisher_z",
    "zscore_within_subject",
    "normalize_separated",
    "MergedNormalizer",
]

#: Correlations are clipped to +-(1 - _CLIP_EPS) before arctanh so that
#: degenerate +-1 coefficients (a voxel correlated with itself, or
#: duplicated time courses) map to a large finite z instead of inf.
_CLIP_EPS = 1e-6


def fisher_z(corr: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Equation 4: ``z = arctanh(r)``, computed in float32.

    Values are clipped into the open interval (-1, 1) first; see
    ``_CLIP_EPS``.  ``out`` may alias ``corr`` for in-place operation.
    """
    corr = np.asarray(corr)
    if out is None:
        out = np.empty_like(corr, dtype=np.float32)
    limit = np.float32(1.0 - _CLIP_EPS)
    np.clip(corr, -limit, limit, out=out)
    return np.arctanh(out, out=out)


def zscore_within_subject(
    z: np.ndarray, epochs_per_subject: int, eps: float = 1e-12
) -> np.ndarray:
    """Equation 5 applied in place along subject-contiguous epochs.

    ``z`` has voxel-major shape ``(V, M, N)`` with the ``M`` epochs
    grouped by subject (``M = n_subjects * epochs_per_subject``).  For
    every (voxel, subject, target) the ``epochs_per_subject`` values are
    standardized with the population standard deviation.  Zero-variance
    populations become 0.
    """
    z = np.asarray(z)
    if z.ndim != 3:
        raise ValueError(f"expected (V, M, N) correlations, got {z.shape}")
    n_rows, m, n = z.shape
    if epochs_per_subject < 1:
        raise ValueError("epochs_per_subject must be >= 1")
    if m % epochs_per_subject != 0:
        raise ValueError(
            f"epoch count {m} not divisible by epochs_per_subject "
            f"{epochs_per_subject}"
        )
    grouped = z.reshape(n_rows, m // epochs_per_subject, epochs_per_subject, n)
    mean = grouped.mean(axis=2, keepdims=True)
    std = grouped.std(axis=2, keepdims=True)
    grouped -= mean
    np.divide(grouped, std, out=grouped, where=std > eps)
    grouped[np.broadcast_to(std <= eps, grouped.shape)] = 0.0
    return z


def normalize_separated(
    corr: np.ndarray, epochs_per_subject: int
) -> np.ndarray:
    """Baseline stage 2: Fisher transform then z-score, full-array passes.

    Operates in place on the float32 correlation array and returns it.
    This is the "separated" variant of Table 7 — stage 1 finished
    completely before this runs, so every element is re-fetched from
    memory.
    """
    corr = np.asarray(corr)
    if corr.dtype != np.float32:
        raise TypeError(f"expected float32 correlations, got {corr.dtype}")
    fisher_z(corr, out=corr)
    return zscore_within_subject(corr, epochs_per_subject)


class MergedNormalizer:
    """Tile callback implementing the merged stage-1/stage-2 pipeline.

    Pass an instance as ``tile_callback`` to
    :func:`repro.core.correlation.correlate_blocked` with
    ``epoch_block=epochs_per_subject``: each tile then contains exactly
    one subject's worth of epochs for a (voxel-block x target-block)
    region, i.e. complete normalization populations, and is Fisher- and
    z-transformed before it leaves cache ("the data necessary for a
    complete normalization should reside in the same block",
    Section 4.3).
    """

    def __init__(self, epochs_per_subject: int):
        if epochs_per_subject < 1:
            raise ValueError("epochs_per_subject must be >= 1")
        self.epochs_per_subject = epochs_per_subject
        #: Number of tiles normalized (test/perf introspection).
        self.tiles_processed = 0

    def __call__(
        self,
        tile: np.ndarray,
        voxel_block: tuple[int, int],
        target_block: tuple[int, int],
        epoch_block: tuple[int, int],
    ) -> None:
        e0, e1 = epoch_block
        if (e1 - e0) != self.epochs_per_subject or e0 % self.epochs_per_subject:
            raise ValueError(
                "merged normalization requires epoch blocks aligned to one "
                f"subject ({self.epochs_per_subject} epochs); got [{e0}, {e1})"
            )
        fisher_z(tile, out=tile)
        zscore_within_subject(tile, self.epochs_per_subject)
        self.tiles_processed += 1
