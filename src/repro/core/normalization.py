"""FCMA stage 2: within-subject normalization (Sections 3.1, 4.3).

Correlation coefficients are Fisher-transformed (equation 4) and then
z-scored within subject (equation 5): for each (voxel, target-voxel,
subject) triple, the population is that subject's ``E`` epoch values —
the "sub-column of E values" of Fig. 4.

Three execution strategies, numerically identical:

* :func:`normalize_separated` — a standalone pass over the full
  correlation array (the baseline; re-reads everything from memory).
* :func:`MergedNormalizer` — a tile callback for
  :func:`repro.core.correlation.correlate_blocked` that normalizes each
  tile while it is still cache-resident (optimization idea #2).  Kept as
  the *reference* merged path: it dispatches through the generic
  :func:`fisher_z` / :func:`zscore_within_subject` helpers.
* :func:`fuse_normalize_tile` — the batched fast path: the same
  arithmetic as ``normalize_separated`` (bitwise, including degenerate
  populations) expressed as the minimum number of full-tile vector
  passes, with all scratch buffers owned by a reusable
  :class:`NormalizationWorkspace`.
* :func:`fused_normalize_sweep` — the same fast path restructured for
  the fused stage-1/2 engine
  (:func:`repro.core.correlation.correlate_normalize_batched`): the
  big vector passes sweep the task in L2-sized voxel slabs, while the
  small side-buffer ops (mean/variance scaling, sqrt, degenerate
  masking) are hoisted out of the sweep loop and issued once for the
  whole task, cutting per-slab Python dispatch from ~12 ufunc calls
  to 3.
"""

from __future__ import annotations

import numpy as np

from .tiling import block_bounds

__all__ = [
    "fisher_z",
    "zscore_within_subject",
    "normalize_separated",
    "MergedNormalizer",
    "NormalizationWorkspace",
    "fuse_normalize_tile",
    "fused_normalize_sweep",
]

#: Correlations are clipped to +-(1 - _CLIP_EPS) before arctanh so that
#: degenerate +-1 coefficients (a voxel correlated with itself, or
#: duplicated time courses) map to a large finite z instead of inf.
_CLIP_EPS = 1e-6


def fisher_z(corr: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Equation 4: ``z = arctanh(r)``, computed in float32.

    Values are clipped into the open interval (-1, 1) first; see
    ``_CLIP_EPS``.  ``out`` may alias ``corr`` for in-place operation.
    """
    corr = np.asarray(corr)
    if out is None:
        out = np.empty_like(corr, dtype=np.float32)
    limit = np.float32(1.0 - _CLIP_EPS)
    np.clip(corr, -limit, limit, out=out)
    return np.arctanh(out, out=out)


def zscore_within_subject(
    z: np.ndarray, epochs_per_subject: int, eps: float = 1e-12
) -> np.ndarray:
    """Equation 5 applied in place along subject-contiguous epochs.

    ``z`` has voxel-major shape ``(V, M, N)`` with the ``M`` epochs
    grouped by subject (``M = n_subjects * epochs_per_subject``).  For
    every (voxel, subject, target) the ``epochs_per_subject`` values are
    standardized with the population standard deviation.  Zero-variance
    populations become 0.
    """
    z = np.asarray(z)
    if z.ndim != 3:
        raise ValueError(f"expected (V, M, N) correlations, got {z.shape}")
    n_rows, m, n = z.shape
    if epochs_per_subject < 1:
        raise ValueError("epochs_per_subject must be >= 1")
    if m % epochs_per_subject != 0:
        raise ValueError(
            f"epoch count {m} not divisible by epochs_per_subject "
            f"{epochs_per_subject}"
        )
    grouped = z.reshape(n_rows, m // epochs_per_subject, epochs_per_subject, n)
    mean = grouped.mean(axis=2, keepdims=True)
    std = grouped.std(axis=2, keepdims=True)
    grouped -= mean
    np.divide(grouped, std, out=grouped, where=std > eps)
    grouped[np.broadcast_to(std <= eps, grouped.shape)] = 0.0
    return z


def normalize_separated(
    corr: np.ndarray, epochs_per_subject: int
) -> np.ndarray:
    """Baseline stage 2: Fisher transform then z-score, full-array passes.

    Operates in place on the float32 correlation array and returns it.
    This is the "separated" variant of Table 7 — stage 1 finished
    completely before this runs, so every element is re-fetched from
    memory.
    """
    corr = np.asarray(corr)
    if corr.dtype != np.float32:
        raise TypeError(f"expected float32 correlations, got {corr.dtype}")
    fisher_z(corr, out=corr)
    return zscore_within_subject(corr, epochs_per_subject)


class MergedNormalizer:
    """Tile callback implementing the merged stage-1/stage-2 pipeline.

    Pass an instance as ``tile_callback`` to
    :func:`repro.core.correlation.correlate_blocked` with
    ``epoch_block=epochs_per_subject``: each tile then contains exactly
    one subject's worth of epochs for a (voxel-block x target-block)
    region, i.e. complete normalization populations, and is Fisher- and
    z-transformed before it leaves cache ("the data necessary for a
    complete normalization should reside in the same block",
    Section 4.3).
    """

    def __init__(self, epochs_per_subject: int):
        if epochs_per_subject < 1:
            raise ValueError("epochs_per_subject must be >= 1")
        self.epochs_per_subject = epochs_per_subject
        #: Number of tiles normalized (test/perf introspection).
        self.tiles_processed = 0

    def __call__(
        self,
        tile: np.ndarray,
        voxel_block: tuple[int, int],
        target_block: tuple[int, int],
        epoch_block: tuple[int, int],
    ) -> None:
        e0, e1 = epoch_block
        if (e1 - e0) != self.epochs_per_subject or e0 % self.epochs_per_subject:
            raise ValueError(
                "merged normalization requires epoch blocks aligned to one "
                f"subject ({self.epochs_per_subject} epochs); got [{e0}, {e1})"
            )
        fisher_z(tile, out=tile)
        zscore_within_subject(tile, self.epochs_per_subject)
        self.tiles_processed += 1


class NormalizationWorkspace:
    """Reusable scratch buffers for :func:`fuse_normalize_tile`.

    The fused sweep calls the normalizer once per voxel slice; fresh
    ``np.empty`` allocations per call would page-fault megabytes of
    scratch on every tile.  The workspace keeps the (mean, std, square)
    buffers alive across calls, re-allocating only when the tile shape
    changes (at most twice per sweep: the steady block and the ragged
    tail).
    """

    def __init__(self) -> None:
        self._shape: tuple[int, int, int, int] | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._sq: np.ndarray | None = None
        self._sweep_key: tuple[tuple[int, int, int, int], int] | None = None
        self._sweep_mean: np.ndarray | None = None
        self._sweep_std: np.ndarray | None = None
        self._sweep_sq: np.ndarray | None = None

    def buffers(
        self, grouped_shape: tuple[int, int, int, int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(mean, std, sq) scratch for a ``(V, S, E, N)`` grouped tile."""
        if self._shape != grouped_shape:
            v, s, _, n = grouped_shape
            self._mean = np.empty((v, s, 1, n), dtype=np.float32)
            self._std = np.empty((v, s, 1, n), dtype=np.float32)
            self._sq = np.empty(grouped_shape, dtype=np.float32)
            self._shape = grouped_shape
        assert self._mean is not None and self._std is not None and self._sq is not None
        return self._mean, self._std, self._sq

    def sweep_buffers(
        self, grouped_shape: tuple[int, int, int, int], sweep: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scratch for :func:`fused_normalize_sweep` over a full
        ``(V, S, E, N)`` task: whole-task ``mean`` / ``std`` side buffers
        (so their scaling ops hoist out of the sweep loop) plus one
        slab-sized squaring scratch shared by every slab."""
        key = (grouped_shape, sweep)
        if self._sweep_key != key:
            v, s, e, n = grouped_shape
            self._sweep_mean = np.empty((v, s, 1, n), dtype=np.float32)
            self._sweep_std = np.empty((v, s, 1, n), dtype=np.float32)
            self._sweep_sq = np.empty((sweep, s, e, n), dtype=np.float32)
            self._sweep_key = key
        assert (
            self._sweep_mean is not None
            and self._sweep_std is not None
            and self._sweep_sq is not None
        )
        return self._sweep_mean, self._sweep_std, self._sweep_sq


def fuse_normalize_tile(
    tile: np.ndarray,
    epochs_per_subject: int,
    eps: float = 1e-12,
    workspace: NormalizationWorkspace | None = None,
) -> np.ndarray:
    """Fisher-z + within-subject z-score of a whole tile, fast path.

    Bitwise-equal to ``normalize_separated(tile, epochs_per_subject)``
    but with the redundant passes stripped out: ``np.std``'s internal
    re-computation of the centered values is replaced by reusing the
    in-place centered tile, the masked ``where=`` divide (4x the cost of
    a plain divide) becomes a plain divide against a std with degenerate
    entries set to ``inf``, and the final zero-fill of degenerate
    populations touches only the affected columns instead of the whole
    broadcast mask.  The op-for-op float32 sequence of the reference is
    otherwise preserved (same reductions, same order), which is what
    makes the equality exact rather than approximate.

    ``tile`` must be a C-contiguous float32 view of voxel-major
    correlations ``(V, M, N)`` with ``M`` divisible by
    ``epochs_per_subject``; it is normalized in place and returned.
    """
    tile = np.asarray(tile)
    if tile.dtype != np.float32:
        raise TypeError(f"expected float32 correlations, got {tile.dtype}")
    if tile.ndim != 3:
        raise ValueError(f"expected (V, M, N) correlations, got {tile.shape}")
    if not tile.flags.c_contiguous:
        raise TypeError("fuse_normalize_tile requires a C-contiguous tile")
    n_rows, m, n = tile.shape
    if epochs_per_subject < 1:
        raise ValueError("epochs_per_subject must be >= 1")
    if m % epochs_per_subject != 0:
        raise ValueError(
            f"epoch count {m} not divisible by epochs_per_subject "
            f"{epochs_per_subject}"
        )
    if workspace is None:
        workspace = NormalizationWorkspace()
    e = epochs_per_subject
    grouped = tile.reshape(n_rows, m // e, e, n)
    mean, std, sq = workspace.buffers(grouped.shape)

    # Equation 4 (fisher_z inlined so the clip limit stays identical).
    limit = np.float32(1.0 - _CLIP_EPS)
    np.clip(tile, -limit, limit, out=tile)
    np.arctanh(tile, out=tile)

    # Equation 5.  np.mean == umr_sum + true_divide(count); replicating
    # it keeps the accumulation order (and therefore the bits) of the
    # reference while writing into workspace buffers.
    np.add.reduce(grouped, axis=2, keepdims=True, out=mean)
    np.true_divide(mean, e, out=mean, casting="unsafe")
    np.subtract(grouped, mean, out=grouped)
    np.multiply(grouped, grouped, out=sq)
    np.add.reduce(sq, axis=2, keepdims=True, out=std)
    np.true_divide(std, e, out=std, casting="unsafe")
    np.sqrt(std, out=std)

    # Degenerate populations: x / inf underflows to +-0, so a plain
    # divide plus a targeted zero-fill of the affected columns matches
    # the reference's masked divide + broadcast zero-fill exactly.
    vi, si, ni = np.nonzero(std[:, :, 0, :] <= eps)
    if vi.size:
        std[vi, si, 0, ni] = np.inf
    np.divide(grouped, std, out=grouped)
    if vi.size:
        grouped[vi, si, :, ni] = 0.0
    return tile


def fused_normalize_sweep(
    corr: np.ndarray,
    epochs_per_subject: int,
    voxel_sweep: int | None = None,
    eps: float = 1e-12,
    workspace: NormalizationWorkspace | None = None,
) -> int:
    """Whole-task fused normalization as three phased voxel sweeps.

    Same bits as :func:`fuse_normalize_tile` (and therefore
    ``normalize_separated``), restructured to minimize Python dispatch:
    the sweep loop issues only the big slab-sized vector ops —

    * phase 1: clip, arctanh, epoch-sum per slab;
    * phase 2: subtract mean, square, epoch-sum-of-squares per slab;
    * phase 3: divide by std per slab —

    while every small side-buffer op (the ``1/E`` scalings, sqrt,
    degenerate-population masking) runs once on the whole-task ``mean``
    / ``std`` buffers between phases.  Per-slab reductions and
    elementwise ops are untouched, and the hoisted ops are elementwise
    on disjoint data, so the result is bitwise-identical for any sweep
    width.  Locality is unchanged too — a slab is streamed once per
    phase either way — so the ~9 dispatches saved per slab are pure
    win on dispatch-bound task shapes.

    ``corr`` is normalized in place; returns the number of sweep slabs
    (the ``stage12_tiles`` counter).
    """
    corr = np.asarray(corr)
    if corr.dtype != np.float32:
        raise TypeError(f"expected float32 correlations, got {corr.dtype}")
    if corr.ndim != 3:
        raise ValueError(f"expected (V, M, N) correlations, got {corr.shape}")
    if not corr.flags.c_contiguous:
        raise TypeError("fused_normalize_sweep requires a C-contiguous array")
    n_rows, m, n = corr.shape
    if epochs_per_subject < 1:
        raise ValueError("epochs_per_subject must be >= 1")
    if m % epochs_per_subject != 0:
        raise ValueError(
            f"epoch count {m} not divisible by epochs_per_subject "
            f"{epochs_per_subject}"
        )
    sweep = n_rows if voxel_sweep is None else min(voxel_sweep, n_rows)
    if sweep < 1:
        raise ValueError("voxel_sweep must be >= 1")
    if workspace is None:
        workspace = NormalizationWorkspace()
    e = epochs_per_subject
    grouped = corr.reshape(n_rows, m // e, e, n)
    mean, std, sq = workspace.sweep_buffers(grouped.shape, sweep)

    slabs = block_bounds(n_rows, sweep)
    limit = np.float32(1.0 - _CLIP_EPS)
    for v0, v1 in slabs:
        slab = grouped[v0:v1]
        np.clip(slab, -limit, limit, out=slab)
        np.arctanh(slab, out=slab)
        np.add.reduce(slab, axis=2, keepdims=True, out=mean[v0:v1])
    np.true_divide(mean, e, out=mean, casting="unsafe")
    for v0, v1 in slabs:
        slab = grouped[v0:v1]
        np.subtract(slab, mean[v0:v1], out=slab)
        sq_slab = sq[: v1 - v0]
        np.multiply(slab, slab, out=sq_slab)
        np.add.reduce(sq_slab, axis=2, keepdims=True, out=std[v0:v1])
    np.true_divide(std, e, out=std, casting="unsafe")
    np.sqrt(std, out=std)
    vi, si, ni = np.nonzero(std[:, :, 0, :] <= eps)
    if vi.size:
        std[vi, si, 0, ni] = np.inf
    for v0, v1 in slabs:
        np.divide(grouped[v0:v1], std[v0:v1], out=grouped[v0:v1])
    if vi.size:
        grouped[vi, si, :, ni] = 0.0
    return len(slabs)
