"""Result containers for voxel selection."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PanelAssembler", "VoxelScores"]


@dataclass(frozen=True)
class VoxelScores:
    """Cross-validation accuracies for a set of voxels.

    This is what a worker returns to the master and what the master
    aggregates and sorts ("the master node collects all voxels and sorts
    them by their resulting accuracies", Section 3.1.2).
    """

    #: Flat voxel indices, shape (n,).
    voxels: np.ndarray
    #: Held-out classification accuracy per voxel, shape (n,).
    accuracies: np.ndarray

    def __post_init__(self) -> None:
        if self.voxels.shape != self.accuracies.shape or self.voxels.ndim != 1:
            raise ValueError("voxels and accuracies must be 1D and equal length")
        if self.voxels.size and (
            self.accuracies.min() < 0.0 or self.accuracies.max() > 1.0
        ):
            raise ValueError("accuracies must lie in [0, 1]")

    def __len__(self) -> int:
        return self.voxels.size

    @staticmethod
    def concatenate(parts: list["VoxelScores"]) -> "VoxelScores":
        """Merge per-task results (master-side aggregation)."""
        if not parts:
            raise ValueError("nothing to concatenate")
        voxels = np.concatenate([p.voxels for p in parts])
        accs = np.concatenate([p.accuracies for p in parts])
        if np.unique(voxels).size != voxels.size:
            raise ValueError("duplicate voxel ids across task results")
        return VoxelScores(voxels=voxels, accuracies=accs)

    def sorted_by_accuracy(self) -> "VoxelScores":
        """Descending accuracy order (ties broken by voxel id)."""
        order = np.lexsort((self.voxels, -self.accuracies))
        return VoxelScores(self.voxels[order], self.accuracies[order])

    def top(self, k: int) -> "VoxelScores":
        """The ``k`` best-classifying voxels (the selected ROI)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        ranked = self.sorted_by_accuracy()
        k = min(k, len(ranked))
        return VoxelScores(ranked.voxels[:k], ranked.accuracies[:k])

    def accuracy_of(self, voxel: int) -> float:
        """Accuracy of one voxel id; raises KeyError if absent."""
        hits = np.nonzero(self.voxels == voxel)[0]
        if hits.size == 0:
            raise KeyError(f"voxel {voxel} not in results")
        return float(self.accuracies[hits[0]])


class PanelAssembler:
    """Merges 2-D stage-1/2 tiles back into full correlation row panels.

    Under 2-D tile partitioning a row panel's normalized correlations
    ``(rows, epochs, n_voxels)`` arrive as column blocks, possibly out
    of order and from different workers.  The assembler owns one buffer
    per panel, fills column ranges as tiles land, and reports a panel
    exactly once when its last column arrives — the handoff point where
    the master turns it into a stage-3 scoring task.

    Tiles for the same column range may legally arrive twice (a worker
    presumed lost can still have delivered its result before dying);
    the duplicate bytes are identical by the tiled engine's determinism
    contract, so later writes simply overwrite earlier ones and the
    completion count only advances on first arrival.
    """

    def __init__(self, n_voxels: int, n_epochs: int):
        if n_voxels < 1 or n_epochs < 1:
            raise ValueError("n_voxels and n_epochs must be >= 1")
        self._n_voxels = n_voxels
        self._n_epochs = n_epochs
        self._buffers: dict[int, np.ndarray] = {}
        self._rows: dict[int, np.ndarray] = {}
        self._filled: dict[int, set[tuple[int, int]]] = {}
        self._expected: dict[int, int] = {}
        self._done: set[int] = set()

    def expect(self, panel: int, rows: np.ndarray, n_tiles: int) -> None:
        """Declare a panel's row ids and how many column tiles it needs."""
        if n_tiles < 1:
            raise ValueError("n_tiles must be >= 1")
        if panel in self._expected:
            raise ValueError(f"panel {panel} already declared")
        rows = np.asarray(rows, dtype=np.int64)
        if rows.ndim != 1 or rows.size == 0:
            raise ValueError("rows must be a non-empty 1D index array")
        self._expected[panel] = n_tiles
        self._rows[panel] = rows

    def add(
        self,
        panel: int,
        col_start: int,
        col_stop: int,
        block: np.ndarray,
    ) -> np.ndarray | None:
        """Place one tile; returns the full panel when it completes.

        ``block`` must be ``(rows, epochs, col_stop - col_start)``
        float32.  Returns ``None`` while columns are still missing and
        for duplicate arrivals after completion.
        """
        if panel not in self._expected:
            raise KeyError(f"panel {panel} was never declared via expect()")
        if not 0 <= col_start < col_stop <= self._n_voxels:
            raise ValueError(f"bad column range [{col_start}, {col_stop})")
        rows = self._rows[panel]
        want = (rows.size, self._n_epochs, col_stop - col_start)
        block = np.asarray(block, dtype=np.float32)
        if block.shape != want:
            raise ValueError(f"tile has shape {block.shape}, expected {want}")
        buf = self._buffers.get(panel)
        if buf is None:
            buf = self._buffers[panel] = np.empty(
                (rows.size, self._n_epochs, self._n_voxels), dtype=np.float32
            )
            self._filled[panel] = set()
        buf[:, :, col_start:col_stop] = block
        self._filled[panel].add((col_start, col_stop))
        if panel in self._done or len(self._filled[panel]) < self._expected[panel]:
            return None
        self._done.add(panel)
        return buf

    def rows_of(self, panel: int) -> np.ndarray:
        """The declared row ids of a panel."""
        return self._rows[panel]

    def panel_buffer(self, panel: int) -> np.ndarray:
        """A completed panel's full ``(rows, epochs, n_voxels)`` buffer."""
        if panel not in self._done:
            raise KeyError(f"panel {panel} is not complete")
        return self._buffers[panel]

    def release(self, panel: int) -> None:
        """Drop a completed panel's buffer (after stage 3 consumed it)."""
        self._buffers.pop(panel, None)
        self._filled.pop(panel, None)

    @property
    def n_complete(self) -> int:
        return len(self._done)

    @property
    def pending_panels(self) -> list[int]:
        """Declared panels whose buffers are still incomplete."""
        return sorted(p for p in self._expected if p not in self._done)
