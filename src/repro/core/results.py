"""Result containers for voxel selection."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VoxelScores"]


@dataclass(frozen=True)
class VoxelScores:
    """Cross-validation accuracies for a set of voxels.

    This is what a worker returns to the master and what the master
    aggregates and sorts ("the master node collects all voxels and sorts
    them by their resulting accuracies", Section 3.1.2).
    """

    #: Flat voxel indices, shape (n,).
    voxels: np.ndarray
    #: Held-out classification accuracy per voxel, shape (n,).
    accuracies: np.ndarray

    def __post_init__(self) -> None:
        if self.voxels.shape != self.accuracies.shape or self.voxels.ndim != 1:
            raise ValueError("voxels and accuracies must be 1D and equal length")
        if self.voxels.size and (
            self.accuracies.min() < 0.0 or self.accuracies.max() > 1.0
        ):
            raise ValueError("accuracies must lie in [0, 1]")

    def __len__(self) -> int:
        return self.voxels.size

    @staticmethod
    def concatenate(parts: list["VoxelScores"]) -> "VoxelScores":
        """Merge per-task results (master-side aggregation)."""
        if not parts:
            raise ValueError("nothing to concatenate")
        voxels = np.concatenate([p.voxels for p in parts])
        accs = np.concatenate([p.accuracies for p in parts])
        if np.unique(voxels).size != voxels.size:
            raise ValueError("duplicate voxel ids across task results")
        return VoxelScores(voxels=voxels, accuracies=accs)

    def sorted_by_accuracy(self) -> "VoxelScores":
        """Descending accuracy order (ties broken by voxel id)."""
        order = np.lexsort((self.voxels, -self.accuracies))
        return VoxelScores(self.voxels[order], self.accuracies[order])

    def top(self, k: int) -> "VoxelScores":
        """The ``k`` best-classifying voxels (the selected ROI)."""
        if k < 1:
            raise ValueError("k must be >= 1")
        ranked = self.sorted_by_accuracy()
        k = min(k, len(ranked))
        return VoxelScores(ranked.voxels[:k], ranked.accuracies[:k])

    def accuracy_of(self, voxel: int) -> float:
        """Accuracy of one voxel id; raises KeyError if absent."""
        hits = np.nonzero(self.voxels == voxel)[0]
        if hits.size == 0:
            raise KeyError(f"voxel {voxel} not in results")
        return float(self.accuracies[hits[0]])
