"""FCMA stage 3a: SVM kernel matrix precomputation (Section 4.4, Fig. 7).

For each voxel the linear-kernel matrix of its ``(M, N)`` correlation
data matrix is ``C = A A^T`` — a symmetric rank-k update with a very
large ``N`` ("syrk" in BLAS terms).  Precomputing it shrinks a voxel's
working set from an ``M x N`` data matrix (~60 MB at paper scale) to an
``M x M`` kernel (~160 KB), which is what lets the optimized pipeline
keep 240+ voxel problems resident on the coprocessor.

Both a single-BLAS-call baseline and the paper's blocked accumulation
(96-column panels feeding a 16x9 register-tiled microkernel) are
implemented; they are numerically equivalent up to float32 summation
order.
"""

from __future__ import annotations

import numpy as np

from .correlation import iter_blocks

__all__ = [
    "kernel_matrix_baseline",
    "kernel_matrix_blocked",
    "symmetrize_from_triangle",
]

#: Panel depth along the long (N) dimension; "blocks of 96 rows (an
#: integral multiple of VPU length)" in the paper's Fig. 7 walkthrough.
PANEL_DEPTH = 96

#: Microkernel output tile (rows x cols of C), the paper's
#: "auto-generated 16x9x96 assembly-level matrix multiply routine".
MICRO_TILE = (16, 9)


def kernel_matrix_baseline(data: np.ndarray) -> np.ndarray:
    """Baseline syrk: one BLAS call ``A A^T`` (``cblas_ssyrk``)."""
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be (samples, features), got {data.shape}")
    data = np.ascontiguousarray(data, dtype=np.float32)
    return data @ data.T


def kernel_matrix_blocked(
    data: np.ndarray,
    panel_depth: int = PANEL_DEPTH,
    micro_tile: tuple[int, int] | None = None,
) -> np.ndarray:
    """Optimized syrk: accumulate 96-deep panels, triangle only.

    Walks the long dimension in ``panel_depth`` slices (each panel is
    the ``A_local`` buffer of Fig. 7), accumulating partial products
    into ``C``.  Only the lower triangle is computed ("only upper or
    lower triangle of the resulting matrix needs to be computed"), then
    mirrored.  Passing ``micro_tile`` additionally tiles each panel
    product into 16x9 output blocks, reproducing the microkernel loop
    structure exactly (slower in Python; used by equivalence tests).
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be (samples, features), got {data.shape}")
    if panel_depth < 1:
        raise ValueError("panel_depth must be >= 1")
    data = np.ascontiguousarray(data, dtype=np.float32)
    m, n = data.shape
    out = np.zeros((m, m), dtype=np.float32)

    if micro_tile is None:
        for n0, n1 in iter_blocks(n, panel_depth):
            panel = data[:, n0:n1]  # A_local of Fig. 7: (M, depth)
            # Triangle-only accumulation: keep the lower half of the
            # panel's contribution, as each thread in the paper adds its
            # partial triangle to C under a lock.
            out += np.tril(panel @ panel.T)
    else:
        tr, tc = micro_tile
        if tr < 1 or tc < 1:
            raise ValueError("micro_tile entries must be >= 1")
        for n0, n1 in iter_blocks(n, panel_depth):
            panel = data[:, n0:n1]
            for i0, i1 in iter_blocks(m, tr):
                for j0, j1 in iter_blocks(m, tc):
                    if j0 > i1 - 1:
                        continue  # strictly above the diagonal band
                    out[i0:i1, j0:j1] += panel[i0:i1] @ panel[j0:j1].T
        out = np.tril(out)
    return symmetrize_from_triangle(out)


def symmetrize_from_triangle(lower: np.ndarray) -> np.ndarray:
    """Mirror a lower-triangular matrix into a full symmetric one."""
    lower = np.asarray(lower)
    if lower.ndim != 2 or lower.shape[0] != lower.shape[1]:
        raise ValueError(f"expected a square matrix, got {lower.shape}")
    diag = np.diagonal(lower).copy()
    full = lower + lower.T
    np.fill_diagonal(full, diag)
    return full
