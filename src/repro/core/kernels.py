"""FCMA stage 3a: SVM kernel matrix precomputation (Section 4.4, Fig. 7).

For each voxel the linear-kernel matrix of its ``(M, N)`` correlation
data matrix is ``C = A A^T`` — a symmetric rank-k update with a very
large ``N`` ("syrk" in BLAS terms).  Precomputing it shrinks a voxel's
working set from an ``M x N`` data matrix (~60 MB at paper scale) to an
``M x M`` kernel (~160 KB), which is what lets the optimized pipeline
keep 240+ voxel problems resident on the coprocessor.

Three implementations are provided:

* :func:`kernel_matrix_baseline` — one BLAS call per voxel.
* :func:`kernel_matrix_blocked` — the paper's blocked accumulation
  (96-column panels feeding a 16x9 register-tiled microkernel), triangle
  only.
* :func:`kernel_matrix_batched` — **all V voxel kernels at once** as a
  stacked ``(V, M, N) @ (V, N, M)`` GEMM (optionally panel-blocked along
  N), the batch axis that keeps many voxel problems in flight the way
  the paper keeps 240+ problems resident on the coprocessor.

All are numerically equivalent up to float32 summation order.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .correlation import iter_blocks

__all__ = [
    "csr_gram_panel",
    "kernel_matrix_baseline",
    "kernel_matrix_blocked",
    "kernel_matrix_batched",
    "symmetrize_from_triangle",
]

#: Panel depth along the long (N) dimension; "blocks of 96 rows (an
#: integral multiple of VPU length)" in the paper's Fig. 7 walkthrough.
PANEL_DEPTH = 96

#: Microkernel output tile (rows x cols of C), the paper's
#: "auto-generated 16x9x96 assembly-level matrix multiply routine".
MICRO_TILE = (16, 9)


def kernel_matrix_baseline(data: np.ndarray) -> np.ndarray:
    """Baseline syrk: one BLAS call ``A A^T`` (``cblas_ssyrk``)."""
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be (samples, features), got {data.shape}")
    data = np.ascontiguousarray(data, dtype=np.float32)
    return data @ data.T


def kernel_matrix_blocked(
    data: np.ndarray,
    panel_depth: int = PANEL_DEPTH,
    micro_tile: tuple[int, int] | None = None,
) -> np.ndarray:
    """Optimized syrk: accumulate 96-deep panels, triangle only.

    Walks the long dimension in ``panel_depth`` slices (each panel is
    the ``A_local`` buffer of Fig. 7), accumulating partial products
    into ``C``.  Only the lower triangle is computed ("only upper or
    lower triangle of the resulting matrix needs to be computed"): each
    panel's contribution is accumulated as row-band tiles
    ``C[i0:i1, :i1] += panel[i0:i1] @ panel[:i1]^T`` that stop at the
    diagonal block, so — unlike a full ``panel @ panel.T`` followed by a
    mask — only the triangle plus a narrow diagonal band is ever
    computed, halving the temporary traffic exactly as the paper claims.
    Passing ``micro_tile`` additionally tiles each panel product into
    16x9 output blocks, reproducing the microkernel loop structure
    exactly (slower in Python; used by equivalence tests).
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be (samples, features), got {data.shape}")
    if panel_depth < 1:
        raise ValueError("panel_depth must be >= 1")
    data = np.ascontiguousarray(data, dtype=np.float32)
    m, n = data.shape
    out = np.zeros((m, m), dtype=np.float32)

    if micro_tile is None:
        row_band = MICRO_TILE[0]
        for n0, n1 in iter_blocks(n, panel_depth):
            panel = data[:, n0:n1]  # A_local of Fig. 7: (M, depth)
            for i0, i1 in iter_blocks(m, row_band):
                # Row-band tile ending at the diagonal block: every
                # column strictly right of i1 belongs to the upper
                # triangle and is never computed.
                out[i0:i1, :i1] += panel[i0:i1] @ panel[:i1].T
        # The diagonal bands picked up their (symmetric) upper corners;
        # drop them before mirroring.
        out = np.tril(out)
    else:
        tr, tc = micro_tile
        if tr < 1 or tc < 1:
            raise ValueError("micro_tile entries must be >= 1")
        for n0, n1 in iter_blocks(n, panel_depth):
            panel = data[:, n0:n1]
            for i0, i1 in iter_blocks(m, tr):
                for j0, j1 in iter_blocks(m, tc):
                    if j0 > i1 - 1:
                        continue  # strictly above the diagonal band
                    out[i0:i1, j0:j1] += panel[i0:i1] @ panel[j0:j1].T
        out = np.tril(out)
    return symmetrize_from_triangle(out)


def kernel_matrix_batched(
    data: np.ndarray, panel_depth: int | None = None
) -> np.ndarray:
    """Batched syrk: all ``V`` voxel kernels in one stacked GEMM.

    ``data`` holds every voxel problem's data matrix stacked on a batch
    axis, shape ``(V, M, N)``; the result is the ``(V, M, M)`` stack of
    linear kernels ``data[v] @ data[v].T``.  With ``panel_depth=None``
    (the default) this is a single ``np.matmul`` over the stack — one
    BLAS dispatch for V problems instead of V Python-level calls.  An
    integer ``panel_depth`` instead accumulates 96-deep panels with
    triangle-only row bands across the whole batch at once, mirroring
    the Fig. 7 walk with the batch axis innermost in each BLAS call.

    Per-voxel slices equal :func:`kernel_matrix_baseline` /
    :func:`kernel_matrix_blocked` outputs up to float32 summation order
    (bitwise for the unblocked path, which issues the identical GEMM per
    slice).

    ``data`` may also be a :class:`repro.core.sparse.SparseCorrelationResult`,
    in which case each voxel's ``(M, N)`` CSR row band is Gram-ed as
    sparse-times-sparse-transpose (:func:`csr_gram_panel`); the dense
    ``(V, M, M)`` kernel stack feeds the batched SMO unchanged, and at
    ``tau=0`` it equals the dense path within float32 tolerance (sparse
    dot products accumulate in a different order).  ``panel_depth`` has
    no meaning there and must stay ``None``.
    """
    from .sparse import SparseCorrelationResult

    if isinstance(data, SparseCorrelationResult):
        if panel_depth is not None:
            raise ValueError("panel_depth does not apply to CSR input")
        n_problems = data.shape[0]
        return csr_gram_panel(data, 0, n_problems)
    data = np.asarray(data)
    if data.ndim != 3:
        raise ValueError(
            f"data must be (problems, samples, features), got {data.shape}"
        )
    data = np.ascontiguousarray(data, dtype=np.float32)
    if panel_depth is None:
        return data @ data.transpose(0, 2, 1)
    if panel_depth < 1:
        raise ValueError("panel_depth must be >= 1")
    v, m, n = data.shape
    out = np.zeros((v, m, m), dtype=np.float32)
    row_band = MICRO_TILE[0]
    for n0, n1 in iter_blocks(n, panel_depth):
        panel = data[:, :, n0:n1]
        panel_t = panel.transpose(0, 2, 1)
        for i0, i1 in iter_blocks(m, row_band):
            out[:, i0:i1, :i1] += panel[:, i0:i1, :] @ panel_t[:, :, :i1]
    return symmetrize_from_triangle(np.tril(out))


def csr_gram_panel(sparse: "Any", start: int, stop: int) -> np.ndarray:
    """Dense Gram kernels for a panel of voxels of a CSR stage-1/2 result.

    ``sparse`` is a :class:`repro.core.sparse.SparseCorrelationResult`
    whose rows are ``(voxel, epoch)`` pairs; for each voxel ``v`` in
    ``[start, stop)`` the ``(M, N)`` CSR band of its ``M`` epoch rows is
    multiplied with its own transpose — sparse times sparse-transpose,
    ``O(nnz)`` per output row instead of ``O(M * N)`` — and densified
    into the ``(stop - start, M, M)`` float32 kernel stack the batched
    SMO consumes.  Panel-wise so callers can balance ragged per-voxel
    nnz across score batches.
    """
    n_problems, m, _ = sparse.shape
    if not 0 <= start <= stop <= n_problems:
        raise ValueError(
            f"panel [{start}, {stop}) out of range for {n_problems} voxels"
        )
    matrix = sparse.to_scipy()
    out = np.empty((stop - start, m, m), dtype=np.float32)
    for i, v in enumerate(range(start, stop)):
        band = matrix[v * m : (v + 1) * m]
        out[i] = (band @ band.T).toarray()
    return out


def symmetrize_from_triangle(lower: np.ndarray) -> np.ndarray:
    """Mirror lower-triangular matrices into full symmetric ones.

    Accepts a single ``(M, M)`` matrix or a stack ``(..., M, M)`` (the
    batched syrk path); the mirror is applied to the last two axes.
    """
    lower = np.asarray(lower)
    if lower.ndim < 2 or lower.shape[-1] != lower.shape[-2]:
        raise ValueError(f"expected square matrices, got {lower.shape}")
    diag = np.diagonal(lower, axis1=-2, axis2=-1).copy()
    full = lower + np.swapaxes(lower, -1, -2)
    idx = np.arange(lower.shape[-1])
    full[..., idx, idx] = diag
    return full
