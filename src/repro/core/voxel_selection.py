"""FCMA stage 3: voxel-wise SVM cross-validation (Section 3.1).

Each assigned voxel's normalized correlation vectors form an ``(M, N)``
data matrix (M epochs, N brain voxels).  The voxel's score is the
cross-validated accuracy of a linear SVM classifying those vectors by
epoch condition — computed over the precomputed linear kernel so the CV
folds are pure submatrix slices.

Two drivers are provided.  :func:`score_voxels` (the default path)
works **batch-at-a-time**: blocks of ``batch_voxels`` problems get their
kernels from one stacked GEMM and are cross-validated by the
multi-problem SMO solver, which keeps every problem in the block in
flight simultaneously — the software analogue of the paper's "240+
voxel problems resident on the coprocessor".
:func:`score_voxels_reference` is the one-voxel-at-a-time loop kept as
the reference implementation; the batched path reproduces its
trajectories exactly (see the solver equivalence tests).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..obs.runtime import kernel_span
from ..svm.cross_validation import (
    KernelBackend,
    grouped_cross_validation,
    grouped_cross_validation_batch,
)
from .kernels import csr_gram_panel, kernel_matrix_baseline, kernel_matrix_batched
from .results import VoxelScores
from .sparse import SparseCorrelationResult

__all__ = [
    "score_voxels",
    "score_voxels_reference",
    "score_voxels_sparse",
    "DEFAULT_BATCH_VOXELS",
]

KernelFn = Callable[[np.ndarray], np.ndarray]
BatchKernelFn = Callable[[np.ndarray], np.ndarray]

#: Default voxel problems per batch; mirrors the paper's observation
#: that ~2 x 120-voxel tasks stay resident on the coprocessor at once.
DEFAULT_BATCH_VOXELS = 64


def _check_inputs(
    correlations: np.ndarray,
    voxel_ids: np.ndarray,
    labels: np.ndarray,
    fold_ids: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    correlations = np.asarray(correlations)
    if correlations.ndim != 3:
        raise ValueError(
            f"correlations must be (V, M, N), got {correlations.shape}"
        )
    voxel_ids = np.asarray(voxel_ids, dtype=np.int64)
    v, m, _ = correlations.shape
    if voxel_ids.shape != (v,):
        raise ValueError(f"voxel_ids must have shape ({v},)")
    labels = np.asarray(labels)
    fold_ids = np.asarray(fold_ids)
    if labels.shape != (m,) or fold_ids.shape != (m,):
        raise ValueError("labels and fold_ids must have one entry per epoch")
    return correlations, voxel_ids, labels, fold_ids


def score_voxels_reference(
    correlations: np.ndarray,
    voxel_ids: np.ndarray,
    labels: np.ndarray,
    fold_ids: np.ndarray,
    backend: KernelBackend,
    kernel_fn: KernelFn = kernel_matrix_baseline,
) -> VoxelScores:
    """Reference stage 3: one kernel + one sequential CV per voxel.

    Parameters
    ----------
    correlations:
        Normalized voxel-major correlations, shape ``(V, M, N)``.
    voxel_ids:
        The flat brain indices of the ``V`` assigned voxels (reported in
        the result).
    labels:
        Condition labels per epoch, shape ``(M,)``.
    fold_ids:
        CV fold assignment per epoch — subject ids for the offline LOSO
        analysis, k-fold ids for single-subject online analysis.
    backend:
        An SVM backend with ``fit_kernel`` (PhiSVM or LibSVMClassifier).
    kernel_fn:
        Kernel precompute: baseline or blocked syrk.
    """
    correlations, voxel_ids, labels, fold_ids = _check_inputs(
        correlations, voxel_ids, labels, fold_ids
    )
    v = correlations.shape[0]
    accuracies = np.empty(v, dtype=np.float64)
    for i in range(v):
        kernel = kernel_fn(correlations[i])
        result = grouped_cross_validation(backend, kernel, labels, fold_ids)
        accuracies[i] = result.accuracy
    return VoxelScores(voxels=voxel_ids, accuracies=accuracies)


def score_voxels(
    correlations: np.ndarray,
    voxel_ids: np.ndarray,
    labels: np.ndarray,
    fold_ids: np.ndarray,
    backend: KernelBackend,
    kernel_fn: KernelFn = kernel_matrix_baseline,
    batch_voxels: int | None = DEFAULT_BATCH_VOXELS,
    batch_kernel_fn: BatchKernelFn = kernel_matrix_batched,
) -> VoxelScores:
    """Score every assigned voxel by grouped-CV accuracy (batched).

    Blocks of ``batch_voxels`` problems are scored at once: their
    kernels come from one stacked GEMM (``batch_kernel_fn``) and their
    cross-validation runs through the backend's multi-problem solver
    (``fit_kernel_batch``).  Falls back to
    :func:`score_voxels_reference` — per-voxel kernels via ``kernel_fn``
    and sequential CV — when batching is disabled
    (``batch_voxels=None``/``0``), when the backend has no batched
    trainer (e.g. the LibSVM-like baseline), or when the labels are
    multiclass (one-vs-one voting is per-problem).

    See :func:`score_voxels_reference` for the shared parameters.
    """
    correlations, voxel_ids, labels, fold_ids = _check_inputs(
        correlations, voxel_ids, labels, fold_ids
    )
    batchable = (
        batch_voxels is not None
        and batch_voxels > 0
        and hasattr(backend, "fit_kernel_batch")
        and np.unique(labels).size == 2
    )
    if not batchable:
        return score_voxels_reference(
            correlations, voxel_ids, labels, fold_ids, backend,
            kernel_fn=kernel_fn,
        )
    v = correlations.shape[0]
    accuracies = np.empty(v, dtype=np.float64)
    for b0 in range(0, v, batch_voxels):
        b1 = min(b0 + batch_voxels, v)
        with kernel_span(
            "score_batch", attrs={"first_voxel": b0}
        ) as span:
            kernels = batch_kernel_fn(correlations[b0:b1])
            try:
                result = grouped_cross_validation_batch(
                    backend, kernels, labels, fold_ids
                )
            except NotImplementedError:
                # Backends advertising fit_kernel_batch only through a
                # wrapper (e.g. the one-vs-one shim over LibSVM) surface
                # here; score the whole task on the reference path instead.
                return score_voxels_reference(
                    correlations, voxel_ids, labels, fold_ids, backend,
                    kernel_fn=kernel_fn,
                )
            if span is not None:
                span.add_metric("voxels", float(b1 - b0))
                span.add_metric("bytes_moved", float(kernels.nbytes))
        accuracies[b0:b1] = result.accuracies
    return VoxelScores(voxels=voxel_ids, accuracies=accuracies)


def score_voxels_sparse(
    sparse: SparseCorrelationResult,
    voxel_ids: np.ndarray,
    labels: np.ndarray,
    fold_ids: np.ndarray,
    backend: KernelBackend,
    batch_voxels: int | None = DEFAULT_BATCH_VOXELS,
) -> VoxelScores:
    """Stage 3 straight from a CSR stage-1/2 result.

    Per-voxel Gram kernels come from sparse-times-sparse-transpose row
    bands (:func:`csr_gram_panel`) and feed the *same* batched SMO
    cross-validation as the dense path — at ``tau=0`` the scores equal
    :func:`score_voxels` within float32 kernel tolerance.

    Batches are row panels balanced by ragged per-voxel nnz
    (:func:`repro.exec.partition.partition_rows_by_nnz`): ``batch_voxels``
    sets the *average* panel width, and nnz-heavy voxels get narrower
    panels so every batch Grams a comparable number of stored entries.
    Falls back to sequential per-voxel CV when batching is disabled, the
    backend has no batched trainer, or the labels are multiclass.
    """
    if not isinstance(sparse, SparseCorrelationResult):
        raise TypeError(
            f"sparse must be a SparseCorrelationResult, got {type(sparse).__name__}"
        )
    from ..exec.partition import partition_rows_by_nnz

    v, m, _ = sparse.shape
    voxel_ids = np.asarray(voxel_ids, dtype=np.int64)
    if voxel_ids.shape != (v,):
        raise ValueError(f"voxel_ids must have shape ({v},)")
    labels = np.asarray(labels)
    fold_ids = np.asarray(fold_ids)
    if labels.shape != (m,) or fold_ids.shape != (m,):
        raise ValueError("labels and fold_ids must have one entry per epoch")
    batchable = (
        batch_voxels is not None
        and batch_voxels > 0
        and hasattr(backend, "fit_kernel_batch")
        and np.unique(labels).size == 2
    )
    accuracies = np.empty(v, dtype=np.float64)
    if not batchable:
        for i in range(v):
            kernel = csr_gram_panel(sparse, i, i + 1)[0]
            result = grouped_cross_validation(backend, kernel, labels, fold_ids)
            accuracies[i] = result.accuracy
        return VoxelScores(voxels=voxel_ids, accuracies=accuracies)
    voxel_nnz = sparse.row_nnz.reshape(v, m).sum(axis=1)
    assert batch_voxels is not None
    nnz_budget = max(1, int(batch_voxels) * max(1, int(voxel_nnz.mean()))) if v else 1
    for b0, b1 in partition_rows_by_nnz(
        voxel_nnz, nnz_budget, max_rows=int(batch_voxels)
    ):
        with kernel_span("score_batch", attrs={"first_voxel": b0}) as span:
            kernels = csr_gram_panel(sparse, b0, b1)
            try:
                result = grouped_cross_validation_batch(
                    backend, kernels, labels, fold_ids
                )
            except NotImplementedError:
                return score_voxels_sparse(
                    sparse, voxel_ids, labels, fold_ids, backend,
                    batch_voxels=None,
                )
            if span is not None:
                span.add_metric("voxels", float(b1 - b0))
                span.add_metric("nnz", float(voxel_nnz[b0:b1].sum()))
                span.add_metric("bytes_moved", float(kernels.nbytes))
        accuracies[b0:b1] = result.accuracies
    return VoxelScores(voxels=voxel_ids, accuracies=accuracies)
