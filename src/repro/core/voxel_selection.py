"""FCMA stage 3: voxel-wise SVM cross-validation (Section 3.1).

Each assigned voxel's normalized correlation vectors form an ``(M, N)``
data matrix (M epochs, N brain voxels).  The voxel's score is the
cross-validated accuracy of a linear SVM classifying those vectors by
epoch condition — computed over the precomputed linear kernel so the CV
folds are pure submatrix slices.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..svm.cross_validation import KernelBackend, grouped_cross_validation
from .kernels import kernel_matrix_baseline
from .results import VoxelScores

__all__ = ["score_voxels"]

KernelFn = Callable[[np.ndarray], np.ndarray]


def score_voxels(
    correlations: np.ndarray,
    voxel_ids: np.ndarray,
    labels: np.ndarray,
    fold_ids: np.ndarray,
    backend: KernelBackend,
    kernel_fn: KernelFn = kernel_matrix_baseline,
) -> VoxelScores:
    """Score every assigned voxel by grouped-CV accuracy.

    Parameters
    ----------
    correlations:
        Normalized voxel-major correlations, shape ``(V, M, N)``.
    voxel_ids:
        The flat brain indices of the ``V`` assigned voxels (reported in
        the result).
    labels:
        Condition labels per epoch, shape ``(M,)``.
    fold_ids:
        CV fold assignment per epoch — subject ids for the offline LOSO
        analysis, k-fold ids for single-subject online analysis.
    backend:
        An SVM backend with ``fit_kernel`` (PhiSVM or LibSVMClassifier).
    kernel_fn:
        Kernel precompute: baseline or blocked syrk.
    """
    correlations = np.asarray(correlations)
    if correlations.ndim != 3:
        raise ValueError(
            f"correlations must be (V, M, N), got {correlations.shape}"
        )
    voxel_ids = np.asarray(voxel_ids, dtype=np.int64)
    v, m, _ = correlations.shape
    if voxel_ids.shape != (v,):
        raise ValueError(f"voxel_ids must have shape ({v},)")
    labels = np.asarray(labels)
    fold_ids = np.asarray(fold_ids)
    if labels.shape != (m,) or fold_ids.shape != (m,):
        raise ValueError("labels and fold_ids must have one entry per epoch")

    accuracies = np.empty(v, dtype=np.float64)
    for i in range(v):
        kernel = kernel_fn(correlations[i])
        result = grouped_cross_validation(backend, kernel, labels, fold_ids)
        accuracies[i] = result.accuracy
    return VoxelScores(voxels=voxel_ids, accuracies=accuracies)
