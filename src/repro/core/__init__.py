"""The FCMA core: the paper's three-stage pipeline and its two
implementations (baseline and optimized)."""

from .blocking import (
    BlockingPlan,
    PlanCache,
    default_plan_cache,
    plan_blocks,
    plan_key,
)
from .correlation import (
    correlate_baseline,
    correlate_batched,
    correlate_blocked,
    correlate_blocked_reference,
    correlate_normalize_batched,
    epoch_windows,
    iter_blocks,
    normalize_epoch_data,
    stage1_input_copies,
)
from .kernels import (
    csr_gram_panel,
    kernel_matrix_baseline,
    kernel_matrix_batched,
    kernel_matrix_blocked,
    symmetrize_from_triangle,
)
from .normalization import (
    MergedNormalizer,
    NormalizationWorkspace,
    fisher_z,
    fuse_normalize_tile,
    fused_normalize_sweep,
    normalize_separated,
    zscore_within_subject,
)
from .pipeline import (
    FCMAConfig,
    clear_preprocess_cache,
    make_backend,
    preprocess_dataset,
    run_task,
    task_partition,
)
from .results import VoxelScores
from .sparse import (
    SparseCorrelationResult,
    SparseStage12Stats,
    correlate_normalize_sparse_batched,
    threshold_dense,
    topk_block,
)
from .voxel_selection import (
    score_voxels,
    score_voxels_reference,
    score_voxels_sparse,
)

__all__ = [
    "BlockingPlan",
    "FCMAConfig",
    "MergedNormalizer",
    "NormalizationWorkspace",
    "PlanCache",
    "SparseCorrelationResult",
    "SparseStage12Stats",
    "VoxelScores",
    "clear_preprocess_cache",
    "correlate_baseline",
    "correlate_batched",
    "correlate_blocked",
    "correlate_blocked_reference",
    "correlate_normalize_batched",
    "correlate_normalize_sparse_batched",
    "csr_gram_panel",
    "default_plan_cache",
    "epoch_windows",
    "fisher_z",
    "fuse_normalize_tile",
    "fused_normalize_sweep",
    "iter_blocks",
    "kernel_matrix_baseline",
    "kernel_matrix_batched",
    "kernel_matrix_blocked",
    "make_backend",
    "normalize_epoch_data",
    "normalize_separated",
    "plan_blocks",
    "plan_key",
    "preprocess_dataset",
    "run_task",
    "score_voxels",
    "score_voxels_reference",
    "score_voxels_sparse",
    "stage1_input_copies",
    "symmetrize_from_triangle",
    "task_partition",
    "threshold_dense",
    "topk_block",
    "zscore_within_subject",
]
