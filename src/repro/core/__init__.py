"""The FCMA core: the paper's three-stage pipeline and its two
implementations (baseline and optimized)."""

from .blocking import BlockingPlan, plan_blocks
from .correlation import (
    correlate_baseline,
    correlate_blocked,
    epoch_windows,
    iter_blocks,
    normalize_epoch_data,
)
from .kernels import (
    kernel_matrix_baseline,
    kernel_matrix_blocked,
    symmetrize_from_triangle,
)
from .normalization import (
    MergedNormalizer,
    fisher_z,
    normalize_separated,
    zscore_within_subject,
)
from .pipeline import FCMAConfig, make_backend, run_task, task_partition
from .results import VoxelScores
from .voxel_selection import score_voxels

__all__ = [
    "BlockingPlan",
    "FCMAConfig",
    "MergedNormalizer",
    "VoxelScores",
    "correlate_baseline",
    "correlate_blocked",
    "epoch_windows",
    "fisher_z",
    "iter_blocks",
    "kernel_matrix_baseline",
    "kernel_matrix_blocked",
    "make_backend",
    "normalize_epoch_data",
    "normalize_separated",
    "plan_blocks",
    "run_task",
    "score_voxels",
    "symmetrize_from_triangle",
    "task_partition",
    "zscore_within_subject",
]
