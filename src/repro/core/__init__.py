"""The FCMA core: the paper's three-stage pipeline and its two
implementations (baseline and optimized)."""

from .blocking import BlockingPlan, plan_blocks
from .correlation import (
    correlate_baseline,
    correlate_blocked,
    epoch_windows,
    iter_blocks,
    normalize_epoch_data,
)
from .kernels import (
    kernel_matrix_baseline,
    kernel_matrix_batched,
    kernel_matrix_blocked,
    symmetrize_from_triangle,
)
from .normalization import (
    MergedNormalizer,
    fisher_z,
    normalize_separated,
    zscore_within_subject,
)
from .pipeline import (
    FCMAConfig,
    clear_preprocess_cache,
    make_backend,
    preprocess_dataset,
    run_task,
    task_partition,
)
from .results import VoxelScores
from .voxel_selection import score_voxels, score_voxels_reference

__all__ = [
    "BlockingPlan",
    "FCMAConfig",
    "MergedNormalizer",
    "VoxelScores",
    "clear_preprocess_cache",
    "correlate_baseline",
    "correlate_blocked",
    "epoch_windows",
    "fisher_z",
    "iter_blocks",
    "kernel_matrix_baseline",
    "kernel_matrix_batched",
    "kernel_matrix_blocked",
    "make_backend",
    "normalize_epoch_data",
    "normalize_separated",
    "plan_blocks",
    "preprocess_dataset",
    "run_task",
    "score_voxels",
    "score_voxels_reference",
    "symmetrize_from_triangle",
    "task_partition",
    "zscore_within_subject",
]
