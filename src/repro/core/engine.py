"""The tiled stage-1/2 engine: one compute loop, pluggable materialization.

The fused correlation+normalization compute — equation-2 gemm, Fisher
transform (eq. 4), within-subject z-score (eq. 5) — used to live in
three near-copies: the dense fused path
(:func:`repro.core.correlation.correlate_normalize_batched`), the
sparse CSR path
(:func:`repro.core.sparse.correlate_normalize_sparse_batched`), and the
naive per-epoch re-run inside :mod:`repro.rtfmri`.  This module is the
single engine those entry points now shim over: :func:`run_engine`
walks the blocking-plan tiles, runs the epoch-batched gemm and the
fused normalizer once, and hands each cache-resident tile to a
pluggable :class:`TileEmitter` that decides what the output *is* —
a dense array, CSR fragments, or an incremental sliding-window store.

Two walk modes, selected by the emitter's :class:`TilePlan`:

* **full-width** (``target_block=None``) — one whole-task epoch-batched
  gemm, then a voxel sweep of the phased normalizer.  This is the dense
  engine's shape and is *required* for bitwise reproduction of the
  historical dense results: BLAS may pick different accumulation
  kernels per gemm shape, so only the identical single-gemm dispatch
  returns the identical bits.
* **tiled** — per-tile gemms of ``(voxel_sweep, E, target_block)``
  blocks with the same scratch-tile reuse the sparse engine used, each
  tile normalized in cache by
  :func:`~repro.core.normalization.fuse_normalize_tile` (bitwise-equal
  to the sweep) and emitted before the next tile overwrites it.  Peak
  memory is one tile, never the dense volume.

Bitwise contracts the emitters pin (see
``tests/core/test_engine.py`` and the equivalence suites):

* ``DenseEmitter`` reproduces ``correlate_normalize_batched`` exactly;
* ``CSREmitter`` (in :mod:`repro.core.sparse`) reproduces
  ``correlate_normalize_sparse_batched`` exactly, including tau/top-k
  tie-breaks and ``sparse_tile_plan`` sizing;
* ``IncrementalEmitter`` (in :mod:`repro.core.incremental`) produces
  per-epoch planes bitwise-equal to slices of the batch gemm, so a
  sliding window re-normalized per TR equals batch recompute exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Protocol, runtime_checkable

import numpy as np

from ..obs.live.runtime import current_live
from .normalization import (
    NormalizationWorkspace,
    fuse_normalize_tile,
    fused_normalize_sweep,
)
from .tiling import iter_blocks

__all__ = [
    "EngineShape",
    "TilePlan",
    "TileEmitter",
    "DenseEmitter",
    "run_engine",
    "check_stage1_inputs",
    "validate_dense_out",
    "register_emitter",
    "create_emitter",
    "available_emitters",
]


def check_stage1_inputs(
    z: np.ndarray, assigned: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Validate the ``(E, N, T)`` normalized data and assigned rows."""
    z = np.asarray(z)
    if z.ndim != 3:
        raise ValueError(
            f"normalized data must be (epochs, voxels, time), got {z.shape}"
        )
    assigned = np.asarray(assigned, dtype=np.int64)
    if assigned.ndim != 1 or assigned.size == 0:
        raise ValueError("assigned must be a non-empty 1D index array")
    n_voxels = z.shape[1]
    if assigned.min() < 0 or assigned.max() >= n_voxels:
        raise IndexError("assigned voxel index out of range")
    return z, assigned


def validate_dense_out(
    out: np.ndarray, shape: tuple[int, int, int]
) -> np.ndarray:
    """Check a caller-provided output buffer before any BLAS touches it.

    A float64 or strided buffer used to surface as an inscrutable
    mid-loop gufunc/BLAS error; fail fast with a clear message instead.
    """
    if not isinstance(out, np.ndarray):
        raise TypeError(f"out must be a numpy array, got {type(out).__name__}")
    if out.dtype != np.float32:
        raise TypeError(f"out must be float32, got {out.dtype}")
    if not out.flags.c_contiguous:
        raise TypeError("out must be C-contiguous")
    if out.shape != shape:
        raise ValueError(f"out has shape {out.shape}, expected {shape}")
    return out


@dataclass(frozen=True)
class EngineShape:
    """Geometry of one stage-1/2 task (what an emitter plans against)."""

    n_assigned: int
    n_epochs: int
    n_voxels: int
    epoch_length: int
    epochs_per_subject: int

    @property
    def dense_shape(self) -> tuple[int, int, int]:
        """The voxel-major dense output shape ``(V, E, N)``."""
        return (self.n_assigned, self.n_epochs, self.n_voxels)


@dataclass(frozen=True)
class TilePlan:
    """How the engine walks a task.

    ``target_block=None`` selects full-width mode (one whole-task gemm
    plus a ``voxel_sweep`` normalization sweep; ``voxel_sweep=None``
    sweeps the task in one slab).  A ``target_block`` selects tiled
    mode with per-tile gemms; ``voxel_sweep`` then defaults to all
    assigned rows.  The distinction is part of the bitwise contract,
    not a tuning detail — see the module docstring.
    """

    voxel_sweep: int | None = None
    target_block: int | None = None

    def __post_init__(self) -> None:
        if self.voxel_sweep is not None and self.voxel_sweep < 1:
            raise ValueError("voxel_sweep must be >= 1")
        if self.target_block is not None and self.target_block < 1:
            raise ValueError("target_block must be >= 1")

    def resolve(self, shape: EngineShape) -> "TilePlan":
        """Clamp the plan to the task geometry."""
        if self.target_block is None:
            sweep = self.voxel_sweep
            if sweep is not None:
                sweep = min(sweep, shape.n_assigned)
            return TilePlan(voxel_sweep=sweep, target_block=None)
        sweep = self.voxel_sweep if self.voxel_sweep is not None else shape.n_assigned
        return TilePlan(
            voxel_sweep=min(sweep, shape.n_assigned),
            target_block=min(self.target_block, shape.n_voxels),
        )


@runtime_checkable
class TileEmitter(Protocol):
    """What the engine computes *into*: a pluggable materialization.

    The engine drives one call sequence per run::

        plan(shape) -> begin(shape, resolved_plan)
        [dense_out(shape)]                # full-width mode only
        emit(tile, v0, v1, n0, n1) ...    # every tile, row-major order
        end_sweep(v0, v1)                 # after each voxel sweep's tiles
        finalize() -> result

    ``fused_normalization`` declares whether tiles are stage-2
    normalized before ``emit`` (dense/CSR) or arrive as raw stage-1
    correlations (the incremental emitter defers stage 2 to its
    sliding-window view).  In tiled mode the emitted tile is scratch
    reused for the next block — an emitter must copy what it keeps.
    """

    fused_normalization: bool

    def plan(self, shape: EngineShape) -> TilePlan: ...

    def begin(self, shape: EngineShape, plan: TilePlan) -> None: ...

    def dense_out(self, shape: EngineShape) -> np.ndarray: ...

    def emit(
        self, tile: np.ndarray, v0: int, v1: int, n0: int, n1: int
    ) -> None: ...

    def end_sweep(self, v0: int, v1: int) -> None: ...

    def finalize(self) -> Any: ...


def run_engine(
    z: np.ndarray,
    assigned: np.ndarray,
    epochs_per_subject: int,
    emitter: TileEmitter,
    *,
    workspace: NormalizationWorkspace | None = None,
) -> Any:
    """Run one stage-1/2 task through ``emitter``; returns its result.

    ``z`` is equation-2-normalized data ``(E, N, T)``; ``assigned`` the
    task's voxel rows.  The emitter's plan picks the walk mode; the
    engine owns the gemms and (when ``emitter.fused_normalization``)
    the bitwise-exact fused normalizer.
    """
    z, assigned = check_stage1_inputs(z, assigned)
    n_epochs, n_voxels, epoch_length = z.shape
    if epochs_per_subject < 1:
        raise ValueError("epochs_per_subject must be >= 1")
    if n_epochs % epochs_per_subject != 0:
        raise ValueError(
            f"epoch count {n_epochs} not divisible by epochs_per_subject "
            f"{epochs_per_subject}"
        )
    shape = EngineShape(
        n_assigned=int(assigned.size),
        n_epochs=n_epochs,
        n_voxels=n_voxels,
        epoch_length=epoch_length,
        epochs_per_subject=epochs_per_subject,
    )
    plan = emitter.plan(shape).resolve(shape)
    if workspace is None:
        workspace = NormalizationWorkspace()
    emitter.begin(shape, plan)
    if plan.target_block is None:
        _run_full_width(z, assigned, shape, plan, emitter, workspace)
    else:
        _run_tiled(z, assigned, shape, plan, emitter, workspace)
    return emitter.finalize()


def _run_full_width(
    z: np.ndarray,
    assigned: np.ndarray,
    shape: EngineShape,
    plan: TilePlan,
    emitter: TileEmitter,
    workspace: NormalizationWorkspace,
) -> None:
    """One whole-task epoch-batched gemm, then a voxel sweep.

    The single full-shape gemm dispatch is what makes dense results
    reproducible bitwise across refactors (see module docstring), so
    this mode never splits the matmul.
    """
    # Imported here: correlation.py shims over this module, so the
    # engine reaches its stage-1 building block lazily.
    from .correlation import correlate_batched

    out = emitter.dense_out(shape)
    correlate_batched(z, assigned, out=out)
    n_rows = shape.n_assigned
    if emitter.fused_normalization:
        fused_normalize_sweep(
            out,
            shape.epochs_per_subject,
            voxel_sweep=plan.voxel_sweep,
            workspace=workspace,
        )
    sweep = n_rows if plan.voxel_sweep is None else plan.voxel_sweep
    live = current_live()
    for v0, v1 in iter_blocks(n_rows, sweep):
        t_tile = time.perf_counter() if live is not None else 0.0
        emitter.emit(out[v0:v1], v0, v1, 0, shape.n_voxels)
        emitter.end_sweep(v0, v1)
        if live is not None:
            live.inc("engine_tiles")
            live.observe("tile_seconds", time.perf_counter() - t_tile)


def _run_tiled(
    z: np.ndarray,
    assigned: np.ndarray,
    shape: EngineShape,
    plan: TilePlan,
    emitter: TileEmitter,
    workspace: NormalizationWorkspace,
) -> None:
    """Per-tile gemm + in-cache normalize + emit, one tile live at a time.

    The loop structure (sweep-major, scratch tiles keyed on shape,
    ``panel @ z.T`` through an axis-swapped out view) is the sparse
    engine's historical loop verbatim — the bitwise anchor for CSR
    results under any tiling.
    """
    assert plan.voxel_sweep is not None and plan.target_block is not None
    n_epochs, n_voxels = shape.n_epochs, shape.n_voxels
    zt = z.swapaxes(1, 2)
    tiles: dict[tuple[int, int], np.ndarray] = {}
    live = current_live()
    for v0, v1 in iter_blocks(shape.n_assigned, plan.voxel_sweep):
        width = v1 - v0
        panel = z[:, assigned[v0:v1]]  # (E, width, T) contiguous copy
        for n0, n1 in iter_blocks(n_voxels, plan.target_block):
            nb = n1 - n0
            t_tile = time.perf_counter() if live is not None else 0.0
            tile = tiles.get((width, nb))
            if tile is None:
                tile = tiles.setdefault(
                    (width, nb),
                    np.empty((width, n_epochs, nb), dtype=np.float32),
                )
            np.matmul(panel, zt[:, :, n0:n1], out=tile.swapaxes(0, 1))
            if emitter.fused_normalization:
                fuse_normalize_tile(
                    tile, shape.epochs_per_subject, workspace=workspace
                )
            emitter.emit(tile, v0, v1, n0, n1)
            if live is not None:
                live.inc("engine_tiles")
                live.observe("tile_seconds", time.perf_counter() - t_tile)
        emitter.end_sweep(v0, v1)


class DenseEmitter:
    """Materializes the full dense normalized ``(V, E, N)`` array.

    The engine adapter for the historical
    :func:`~repro.core.correlation.correlate_normalize_batched` result:
    full-width mode, fused sweep normalization, output written in place
    into a caller buffer or one allocation.  ``finalize`` returns
    ``(out, n_tiles)`` where ``n_tiles`` counts the sweep slabs emitted
    (the ``stage12_tiles`` counter).
    """

    fused_normalization = True

    def __init__(
        self,
        *,
        voxel_sweep: int | None = None,
        out: np.ndarray | None = None,
    ) -> None:
        if voxel_sweep is not None and voxel_sweep < 1:
            raise ValueError("voxel_sweep must be >= 1")
        self._voxel_sweep = voxel_sweep
        self._out = out
        #: Sweep slabs emitted by the engine (introspection/counters).
        self.n_tiles = 0

    def plan(self, shape: EngineShape) -> TilePlan:
        return TilePlan(voxel_sweep=self._voxel_sweep, target_block=None)

    def begin(self, shape: EngineShape, plan: TilePlan) -> None:
        self.n_tiles = 0

    def dense_out(self, shape: EngineShape) -> np.ndarray:
        if self._out is None:
            self._out = np.empty(shape.dense_shape, dtype=np.float32)
        else:
            validate_dense_out(self._out, shape.dense_shape)
        return self._out

    def emit(
        self, tile: np.ndarray, v0: int, v1: int, n0: int, n1: int
    ) -> None:
        self.n_tiles += 1

    def end_sweep(self, v0: int, v1: int) -> None:
        pass

    def finalize(self) -> tuple[np.ndarray, int]:
        assert self._out is not None
        return self._out, self.n_tiles


# -- emitter registry -----------------------------------------------------

EmitterFactory = Callable[..., TileEmitter]

_EMITTERS: dict[str, EmitterFactory] = {}

#: Built-in emitters resolved lazily so ``engine`` never imports its
#: own consumers at module scope (mirrors ``exec.registry``).
_BUILTIN_MODULES = {
    "dense": None,
    "csr": "repro.core.sparse",
    "incremental": "repro.core.incremental",
}


def register_emitter(
    name: str, factory: EmitterFactory, *, overwrite: bool = False
) -> None:
    """Register an emitter factory under ``name``."""
    if not name:
        raise ValueError("emitter name must be non-empty")
    if name in _EMITTERS and not overwrite:
        raise ValueError(f"emitter {name!r} already registered")
    _EMITTERS[name] = factory


def _load_builtin(name: str) -> None:
    module = _BUILTIN_MODULES.get(name)
    if module is not None and name not in _EMITTERS:
        import importlib

        importlib.import_module(module)


def create_emitter(name: str, **kwargs: Any) -> TileEmitter:
    """Instantiate a registered emitter (built-ins load on demand)."""
    _load_builtin(name)
    try:
        factory = _EMITTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown emitter {name!r}; available: {available_emitters()}"
        ) from None
    return factory(**kwargs)


def available_emitters() -> tuple[str, ...]:
    """All registered emitter names (built-ins included), sorted."""
    for name in _BUILTIN_MODULES:
        _load_builtin(name)
    return tuple(sorted(_EMITTERS))


register_emitter("dense", DenseEmitter)
