"""Sparse thresholded stage 1/2: threshold-during-fuse correlation.

The dense correlation matrix is ``V x E x N`` float32 — ~4.7 GB per
epoch at the paper's 34k voxels and two orders of magnitude beyond
memory at the 100k-voxel scenarios the ROADMAP targets.  Downstream
FCMA analyses only consume the strongest correlations per voxel, so
this module filters *inside* the fused stage-1/2 tile loop: each
``(voxel_sweep, E, target_block)`` tile is gemm-ed, normalized by the
same :func:`repro.core.normalization.fuse_normalize_tile` the dense
engine uses, and immediately reduced to its surviving entries while the
tile is still cache-resident.  The dense tile is then reused for the
next block — peak memory is the BOLD input plus one tile plus the CSR
output, never the full correlation volume.

Two filter modes, sharing one selection semantics with the dense
reference (:func:`threshold_dense`):

* ``threshold`` (tau): keep entries with ``|value| >= tau`` of the
  *normalized* (Fisher-z + within-subject z-scored) correlations;
* ``top_k``: keep the ``k`` largest ``|value|`` per output row
  ``(assigned voxel, epoch)``, ties broken toward the smaller target
  column — exactly the first ``k`` entries of a stable descending
  ``|value|`` argsort.

Equivalence contract: for identical input bits the engine's CSR is
**bitwise identical** (indptr, indices, data) to
``threshold_dense(densify-of-the-tau=0-run)`` because both sides apply
the same predicate to the same float32 values; against the dense
engine's single full-width gemm the values agree to float32 tolerance
(BLAS may pick different accumulation kernels per tile shape).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

import numpy as np

from .engine import EngineShape, TilePlan, register_emitter, run_engine
from .normalization import NormalizationWorkspace

__all__ = [
    "SPARSE_TILE_BYTES",
    "CSREmitter",
    "SparseCorrelationResult",
    "SparseStage12Stats",
    "correlate_normalize_sparse_batched",
    "sparse_tile_plan",
    "threshold_dense",
    "topk_block",
]

#: Per-tile byte budget for :func:`sparse_tile_plan`.  The sparse tile
#: loop is filter-dominated, not gemm-dominated: with the paper's tiny
#: inner dimension (T ~ 12) the gemm is bandwidth-bound at any tiling,
#: while every tile pays fixed Python/ufunc dispatch for the normalize
#: + filter pass.  Dense-planner L2 tiles (~100 KB) create thousands of
#: tiles whose dispatch overhead dwarfs the arithmetic; a multi-MB tile
#: amortizes it and still keeps peak memory flat.
SPARSE_TILE_BYTES = 8 * 1024 * 1024

#: Default voxel-sweep width for :func:`sparse_tile_plan` — wide enough
#: to amortize the per-sweep A-panel copy, narrow enough that top-k
#: mode's ``(sweep, E, N)`` row slab stays a small fraction of input.
SPARSE_SWEEP_ROWS = 16


def sparse_tile_plan(
    n_assigned: int, n_epochs: int, n_voxels: int
) -> Tuple[int, int]:
    """Default ``(voxel_sweep, target_block)`` for the sparse engine.

    Unlike the dense planner's L2-reuse tiling, this sizes tiles to
    ``SPARSE_TILE_BYTES`` so the per-tile dispatch cost of the fused
    normalize + filter is amortized (see :data:`SPARSE_TILE_BYTES`).
    The choice only affects speed: the engine's CSR output is bitwise
    identical under any tiling.
    """
    if n_assigned < 1 or n_epochs < 1 or n_voxels < 1:
        raise ValueError("tile plan dimensions must be >= 1")
    sweep = min(SPARSE_SWEEP_ROWS, n_assigned)
    per_column_bytes = sweep * n_epochs * 4
    t_block = max(1, min(n_voxels, SPARSE_TILE_BYTES // per_column_bytes))
    return sweep, t_block


@dataclass(frozen=True)
class SparseStage12Stats:
    """Instrumentation from one sparse stage-1/2 run."""

    #: Gemm+normalize tiles the engine visited.
    n_tiles: int
    #: Tiles whose filter kept nothing (tau mode only; top-k always
    #: keeps ``min(k, N)`` entries per row, so nothing prunes).
    tiles_pruned: int
    #: Entries kept across the whole output.
    nnz: int
    #: Dense size of the output the filter scanned (``V * E * N``).
    elements: int

    @property
    def density(self) -> float:
        """Kept fraction, in [0, 1]."""
        if self.elements <= 0:
            return 0.0
        return self.nnz / self.elements


@dataclass(frozen=True)
class SparseCorrelationResult:
    """CSR-encoded normalized correlations, rows = (voxel, epoch) pairs.

    Row ``v * n_epochs + e`` holds assigned voxel ``v``'s epoch-``e``
    correlations; columns index target voxels.  The layout is exactly
    scipy's CSR over the flattened ``(V * E, N)`` view of the dense
    ``(V, E, N)`` array, kept as plain arrays so :mod:`repro.core` does
    not import scipy at module scope.
    """

    indptr: np.ndarray   # int64, (V * E + 1,)
    indices: np.ndarray  # int32, (nnz,) — ascending within each row
    data: np.ndarray     # float32, (nnz,)
    shape: Tuple[int, int, int]  # (V, E, N)

    def __post_init__(self) -> None:
        n_assigned, n_epochs, n_voxels = self.shape
        n_rows = n_assigned * n_epochs
        if self.indptr.shape != (n_rows + 1,):
            raise ValueError(
                f"indptr must have shape ({n_rows + 1},), got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.shape[0]:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape != self.data.shape:
            raise ValueError("indices and data must be the same length")
        if self.indices.size and (
            self.indices.min() < 0 or self.indices.max() >= n_voxels
        ):
            raise ValueError("column indices out of range")

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    @property
    def n_rows(self) -> int:
        return self.shape[0] * self.shape[1]

    @property
    def elements(self) -> int:
        return self.n_rows * self.shape[2]

    @property
    def density(self) -> float:
        if self.elements == 0:
            return 0.0
        return self.nnz / self.elements

    @property
    def row_nnz(self) -> np.ndarray:
        """Per-row kept counts, shape ``(V * E,)`` int64."""
        return np.diff(self.indptr)

    def row(self, voxel: int, epoch: int) -> Tuple[np.ndarray, np.ndarray]:
        """One row's ``(columns, values)``."""
        n_assigned, n_epochs, _ = self.shape
        if not (0 <= voxel < n_assigned and 0 <= epoch < n_epochs):
            raise IndexError(f"row ({voxel}, {epoch}) out of range for {self.shape}")
        r = voxel * n_epochs + epoch
        lo, hi = int(self.indptr[r]), int(self.indptr[r + 1])
        return self.indices[lo:hi], self.data[lo:hi]

    def densify(self) -> np.ndarray:
        """Reconstruct the dense ``(V, E, N)`` array (zeros elsewhere)."""
        dense = np.zeros(self.shape, dtype=np.float32)
        flat = dense.reshape(self.n_rows, self.shape[2])
        rows = np.repeat(np.arange(self.n_rows), self.row_nnz)
        flat[rows, self.indices] = self.data
        return dense

    def to_scipy(self) -> Any:
        """The ``(V * E, N)`` scipy CSR matrix sharing these buffers."""
        from scipy.sparse import csr_matrix

        return csr_matrix(
            (self.data, self.indices, self.indptr),
            shape=(self.n_rows, self.shape[2]),
        )


def _check_mode(threshold: float | None, top_k: int | None) -> None:
    if (threshold is None) == (top_k is None):
        raise ValueError("exactly one of threshold and top_k must be given")
    if threshold is not None and not threshold >= 0.0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    if top_k is not None and top_k < 1:
        raise ValueError(f"top_k must be >= 1, got {top_k}")


def topk_block(
    block: np.ndarray, k: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-row top-``k`` by ``|value|`` of a 2D block, deterministic.

    Returns ``(rows, cols, values)`` in row-major order, columns
    ascending within each row.  The selection equals the first
    ``min(k, n)`` entries of a *stable* descending-``|value|`` argsort:
    ties at the k-th-largest boundary resolve toward smaller column
    indices.  Implemented with a value partition (O(n) per row) instead
    of a full argsort; determinism is value-based, so it holds across
    partition algorithms.
    """
    n_rows, n = block.shape
    kk = min(k, n)
    if kk == n:
        rows = np.repeat(np.arange(n_rows, dtype=np.int64), n)
        cols = np.tile(np.arange(n, dtype=np.int64), n_rows)
        return rows, cols, block.reshape(-1).copy()
    magnitude = np.abs(block)
    kth = np.partition(magnitude, n - kk, axis=1)[:, n - kk]
    keep = magnitude > kth[:, None]
    need = kk - keep.sum(axis=1)
    # Fill the remainder from the tie band (|value| == kth), smallest
    # columns first; np.nonzero's C order makes the in-row rank of each
    # tie its ascending-column position.
    tie_r, tie_c = np.nonzero(magnitude == kth[:, None])
    starts = np.searchsorted(tie_r, np.arange(n_rows))
    rank = np.arange(tie_r.size) - starts[tie_r]
    chosen = rank < need[tie_r]
    keep[tie_r[chosen], tie_c[chosen]] = True
    rows, cols = np.nonzero(keep)
    rows = rows.astype(np.int64, copy=False)
    cols = cols.astype(np.int64, copy=False)
    return rows, cols, block[rows, cols]


def _tau_block(
    block: np.ndarray, limit: np.float32
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Entries of a 2D block with ``|value| >= limit``, row-major.

    One flat scan instead of 2D ``np.nonzero``: the mask pass over the
    full block dominates, and ``flatnonzero`` writes one index array
    where the tuple form writes two; rows/cols are then recovered with
    arithmetic over just the survivors.
    """
    n_cols = block.shape[1]
    flat = np.flatnonzero(np.abs(block) >= limit)
    rows = flat // n_cols
    cols = flat - rows * n_cols
    return rows, cols, block.reshape(-1)[flat]


def _assemble(
    rows_parts: List[np.ndarray],
    cols_parts: List[np.ndarray],
    vals_parts: List[np.ndarray],
    shape: Tuple[int, int, int],
) -> SparseCorrelationResult:
    """CSR from row-id/column/value fragments.

    Fragments may arrive in any tile order; a stable sort by row id
    restores row-major layout while preserving each row's ascending
    column order (tiles are visited left to right).
    """
    n_rows = shape[0] * shape[1]
    if rows_parts:
        rows = np.concatenate(rows_parts)
        cols = np.concatenate(cols_parts)
        vals = np.concatenate(vals_parts)
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.float32)
    order = np.argsort(rows, kind="stable")
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=n_rows), out=indptr[1:])
    return SparseCorrelationResult(
        indptr=indptr,
        indices=cols[order].astype(np.int32),
        data=vals[order],
        shape=shape,
    )


def threshold_dense(
    dense: np.ndarray,
    *,
    threshold: float | None = None,
    top_k: int | None = None,
) -> SparseCorrelationResult:
    """Filter a dense normalized ``(V, E, N)`` array into CSR.

    The densify-then-threshold reference: applies exactly the selection
    semantics of :func:`correlate_normalize_sparse_batched` to an
    already-materialized dense array, so on identical input bits the
    two produce bitwise-identical CSR buffers.
    """
    _check_mode(threshold, top_k)
    dense = np.asarray(dense)
    if dense.ndim != 3:
        raise ValueError(f"dense must be 3D (V, E, N), got shape {dense.shape}")
    if dense.dtype != np.float32:
        raise TypeError(f"dense must be float32, got {dense.dtype}")
    n_assigned, n_epochs, n_voxels = dense.shape
    flat = np.ascontiguousarray(dense).reshape(n_assigned * n_epochs, n_voxels)
    if threshold is not None:
        rows, cols, vals = _tau_block(flat, np.float32(threshold))
    else:
        assert top_k is not None
        rows, cols, vals = topk_block(flat, top_k)
    return _assemble([rows], [cols], [vals], (n_assigned, n_epochs, n_voxels))


class CSREmitter:
    """Filters fused tiles straight to CSR while they are cache-resident.

    The engine adapter for the historical
    :func:`correlate_normalize_sparse_batched` result: tiled mode with
    :func:`sparse_tile_plan` sizing by default, tau filtering per tile
    or per-sweep top-k over an accumulated ``(voxel_sweep, E, N)`` row
    slab.  Both modes see the identical gemm + normalize bits, and the
    selection semantics (including top-k tie-breaks toward smaller
    columns) are exactly those of :func:`threshold_dense`.

    ``finalize`` returns ``(SparseCorrelationResult,
    SparseStage12Stats)``; the stats stay available on ``.stats``.
    """

    fused_normalization = True

    def __init__(
        self,
        *,
        threshold: float | None = None,
        top_k: int | None = None,
        voxel_sweep: int | None = None,
        target_block: int | None = None,
    ) -> None:
        _check_mode(threshold, top_k)
        if voxel_sweep is not None and voxel_sweep < 1:
            raise ValueError("voxel_sweep must be >= 1")
        if target_block is not None and target_block < 1:
            raise ValueError("target_block must be >= 1")
        self._limit = np.float32(threshold) if threshold is not None else None
        self._top_k = top_k
        self._voxel_sweep = voxel_sweep
        self._target_block = target_block
        self._slab: np.ndarray | None = None
        self._rows: List[np.ndarray] = []
        self._cols: List[np.ndarray] = []
        self._vals: List[np.ndarray] = []
        self._shape: Tuple[int, int, int] | None = None
        #: Instrumentation of the most recent run (also returned).
        self.stats: SparseStage12Stats | None = None
        self.n_tiles = 0
        self.tiles_pruned = 0

    def plan(self, shape: EngineShape) -> TilePlan:
        default_sweep, default_block = sparse_tile_plan(
            shape.n_assigned, shape.n_epochs, shape.n_voxels
        )
        return TilePlan(
            voxel_sweep=self._voxel_sweep or default_sweep,
            target_block=self._target_block or default_block,
        )

    def begin(self, shape: EngineShape, plan: TilePlan) -> None:
        self._shape = shape.dense_shape
        self._rows, self._cols, self._vals = [], [], []
        self.n_tiles = 0
        self.tiles_pruned = 0
        self.stats = None
        if self._top_k is not None:
            assert plan.voxel_sweep is not None
            self._slab = np.empty(
                (plan.voxel_sweep, shape.n_epochs, shape.n_voxels),
                dtype=np.float32,
            )

    def dense_out(self, shape: EngineShape) -> np.ndarray:
        raise NotImplementedError("CSREmitter runs in tiled mode only")

    def emit(
        self, tile: np.ndarray, v0: int, v1: int, n0: int, n1: int
    ) -> None:
        assert self._shape is not None
        width, nb = v1 - v0, n1 - n0
        n_epochs = self._shape[1]
        self.n_tiles += 1
        if self._limit is not None:
            t_rows, t_cols, t_vals = _tau_block(
                tile.reshape(width * n_epochs, nb), self._limit
            )
            if t_rows.size == 0:
                self.tiles_pruned += 1
                return
            self._rows.append(v0 * n_epochs + t_rows)
            self._cols.append(n0 + t_cols)
            self._vals.append(t_vals)
        else:
            assert self._slab is not None
            self._slab[:width, :, n0:n1] = tile

    def end_sweep(self, v0: int, v1: int) -> None:
        if self._top_k is None:
            return
        assert self._slab is not None and self._shape is not None
        width = v1 - v0
        n_epochs, n_voxels = self._shape[1], self._shape[2]
        s_rows, s_cols, s_vals = topk_block(
            self._slab[:width].reshape(width * n_epochs, n_voxels),
            self._top_k,
        )
        self._rows.append(v0 * n_epochs + s_rows)
        self._cols.append(s_cols)
        self._vals.append(s_vals)

    def finalize(self) -> Tuple[SparseCorrelationResult, SparseStage12Stats]:
        assert self._shape is not None
        result = _assemble(self._rows, self._cols, self._vals, self._shape)
        n_assigned, n_epochs, n_voxels = self._shape
        self.stats = SparseStage12Stats(
            n_tiles=self.n_tiles,
            tiles_pruned=self.tiles_pruned,
            nnz=result.nnz,
            elements=n_assigned * n_epochs * n_voxels,
        )
        # Fragment lists are dropped so a kept emitter does not pin the
        # concatenated copies alive alongside the assembled CSR.
        self._rows, self._cols, self._vals = [], [], []
        self._slab = None
        return result, self.stats


register_emitter("csr", CSREmitter)


def correlate_normalize_sparse_batched(
    z: np.ndarray,
    assigned: np.ndarray,
    epochs_per_subject: int,
    *,
    threshold: float | None = None,
    top_k: int | None = None,
    voxel_sweep: int | None = None,
    target_block: int | None = None,
    workspace: NormalizationWorkspace | None = None,
) -> Tuple[SparseCorrelationResult, SparseStage12Stats]:
    """Fused stage 1/2 with in-tile filtering straight to CSR.

    A thin shim over the tiled engine: :class:`CSREmitter` receives the
    same epoch-batched tile gemm and bitwise-exact per-tile normalizer
    the dense engine uses, and filters each tile while cache-resident.
    In tau mode each tile is filtered and discarded immediately; top-k
    needs whole rows, so tiles accumulate into a ``(voxel_sweep, E,
    N)`` slab first — still a small constant multiple of the sweep
    width, never the full output.

    Returns the CSR result plus :class:`SparseStage12Stats`
    (tiles visited/pruned, nnz, scanned elements).
    """
    emitter = CSREmitter(
        threshold=threshold,
        top_k=top_k,
        voxel_sweep=voxel_sweep,
        target_block=target_block,
    )
    result: Tuple[SparseCorrelationResult, SparseStage12Stats] = run_engine(
        z, assigned, epochs_per_subject, emitter, workspace=workspace
    )
    return result
