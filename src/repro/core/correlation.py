"""FCMA stage 1: correlation computation (paper Sections 3.1, 4.2).

Pearson correlation between voxel time courses is reduced to matrix
multiplication by the equation-2 normalization: subtract each epoch
vector's mean and divide by its root sum of squares, after which
``corr(X, Y) = X' . Y'``.  Stage 1 then computes, for every epoch, the
correlations between a task's *assigned* voxels and **all** brain voxels
— a multiplication of a small ``(V, T)`` matrix with a tall-skinny
``(T, N)`` matrix.

Numerically equivalent paths, slowest to fastest:

* :func:`correlate_baseline` — one BLAS gemm per epoch writing straight
  into the voxel-major output (the baseline's ``cblas_sgemm`` with
  ``ldc`` striding).
* :func:`correlate_blocked_reference` — the pre-batching optimized loop
  of Section 4.2: L2-sized tiles, one tiny gemm per epoch per tile,
  optional per-tile callback.  Kept verbatim as the benchmark reference
  for the batched rewrite.
* :func:`correlate_blocked` — same tiling, but each tile computes **all**
  of its epochs in one 3D batched matmul instead of a Python loop.
* :func:`correlate_batched` — the whole task as a single epoch-batched
  matmul ``(E, V, T) @ (E, T, N)`` written straight into the voxel-major
  output through an axis swap.
* :func:`correlate_normalize_batched` — the fused stage-1/2 engine: the
  single batched matmul followed by the L2-sized phased voxel sweep of
  :func:`repro.core.normalization.fused_normalize_sweep`.

Output layout is always **voxel-major**: ``out[v, e, :]`` is voxel ``v``'s
correlation vector for epoch ``e``, i.e. "all correlation vectors
corresponding to a single voxel are contiguous" (Fig. 4).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..data.dataset import FMRIDataset
from ..data.epochs import Epoch
from .engine import DenseEmitter, check_stage1_inputs, run_engine, validate_dense_out
from .normalization import NormalizationWorkspace
from .tiling import iter_blocks

__all__ = [
    "normalize_epoch_data",
    "epoch_windows",
    "correlate_baseline",
    "correlate_batched",
    "correlate_blocked",
    "correlate_blocked_reference",
    "correlate_normalize_batched",
    "iter_blocks",
    "stage1_input_copies",
]


def normalize_epoch_data(epoch_stack: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Equation-2 normalization of raw epoch windows.

    ``epoch_stack`` has shape ``(n_epochs, n_voxels, epoch_len)``.  Each
    voxel's epoch vector is mean-centered and scaled by its root sum of
    squares so that the dot product of two normalized vectors equals
    their Pearson correlation.  Zero-variance vectors are mapped to zero
    (their correlation with anything is defined as 0 rather than NaN).
    """
    epoch_stack = np.asarray(epoch_stack)
    if epoch_stack.ndim != 3:
        raise ValueError(
            f"epoch stack must be (epochs, voxels, time), got {epoch_stack.shape}"
        )
    x = epoch_stack.astype(np.float32, copy=True)
    x -= x.mean(axis=2, keepdims=True)
    norms = np.sqrt((x * x).sum(axis=2, keepdims=True))
    np.divide(x, norms, out=x, where=norms > eps)
    x[np.broadcast_to(norms <= eps, x.shape)] = 0.0
    return x


def epoch_windows(dataset: FMRIDataset, epochs: Sequence[Epoch] | None = None) -> np.ndarray:
    """Equation-2-normalized epoch windows straight from a dataset.

    Shape ``(n_epochs, n_voxels, epoch_len)``; epochs default to the
    dataset's table order.
    """
    return normalize_epoch_data(dataset.epoch_stack(epochs))


#: Input validation shared with the engine (kept under the historical
#: private names for the modules and tests that import them from here).
_check_stage1_inputs = check_stage1_inputs
_validate_out = validate_dense_out


def correlate_baseline(z: np.ndarray, assigned: np.ndarray) -> np.ndarray:
    """Baseline stage 1: one gemm per epoch (Section 3.2).

    Parameters
    ----------
    z:
        Equation-2-normalized data, shape ``(n_epochs, n_voxels, t)``.
    assigned:
        Indices of the task's voxels (the ``V`` rows of each gemm).

    Returns
    -------
    Voxel-major correlations, shape ``(V, n_epochs, n_voxels)`` float32.
    """
    z, assigned = _check_stage1_inputs(z, assigned)
    n_epochs, n_voxels, _ = z.shape
    out = np.empty((assigned.size, n_epochs, n_voxels), dtype=np.float32)
    for e in range(n_epochs):
        # A[V, T] @ B[T, N] -> strided write grouping results by voxel,
        # the cblas_sgemm + ldc trick of the baseline implementation.
        np.matmul(z[e, assigned], z[e].T, out=out[:, e, :])
    return out


#: Callback invoked on each finished tile of the blocked path.
#: Arguments: (tile, voxel_block, target_block, epoch_block) where
#: ``tile`` is the float32 view ``out[v0:v1, e0:e1, n0:n1]`` just
#: computed and may be modified in place (merged normalization).
TileCallback = Callable[[np.ndarray, tuple[int, int], tuple[int, int], tuple[int, int]], None]


def stage1_input_copies(z: np.ndarray) -> int:
    """Hidden array copies the batched gemm makes of this input.

    The batched paths feed ``z`` to one 3D gufunc matmul, which silently
    buffer-copies any operand that is not C-contiguous float32.  The
    *output* side is guarded by :func:`_validate_out` (strided or
    float64 ``out`` is rejected outright); the input side is legal but
    costs a full extra pass over the BOLD data.  This predicate is what
    the stage bodies feed the ``stage12_out_copies`` RunContext counter,
    so a trace exposes the copy instead of it hiding inside BLAS setup.
    """
    z = np.asarray(z)
    if z.dtype == np.float32 and z.flags.c_contiguous:
        return 0
    return 1


def correlate_batched(
    z: np.ndarray,
    assigned: np.ndarray,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Stage 1 as one epoch-batched 3D matmul (no Python-level loops).

    Computes ``(E, V, T) @ (E, T, N)`` in a single gufunc call; the
    batched gemm writes through an axis-swapped view so the result still
    lands voxel-major ``(V, E, N)`` with no transpose pass.  Replaces
    ``E`` interpreter-dispatched gemms (and their fancy-indexed A-panel
    slices) with one dispatch — the stage-1 analogue of the stage-3
    stacked syrk.
    """
    z, assigned = _check_stage1_inputs(z, assigned)
    n_epochs, n_voxels, _ = z.shape
    shape = (assigned.size, n_epochs, n_voxels)
    if out is None:
        out = np.empty(shape, dtype=np.float32)
    else:
        _validate_out(out, shape)
    # A non-contiguous float32 z would be buffer-copied epoch slice by
    # epoch slice inside the gufunc; do the one whole-array copy up
    # front instead (same count, reported by stage1_input_copies).
    if z.dtype == np.float32 and not z.flags.c_contiguous:
        z = np.ascontiguousarray(z)
    # panel: (E, V, T) contiguous copy of the assigned rows; the gufunc
    # broadcasts the batch axis and writes each epoch's (V, N) slab into
    # the strided voxel-major view.
    panel = z[:, assigned]
    np.matmul(panel, z.swapaxes(1, 2), out=out.swapaxes(0, 1))
    return out


def correlate_blocked(
    z: np.ndarray,
    assigned: np.ndarray,
    voxel_block: int = 16,
    target_block: int = 512,
    epoch_block: int | None = None,
    tile_callback: TileCallback | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Optimized stage 1: L2-sized tiles over (voxels x targets x epochs).

    The loop order mirrors Section 4.2: for each tile of ``voxel_block``
    assigned voxels by ``target_block`` brain voxels, all ``epoch_block``
    epochs of the tile are computed before moving on, so the tile is
    still cache-resident when ``tile_callback`` (the merged stage-2
    normalization) runs.  Each tile's epochs are computed in **one**
    batched 3D matmul (``(e, B, T) @ (e, T, B')``) rather than a Python
    loop — see :func:`correlate_blocked_reference` for the pre-batching
    per-epoch loop this replaces.  Results equal
    :func:`correlate_baseline` up to float32 rounding (BLAS may pick
    different accumulation kernels for different tile shapes; each
    output element is still the same mathematical dot product).

    ``epoch_block`` defaults to all epochs; the merged path passes one
    subject's epoch count so a tile holds exactly one normalization
    population.
    """
    z, assigned = _check_stage1_inputs(z, assigned)
    n_epochs, n_voxels, _ = z.shape
    if epoch_block is None:
        epoch_block = n_epochs
    if voxel_block < 1 or target_block < 1 or epoch_block < 1:
        raise ValueError("block sizes must be >= 1")
    shape = (assigned.size, n_epochs, n_voxels)
    if out is None:
        out = np.empty(shape, dtype=np.float32)
    else:
        _validate_out(out, shape)

    zt = z.swapaxes(1, 2)  # (E, T, N) view, no copy
    for v0, v1 in iter_blocks(assigned.size, voxel_block):
        # One contiguous (E, B, T) A-panel per voxel block, hoisted out
        # of the epoch/target loops (the reference re-sliced it per
        # epoch per tile).
        panel = z[:, assigned[v0:v1]]
        for e0, e1 in iter_blocks(n_epochs, epoch_block):
            for n0, n1 in iter_blocks(n_voxels, target_block):
                tile = out[v0:v1, e0:e1, n0:n1]
                np.matmul(
                    panel[e0:e1], zt[e0:e1, :, n0:n1], out=tile.swapaxes(0, 1)
                )
                if tile_callback is not None:
                    tile_callback(tile, (v0, v1), (n0, n1), (e0, e1))
    return out


def correlate_blocked_reference(
    z: np.ndarray,
    assigned: np.ndarray,
    voxel_block: int = 16,
    target_block: int = 512,
    epoch_block: int | None = None,
    tile_callback: TileCallback | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """The pre-batching blocked loop: one tiny gemm per epoch per tile.

    Preserved verbatim as the reference the batched rewrite is measured
    against (``benchmarks/test_batched_stage12.py``) and as a bitwise
    anchor for the tiling semantics.  Use :func:`correlate_blocked` for
    real work.
    """
    z, assigned = _check_stage1_inputs(z, assigned)
    n_epochs, n_voxels, _ = z.shape
    if epoch_block is None:
        epoch_block = n_epochs
    if voxel_block < 1 or target_block < 1 or epoch_block < 1:
        raise ValueError("block sizes must be >= 1")
    shape = (assigned.size, n_epochs, n_voxels)
    if out is None:
        out = np.empty(shape, dtype=np.float32)
    else:
        _validate_out(out, shape)

    for v0, v1 in iter_blocks(assigned.size, voxel_block):
        rows = assigned[v0:v1]
        for e0, e1 in iter_blocks(n_epochs, epoch_block):
            for n0, n1 in iter_blocks(n_voxels, target_block):
                tile = out[v0:v1, e0:e1, n0:n1]
                for e in range(e0, e1):
                    np.matmul(
                        z[e, rows], z[e, n0:n1].T, out=tile[:, e - e0, :]
                    )
                if tile_callback is not None:
                    tile_callback(tile, (v0, v1), (n0, n1), (e0, e1))
    return out


def correlate_normalize_batched(
    z: np.ndarray,
    assigned: np.ndarray,
    epochs_per_subject: int,
    voxel_sweep: int | None = None,
    out: np.ndarray | None = None,
    workspace: NormalizationWorkspace | None = None,
) -> tuple[np.ndarray, int]:
    """Fused batched stage 1/2: one epoch-batched gemm, then an L2-sized
    voxel sweep of the vectorized merged normalization.

    The gemm writes the whole task voxel-major in a single dispatch
    (:func:`correlate_batched`); normalization then walks the output in
    ``voxel_sweep``-voxel slices via
    :func:`~repro.core.normalization.fused_normalize_sweep`, which keeps
    the seven stage-2 vector passes slab-sized (cache-resident instead
    of streaming the full task from DRAM seven times) while hoisting the
    small side-buffer ops out of the sweep loop.  ``voxel_sweep`` is the
    fused engine's ``B``; the blocking planner (``plan_blocks``) chooses
    it, and the autotuner measures it per machine.  ``None`` normalizes
    the whole task in one slice.

    Normalized values are bitwise-equal to running
    ``normalize_separated`` on the same gemm output, for any sweep.

    This is a thin shim over the tiled engine: a
    :class:`~repro.core.engine.DenseEmitter` run in full-width mode
    reproduces the historical single-gemm + phased-sweep sequence
    bitwise (pinned by ``tests/core/test_stage12_equivalence.py``).

    Returns ``(out, n_tiles)`` where ``n_tiles`` is the number of sweep
    slices normalized (the ``stage12_tiles`` RunContext counter).
    """
    emitter = DenseEmitter(voxel_sweep=voxel_sweep, out=out)
    result: tuple[np.ndarray, int] = run_engine(
        z, assigned, epochs_per_subject, emitter, workspace=workspace
    )
    return result
