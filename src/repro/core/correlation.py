"""FCMA stage 1: correlation computation (paper Sections 3.1, 4.2).

Pearson correlation between voxel time courses is reduced to matrix
multiplication by the equation-2 normalization: subtract each epoch
vector's mean and divide by its root sum of squares, after which
``corr(X, Y) = X' . Y'``.  Stage 1 then computes, for every epoch, the
correlations between a task's *assigned* voxels and **all** brain voxels
— a multiplication of a small ``(V, T)`` matrix with a tall-skinny
``(T, N)`` matrix.

Two numerically equivalent paths are provided:

* :func:`correlate_baseline` — one BLAS gemm per epoch writing straight
  into the voxel-major output (the baseline's ``cblas_sgemm`` with
  ``ldc`` striding).
* :func:`correlate_blocked` — the optimized loop structure of Section
  4.2: tiles of assigned voxels x target voxels sized for the L2 cache,
  with an optional per-tile callback that enables the merged
  normalization of Section 4.3.

Output layout is always **voxel-major**: ``out[v, e, :]`` is voxel ``v``'s
correlation vector for epoch ``e``, i.e. "all correlation vectors
corresponding to a single voxel are contiguous" (Fig. 4).
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np

from ..data.dataset import FMRIDataset
from ..data.epochs import Epoch

__all__ = [
    "normalize_epoch_data",
    "epoch_windows",
    "correlate_baseline",
    "correlate_blocked",
    "iter_blocks",
]


def normalize_epoch_data(epoch_stack: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Equation-2 normalization of raw epoch windows.

    ``epoch_stack`` has shape ``(n_epochs, n_voxels, epoch_len)``.  Each
    voxel's epoch vector is mean-centered and scaled by its root sum of
    squares so that the dot product of two normalized vectors equals
    their Pearson correlation.  Zero-variance vectors are mapped to zero
    (their correlation with anything is defined as 0 rather than NaN).
    """
    epoch_stack = np.asarray(epoch_stack)
    if epoch_stack.ndim != 3:
        raise ValueError(
            f"epoch stack must be (epochs, voxels, time), got {epoch_stack.shape}"
        )
    x = epoch_stack.astype(np.float32, copy=True)
    x -= x.mean(axis=2, keepdims=True)
    norms = np.sqrt((x * x).sum(axis=2, keepdims=True))
    np.divide(x, norms, out=x, where=norms > eps)
    x[np.broadcast_to(norms <= eps, x.shape)] = 0.0
    return x


def epoch_windows(dataset: FMRIDataset, epochs: Sequence[Epoch] | None = None) -> np.ndarray:
    """Equation-2-normalized epoch windows straight from a dataset.

    Shape ``(n_epochs, n_voxels, epoch_len)``; epochs default to the
    dataset's table order.
    """
    return normalize_epoch_data(dataset.epoch_stack(epochs))


def _check_stage1_inputs(
    z: np.ndarray, assigned: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    z = np.asarray(z)
    if z.ndim != 3:
        raise ValueError(
            f"normalized data must be (epochs, voxels, time), got {z.shape}"
        )
    assigned = np.asarray(assigned, dtype=np.int64)
    if assigned.ndim != 1 or assigned.size == 0:
        raise ValueError("assigned must be a non-empty 1D index array")
    n_voxels = z.shape[1]
    if assigned.min() < 0 or assigned.max() >= n_voxels:
        raise IndexError("assigned voxel index out of range")
    return z, assigned


def correlate_baseline(z: np.ndarray, assigned: np.ndarray) -> np.ndarray:
    """Baseline stage 1: one gemm per epoch (Section 3.2).

    Parameters
    ----------
    z:
        Equation-2-normalized data, shape ``(n_epochs, n_voxels, t)``.
    assigned:
        Indices of the task's voxels (the ``V`` rows of each gemm).

    Returns
    -------
    Voxel-major correlations, shape ``(V, n_epochs, n_voxels)`` float32.
    """
    z, assigned = _check_stage1_inputs(z, assigned)
    n_epochs, n_voxels, _ = z.shape
    out = np.empty((assigned.size, n_epochs, n_voxels), dtype=np.float32)
    for e in range(n_epochs):
        # A[V, T] @ B[T, N] -> strided write grouping results by voxel,
        # the cblas_sgemm + ldc trick of the baseline implementation.
        np.matmul(z[e, assigned], z[e].T, out=out[:, e, :])
    return out


def iter_blocks(total: int, block: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` covering ``range(total)`` in ``block`` steps."""
    if total < 0:
        raise ValueError("total must be >= 0")
    if block < 1:
        raise ValueError("block must be >= 1")
    for start in range(0, total, block):
        yield start, min(start + block, total)


#: Callback invoked on each finished tile of the blocked path.
#: Arguments: (tile, voxel_block, target_block, epoch_block) where
#: ``tile`` is the float32 view ``out[v0:v1, e0:e1, n0:n1]`` just
#: computed and may be modified in place (merged normalization).
TileCallback = Callable[[np.ndarray, tuple[int, int], tuple[int, int], tuple[int, int]], None]


def correlate_blocked(
    z: np.ndarray,
    assigned: np.ndarray,
    voxel_block: int = 16,
    target_block: int = 512,
    epoch_block: int | None = None,
    tile_callback: TileCallback | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Optimized stage 1: L2-sized tiles over (voxels x targets x epochs).

    The loop order mirrors Section 4.2: for each tile of ``voxel_block``
    assigned voxels by ``target_block`` brain voxels, all ``epoch_block``
    epochs of the tile are computed before moving on, so the tile is
    still cache-resident when ``tile_callback`` (the merged stage-2
    normalization) runs.  Results equal :func:`correlate_baseline` up to
    float32 rounding (BLAS may pick different accumulation kernels for
    different tile shapes; each output element is still the same
    mathematical dot product).

    ``epoch_block`` defaults to all epochs; the merged path passes one
    subject's epoch count so a tile holds exactly one normalization
    population.
    """
    z, assigned = _check_stage1_inputs(z, assigned)
    n_epochs, n_voxels, _ = z.shape
    if epoch_block is None:
        epoch_block = n_epochs
    if voxel_block < 1 or target_block < 1 or epoch_block < 1:
        raise ValueError("block sizes must be >= 1")
    if out is None:
        out = np.empty((assigned.size, n_epochs, n_voxels), dtype=np.float32)
    elif out.shape != (assigned.size, n_epochs, n_voxels):
        raise ValueError(
            f"out has shape {out.shape}, expected "
            f"{(assigned.size, n_epochs, n_voxels)}"
        )

    for v0, v1 in iter_blocks(assigned.size, voxel_block):
        rows = assigned[v0:v1]
        for e0, e1 in iter_blocks(n_epochs, epoch_block):
            for n0, n1 in iter_blocks(n_voxels, target_block):
                tile = out[v0:v1, e0:e1, n0:n1]
                for e in range(e0, e1):
                    np.matmul(
                        z[e, rows], z[e, n0:n1].T, out=tile[:, e - e0, :]
                    )
                if tile_callback is not None:
                    tile_callback(tile, (v0, v1), (n0, n1), (e0, e1))
    return out
