"""Incremental (streaming) stage 1/2: per-TR updates over a sliding window.

The batch engine recomputes a task's full correlation volume from
scratch; a real-time pipeline receives one volume (TR) every couple of
seconds and cannot afford that.  :class:`IncrementalEmitter` is the
engine's streaming materialization:

* **Per TR** (:meth:`IncrementalEmitter.push_tr`) it maintains running
  sums — ``sum x``, ``sum x^2`` per target voxel and the rank-1 cross
  product ``S += x_assigned (x)ᵀ`` — so the in-progress epoch's Pearson
  correlations are available at any TR from
  :meth:`~IncrementalEmitter.partial_correlations` in ``O(V·N)`` work
  (one tile's worth per tile, never a gemm over the whole window).
* **Per completed epoch** (:meth:`IncrementalEmitter.complete_epoch`)
  the closed epoch's correlation plane is computed once through the
  tiled engine's full-width gemm — the *same* batched-matmul kernel the
  offline path uses, which is what keeps the streaming state bitwise-
  equal to batch recompute — and appended to a sliding window of
  per-epoch planes, evicting the oldest beyond ``window_epochs``.
* **Stage 2 on demand** (:meth:`IncrementalEmitter.normalized`): the
  window stack is Fisher-transformed and z-scored by the engine's own
  normalizer, so at every TR the normalized window equals
  ``correlate_normalize_batched`` over the same epochs bit for bit
  (pinned by the hypothesis suite in
  ``tests/core/test_incremental.py``).

Epochs may be ragged: each plane remembers its own epoch length, and
nothing requires consecutive epochs to span the same number of TRs.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List

import numpy as np

from .engine import EngineShape, TilePlan, register_emitter, run_engine
from .normalization import NormalizationWorkspace, fuse_normalize_tile

__all__ = ["IncrementalEmitter"]

#: arctanh clip bound shared with the offline Fisher transform.
_CLIP_LIMIT = np.float32(1.0 - 1e-6)

#: Initial TR capacity of the in-progress-epoch buffer; grows by
#: doubling, so steady state reallocates never (satellite: no per-TR
#: allocation churn).
_INITIAL_TR_CAPACITY = 32


class IncrementalEmitter:
    """Sliding-window streaming materialization of stage 1/2.

    Parameters
    ----------
    assigned:
        Task voxel rows (``V``), as for the batch engine.
    n_voxels:
        Brain size ``N`` every TR volume must match.
    window_epochs:
        Maximum completed epochs retained; ``None`` keeps everything.

    The emitter is also a :class:`~repro.core.engine.TileEmitter`: epoch
    planes are appended by running the engine *onto* the emitter
    (full-width raw mode — stage 2 is deferred to the window view), so
    the gemm producing each plane is the batch kernel itself.
    """

    #: Planes arrive raw; stage 2 runs over the window stack on demand.
    fused_normalization = False

    def __init__(
        self,
        assigned: np.ndarray,
        n_voxels: int,
        *,
        window_epochs: int | None = None,
    ) -> None:
        assigned = np.asarray(assigned, dtype=np.int64)
        if assigned.ndim != 1 or assigned.size == 0:
            raise ValueError("assigned must be a non-empty 1D index array")
        if n_voxels < 1:
            raise ValueError("n_voxels must be >= 1")
        if assigned.min() < 0 or assigned.max() >= n_voxels:
            raise IndexError("assigned voxel index out of range")
        if window_epochs is not None and window_epochs < 1:
            raise ValueError("window_epochs must be >= 1 (or None)")
        self._assigned = assigned
        self._n_voxels = int(n_voxels)
        self._window_epochs = window_epochs
        v, n = assigned.size, self._n_voxels

        #: Completed-epoch raw correlation planes, each ``(V, N)`` f32.
        self._window: Deque[np.ndarray] = deque()
        self._epoch_lengths: Deque[int] = deque()

        # In-progress epoch: raw TR columns plus float64 running sums.
        self._tr_buf = np.empty((n, _INITIAL_TR_CAPACITY), dtype=np.float32)
        self._t = 0
        self._sum = np.zeros(n, dtype=np.float64)
        self._sumsq = np.zeros(n, dtype=np.float64)
        self._cross = np.zeros((v, n), dtype=np.float64)
        # Preallocated per-TR scratch: the O(V·N) update allocates
        # nothing in steady state.
        self._x64 = np.empty(n, dtype=np.float64)
        self._xsq = np.empty(n, dtype=np.float64)
        self._xa = np.empty(v, dtype=np.float64)
        self._outer = np.empty((v, n), dtype=np.float64)
        self._num = np.empty((v, n), dtype=np.float64)
        self._var = np.empty(n, dtype=np.float64)
        self._vara = np.empty(v, dtype=np.float64)
        self._mask = np.empty((v, n), dtype=bool)
        self._norm_ws = NormalizationWorkspace()

        #: Lifetime counters (introspection / RunContext).
        self.trs_seen = 0
        self.epochs_completed = 0
        self.epochs_evicted = 0

        # Per-engine-run state (TileEmitter protocol).
        self._run_out: np.ndarray | None = None
        self._run_epoch_length = 0

    # -- geometry ---------------------------------------------------------

    @property
    def n_assigned(self) -> int:
        return int(self._assigned.size)

    @property
    def n_voxels(self) -> int:
        return self._n_voxels

    @property
    def assigned(self) -> np.ndarray:
        return self._assigned

    @property
    def window_size(self) -> int:
        """Completed epochs currently retained."""
        return len(self._window)

    @property
    def epoch_lengths(self) -> List[int]:
        """Per-retained-epoch TR counts (ragged epochs allowed)."""
        return list(self._epoch_lengths)

    @property
    def trs_in_epoch(self) -> int:
        """TRs buffered in the in-progress epoch."""
        return self._t

    @property
    def latest_plane(self) -> np.ndarray:
        """Newest completed epoch's raw ``(V, N)`` correlation plane."""
        if not self._window:
            raise ValueError("no completed epochs in the window")
        return self._window[-1]

    # -- TileEmitter protocol (full-width raw mode) -----------------------

    def plan(self, shape: EngineShape) -> TilePlan:
        return TilePlan()  # full-width: the batch gemm kernel, one slab

    def begin(self, shape: EngineShape, plan: TilePlan) -> None:
        if shape.n_voxels != self._n_voxels:
            raise ValueError(
                f"engine run over {shape.n_voxels} voxels does not match "
                f"emitter brain size {self._n_voxels}"
            )
        if shape.n_assigned != self._assigned.size:
            raise ValueError(
                f"engine run over {shape.n_assigned} assigned rows does not "
                f"match emitter task size {self._assigned.size}"
            )
        self._run_out = None
        self._run_epoch_length = shape.epoch_length

    def dense_out(self, shape: EngineShape) -> np.ndarray:
        self._run_out = np.empty(shape.dense_shape, dtype=np.float32)
        return self._run_out

    def emit(
        self, tile: np.ndarray, v0: int, v1: int, n0: int, n1: int
    ) -> None:
        pass  # planes are sliced from the run buffer in finalize

    def end_sweep(self, v0: int, v1: int) -> None:
        pass

    def finalize(self) -> int:
        """Append the run's epoch planes to the window; returns its size."""
        assert self._run_out is not None
        for e in range(self._run_out.shape[1]):
            self._window.append(np.ascontiguousarray(self._run_out[:, e, :]))
            self._epoch_lengths.append(self._run_epoch_length)
            self.epochs_completed += 1
        self._run_out = None
        self._evict_overflow()
        return self.window_size

    # -- streaming API ----------------------------------------------------

    def push_tr(self, volume: np.ndarray) -> None:
        """Fold one TR volume ``(N,)`` into the in-progress epoch.

        ``O(V·N)``: one rank-1 update of the cross-product accumulator
        plus the per-voxel sum/sum-of-squares — no gemm, no pass over
        earlier TRs, no allocation (scratch is preallocated).
        """
        volume = np.asarray(volume)
        if volume.shape != (self._n_voxels,):
            raise ValueError(
                f"volume must have shape ({self._n_voxels},), got {volume.shape}"
            )
        if self._t == self._tr_buf.shape[1]:
            grown = np.empty(
                (self._n_voxels, 2 * self._tr_buf.shape[1]), dtype=np.float32
            )
            grown[:, : self._t] = self._tr_buf
            self._tr_buf = grown
        self._tr_buf[:, self._t] = volume

        x = self._x64
        np.copyto(x, self._tr_buf[:, self._t])
        self._sum += x
        np.multiply(x, x, out=self._xsq)
        self._sumsq += self._xsq
        np.take(x, self._assigned, out=self._xa)
        np.multiply(self._xa[:, None], x[None, :], out=self._outer)
        self._cross += self._outer
        self._t += 1
        self.trs_seen += 1

    def partial_correlations(
        self, out: np.ndarray | None = None
    ) -> np.ndarray | None:
        """Pearson ``(V, N)`` of the in-progress epoch, from running sums.

        ``r = (t·S − Σx_a Σx) / sqrt((t·Σx_a² − (Σx_a)²)(t·Σx² − (Σx)²))``
        evaluated entirely in the preallocated float64 scratch.  Returns
        ``None`` before two TRs (no variance yet); zero-variance voxels
        correlate as 0, as in the batch normalizer.
        """
        if self._t < 2:
            return None
        t = float(self._t)
        num, denom = self._num, self._outer
        np.multiply(self._cross, t, out=num)
        np.take(self._sum, self._assigned, out=self._xa)
        np.multiply(self._xa[:, None], self._sum[None, :], out=denom)
        num -= denom
        np.multiply(self._sum, self._sum, out=self._xsq)
        np.multiply(self._sumsq, t, out=self._var)
        self._var -= self._xsq
        np.clip(self._var, 0.0, None, out=self._var)
        np.take(self._var, self._assigned, out=self._vara)
        np.multiply(self._vara[:, None], self._var[None, :], out=denom)
        np.sqrt(denom, out=denom)
        np.less_equal(denom, 0.0, out=self._mask)
        denom[self._mask] = 1.0
        np.divide(num, denom, out=num)
        num[self._mask] = 0.0
        np.clip(num, -1.0, 1.0, out=num)
        if out is None:
            out = np.empty((self._assigned.size, self._n_voxels), np.float32)
        elif out.shape != num.shape or out.dtype != np.float32:
            raise ValueError("out must be float32 with shape (V, N)")
        np.copyto(out, num, casting="unsafe")
        return out

    def complete_epoch(self) -> np.ndarray | None:
        """Close the in-progress epoch and append its plane to the window.

        The plane is computed through the engine's full-width batch gemm
        on the equation-2-normalized epoch window — identical bits to
        the corresponding slice of an offline batch run — then the TR
        buffer and running sums reset for the next epoch.  Returns the
        new plane (or ``None`` if no TRs were buffered).
        """
        if self._t == 0:
            return None
        from .correlation import normalize_epoch_data

        window = self._tr_buf[:, : self._t]
        z = normalize_epoch_data(window[None])  # (1, N, T)
        run_engine(z, self._assigned, 1, self)
        self._reset_epoch_state()
        return self._window[-1]

    def discard_partial_epoch(self) -> None:
        """Drop the in-progress TRs without completing an epoch."""
        self._reset_epoch_state()

    def append_epochs(self, z: np.ndarray) -> int:
        """Append already-normalized epoch windows ``(E, N, T)`` wholesale.

        The offline entry point (e.g. seeding a window from history):
        one engine run appends ``E`` planes.  Returns the window size.
        """
        z = np.asarray(z)
        if z.ndim != 3 or z.shape[1] != self._n_voxels:
            raise ValueError(
                f"z must be (epochs, {self._n_voxels}, time), got {z.shape}"
            )
        result: int = run_engine(z, self._assigned, 1, self)
        return result

    def evict_oldest(self, count: int = 1) -> int:
        """Drop the ``count`` oldest planes; returns how many were dropped."""
        if count < 0:
            raise ValueError("count must be >= 0")
        dropped = 0
        while self._window and dropped < count:
            self._window.popleft()
            self._epoch_lengths.popleft()
            dropped += 1
        self.epochs_evicted += dropped
        return dropped

    def normalized(self, epochs_per_subject: int | None = None) -> np.ndarray:
        """Stage-2-normalized ``(V, W, N)`` stack over the current window.

        Fisher transform + within-subject z-score by the engine's own
        normalizer; ``epochs_per_subject`` defaults to the whole window
        as one population (the online, single-subject case).  Bitwise-
        equal to ``correlate_normalize_batched`` over the same epochs.
        """
        w = self.window_size
        if w == 0:
            raise ValueError("window is empty; no epochs to normalize")
        e_per = w if epochs_per_subject is None else epochs_per_subject
        if e_per < 1:
            raise ValueError("epochs_per_subject must be >= 1")
        if w % e_per:
            raise ValueError(
                f"window of {w} epochs not divisible by epochs_per_subject "
                f"{e_per}"
            )
        stack = np.empty(
            (self._assigned.size, w, self._n_voxels), dtype=np.float32
        )
        for e, plane in enumerate(self._window):
            stack[:, e, :] = plane
        fuse_normalize_tile(stack, e_per, workspace=self._norm_ws)
        return stack

    def fisher_features(self, plane: np.ndarray | None = None) -> np.ndarray:
        """Fisher-z feature row ``(1, V·N)`` from a raw plane.

        Defaults to the newest completed epoch.  Bitwise-equal to
        :meth:`repro.analysis.online.OnlineClassifier.features_for_epoch`
        on the same epoch window, because the plane came from the same
        gemm kernel and the clip/arctanh sequence is identical.
        """
        if plane is None:
            plane = self.latest_plane
        row = np.empty((1, plane.size), dtype=np.float32)
        flat = row.reshape(-1)
        np.clip(plane.reshape(-1), -_CLIP_LIMIT, _CLIP_LIMIT, out=flat)
        np.arctanh(flat, out=flat)
        return row

    def _reset_epoch_state(self) -> None:
        self._t = 0
        self._sum[:] = 0.0
        self._sumsq[:] = 0.0
        self._cross[:] = 0.0

    def _evict_overflow(self) -> None:
        if self._window_epochs is None:
            return
        excess = len(self._window) - self._window_epochs
        if excess > 0:
            self.evict_oldest(excess)


register_emitter("incremental", IncrementalEmitter)
