"""Tile arithmetic shared by every loop that carves an index range.

The correlation engine's voxel sweeps, the sparse filter's target
blocks, the normalization sweep's slabs, and the task partitioner all
walk ``range(total)`` in fixed-size blocks with a possibly-short tail.
That arithmetic used to be repeated (with small stylistic variations)
across ``core/correlation.py``, ``core/sparse.py``, and
``exec/partition.py``; it lives here exactly once now, so the tail-tile
conventions cannot drift between the compute engine and the execution
layer.

All helpers agree on the same convention: blocks are half-open
``[start, stop)`` ranges, full-sized except possibly the last, covering
``range(total)`` exactly once in ascending order.
"""

from __future__ import annotations

from typing import Iterator

__all__ = ["iter_blocks", "block_bounds", "n_blocks", "tail_block"]


def _check(total: int, block: int) -> None:
    if total < 0:
        raise ValueError("total must be >= 0")
    if block < 1:
        raise ValueError("block must be >= 1")


def iter_blocks(total: int, block: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` covering ``range(total)`` in ``block`` steps."""
    _check(total, block)
    for start in range(0, total, block):
        yield start, min(start + block, total)


def block_bounds(total: int, block: int) -> list[tuple[int, int]]:
    """:func:`iter_blocks` materialized (for loops walked more than once)."""
    return list(iter_blocks(total, block))


def n_blocks(total: int, block: int) -> int:
    """Number of blocks :func:`iter_blocks` yields (``ceil(total/block)``)."""
    _check(total, block)
    return -(-total // block)


def tail_block(total: int, block: int) -> int:
    """Size of the final block: ``block`` when ``total`` divides evenly,
    the remainder otherwise, and 0 when ``total`` is 0."""
    _check(total, block)
    if total == 0:
        return 0
    return total - (n_blocks(total, block) - 1) * block
