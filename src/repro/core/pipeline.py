"""The three-stage FCMA pipeline on one worker (Sections 3.1.2, 4).

:func:`run_task` executes what a single worker node does for one task:
given a dataset and an assigned set of voxels, it computes those voxels'
correlation vectors for every epoch (stage 1), normalizes them (stage 2),
and scores each voxel by SVM cross-validation (stage 3), returning the
accuracies the worker would send back to the master.

:class:`FCMAConfig` selects between the *baseline* implementation
(per-epoch gemm, separated normalization, LibSVM-like solver — Section
3.2) and the *optimized* one (L2-blocked tiles, merged normalization,
blocked syrk, PhiSVM — Section 4); both produce the same voxel ranking.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace

import numpy as np

from ..data.dataset import FMRIDataset
from ..svm.cross_validation import KernelBackend
from .correlation import epoch_windows
from .results import VoxelScores
from .voxel_selection import DEFAULT_BATCH_VOXELS

__all__ = [
    "FCMAConfig",
    "run_task",
    "make_backend",
    "task_partition",
    "preprocess_dataset",
    "clear_preprocess_cache",
]

#: Pipeline variant / SVM backend names.  No longer ``Literal`` types:
#: any name registered with :mod:`repro.exec.registry` is valid, so
#: third-party variants and backends plug in without editing this file.
Variant = str
Backend = str

#: Engine emitter each engine-backed variant's stage graph materializes
#: through (the dispatch table ``resolved_emitter`` consults).
_NATIVE_EMITTERS = {
    "optimized-batched": "dense",
    "sparse-batched": "csr",
}


@dataclass(frozen=True)
class FCMAConfig:
    """Knobs of the single-worker pipeline.

    The defaults are the paper's optimized configuration.  Setting
    ``variant="baseline"`` switches all three stages to the Section 3.2
    implementation (and ``svm_backend`` to the LibSVM-like solver unless
    explicitly overridden).
    """

    variant: Variant = "optimized"
    #: SVM backend; None picks the variant's native one (PhiSVM for
    #: optimized, LibSVM-like for baseline).
    svm_backend: Backend | None = None
    svm_c: float = 1.0
    svm_tol: float = 1e-3
    #: Assigned voxels per worker task (120 for face-scene in the paper).
    task_voxels: int = 120
    #: Stage-1 tile sizes for the optimized variant.
    voxel_block: int = 16
    target_block: int = 512
    #: ``optimized-batched`` only: autotune the blocking plan by
    #: measuring candidate voxel sweeps (see ``core.blocking``) instead
    #: of trusting the analytic model.
    autotune_blocks: bool = False
    #: JSON file for persisting autotuned plans across runs; None keeps
    #: the process-wide in-memory cache.
    plan_cache_path: str | None = None
    #: Folds for single-subject (online) CV, used when the dataset has
    #: only one subject and LOSO is impossible.
    online_folds: int = 4
    #: Voxel problems per stage-3 batch (stacked-GEMM kernels + the
    #: multi-problem SMO solver).  0 forces the per-voxel reference
    #: path; backends without a batched trainer fall back automatically.
    batch_voxels: int = DEFAULT_BATCH_VOXELS
    #: Tasks per worker message in ``parallel_voxel_selection``'s
    #: ``pool.map``; None picks ~4 chunks per worker.  The default
    #: chunksize of 1 would serialize one result round-trip per task.
    chunksize: int | None = None
    #: ``sparse-batched`` only: keep normalized correlations with
    #: ``|value| >= threshold`` (mutually exclusive with ``top_k``;
    #: exactly one is required by that variant, rejected elsewhere).
    threshold: float | None = None
    #: ``sparse-batched`` only: keep the k strongest correlations per
    #: (voxel, epoch) row.
    top_k: int | None = None
    #: Engine emitter (how stage-1/2 tiles are materialized): ``None``
    #: resolves to the variant's native one — ``dense`` for
    #: ``optimized-batched``, ``csr`` for ``sparse-batched``.  The
    #: ``incremental`` emitter is driven per TR by the streaming loop
    #: (:mod:`repro.rtfmri`), not by a batch variant.
    emitter: str | None = None
    #: Seconds before a blocked communicator receive/collective aborts.
    #: ``None`` falls back to the ``FCMA_COMM_TIMEOUT`` environment
    #: variable, then 120 s (see :func:`repro.parallel.comm.default_timeout`).
    comm_timeout: float | None = None

    def __post_init__(self) -> None:
        from ..exec.registry import available_backends, available_variants

        if self.variant not in available_variants():
            raise ValueError(f"unknown variant {self.variant!r}")
        if self.svm_backend is not None and self.svm_backend not in available_backends():
            raise ValueError(f"unknown svm_backend {self.svm_backend!r}")
        if self.svm_c <= 0 or self.svm_tol <= 0:
            raise ValueError("svm_c and svm_tol must be positive")
        if self.task_voxels < 1:
            raise ValueError("task_voxels must be >= 1")
        if self.voxel_block < 1 or self.target_block < 1:
            raise ValueError("block sizes must be >= 1")
        if self.online_folds < 2:
            raise ValueError("online_folds must be >= 2")
        if self.batch_voxels < 0:
            raise ValueError("batch_voxels must be >= 0")
        if self.chunksize is not None and self.chunksize < 1:
            raise ValueError("chunksize must be >= 1 (or None for auto)")
        if self.threshold is not None and not self.threshold >= 0.0:
            raise ValueError("threshold must be >= 0")
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.comm_timeout is not None and not self.comm_timeout > 0:
            raise ValueError("comm_timeout must be positive (or None for auto)")
        if self.threshold is not None and self.top_k is not None:
            raise ValueError("threshold and top_k are mutually exclusive")
        sparse_mode = self.threshold is not None or self.top_k is not None
        if self.variant == "sparse-batched" and not sparse_mode:
            raise ValueError(
                "variant 'sparse-batched' requires threshold or top_k"
            )
        if sparse_mode and self.variant != "sparse-batched":
            raise ValueError(
                "threshold/top_k only apply to variant 'sparse-batched'"
            )
        if self.emitter is not None:
            from .engine import available_emitters

            if self.emitter not in available_emitters():
                raise ValueError(
                    f"unknown emitter {self.emitter!r}; "
                    f"available: {available_emitters()}"
                )
            if self.emitter == "incremental":
                raise ValueError(
                    "the incremental emitter is driven per TR by the "
                    "streaming loop (repro.rtfmri), not by a batch variant"
                )
            native = _NATIVE_EMITTERS.get(self.variant)
            if native is None:
                raise ValueError(
                    f"variant {self.variant!r} does not run through the "
                    "tiled engine; emitter only applies to engine-backed "
                    "variants"
                )
            if self.emitter != native:
                raise ValueError(
                    f"emitter {self.emitter!r} is incompatible with variant "
                    f"{self.variant!r} (its stage graph materializes "
                    f"{native!r} output)"
                )

    def resolved_emitter(self) -> str | None:
        """The engine emitter actually used (variant default resolved).

        ``None`` for pre-engine variants (``baseline``, ``optimized``)
        that never touch the tiled engine.
        """
        if self.emitter is not None:
            return self.emitter
        return _NATIVE_EMITTERS.get(self.variant)

    def resolved_backend(self) -> Backend:
        """The backend actually used, resolving the variant default."""
        if self.svm_backend is not None:
            return self.svm_backend
        return "libsvm" if self.variant == "baseline" else "phisvm"

    def with_variant(self, variant: Variant) -> "FCMAConfig":
        """Copy with a different variant (backend default re-resolves)."""
        return replace(self, variant=variant)


def make_backend(config: FCMAConfig) -> KernelBackend:
    """Instantiate the configured SVM backend.

    Resolves through the :mod:`repro.exec.registry` tables (the paper's
    backends are pre-registered; third-party ones register themselves).
    The built-in factories wrap for one-vs-one multiclass voting; binary
    problems (the paper's two-condition experiments) pass through to
    the bare solver with no overhead.
    """
    from ..exec.registry import create_backend

    return create_backend(config)


def task_partition(n_voxels: int, task_voxels: int) -> list[np.ndarray]:
    """Partition all brain voxels into master-assignable tasks.

    "The tasks are defined by partitioning the correlation matrices
    along their rows" (Section 3.1.1).  Compatibility alias for
    :func:`repro.exec.partition.partition_tasks`, the one place task
    carving lives now.
    """
    from ..exec.partition import partition_tasks

    return partition_tasks(n_voxels, task_voxels)


# Task-invariant preprocessing (subject-contiguous regrouping + eq.-2
# normalized epoch windows) cached per dataset *identity*: every task of
# a voxel-selection run shares the same dataset object, so serial and
# parallel drivers pay the O(epochs x voxels x time) preprocessing once
# instead of once per task.  Weak keys let datasets be garbage collected.
_PREPROCESS_CACHE: "weakref.WeakKeyDictionary[FMRIDataset, tuple[FMRIDataset, np.ndarray]]" = (
    weakref.WeakKeyDictionary()
)


def preprocess_dataset(dataset: FMRIDataset) -> tuple[FMRIDataset, np.ndarray]:
    """Subject-grouped dataset + normalized epoch windows, memoized.

    Returns ``(grouped_dataset, z)`` where ``z`` is the equation-2
    normalized epoch stack of the grouped dataset.  Cached by dataset
    identity; treat both returns as read-only.
    """
    hit = _PREPROCESS_CACHE.get(dataset)
    if hit is None:
        ds = dataset.grouped_by_subject()
        hit = (ds, epoch_windows(ds))
        _PREPROCESS_CACHE[dataset] = hit
    return hit


def clear_preprocess_cache() -> None:
    """Drop all memoized preprocessing (e.g. after mutating BOLD data)."""
    _PREPROCESS_CACHE.clear()


def run_task(
    dataset: FMRIDataset,
    assigned: np.ndarray,
    config: FCMAConfig = FCMAConfig(),
) -> VoxelScores:
    """Run the three-stage pipeline for one task's assigned voxels.

    The dataset's epochs are re-grouped subject-contiguously first (the
    layout stage 2 requires).  With a single-subject dataset the CV folds
    are contiguous epoch k-folds (online mode); otherwise folds are
    subjects (offline LOSO).

    Compatibility shim: the implementation lives in the stage graph
    (:func:`repro.exec.stage_graph.execute_task`); this wrapper runs it
    under a throwaway :class:`~repro.exec.context.RunContext` and
    returns bitwise-identical scores.  Pass a context of your own (via
    ``execute_task`` or an executor) to keep the per-stage timings.
    """
    from ..exec.context import RunContext
    from ..exec.stage_graph import execute_task

    return execute_task(dataset, assigned, RunContext(config))
