"""Blocking plans: choosing tile sizes from cache geometry (idea #1).

The paper sizes its stage-1/2 tiles so that one thread's working set —
a ``B x B'`` correlation tile for one subject's ``E`` epochs plus the
input panels that produce it — fits its share of the 512 KB L2 cache,
with ``B'`` an integral multiple of the VPU width (ideas #1 and #3).
:func:`plan_blocks` reproduces that sizing for any
:class:`~repro.hw.spec.HardwareSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.spec import HardwareSpec

__all__ = ["BlockingPlan", "plan_blocks"]


@dataclass(frozen=True)
class BlockingPlan:
    """Tile sizes for the blocked stage-1/2 pipeline."""

    #: Assigned voxels per tile (``B`` in Fig. 5).
    voxel_block: int
    #: Target (brain) voxels per tile (``B'`` in Fig. 5).
    target_block: int
    #: Epochs per tile — one subject's worth for the merged pipeline.
    epoch_block: int

    def __post_init__(self) -> None:
        if min(self.voxel_block, self.target_block, self.epoch_block) < 1:
            raise ValueError("all block dimensions must be >= 1")

    def tile_bytes(self, dtype_bytes: int = 4) -> int:
        """Bytes of one output tile (B x E x B')."""
        return (
            self.voxel_block * self.epoch_block * self.target_block * dtype_bytes
        )

    def working_set_bytes(self, epoch_length: int, dtype_bytes: int = 4) -> int:
        """Tile plus the input panels needed to compute it."""
        inputs = (
            (self.voxel_block + self.target_block)
            * self.epoch_block
            * epoch_length
            * dtype_bytes
        )
        return self.tile_bytes(dtype_bytes) + inputs


def plan_blocks(
    spec: HardwareSpec,
    epochs_per_subject: int,
    epoch_length: int,
    n_assigned: int,
    n_voxels: int,
    dtype_bytes: int = 4,
    cache_fraction: float = 0.8,
) -> BlockingPlan:
    """Choose (B, B', E) tiles that fit a thread's L2 share.

    ``B'`` is rounded to a multiple of the VPU width and made as large as
    the budget allows (long contiguous runs maximize vectorization
    intensity); ``B`` then takes what is left, at least 1.  The epoch
    block is pinned to ``epochs_per_subject`` so each tile holds complete
    normalization populations for the merged stage 2.
    """
    if not 0.0 < cache_fraction <= 1.0:
        raise ValueError("cache_fraction must be in (0, 1]")
    if epochs_per_subject < 1 or epoch_length < 1:
        raise ValueError("epochs_per_subject and epoch_length must be >= 1")
    if n_assigned < 1 or n_voxels < 1:
        raise ValueError("n_assigned and n_voxels must be >= 1")

    budget = int(spec.l2_per_thread_bytes() * cache_fraction)
    width = spec.vpu_width_sp
    e = epochs_per_subject

    # Try B from a small menu (multiples of the VPU width down to 1) and
    # pick the largest B' that keeps the working set within budget.
    best: BlockingPlan | None = None
    for b in (width, width // 2, 8, 4, 2, 1):
        if b < 1 or b > n_assigned * 2:
            continue
        # bytes(B') for the tile + input panels:
        #   tile: B*E*B' ; inputs: (B + B') * E * T
        per_target = (b * e + e * epoch_length) * dtype_bytes
        fixed = b * e * epoch_length * dtype_bytes
        if per_target <= 0:
            continue
        max_targets = (budget - fixed) // per_target
        if max_targets < width:
            continue
        targets = min(int(max_targets) // width * width, n_voxels)
        if targets < 1:
            continue
        plan = BlockingPlan(
            voxel_block=min(b, n_assigned),
            target_block=targets,
            epoch_block=e,
        )
        if best is None or plan.target_block * plan.voxel_block > (
            best.target_block * best.voxel_block
        ):
            best = plan
    if best is None:
        # Cache too small for even one VPU-width run: degenerate plan.
        best = BlockingPlan(
            voxel_block=1,
            target_block=min(width, n_voxels),
            epoch_block=e,
        )
    return best
