"""Blocking plans: choosing tile sizes from cache geometry (idea #1).

The paper sizes its stage-1/2 tiles so that one thread's working set —
a ``B x B'`` correlation tile for one subject's ``E`` epochs plus the
input panels that produce it — fits its share of the 512 KB L2 cache,
with ``B'`` an integral multiple of the VPU width (ideas #1 and #3).
:func:`plan_blocks` reproduces that sizing for any
:class:`~repro.hw.spec.HardwareSpec`.

The analytic plan is a model, and models miss machine quirks (BLAS
kernel crossovers, bandwidth tiers, SMT contention).  With
``autotune=True`` the planner therefore *measures*: it times a small
menu of candidate plans — the analytic seed plus voxel-block variants —
on a sliced synthetic sub-problem through the fused stage-1/2 engine and
keeps the fastest.  Winners are persisted per ``(HardwareSpec geometry,
problem shape)`` in a JSON :class:`PlanCache`, so a warm cache returns
the stored plan without re-measuring; the analytic plan remains the seed
and the fallback when measurement is impossible.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from ..hw.spec import HardwareSpec

__all__ = [
    "BlockingPlan",
    "PlanCache",
    "default_plan_cache",
    "plan_blocks",
    "plan_key",
]


@dataclass(frozen=True)
class BlockingPlan:
    """Tile sizes for the blocked stage-1/2 pipeline."""

    #: Assigned voxels per tile (``B`` in Fig. 5).  The fused batched
    #: engine uses this as its normalization sweep width.
    voxel_block: int
    #: Target (brain) voxels per tile (``B'`` in Fig. 5).
    target_block: int
    #: Epochs per tile — one subject's worth for the merged pipeline.
    epoch_block: int

    def __post_init__(self) -> None:
        if min(self.voxel_block, self.target_block, self.epoch_block) < 1:
            raise ValueError("all block dimensions must be >= 1")

    def tile_bytes(self, dtype_bytes: int = 4) -> int:
        """Bytes of one output tile (B x E x B')."""
        return (
            self.voxel_block * self.epoch_block * self.target_block * dtype_bytes
        )

    def working_set_bytes(self, epoch_length: int, dtype_bytes: int = 4) -> int:
        """Tile plus the input panels needed to compute it."""
        inputs = (
            (self.voxel_block + self.target_block)
            * self.epoch_block
            * epoch_length
            * dtype_bytes
        )
        return self.tile_bytes(dtype_bytes) + inputs


def plan_key(
    spec: HardwareSpec,
    epochs_per_subject: int,
    epoch_length: int,
    n_assigned: int,
    n_voxels: int,
    dtype_bytes: int = 4,
) -> str:
    """Cache key for one (hardware, problem shape) pairing.

    Keyed on the spec's *geometry* (L2 share and VPU width — the inputs
    the analytic plan turns on) plus its name, so two specs that would
    plan identically but are different machines still tune separately.
    """
    return (
        f"v1|{spec.name}|l2={spec.l2_per_thread_bytes()}"
        f"|vpu={spec.vpu_width_sp}|eps={epochs_per_subject}"
        f"|t={epoch_length}|va={n_assigned}|n={n_voxels}|b={dtype_bytes}"
    )


class PlanCache:
    """JSON-backed store of autotuned :class:`BlockingPlan` winners.

    ``path=None`` keeps the cache in memory only (one process).  With a
    path, plans are loaded on construction — missing or corrupt files
    are treated as empty, never an error — and every :meth:`put` writes
    the file back atomically (unique temp file + ``os.replace``),
    merging with whatever another process flushed in the meantime so
    concurrent writers never corrupt the file or drop each other's
    winners.  ``hits`` / ``misses`` count :meth:`get`
    outcomes; the execution layer mirrors them into ``RunContext``
    counters.
    """

    VERSION = 1

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.hits = 0
        self.misses = 0
        self._plans: dict[str, BlockingPlan] = {}
        if self.path is not None:
            self._plans.update(self._load(self.path))

    @staticmethod
    def _load(path: Path) -> dict[str, BlockingPlan]:
        try:
            raw = json.loads(path.read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict) or raw.get("version") != PlanCache.VERSION:
            return {}
        entries = raw.get("plans")
        if not isinstance(entries, dict):
            return {}
        plans: dict[str, BlockingPlan] = {}
        for key, entry in entries.items():
            try:
                plans[str(key)] = BlockingPlan(
                    voxel_block=int(entry["voxel_block"]),
                    target_block=int(entry["target_block"]),
                    epoch_block=int(entry["epoch_block"]),
                )
            except (TypeError, KeyError, ValueError):
                continue
        return plans

    def __len__(self) -> int:
        return len(self._plans)

    def get(self, key: str) -> BlockingPlan | None:
        """Look up a plan, counting the hit or miss."""
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
        else:
            self.hits += 1
        return plan

    def put(self, key: str, plan: BlockingPlan) -> None:
        """Store a winner and (if file-backed) persist the cache."""
        self._plans[key] = plan
        if self.path is not None:
            self._flush(self.path)

    def _flush(self, path: Path) -> None:
        # Concurrent runs (a pool worker per autotune, parallel CI jobs)
        # may flush the same cache file.  Merge with what is on disk so
        # another writer's winners survive, then write through a
        # uniquely named temp file: a fixed ".tmp" name would let two
        # writers interleave write_text/replace and publish a torn file.
        merged = self._load(path)
        merged.update(self._plans)
        self._plans = merged
        payload = {
            "version": self.VERSION,
            "plans": {
                key: {
                    "voxel_block": plan.voxel_block,
                    "target_block": plan.target_block,
                    "epoch_block": plan.epoch_block,
                }
                for key, plan in sorted(self._plans.items())
            },
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(json.dumps(payload, indent=2, sort_keys=True))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise


_DEFAULT_CACHE: PlanCache | None = None


def default_plan_cache() -> PlanCache:
    """Process-wide in-memory plan cache (the autotuner's default).

    Memory-only by design: persistence is opt-in via an explicit cache
    path (``FCMAConfig.plan_cache_path`` / ``fcma run --plan-cache``),
    so test runs and CI never leave files behind.
    """
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = PlanCache()
    return _DEFAULT_CACHE


def _candidate_plans(seed: BlockingPlan, n_assigned: int) -> list[BlockingPlan]:
    """The autotuner's menu: the analytic seed plus voxel-block variants.

    The voxel block doubles as the fused engine's normalization sweep
    width, and its sweet spot sits on a cache-tier boundary the analytic
    model cannot see — so that is the dimension worth measuring.  Target
    and epoch blocks stay at the analytic values (the epoch block is
    semantically pinned to one subject).
    """
    candidates: list[BlockingPlan] = [seed]
    seen = {seed.voxel_block}
    for b in (1, 2, 4, 8, 16, 32):
        b = min(b, n_assigned)
        if b in seen:
            continue
        seen.add(b)
        candidates.append(
            BlockingPlan(
                voxel_block=b,
                target_block=seed.target_block,
                epoch_block=seed.epoch_block,
            )
        )
    return candidates


def _time_plan(
    plan: BlockingPlan,
    epochs_per_subject: int,
    epoch_length: int,
    n_assigned: int,
    n_voxels: int,
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` seconds for the fused engine under ``plan``.

    Runs :func:`~repro.core.correlation.correlate_normalize_batched` on
    a capped synthetic slice of the problem (deterministic inputs, at
    most 32 assigned voxels x 96 epochs x 4096 targets) so autotuning
    costs milliseconds, not a full stage-1/2 pass.  The epoch count uses
    six subject panels (capped) rather than one: the normalization
    slab is ``sweep x epochs x targets`` bytes, so measuring with too
    few epochs shifts the L2 knee and picks a sweep too wide for the
    real problem.
    """
    import numpy as np

    from .correlation import NormalizationWorkspace, correlate_normalize_batched

    v = min(n_assigned, 32)
    e = epochs_per_subject * max(1, min(6, 96 // epochs_per_subject))
    n = min(n_voxels, 4096)
    t = min(epoch_length, 64)
    rng = np.random.default_rng(0)
    z = rng.standard_normal((e, n, t)).astype(np.float32)
    assigned = np.arange(v, dtype=np.int64)
    out = np.empty((v, e, n), dtype=np.float32)
    workspace = NormalizationWorkspace()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        correlate_normalize_batched(
            z,
            assigned,
            epochs_per_subject,
            voxel_sweep=plan.voxel_block,
            out=out,
            workspace=workspace,
        )
        best = min(best, time.perf_counter() - start)
    return best


def plan_blocks(
    spec: HardwareSpec,
    epochs_per_subject: int,
    epoch_length: int,
    n_assigned: int,
    n_voxels: int,
    dtype_bytes: int = 4,
    cache_fraction: float = 0.8,
    *,
    autotune: bool = False,
    cache: PlanCache | None = None,
    measure: Callable[[BlockingPlan], float] | None = None,
) -> BlockingPlan:
    """Choose (B, B', E) tiles that fit a thread's L2 share.

    ``B'`` is rounded to a multiple of the VPU width and made as large as
    the budget allows (long contiguous runs maximize vectorization
    intensity); ``B`` then takes what is left, at least 1.  The epoch
    block is pinned to ``epochs_per_subject`` so each tile holds complete
    normalization populations for the merged stage 2.

    With ``autotune=True`` the analytic plan becomes the *seed* of a
    measured search over voxel-block variants (see
    :func:`_candidate_plans`): each candidate is timed by ``measure``
    (default: :func:`_time_plan` on a capped synthetic slice) and the
    fastest wins.  Winners persist in ``cache`` (default:
    :func:`default_plan_cache`) keyed by :func:`plan_key`; a warm cache
    returns its stored plan **without re-measuring**.
    """
    if not 0.0 < cache_fraction <= 1.0:
        raise ValueError("cache_fraction must be in (0, 1]")
    if epochs_per_subject < 1 or epoch_length < 1:
        raise ValueError("epochs_per_subject and epoch_length must be >= 1")
    if n_assigned < 1 or n_voxels < 1:
        raise ValueError("n_assigned and n_voxels must be >= 1")

    budget = int(spec.l2_per_thread_bytes() * cache_fraction)
    width = spec.vpu_width_sp
    e = epochs_per_subject

    # Try B from a small menu (multiples of the VPU width down to 1),
    # clamped to the task size *before* budgeting so a tiny ``n_assigned``
    # still yields a right-sized plan, and pick the largest B' that keeps
    # the working set within budget.
    best: BlockingPlan | None = None
    tried: set[int] = set()
    for b in (width, width // 2, 8, 4, 2, 1):
        b = min(b, n_assigned)
        if b < 1 or b in tried:
            continue
        tried.add(b)
        # bytes(B') for the tile + input panels:
        #   tile: B*E*B' ; inputs: (B + B') * E * T
        per_target = (b * e + e * epoch_length) * dtype_bytes
        fixed = b * e * epoch_length * dtype_bytes
        max_targets = (budget - fixed) // per_target
        if max_targets < width:
            continue
        targets = min(int(max_targets) // width * width, n_voxels)
        if targets < 1:
            continue
        plan = BlockingPlan(
            voxel_block=b,
            target_block=targets,
            epoch_block=e,
        )
        if best is None or plan.target_block * plan.voxel_block > (
            best.target_block * best.voxel_block
        ):
            best = plan
    if best is None:
        # Cache too small for even one VPU-width run: degenerate plan,
        # clamped to the task like every other candidate.
        best = BlockingPlan(
            voxel_block=min(1, n_assigned),
            target_block=min(width, n_voxels),
            epoch_block=e,
        )
    if not autotune:
        return best

    key = plan_key(
        spec, epochs_per_subject, epoch_length, n_assigned, n_voxels, dtype_bytes
    )
    if cache is None:
        cache = default_plan_cache()
    cached = cache.get(key)
    if cached is not None:
        return cached
    if measure is None:

        def measure(plan: BlockingPlan) -> float:
            return _time_plan(
                plan, epochs_per_subject, epoch_length, n_assigned, n_voxels
            )

    winner = best
    winner_time = float("inf")
    for candidate in _candidate_plans(best, n_assigned):
        try:
            elapsed = measure(candidate)
        except Exception:
            continue
        if elapsed < winner_time:
            winner, winner_time = candidate, elapsed
    cache.put(key, winner)
    return winner
