"""Ground-truth task designs: simulated scans with planted connectivity.

The paper's premise is that task-condition information can live purely in
*correlation structure* — invisible to amplitude MVPA but recoverable by
FCMA.  This module grows :mod:`repro.data` a design-driven generator in
the spirit of the TMFC simulation pipelines (Wilson–Cowan oscillations +
co-activations + noise against a known ground-truth connectivity
matrix): experimental *designs* (block, event-related, jittered-ISI)
describe stimulus onsets/durations/ISIs, a canonical double-gamma HRF
turns stimulus trains into BOLD-shaped co-activations, and a
:class:`ConnectivityConfig` plants a symmetric task-modulated
connectivity matrix among a set of informative voxels.

Generative model (per subject)
------------------------------
* ``n_regions`` neural sources emit unit-variance Gaussian series; inside
  an epoch of condition ``c`` they are mixed through the Cholesky factor
  of the condition's planted covariance ``Sigma_c`` (oscillatory
  coupling), so which regions co-fluctuate is task-modulated while every
  marginal stays unit variance.  Rest periods mix through the identity.
* Informative voxels carry their region's series; the remaining voxels
  carry independent unit-variance noise — marginally indistinguishable.
* Co-activations: every condition's stimulus train (onsets/durations from
  the design) is convolved with the double-gamma HRF and added to *all*
  voxels with amplitude ``1/sf`` (TMFC's scaling factor
  ``SF = SD_oscill / SD_coact``; ``sf <= 0`` disables them).  The same
  spatial pattern responds in every condition, so co-activations raise
  correlations uniformly without carrying condition information.
* Additive white Gaussian observation noise at the target SNR
  (``SNR = SD_signal / SD_noise``; ``snr <= 0`` disables it).

Everything is deterministic given the config seed, and the output is the
ordinary :class:`~repro.data.dataset.FMRIDataset` /
:class:`~repro.data.epochs.EpochTable` pair, so every executor, emitter,
and analysis path consumes generated scenarios unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from .dataset import FMRIDataset
from .epochs import EpochTable

__all__ = [
    "ConnectivityConfig",
    "DESIGN_PRESETS",
    "DesignConfig",
    "GroundTruthConfig",
    "block_design",
    "convolve_hrf",
    "design_epoch_table",
    "design_ground_truth",
    "double_gamma_hrf",
    "event_design",
    "generate_design_dataset",
    "ground_truth_regions",
    "hrf_regressor",
    "jittered_design",
]

#: Fine-grid samples per TR used when rasterizing stimulus trains.
_OVERSAMPLE = 16


# ---------------------------------------------------------------------------
# Canonical double-gamma HRF
# ---------------------------------------------------------------------------


def _gamma_pdf(t: np.ndarray, shape: float, scale: float) -> np.ndarray:
    """Gamma density evaluated at ``t`` (vectorized, no scipy)."""
    t = np.maximum(t, 0.0)
    with np.errstate(divide="ignore", invalid="ignore"):
        log_pdf = (
            (shape - 1.0) * np.log(t)
            - t / scale
            - shape * math.log(scale)
            - math.lgamma(shape)
        )
    pdf = np.where(t > 0.0, np.exp(log_pdf), 0.0)
    return np.asarray(pdf, dtype=np.float64)


def double_gamma_hrf(
    dt_s: float,
    duration_s: float = 32.0,
    *,
    peak_delay_s: float = 6.0,
    undershoot_delay_s: float = 16.0,
    dispersion_s: float = 1.0,
    undershoot_ratio: float = 6.0,
) -> np.ndarray:
    """The canonical (SPM-style) double-gamma HRF sampled every ``dt_s``.

    A positive gamma peaking at ``peak_delay_s`` minus an undershoot
    gamma peaking at ``undershoot_delay_s``, scaled by
    ``1 / undershoot_ratio``; the result is normalized to peak 1 so the
    co-activation amplitude is controlled solely by the regressor scale.
    """
    if dt_s <= 0:
        raise ValueError("dt_s must be positive")
    if duration_s <= dt_s:
        raise ValueError("duration_s must exceed dt_s")
    t = np.arange(0.0, duration_s, dt_s, dtype=np.float64)
    peak = _gamma_pdf(t, peak_delay_s / dispersion_s, dispersion_s)
    undershoot = _gamma_pdf(t, undershoot_delay_s / dispersion_s, dispersion_s)
    hrf = peak - undershoot / undershoot_ratio
    top = float(np.max(np.abs(hrf)))
    if top == 0.0:
        raise ValueError("degenerate HRF (all zeros)")
    return hrf / top


def convolve_hrf(signal: np.ndarray, hrf: np.ndarray) -> np.ndarray:
    """Causal convolution of ``signal`` (time on the last axis) with ``hrf``.

    Returns the same shape as ``signal`` (the convolution tail past the
    scan end is discarded).
    """
    signal = np.asarray(signal, dtype=np.float64)
    hrf = np.asarray(hrf, dtype=np.float64)
    if hrf.ndim != 1 or hrf.size == 0:
        raise ValueError("hrf must be a non-empty 1D array")
    n = signal.shape[-1]
    flat = signal.reshape(-1, n)
    out = np.empty_like(flat)
    for i in range(flat.shape[0]):
        out[i] = np.convolve(flat[i], hrf)[:n]
    return out.reshape(signal.shape)


# ---------------------------------------------------------------------------
# Task designs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DesignConfig:
    """One experimental design: how epochs of interest tile the scan.

    Epoch placement reuses :meth:`repro.data.epochs.EpochTable.regular`
    (balanced conditions, ``gap`` rest TRs between epochs, optional
    shuffled order), so all downstream invariants — balance,
    non-overlap, subject grouping — hold by construction.  The design
    additionally carries the *within-epoch* stimulus timing (onsets,
    durations, inter-stimulus intervals) that shapes the HRF-convolved
    co-activation regressor.
    """

    kind: str
    #: Repetition time in seconds (the TMFC pipelines use 2 s).
    tr_s: float = 2.0
    #: Task TRs per epoch of interest (block duration / TR).
    epoch_length: int = 10
    #: Epochs per condition per subject.
    epochs_per_condition: int = 5
    n_conditions: int = 2
    #: Rest TRs between consecutive epochs.
    gap: int = 5
    #: Dummy TRs before the first epoch (discarded scanner warm-up).
    dummy_trs: int = 3
    #: Condition sequence: ``"alternating"`` or ``"shuffled"``.
    order: str = "alternating"
    #: Event kinds only: stimulus duration in seconds.
    event_duration_s: float = 1.0
    #: Event kinds only: mean inter-stimulus interval in seconds.
    isi_s: float = 6.0
    #: ``jittered`` only: ISIs are uniform in ``isi_s ± isi_jitter_s``.
    isi_jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in DESIGN_PRESETS:
            raise ValueError(
                f"unknown design kind {self.kind!r}; "
                f"choose from {sorted(DESIGN_PRESETS)}"
            )
        if self.tr_s <= 0:
            raise ValueError("tr_s must be positive")
        if self.epoch_length < 2:
            raise ValueError("epoch_length must be >= 2")
        if self.epochs_per_condition < 1:
            raise ValueError("epochs_per_condition must be >= 1")
        if self.n_conditions < 2:
            raise ValueError("n_conditions must be >= 2")
        if self.gap < 0 or self.dummy_trs < 0:
            raise ValueError("gap and dummy_trs must be >= 0")
        if self.order not in ("alternating", "shuffled"):
            raise ValueError(f"unknown order {self.order!r}")
        if self.kind in ("event", "jittered"):
            if self.event_duration_s <= 0:
                raise ValueError("event_duration_s must be positive")
            if self.isi_s <= 0:
                raise ValueError("isi_s must be positive")
            if self.isi_jitter_s < 0:
                raise ValueError("isi_jitter_s must be >= 0")
            if self.isi_jitter_s >= self.isi_s:
                raise ValueError("isi_jitter_s must be < isi_s")

    @property
    def epochs_per_subject(self) -> int:
        """Total epochs each subject contributes (balanced)."""
        return self.epochs_per_condition * self.n_conditions

    @property
    def epoch_duration_s(self) -> float:
        """Seconds spanned by one epoch of interest."""
        return self.epoch_length * self.tr_s

    @property
    def scan_trs(self) -> int:
        """TRs a subject's scan must contain (incl. a trailing rest)."""
        per_epoch = self.epoch_length + self.gap
        return self.dummy_trs + self.epochs_per_subject * per_epoch

    def scaled(self, **overrides: object) -> "DesignConfig":
        """Copy of this design with fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    def event_onsets(
        self, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Within-epoch stimulus onset times in seconds.

        Block designs stimulate the whole epoch (one onset at 0 s).
        Event designs place ``event_duration_s`` stimuli separated by
        the ISI grid; the ``jittered`` kind draws each ISI uniformly
        from ``isi_s ± isi_jitter_s`` (an ``rng`` is then required).
        """
        if self.kind == "block":
            return np.zeros(1, dtype=np.float64)
        onsets: list[float] = []
        t = 0.0
        while t + self.event_duration_s <= self.epoch_duration_s:
            onsets.append(t)
            isi = self.isi_s
            if self.kind == "jittered" and self.isi_jitter_s > 0:
                if rng is None:
                    raise ValueError("jittered onsets need an rng")
                isi = float(
                    rng.uniform(
                        self.isi_s - self.isi_jitter_s,
                        self.isi_s + self.isi_jitter_s,
                    )
                )
            t += self.event_duration_s + isi
        return np.asarray(onsets, dtype=np.float64)

    @property
    def event_duration_or_epoch_s(self) -> float:
        """Stimulus duration: the whole epoch for blocks, else the event."""
        if self.kind == "block":
            return self.epoch_duration_s
        return self.event_duration_s


def block_design(**overrides: object) -> DesignConfig:
    """The TMFC block preset, scaled: 2 s TR, 20 s task blocks."""
    cfg = DesignConfig(kind="block", epoch_length=10, gap=5,
                       order="alternating")
    return cfg.scaled(**overrides) if overrides else cfg


def event_design(**overrides: object) -> DesignConfig:
    """Event-related preset: 1 s events at a fixed 6 s mean ISI."""
    cfg = DesignConfig(kind="event", epoch_length=12, gap=4,
                       order="shuffled", event_duration_s=1.0, isi_s=6.0)
    return cfg.scaled(**overrides) if overrides else cfg


def jittered_design(**overrides: object) -> DesignConfig:
    """Jittered-ISI preset: 1 s events, ISI uniform in 4–8 s."""
    cfg = DesignConfig(kind="jittered", epoch_length=12, gap=4,
                       order="shuffled", event_duration_s=1.0, isi_s=6.0,
                       isi_jitter_s=2.0)
    return cfg.scaled(**overrides) if overrides else cfg


#: Factories by design kind (the ``--design`` CLI vocabulary).
DESIGN_PRESETS = {
    "block": block_design,
    "event": event_design,
    "jittered": jittered_design,
}


def design_epoch_table(
    design: DesignConfig, n_subjects: int, seed: int = 0
) -> EpochTable:
    """The design's balanced epoch table for ``n_subjects`` subjects."""
    return EpochTable.regular(
        n_subjects=n_subjects,
        epochs_per_subject=design.epochs_per_subject,
        epoch_length=design.epoch_length,
        gap=design.gap,
        n_conditions=design.n_conditions,
        start_offset=design.dummy_trs,
        order=design.order,
        seed=seed,
    )


def hrf_regressor(
    design: DesignConfig,
    epochs: EpochTable,
    subject: int,
    rng: np.random.Generator | None = None,
    hrf: np.ndarray | None = None,
) -> np.ndarray:
    """Per-condition HRF-convolved task regressors for one subject.

    Rasterizes every epoch's stimulus train (design onsets shifted to
    the epoch start) on a fine grid of ``_OVERSAMPLE`` samples per TR,
    convolves with the double-gamma HRF, and samples back at TR
    resolution.  Returns shape ``(n_conditions, scan_trs)`` where
    ``scan_trs`` covers the subject's epochs.
    """
    table = epochs.for_subject(subject)
    scan_trs = max(epochs.scan_length_required(subject), design.scan_trs)
    dt = design.tr_s / _OVERSAMPLE
    fine_len = scan_trs * _OVERSAMPLE
    if hrf is None:
        hrf = double_gamma_hrf(dt)
    fine = np.zeros((design.n_conditions, fine_len), dtype=np.float64)
    duration = design.event_duration_or_epoch_s
    for epoch in table:
        onsets = design.event_onsets(rng) + epoch.start * design.tr_s
        for onset in onsets:
            a = int(round(onset / dt))
            b = min(int(round((onset + duration) / dt)), fine_len)
            if a < b:
                fine[epoch.condition, a:b] = 1.0
    convolved = convolve_hrf(fine, hrf)
    return np.ascontiguousarray(convolved[:, ::_OVERSAMPLE])


# ---------------------------------------------------------------------------
# Planted connectivity
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConnectivityConfig:
    """The planted, task-modulated connectivity ground truth.

    Condition ``c`` couples regions at circular distance ``c + 1`` on a
    ring of ``n_regions`` sources with weight ``coupling`` — a symmetric
    matrix per condition, distinct across conditions, and positive
    definite for ``coupling < 0.5`` (circulant eigenvalues
    ``1 + 2 * coupling * cos(...) > 0``).
    """

    n_regions: int = 6
    #: Number of planted informative voxels (the ground-truth ROI).
    n_informative: int = 24
    #: Oscillatory coupling weight between task-linked regions, (0, 0.5).
    coupling: float = 0.45
    #: Target SNR = SD_signal / SD_noise; ``<= 0`` disables noise.
    snr: float = 2.0
    #: TMFC scaling factor SF = SD_oscill / SD_coact; ``<= 0`` disables
    #: co-activations.
    sf: float = 1.0

    def __post_init__(self) -> None:
        if self.n_regions < 2:
            raise ValueError("n_regions must be >= 2")
        if self.n_informative < self.n_regions:
            raise ValueError(
                "need at least one informative voxel per region "
                f"({self.n_informative} < {self.n_regions})"
            )
        if not 0.0 < self.coupling < 0.5:
            raise ValueError(
                "coupling must be in (0, 0.5) for a positive-definite "
                f"planted covariance, got {self.coupling}"
            )

    def scaled(self, **overrides: object) -> "ConnectivityConfig":
        """Copy of this config with fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    def max_conditions(self) -> int:
        """Conditions this ring supports with distinct coupling distances."""
        return self.n_regions // 2

    def ground_truth_matrix(self, condition: int) -> np.ndarray:
        """The condition's planted symmetric connectivity matrix.

        Shape ``(n_regions, n_regions)``: ones on the diagonal,
        ``coupling`` between regions at ring distance ``condition + 1``.
        """
        if not 0 <= condition < self.max_conditions():
            raise ValueError(
                f"condition {condition} out of range; this ring supports "
                f"{self.max_conditions()} distinct conditions"
            )
        n = self.n_regions
        idx = np.arange(n)
        dist = np.abs(idx[:, None] - idx[None, :])
        dist = np.minimum(dist, n - dist)
        sigma = np.where(dist == condition + 1, self.coupling, 0.0)
        np.fill_diagonal(sigma, 1.0)
        return sigma

    def mixing_factors(self, n_conditions: int) -> dict[int, np.ndarray]:
        """Cholesky factors of every condition's planted covariance."""
        return {
            c: np.linalg.cholesky(self.ground_truth_matrix(c))
            for c in range(n_conditions)
        }


# ---------------------------------------------------------------------------
# The generator
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GroundTruthConfig:
    """A complete simulated scenario: design × connectivity × geometry."""

    design: DesignConfig = field(default_factory=block_design)
    connectivity: ConnectivityConfig = field(
        default_factory=ConnectivityConfig
    )
    n_voxels: int = 96
    n_subjects: int = 4
    seed: int = 2015
    name: str = "ground-truth"

    def __post_init__(self) -> None:
        if self.n_voxels < 4:
            raise ValueError("n_voxels must be >= 4")
        if self.n_subjects < 1:
            raise ValueError("n_subjects must be >= 1")
        if self.connectivity.n_informative > self.n_voxels:
            raise ValueError("n_informative cannot exceed n_voxels")
        if self.design.n_conditions > self.connectivity.max_conditions():
            raise ValueError(
                f"{self.design.n_conditions} conditions need at least "
                f"{2 * self.design.n_conditions} regions on the ring, "
                f"got {self.connectivity.n_regions}"
            )

    def scaled(self, **overrides: object) -> "GroundTruthConfig":
        """Copy of this config with fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def design_ground_truth(cfg: GroundTruthConfig) -> np.ndarray:
    """Sorted flat indices of the planted informative voxels.

    A deterministic function of the config seed alone — the accuracy
    harness recovers the planted set without side-channel state, exactly
    like :func:`repro.data.synthetic.ground_truth_voxels`.
    """
    rng = np.random.default_rng(cfg.seed)
    chosen = rng.choice(
        cfg.n_voxels, size=cfg.connectivity.n_informative, replace=False
    )
    return np.asarray(np.sort(chosen), dtype=np.int64)


def ground_truth_regions(cfg: GroundTruthConfig) -> np.ndarray:
    """Region id of each planted voxel (aligned with the sorted set)."""
    n = cfg.connectivity.n_informative
    return np.arange(n, dtype=np.int64) % cfg.connectivity.n_regions


def generate_design_dataset(cfg: GroundTruthConfig) -> FMRIDataset:
    """Simulate the scenario into an :class:`FMRIDataset`.

    Seed-deterministic: per-subject randomness comes from spawned
    ``SeedSequence`` children of the config seed, so adding subjects
    never perturbs earlier subjects' data.
    """
    design = cfg.design
    conn = cfg.connectivity
    epochs = design_epoch_table(design, cfg.n_subjects, cfg.seed + 1)
    informative = design_ground_truth(cfg)
    regions = ground_truth_regions(cfg)
    factors = conn.mixing_factors(design.n_conditions)
    noninformative = np.setdiff1d(
        np.arange(cfg.n_voxels, dtype=np.int64), informative
    )

    scan_trs = max(epochs.scan_length_required(), design.scan_trs)
    hrf = double_gamma_hrf(design.tr_s / _OVERSAMPLE)
    children = np.random.SeedSequence(cfg.seed).spawn(cfg.n_subjects)

    data: dict[int, np.ndarray] = {}
    for subject in range(cfg.n_subjects):
        rng = np.random.default_rng(children[subject])
        # Oscillatory sources: unit-variance white series mixed through
        # the active condition's Cholesky factor inside each epoch
        # (identity mixing during rest) — the task-modulated coupling.
        eta = rng.standard_normal((conn.n_regions, scan_trs))
        sources = eta.copy()
        for epoch in epochs.for_subject(subject):
            window = epoch.as_slice()
            sources[:, window] = factors[epoch.condition] @ eta[:, window]

        bold = np.empty((cfg.n_voxels, scan_trs), dtype=np.float64)
        bold[informative] = sources[regions]
        bold[noninformative] = rng.standard_normal(
            (noninformative.size, scan_trs)
        )

        if conn.sf > 0.0:
            regressors = hrf_regressor(
                design, epochs, subject, rng=rng, hrf=hrf
            )
            coact = regressors.sum(axis=0)
            sd = float(coact.std())
            if sd > 0.0:
                bold += (coact / sd) / conn.sf

        if conn.snr > 0.0:
            signal_sd = float(bold[informative].std())
            bold += rng.standard_normal(bold.shape) * (signal_sd / conn.snr)

        data[subject] = bold.astype(np.float32)

    return FMRIDataset(data, epochs, name=cfg.name)
