"""fMRI data substrate: datasets, epochs, masks, synthesis, and I/O."""

from .dataset import FMRIDataset
from .epochs import Epoch, EpochTable
from .io import load_dataset, load_epochs, save_dataset, save_epochs
from .mask import BrainMask
from .nifti import (
    NiftiImage,
    accuracy_map_to_nifti,
    bold_from_nifti,
    read_nifti,
    write_nifti,
)
from .noise import (
    NoiseConfig,
    add_motion_spikes,
    add_physiological_noise,
    add_scanner_drift,
    corrupt_dataset,
)
from .preprocessing import (
    detrend,
    highpass_filter,
    preprocess_dataset,
    regress_nuisance,
    variance_normalize,
)
from .presets import (
    ATTENTION,
    FACE_SCENE,
    SPARSE_100K,
    DatasetSpec,
    attention_scaled,
    face_scene_scaled,
    quickstart_config,
    sparse_100k_config,
)
from .synthetic import SyntheticConfig, generate_dataset, ground_truth_voxels

__all__ = [
    "ATTENTION",
    "BrainMask",
    "DatasetSpec",
    "Epoch",
    "EpochTable",
    "FACE_SCENE",
    "FMRIDataset",
    "NiftiImage",
    "NoiseConfig",
    "SPARSE_100K",
    "SyntheticConfig",
    "accuracy_map_to_nifti",
    "add_motion_spikes",
    "add_physiological_noise",
    "add_scanner_drift",
    "attention_scaled",
    "bold_from_nifti",
    "corrupt_dataset",
    "detrend",
    "face_scene_scaled",
    "generate_dataset",
    "ground_truth_voxels",
    "highpass_filter",
    "load_dataset",
    "load_epochs",
    "preprocess_dataset",
    "quickstart_config",
    "read_nifti",
    "regress_nuisance",
    "save_dataset",
    "save_epochs",
    "sparse_100k_config",
    "variance_normalize",
    "write_nifti",
]
