"""Epoch tables: labeled time windows of an fMRI scan.

The paper's datasets (Section 5.1, Table 2) consist of continuous BOLD
time series in which *epochs of interest* are marked: contiguous runs of
time points during which the subject performed one of two task conditions
(e.g. viewing a face vs. a scene).  FCMA computes one full correlation
matrix per epoch and labels it with the epoch's condition.

This module provides :class:`Epoch` and :class:`EpochTable`, plus parsing
and serialization of the simple text format the paper's pipeline reads
("the text files specifying the labeled time epochs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Epoch", "EpochTable"]


@dataclass(frozen=True)
class Epoch:
    """One labeled time window of one subject's scan.

    Parameters
    ----------
    subject:
        Zero-based subject index the epoch belongs to.
    condition:
        Zero-based condition label (the paper uses two conditions).
    start:
        First time point (inclusive) of the epoch in the subject's scan.
    length:
        Number of time points in the epoch (the paper uses 12).
    """

    subject: int
    condition: int
    start: int
    length: int

    def __post_init__(self) -> None:
        if self.subject < 0:
            raise ValueError(f"subject must be >= 0, got {self.subject}")
        if self.condition < 0:
            raise ValueError(f"condition must be >= 0, got {self.condition}")
        if self.start < 0:
            raise ValueError(f"start must be >= 0, got {self.start}")
        if self.length < 2:
            raise ValueError(
                f"length must be >= 2 to define a correlation, got {self.length}"
            )

    @property
    def stop(self) -> int:
        """One past the last time point of the epoch."""
        return self.start + self.length

    def as_slice(self) -> slice:
        """The epoch's time window as a :class:`slice`."""
        return slice(self.start, self.stop)


class EpochTable:
    """An ordered collection of :class:`Epoch` records.

    The table is the ground truth that drives all three FCMA stages: the
    correlation stage iterates over epochs, the normalization stage groups
    a voxel's correlation vectors by subject, and the SVM stage uses the
    condition labels as classification targets and the subject ids for
    leave-one-subject-out cross-validation.
    """

    def __init__(self, epochs: Iterable[Epoch]):
        self._epochs: tuple[Epoch, ...] = tuple(epochs)
        if not self._epochs:
            raise ValueError("EpochTable requires at least one epoch")

    # -- basic container protocol -------------------------------------

    def __len__(self) -> int:
        return len(self._epochs)

    def __iter__(self) -> Iterator[Epoch]:
        return iter(self._epochs)

    def __getitem__(self, index: int) -> Epoch:
        return self._epochs[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EpochTable):
            return NotImplemented
        return self._epochs == other._epochs

    def __repr__(self) -> str:
        return (
            f"EpochTable(n_epochs={len(self)}, n_subjects={self.n_subjects}, "
            f"n_conditions={self.n_conditions})"
        )

    # -- derived properties -------------------------------------------

    @property
    def n_subjects(self) -> int:
        """Number of distinct subjects referenced by the table."""
        return len({e.subject for e in self._epochs})

    @property
    def n_conditions(self) -> int:
        """Number of distinct condition labels."""
        return len({e.condition for e in self._epochs})

    @property
    def epoch_length(self) -> int:
        """Common epoch length; raises if epochs have mixed lengths."""
        lengths = {e.length for e in self._epochs}
        if len(lengths) != 1:
            raise ValueError(f"epochs have mixed lengths: {sorted(lengths)}")
        return next(iter(lengths))

    def labels(self) -> np.ndarray:
        """Condition labels as an int array of shape (n_epochs,)."""
        return np.array([e.condition for e in self._epochs], dtype=np.int64)

    def subjects(self) -> np.ndarray:
        """Subject ids as an int array of shape (n_epochs,)."""
        return np.array([e.subject for e in self._epochs], dtype=np.int64)

    def subject_ids(self) -> list[int]:
        """Sorted list of distinct subject ids."""
        return sorted({e.subject for e in self._epochs})

    def epochs_per_subject(self) -> int:
        """Common number of epochs per subject; raises on imbalance.

        The within-subject z-scoring of stage 2 (Fig. 4) assumes every
        subject contributed the same number ``E`` of epochs.
        """
        counts = {
            s: sum(1 for e in self._epochs if e.subject == s)
            for s in self.subject_ids()
        }
        distinct = set(counts.values())
        if len(distinct) != 1:
            raise ValueError(f"subjects have unequal epoch counts: {counts}")
        return next(iter(distinct))

    def for_subject(self, subject: int) -> "EpochTable":
        """Sub-table containing only ``subject``'s epochs."""
        selected = [e for e in self._epochs if e.subject == subject]
        if not selected:
            raise KeyError(f"no epochs for subject {subject}")
        return EpochTable(selected)

    def without_subject(self, subject: int) -> "EpochTable":
        """Sub-table excluding ``subject``'s epochs (LOSO training set)."""
        selected = [e for e in self._epochs if e.subject != subject]
        if not selected:
            raise ValueError(f"removing subject {subject} leaves no epochs")
        return EpochTable(selected)

    def indices_for_subject(self, subject: int) -> np.ndarray:
        """Positions (row indices) of ``subject``'s epochs in this table."""
        idx = [i for i, e in enumerate(self._epochs) if e.subject == subject]
        return np.array(idx, dtype=np.int64)

    def grouped_by_subject(self) -> "EpochTable":
        """Reordered table: all of subject 0's epochs, then subject 1's, ...

        Stage 2 requires a voxel's correlation vectors to be contiguous per
        subject (the dashed partitions in Fig. 4); this produces that order
        while keeping each subject's epochs in their original relative order.
        """
        ordered: list[Epoch] = []
        for s in self.subject_ids():
            ordered.extend(e for e in self._epochs if e.subject == s)
        return EpochTable(ordered)

    def is_grouped_by_subject(self) -> bool:
        """True if epochs are already contiguous per subject."""
        seen: list[int] = []
        for e in self._epochs:
            if not seen or seen[-1] != e.subject:
                if e.subject in seen:
                    return False
                seen.append(e.subject)
        return True

    # -- construction helpers -----------------------------------------

    @classmethod
    def regular(
        cls,
        n_subjects: int,
        epochs_per_subject: int,
        epoch_length: int,
        gap: int = 0,
        n_conditions: int = 2,
        start_offset: int = 0,
        order: str = "alternating",
        seed: int = 0,
    ) -> "EpochTable":
        """Build a balanced block-design table.

        Each subject performs ``epochs_per_subject`` epochs of
        ``epoch_length`` time points with ``gap`` rest time points
        between consecutive epochs.  ``order`` controls the condition
        sequence:

        * ``"alternating"`` — 0, 1, ..., k-1, 0, 1, ... (simple block
          design);
        * ``"shuffled"`` — a per-subject random permutation of the same
          balanced multiset (avoids order/time confounds; deterministic
          given ``seed``).
        """
        if n_subjects < 1:
            raise ValueError("n_subjects must be >= 1")
        if epochs_per_subject < n_conditions:
            raise ValueError(
                "epochs_per_subject must be >= n_conditions for a balanced design"
            )
        if epochs_per_subject % n_conditions != 0:
            raise ValueError(
                "epochs_per_subject must be divisible by n_conditions "
                f"({epochs_per_subject} % {n_conditions} != 0)"
            )
        if gap < 0:
            raise ValueError("gap must be >= 0")
        if order not in ("alternating", "shuffled"):
            raise ValueError(f"unknown order {order!r}")
        rng = np.random.default_rng(seed)
        epochs = []
        for s in range(n_subjects):
            conditions = [k % n_conditions for k in range(epochs_per_subject)]
            if order == "shuffled":
                conditions = list(rng.permutation(conditions))
            t = start_offset
            for condition in conditions:
                epochs.append(
                    Epoch(
                        subject=s,
                        condition=int(condition),
                        start=t,
                        length=epoch_length,
                    )
                )
                t += epoch_length + gap
        return cls(epochs)

    # -- text format (paper-style epoch files) -------------------------

    def to_text(self) -> str:
        """Serialize to the line-oriented epoch file format.

        Format: one epoch per line, ``subject condition start length``,
        with ``#`` comments allowed.
        """
        lines = ["# subject condition start length"]
        lines.extend(
            f"{e.subject} {e.condition} {e.start} {e.length}" for e in self._epochs
        )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "EpochTable":
        """Parse the line-oriented epoch file format (see :meth:`to_text`)."""
        epochs = []
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 4:
                raise ValueError(
                    f"line {lineno}: expected 4 fields "
                    f"'subject condition start length', got {len(parts)}"
                )
            try:
                subject, condition, start, length = (int(p) for p in parts)
            except ValueError as exc:
                raise ValueError(f"line {lineno}: non-integer field") from exc
            epochs.append(Epoch(subject, condition, start, length))
        if not epochs:
            raise ValueError("epoch file contains no epochs")
        return cls(epochs)

    def scan_length_required(self, subject: int | None = None) -> int:
        """Minimum number of time points a scan must contain.

        If ``subject`` is given, only that subject's epochs are considered
        (per-subject scans); otherwise the max over all epochs is returned
        (shared time axis).
        """
        epochs: Sequence[Epoch] = self._epochs
        if subject is not None:
            epochs = [e for e in self._epochs if e.subject == subject]
            if not epochs:
                raise KeyError(f"no epochs for subject {subject}")
        return max(e.stop for e in epochs)
