"""Pre-FCMA time-series preprocessing.

The paper assumes data "preprocessed (e.g., corrected for head motion and
other noise sources)" before entering the pipeline.  This module supplies
the standard cleaning steps a user would otherwise get from an fMRI
package: linear/polynomial detrending, nuisance regression (motion-like
confound time courses), temporal high-pass filtering, and voxel-wise
variance normalization.  All operate on ``(n_voxels, n_timepoints)``
float32 arrays and are vectorized across voxels.
"""

from __future__ import annotations

import numpy as np

from .dataset import FMRIDataset

__all__ = [
    "detrend",
    "regress_nuisance",
    "highpass_filter",
    "variance_normalize",
    "preprocess_dataset",
]


def _check_bold(bold: np.ndarray) -> np.ndarray:
    bold = np.asarray(bold)
    if bold.ndim != 2:
        raise ValueError(f"BOLD array must be 2D (voxels, time), got {bold.shape}")
    if bold.shape[1] < 3:
        raise ValueError("need at least 3 time points")
    return np.ascontiguousarray(bold, dtype=np.float32)


def detrend(bold: np.ndarray, order: int = 1) -> np.ndarray:
    """Remove a polynomial trend of ``order`` from each voxel's series.

    ``order=0`` removes the mean only; ``order=1`` the linear drift, etc.
    Implemented as a single least-squares projection shared by all voxels
    (one ``lstsq`` on the common design matrix).
    """
    bold = _check_bold(bold)
    if order < 0:
        raise ValueError("order must be >= 0")
    n_time = bold.shape[1]
    if order >= n_time:
        raise ValueError(f"order {order} too high for {n_time} time points")
    t = np.linspace(-1.0, 1.0, n_time, dtype=np.float64)
    design = np.vander(t, order + 1, increasing=True)  # (T, order+1)
    coeffs, *_ = np.linalg.lstsq(design, bold.T.astype(np.float64), rcond=None)
    return (bold.T - design @ coeffs).T.astype(np.float32)


def regress_nuisance(bold: np.ndarray, confounds: np.ndarray) -> np.ndarray:
    """Regress confound time courses (e.g. motion parameters) out.

    ``confounds`` has shape ``(n_confounds, n_timepoints)``.  An intercept
    column is always included, so the output is mean-centered.
    """
    bold = _check_bold(bold)
    confounds = np.atleast_2d(np.asarray(confounds, dtype=np.float64))
    if confounds.shape[1] != bold.shape[1]:
        raise ValueError(
            f"confounds have {confounds.shape[1]} time points, "
            f"BOLD has {bold.shape[1]}"
        )
    n_time = bold.shape[1]
    design = np.column_stack([np.ones(n_time), confounds.T])
    coeffs, *_ = np.linalg.lstsq(design, bold.T.astype(np.float64), rcond=None)
    return (bold.T - design @ coeffs).T.astype(np.float32)


def highpass_filter(bold: np.ndarray, cutoff_cycles: int = 3) -> np.ndarray:
    """Discrete-cosine high-pass: removes the ``cutoff_cycles`` slowest
    DCT components (plus the mean), the standard fMRI drift filter.
    """
    bold = _check_bold(bold)
    if cutoff_cycles < 0:
        raise ValueError("cutoff_cycles must be >= 0")
    n_time = bold.shape[1]
    k = min(cutoff_cycles + 1, n_time)
    t = np.arange(n_time, dtype=np.float64)
    basis = np.cos(
        np.pi * np.outer(t + 0.5, np.arange(k)) / n_time
    )  # (T, k), includes DC column
    # Orthonormalize so projection is a simple matmul pair.
    q, _ = np.linalg.qr(basis)
    lowpass = (bold.astype(np.float64) @ q) @ q.T
    return (bold - lowpass).astype(np.float32)


def variance_normalize(bold: np.ndarray, eps: float = 1e-8) -> np.ndarray:
    """Scale each voxel's series to unit variance (mean preserved at 0
    only if already centered).  Constant voxels are left at zero after
    centering rather than dividing by ~0.
    """
    bold = _check_bold(bold)
    centered = bold - bold.mean(axis=1, keepdims=True)
    std = centered.std(axis=1, keepdims=True)
    out = np.where(std > eps, centered / np.maximum(std, eps), 0.0)
    return out.astype(np.float32)


def preprocess_dataset(
    dataset: FMRIDataset,
    detrend_order: int = 1,
    highpass_cycles: int = 0,
    normalize: bool = False,
) -> FMRIDataset:
    """Apply the standard cleaning chain to every subject.

    Order: detrend -> optional high-pass -> optional variance
    normalization.  Epoch labels and mask are preserved.
    """
    processed = {}
    for subject in dataset.subject_ids():
        bold = dataset.subject_data(subject)
        bold = detrend(bold, order=detrend_order)
        if highpass_cycles > 0:
            bold = highpass_filter(bold, cutoff_cycles=highpass_cycles)
        if normalize:
            bold = variance_normalize(bold)
        processed[subject] = bold
    return FMRIDataset(
        processed, dataset.epochs, mask=dataset.mask, name=dataset.name
    )
