"""The fMRI dataset model consumed by FCMA.

An :class:`FMRIDataset` bundles per-subject BOLD time series with the
:class:`~repro.data.epochs.EpochTable` that labels the epochs of interest.
All numeric data is stored in single precision, matching the paper
("All floating point values are represented in single precision").
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .epochs import Epoch, EpochTable
from .mask import BrainMask

__all__ = ["FMRIDataset"]


class FMRIDataset:
    """Multi-subject fMRI data with labeled epochs.

    Parameters
    ----------
    data:
        Mapping from subject id to that subject's BOLD array of shape
        ``(n_voxels, n_timepoints)``.  All subjects must share the same
        number of voxels (same brain-space registration, as the paper's
        cross-subject classification requires).
    epochs:
        Epoch table referencing only subjects present in ``data`` and
        time windows that fit inside each subject's scan.
    mask:
        Optional 3D brain mask whose voxel count matches ``n_voxels``.
    name:
        Optional human-readable dataset name (e.g. ``"face-scene"``).
    """

    def __init__(
        self,
        data: Mapping[int, np.ndarray],
        epochs: EpochTable,
        mask: BrainMask | None = None,
        name: str = "unnamed",
    ):
        if not data:
            raise ValueError("dataset requires at least one subject")
        converted: dict[int, np.ndarray] = {}
        n_voxels: int | None = None
        for subject, arr in data.items():
            arr = np.ascontiguousarray(arr, dtype=np.float32)
            if arr.ndim != 2:
                raise ValueError(
                    f"subject {subject}: data must be 2D (voxels, time), "
                    f"got shape {arr.shape}"
                )
            if n_voxels is None:
                n_voxels = arr.shape[0]
            elif arr.shape[0] != n_voxels:
                raise ValueError(
                    f"subject {subject}: voxel count {arr.shape[0]} differs "
                    f"from {n_voxels}"
                )
            converted[int(subject)] = arr
        assert n_voxels is not None

        for e in epochs:
            if e.subject not in converted:
                raise ValueError(f"epoch references unknown subject {e.subject}")
            scan_len = converted[e.subject].shape[1]
            if e.stop > scan_len:
                raise ValueError(
                    f"epoch {e} exceeds subject {e.subject}'s scan length "
                    f"{scan_len}"
                )
        if mask is not None and mask.n_voxels != n_voxels:
            raise ValueError(
                f"mask selects {mask.n_voxels} voxels but data has {n_voxels}"
            )

        self._data = converted
        self._epochs = epochs
        self._mask = mask
        self._name = name
        self._n_voxels = n_voxels

    # -- accessors ------------------------------------------------------

    @property
    def name(self) -> str:
        """Dataset name."""
        return self._name

    @property
    def n_voxels(self) -> int:
        """Number of voxels shared by all subjects."""
        return self._n_voxels

    @property
    def n_epochs(self) -> int:
        """Total number of labeled epochs across subjects."""
        return len(self._epochs)

    @property
    def n_subjects(self) -> int:
        """Number of subjects with data."""
        return len(self._data)

    @property
    def epochs(self) -> EpochTable:
        """The epoch table."""
        return self._epochs

    @property
    def mask(self) -> BrainMask | None:
        """Optional brain mask."""
        return self._mask

    @property
    def epoch_length(self) -> int:
        """Common epoch length (time points per epoch)."""
        return self._epochs.epoch_length

    def subject_data(self, subject: int) -> np.ndarray:
        """The ``(n_voxels, n_timepoints)`` float32 array for a subject."""
        try:
            return self._data[subject]
        except KeyError:
            raise KeyError(f"no data for subject {subject}") from None

    def subject_ids(self) -> list[int]:
        """Sorted subject ids."""
        return sorted(self._data)

    def epoch_matrix(self, epoch: Epoch) -> np.ndarray:
        """Raw BOLD window for one epoch: shape ``(n_voxels, length)``."""
        return self._data[epoch.subject][:, epoch.as_slice()]

    def epoch_stack(self, epochs: Sequence[Epoch] | None = None) -> np.ndarray:
        """Raw BOLD windows stacked: shape ``(n_epochs, n_voxels, length)``.

        Requires uniform epoch length.  This is the input of FCMA stage 1
        (before the equation-2 normalization applied in
        :mod:`repro.core.correlation`).
        """
        table = list(self._epochs) if epochs is None else list(epochs)
        length = {e.length for e in table}
        if len(length) != 1:
            raise ValueError("epoch_stack requires uniform epoch length")
        out = np.empty(
            (len(table), self._n_voxels, next(iter(length))), dtype=np.float32
        )
        for i, e in enumerate(table):
            out[i] = self.epoch_matrix(e)
        return out

    # -- restriction / reordering ----------------------------------------

    def subset_subjects(self, subjects: Sequence[int]) -> "FMRIDataset":
        """New dataset restricted to ``subjects`` (order-preserving ids).

        Used by leave-one-subject-out cross-validation in the offline
        analysis: the training dataset is the full set minus one subject.
        """
        subjects = list(subjects)
        missing = [s for s in subjects if s not in self._data]
        if missing:
            raise KeyError(f"no data for subjects {missing}")
        keep = set(subjects)
        epochs = EpochTable([e for e in self._epochs if e.subject in keep])
        data = {s: self._data[s] for s in subjects}
        return FMRIDataset(data, epochs, mask=self._mask, name=self._name)

    def single_subject(self, subject: int) -> "FMRIDataset":
        """New dataset containing only ``subject`` (online-analysis input)."""
        return self.subset_subjects([subject])

    def grouped_by_subject(self) -> "FMRIDataset":
        """Dataset with the epoch table reordered subject-contiguously."""
        return FMRIDataset(
            self._data,
            self._epochs.grouped_by_subject(),
            mask=self._mask,
            name=self._name,
        )

    # -- summary ----------------------------------------------------------

    def nbytes(self) -> int:
        """Total bytes of BOLD data across subjects."""
        return sum(arr.nbytes for arr in self._data.values())

    def __repr__(self) -> str:
        return (
            f"FMRIDataset(name={self._name!r}, n_voxels={self._n_voxels}, "
            f"n_subjects={self.n_subjects}, n_epochs={self.n_epochs}, "
            f"epoch_length={self._epochs.epoch_length})"
        )
