"""Dataset presets mirroring the paper's Table 2.

Two kinds of objects live here:

* :class:`DatasetSpec` — the pure *geometry* of a dataset (voxels,
  subjects, epochs, epoch length).  The performance models in
  :mod:`repro.perf` and the cluster simulator consume geometry only, so
  they run at full paper scale (34,470 voxels) without materializing data.
* Scaled synthetic configs — runnable stand-ins preserving the datasets'
  shape ratios at a size where the numeric pipeline finishes in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from .synthetic import SyntheticConfig

__all__ = [
    "DatasetSpec",
    "FACE_SCENE",
    "ATTENTION",
    "SPARSE_100K",
    "face_scene_scaled",
    "attention_scaled",
    "quickstart_config",
    "sparse_100k_config",
]


@dataclass(frozen=True)
class DatasetSpec:
    """Geometry of an fMRI dataset (paper Table 2)."""

    name: str
    n_voxels: int
    n_subjects: int
    n_epochs: int
    epoch_length: int
    n_conditions: int = 2

    def __post_init__(self) -> None:
        if self.n_epochs % self.n_subjects != 0:
            raise ValueError(
                f"{self.name}: n_epochs {self.n_epochs} not divisible by "
                f"n_subjects {self.n_subjects}"
            )

    @property
    def epochs_per_subject(self) -> int:
        """Epochs contributed by each subject (``E`` in Fig. 4)."""
        return self.n_epochs // self.n_subjects

    @property
    def training_epochs_loso(self) -> int:
        """Epochs in a leave-one-subject-out training set.

        E.g. face-scene: 216 epochs, 18 subjects -> 204 training samples,
        the ``M = 204`` of the paper's Section 5.4.2 syrk shapes.
        """
        return self.n_epochs - self.epochs_per_subject

    def bold_bytes(self, dtype_bytes: int = 4, duty_cycle: float = 1.0) -> int:
        """Approximate bytes of BOLD data (epoch windows only by default)."""
        return int(
            self.n_voxels
            * self.n_epochs
            * self.epoch_length
            * dtype_bytes
            / max(duty_cycle, 1e-9)
        )

    def correlation_bytes(self, n_assigned: int, dtype_bytes: int = 4) -> int:
        """Bytes of correlation vectors for ``n_assigned`` voxels' task."""
        return n_assigned * self.n_epochs * self.n_voxels * dtype_bytes


#: The *face-scene* dataset of Table 2: 18 subjects passively viewing
#: face or scene images.
FACE_SCENE = DatasetSpec(
    name="face-scene",
    n_voxels=34_470,
    n_subjects=18,
    n_epochs=216,
    epoch_length=12,
)

#: The *attention* dataset of Table 2: 30 subjects attending left/right.
ATTENTION = DatasetSpec(
    name="attention",
    n_voxels=25_260,
    n_subjects=30,
    n_epochs=540,
    epoch_length=12,
)


#: Stress geometry for the sparse stage-1/2 backend: ~3x the voxel count
#: of face-scene, few subjects so the dense correlation buffer (V*E*N
#: float32 = 9.6 GB at E=24) cannot fit in a 2 GB budget while the 1%
#: sparse output (~1 GB CSR at top-k 1000) can.
SPARSE_100K = DatasetSpec(
    name="sparse-100k",
    n_voxels=100_000,
    n_subjects=3,
    n_epochs=24,
    epoch_length=12,
)


def face_scene_scaled(
    n_voxels: int = 1200, n_subjects: int = 6, seed: int = 2015
) -> SyntheticConfig:
    """face-scene surrogate: 12 epochs/subject, epoch length 12.

    Keeps the per-subject epoch count and epoch length of the real
    dataset while shrinking voxels/subjects so the full nested
    cross-validation runs quickly.
    """
    return SyntheticConfig(
        n_voxels=n_voxels,
        n_subjects=n_subjects,
        epochs_per_subject=FACE_SCENE.epochs_per_subject,
        epoch_length=FACE_SCENE.epoch_length,
        n_informative=max(20, n_voxels // 25),
        n_groups=4,
        seed=seed,
        name="face-scene-scaled",
    )


def attention_scaled(
    n_voxels: int = 900, n_subjects: int = 8, seed: int = 2016
) -> SyntheticConfig:
    """attention surrogate: 18 epochs/subject, epoch length 12."""
    return SyntheticConfig(
        n_voxels=n_voxels,
        n_subjects=n_subjects,
        epochs_per_subject=ATTENTION.epochs_per_subject,
        epoch_length=ATTENTION.epoch_length,
        n_informative=max(20, n_voxels // 25),
        n_groups=4,
        seed=seed,
        name="attention-scaled",
    )


def sparse_100k_config(
    n_voxels: int = SPARSE_100K.n_voxels, seed: int = 2026
) -> SyntheticConfig:
    """sparse-100k at full geometry: the <2 GB RSS target of the sparse
    stage-1/2 backend (BENCH_sparse) materializes this preset.

    Only stage 1/2 is meant to run at this size; the nested
    cross-validation would be prohibitively slow on all 100k voxels.
    """
    return SyntheticConfig(
        n_voxels=n_voxels,
        n_subjects=SPARSE_100K.n_subjects,
        epochs_per_subject=SPARSE_100K.epochs_per_subject,
        epoch_length=SPARSE_100K.epoch_length,
        n_informative=max(20, min(n_voxels // 25, 400)),
        n_groups=4,
        seed=seed,
        name="sparse-100k",
    )


def quickstart_config(seed: int = 7) -> SyntheticConfig:
    """Tiny config for examples and smoke tests (runs in ~a second)."""
    return SyntheticConfig(
        n_voxels=300,
        n_subjects=4,
        epochs_per_subject=8,
        epoch_length=12,
        n_informative=24,
        n_groups=3,
        seed=seed,
        name="quickstart",
    )
