"""Brain masks: mapping between 3D voxel grids and flat voxel indices.

fMRI scanners produce 3D volumes; FCMA operates on the flat list of
in-brain voxels.  :class:`BrainMask` records which grid cells are inside
the brain and converts between the two representations, so ROI results
(top voxels) can be mapped back to 3D coordinates.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BrainMask"]


class BrainMask:
    """A boolean 3D mask selecting in-brain voxels.

    Parameters
    ----------
    mask:
        Boolean array of shape ``(nx, ny, nz)``; ``True`` marks in-brain
        voxels.  The flat voxel ordering used everywhere else in the
        library is the C-order traversal of the ``True`` cells.
    """

    def __init__(self, mask: np.ndarray):
        mask = np.asarray(mask)
        if mask.ndim != 3:
            raise ValueError(f"mask must be 3D, got shape {mask.shape}")
        if mask.dtype != np.bool_:
            if not np.isin(mask, (0, 1)).all():
                raise ValueError("mask values must be boolean or 0/1")
            mask = mask.astype(bool)
        if not mask.any():
            raise ValueError("mask selects no voxels")
        self._mask = mask
        self._flat_to_grid = np.argwhere(mask)  # (n_voxels, 3)
        grid_to_flat = np.full(mask.shape, -1, dtype=np.int64)
        grid_to_flat[mask] = np.arange(self.n_voxels)
        self._grid_to_flat = grid_to_flat

    @property
    def shape(self) -> tuple[int, int, int]:
        """Grid dimensions ``(nx, ny, nz)``."""
        return self._mask.shape  # type: ignore[return-value]

    @property
    def n_voxels(self) -> int:
        """Number of in-brain voxels."""
        return int(self._mask.sum())

    @property
    def array(self) -> np.ndarray:
        """Read-only view of the boolean mask array."""
        view = self._mask.view()
        view.flags.writeable = False
        return view

    def coordinates(self, flat_indices: np.ndarray | None = None) -> np.ndarray:
        """3D grid coordinates for flat voxel indices.

        Returns an ``(n, 3)`` int array.  With no argument, coordinates of
        all in-brain voxels in flat order.
        """
        if flat_indices is None:
            return self._flat_to_grid.copy()
        flat_indices = np.asarray(flat_indices, dtype=np.int64)
        if flat_indices.size and (
            flat_indices.min() < 0 or flat_indices.max() >= self.n_voxels
        ):
            raise IndexError("flat voxel index out of range")
        return self._flat_to_grid[flat_indices]

    def flat_index(self, coords: np.ndarray) -> np.ndarray:
        """Flat voxel indices for ``(n, 3)`` grid coordinates.

        Raises ``ValueError`` if any coordinate is outside the brain.
        """
        coords = np.atleast_2d(np.asarray(coords, dtype=np.int64))
        if coords.shape[1] != 3:
            raise ValueError("coords must have shape (n, 3)")
        flat = self._grid_to_flat[coords[:, 0], coords[:, 1], coords[:, 2]]
        if (flat < 0).any():
            raise ValueError("coordinate outside the brain mask")
        return flat

    def unflatten(self, values: np.ndarray, fill: float = np.nan) -> np.ndarray:
        """Scatter per-voxel values back onto the 3D grid.

        Out-of-brain cells receive ``fill``.  Useful for writing accuracy
        maps back into volume space.
        """
        values = np.asarray(values)
        if values.shape[0] != self.n_voxels:
            raise ValueError(
                f"expected {self.n_voxels} values, got {values.shape[0]}"
            )
        volume = np.full(self.shape + values.shape[1:], fill, dtype=np.result_type(values, type(fill)))
        volume[self._mask] = values
        return volume

    @classmethod
    def full(cls, shape: tuple[int, int, int]) -> "BrainMask":
        """Mask selecting every cell of the grid."""
        return cls(np.ones(shape, dtype=bool))

    @classmethod
    def ellipsoid(cls, shape: tuple[int, int, int]) -> "BrainMask":
        """Brain-like ellipsoidal mask inscribed in the grid.

        A crude stand-in for a real anatomical mask: selects cells within
        the ellipsoid inscribed in the bounding box, which yields roughly
        the ~52% fill factor typical of brain masks in scanner volumes.
        """
        nx, ny, nz = shape
        x = (np.arange(nx) - (nx - 1) / 2) / max(nx / 2, 1e-9)
        y = (np.arange(ny) - (ny - 1) / 2) / max(ny / 2, 1e-9)
        z = (np.arange(nz) - (nz - 1) / 2) / max(nz / 2, 1e-9)
        r2 = (
            x[:, None, None] ** 2
            + y[None, :, None] ** 2
            + z[None, None, :] ** 2
        )
        return cls(r2 <= 1.0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BrainMask):
            return NotImplemented
        return self.shape == other.shape and bool(
            (self._mask == other._mask).all()
        )

    def __repr__(self) -> str:
        return f"BrainMask(shape={self.shape}, n_voxels={self.n_voxels})"
