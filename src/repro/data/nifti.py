"""Minimal pure-numpy NIfTI-1 I/O.

Real fMRI data arrives as NIfTI volumes; this module reads and writes
the single-file (``.nii``) NIfTI-1 format without external dependencies
so the pipeline can ingest scanner exports and emit accuracy maps that
neuroimaging viewers open directly.

Scope: single-file NIfTI-1, uncompressed, float32/float64/int16/uint8
data, 3D or 4D, with the affine stored in the s-form.  That covers the
interchange need of this library; it is not a general neuroimaging IO
layer.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .mask import BrainMask

__all__ = [
    "NiftiImage",
    "accuracy_map_to_nifti",
    "bold_from_nifti",
    "read_nifti",
    "write_nifti",
]

_HEADER_SIZE = 348
_MAGIC = b"n+1\x00"

#: NIfTI datatype codes we support: code -> numpy dtype.
_DTYPES = {
    2: np.dtype(np.uint8),
    4: np.dtype(np.int16),
    16: np.dtype(np.float32),
    64: np.dtype(np.float64),
}
_CODES = {v: k for k, v in _DTYPES.items()}


@dataclass(frozen=True)
class NiftiImage:
    """A loaded NIfTI volume."""

    #: Image data, shape (nx, ny, nz) or (nx, ny, nz, nt).
    data: np.ndarray
    #: 4x4 voxel-to-world affine (s-form).
    affine: np.ndarray
    #: Voxel dimensions (mm) and TR (s) as stored in pixdim[1:5].
    pixdim: tuple[float, float, float, float]

    @property
    def is_4d(self) -> bool:
        """True for time-series images."""
        return self.data.ndim == 4

    @property
    def tr_seconds(self) -> float:
        """Repetition time (pixdim[4]); 0 for 3D images."""
        return self.pixdim[3]


def write_nifti(
    path: str | os.PathLike,
    data: np.ndarray,
    affine: np.ndarray | None = None,
    voxel_size_mm: tuple[float, float, float] = (3.0, 3.0, 3.0),
    tr_seconds: float = 0.0,
) -> Path:
    """Write a 3D/4D array as a single-file NIfTI-1 image.

    The affine defaults to a scaling by ``voxel_size_mm`` centered at
    the origin.  Returns the written path (suffix ``.nii`` enforced).
    """
    data = np.asarray(data)
    if data.ndim not in (3, 4):
        raise ValueError(f"data must be 3D or 4D, got shape {data.shape}")
    if data.dtype not in _CODES:
        if np.issubdtype(data.dtype, np.floating):
            data = data.astype(np.float32)
        elif np.issubdtype(data.dtype, np.integer):
            data = data.astype(np.int16)
        else:
            raise TypeError(f"unsupported dtype {data.dtype}")
    if affine is None:
        affine = np.diag([*voxel_size_mm, 1.0])
    affine = np.asarray(affine, dtype=np.float64)
    if affine.shape != (4, 4):
        raise ValueError("affine must be 4x4")

    path = Path(path)
    if path.suffix != ".nii":
        path = path.with_suffix(path.suffix + ".nii")

    dim = np.ones(8, dtype=np.int16)
    dim[0] = data.ndim
    dim[1 : 1 + data.ndim] = data.shape
    pixdim = np.zeros(8, dtype=np.float32)
    pixdim[1:4] = voxel_size_mm
    pixdim[4] = tr_seconds

    header = bytearray(_HEADER_SIZE)
    struct.pack_into("<i", header, 0, _HEADER_SIZE)      # sizeof_hdr
    struct.pack_into("<8h", header, 40, *dim)            # dim
    struct.pack_into("<h", header, 70, _CODES[data.dtype])  # datatype
    struct.pack_into("<h", header, 72, data.dtype.itemsize * 8)  # bitpix
    struct.pack_into("<8f", header, 76, *pixdim)         # pixdim
    struct.pack_into("<f", header, 108, 352.0)           # vox_offset
    struct.pack_into("<f", header, 112, 1.0)             # scl_slope
    struct.pack_into("<f", header, 116, 0.0)             # scl_inter
    struct.pack_into("<h", header, 254, 1)               # sform_code
    struct.pack_into("<4f", header, 280, *affine[0])     # srow_x
    struct.pack_into("<4f", header, 296, *affine[1])     # srow_y
    struct.pack_into("<4f", header, 312, *affine[2])     # srow_z
    header[344:348] = _MAGIC

    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(header)
        fh.write(b"\x00" * 4)  # extension flag
        # NIfTI data is Fortran-ordered on disk.
        fh.write(np.asfortranarray(data).tobytes(order="F"))
    return path


def read_nifti(path: str | os.PathLike) -> NiftiImage:
    """Read a single-file NIfTI-1 image written by this module (or any
    conforming uncompressed ``.nii`` with a supported datatype)."""
    raw = Path(path).read_bytes()
    if len(raw) < _HEADER_SIZE + 4:
        raise ValueError("file too small to be a NIfTI-1 image")
    (sizeof_hdr,) = struct.unpack_from("<i", raw, 0)
    if sizeof_hdr != _HEADER_SIZE:
        raise ValueError(
            f"bad sizeof_hdr {sizeof_hdr} (big-endian or non-NIfTI file?)"
        )
    if raw[344:348] not in (_MAGIC, b"ni1\x00"):
        raise ValueError("missing NIfTI magic")

    dim = struct.unpack_from("<8h", raw, 40)
    ndim = dim[0]
    if ndim not in (3, 4):
        raise ValueError(f"unsupported dimensionality {ndim}")
    shape = tuple(int(d) for d in dim[1 : 1 + ndim])
    (datatype,) = struct.unpack_from("<h", raw, 70)
    if datatype not in _DTYPES:
        raise ValueError(f"unsupported NIfTI datatype code {datatype}")
    dtype = _DTYPES[datatype]
    pixdim = struct.unpack_from("<8f", raw, 76)
    (vox_offset,) = struct.unpack_from("<f", raw, 108)
    (slope,) = struct.unpack_from("<f", raw, 112)
    (inter,) = struct.unpack_from("<f", raw, 116)

    offset = int(vox_offset)
    count = int(np.prod(shape))
    data = np.frombuffer(
        raw, dtype=dtype, count=count, offset=offset
    ).reshape(shape, order="F").copy()
    if slope not in (0.0, 1.0) or inter != 0.0:
        data = data.astype(np.float32) * (slope or 1.0) + inter

    affine = np.eye(4)
    (sform_code,) = struct.unpack_from("<h", raw, 254)
    if sform_code > 0:
        affine[0] = struct.unpack_from("<4f", raw, 280)
        affine[1] = struct.unpack_from("<4f", raw, 296)
        affine[2] = struct.unpack_from("<4f", raw, 312)
    else:
        affine = np.diag([pixdim[1] or 1.0, pixdim[2] or 1.0, pixdim[3] or 1.0, 1.0])

    return NiftiImage(
        data=data,
        affine=affine,
        pixdim=(
            float(pixdim[1]), float(pixdim[2]), float(pixdim[3]), float(pixdim[4])
        ),
    )


def bold_from_nifti(image: NiftiImage, mask: BrainMask) -> np.ndarray:
    """Extract the masked BOLD matrix ``(n_voxels, n_timepoints)``.

    The flat voxel order matches :class:`~repro.data.mask.BrainMask`'s
    (C-order traversal of in-brain cells), so the output feeds directly
    into :class:`~repro.data.dataset.FMRIDataset`.
    """
    if not image.is_4d:
        raise ValueError("BOLD extraction needs a 4D image")
    if image.data.shape[:3] != mask.shape:
        raise ValueError(
            f"image grid {image.data.shape[:3]} != mask grid {mask.shape}"
        )
    return np.ascontiguousarray(
        image.data[mask.array], dtype=np.float32
    )


def accuracy_map_to_nifti(
    path: str | os.PathLike,
    mask: BrainMask,
    voxels: np.ndarray,
    accuracies: np.ndarray,
    affine: np.ndarray | None = None,
) -> Path:
    """Write per-voxel accuracies as a 3D NIfTI overlay.

    Unselected voxels get 0 (viewers threshold at > 0), out-of-brain
    cells get 0 as well.
    """
    values = np.zeros(mask.n_voxels, dtype=np.float32)
    values[np.asarray(voxels, dtype=np.int64)] = np.asarray(
        accuracies, dtype=np.float32
    )
    volume = mask.unflatten(values, fill=0.0).astype(np.float32)
    return write_nifti(path, volume, affine=affine)

