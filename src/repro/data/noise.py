"""Realistic fMRI noise sources and artifact injection.

The paper's pipeline assumes data "corrected for head motion and other
noise sources"; this module provides the noise a raw scan actually
contains so the preprocessing chain has something real to remove and
robustness can be tested: low-frequency scanner drift, physiological
oscillations (cardiac/respiratory aliases), motion spikes, and thermal
noise scaling.

All functions take and return ``(n_voxels, n_timepoints)`` float32
arrays and are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import FMRIDataset

__all__ = [
    "NoiseConfig",
    "add_scanner_drift",
    "add_physiological_noise",
    "add_motion_spikes",
    "corrupt_dataset",
]


@dataclass(frozen=True)
class NoiseConfig:
    """Amplitudes of the injected noise sources (0 disables a source)."""

    #: Peak amplitude of the slow polynomial drift.
    drift: float = 0.5
    #: Amplitude of the physiological oscillations.
    physio: float = 0.3
    #: Amplitude of motion spikes (added to whole volumes).
    motion: float = 1.0
    #: Expected number of motion spikes per 100 time points.
    motion_rate: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.drift, self.physio, self.motion, self.motion_rate) < 0:
            raise ValueError("noise amplitudes must be >= 0")


def _check(bold: np.ndarray) -> np.ndarray:
    bold = np.asarray(bold)
    if bold.ndim != 2:
        raise ValueError(f"BOLD array must be 2D, got shape {bold.shape}")
    return bold.astype(np.float32, copy=True)


def add_scanner_drift(
    bold: np.ndarray, amplitude: float = 0.5, seed: int = 0
) -> np.ndarray:
    """Add a per-voxel slow quadratic drift (scanner heating).

    Each voxel gets its own random linear + quadratic trend with peak
    magnitude ~``amplitude``.
    """
    bold = _check(bold)
    if amplitude == 0.0:
        return bold
    rng = np.random.default_rng(seed)
    n_vox, n_t = bold.shape
    t = np.linspace(-1.0, 1.0, n_t, dtype=np.float32)
    lin = rng.uniform(-1, 1, size=(n_vox, 1)).astype(np.float32)
    quad = rng.uniform(-1, 1, size=(n_vox, 1)).astype(np.float32)
    bold += amplitude * (lin * t + quad * (t * t - 1.0 / 3.0))
    return bold


def add_physiological_noise(
    bold: np.ndarray,
    amplitude: float = 0.3,
    tr_seconds: float = 1.5,
    cardiac_hz: float = 1.1,
    respiratory_hz: float = 0.25,
    seed: int = 0,
) -> np.ndarray:
    """Add aliased cardiac + respiratory oscillations.

    Both rhythms are global signals with per-voxel random gain (vascular
    density varies across the brain) and per-run random phase; sampling
    at TR aliases the cardiac rhythm exactly as in a real scan.
    """
    bold = _check(bold)
    if amplitude == 0.0:
        return bold
    rng = np.random.default_rng(seed)
    n_vox, n_t = bold.shape
    t = np.arange(n_t, dtype=np.float32) * tr_seconds
    for hz, scale in ((cardiac_hz, 0.6), (respiratory_hz, 1.0)):
        phase = rng.uniform(0, 2 * np.pi)
        wave = np.sin(2 * np.pi * hz * t + phase).astype(np.float32)
        gain = rng.uniform(0.2, 1.0, size=(n_vox, 1)).astype(np.float32)
        bold += amplitude * scale * gain * wave
    return bold


def add_motion_spikes(
    bold: np.ndarray,
    amplitude: float = 1.0,
    rate_per_100: float = 2.0,
    seed: int = 0,
) -> np.ndarray:
    """Add sudden whole-volume displacements (head motion).

    A spike shifts every voxel at one time point by a voxel-specific
    offset (a rigid displacement moves each voxel into a neighbour with
    a different baseline), decaying over the next volume.
    """
    bold = _check(bold)
    if amplitude == 0.0 or rate_per_100 == 0.0:
        return bold
    rng = np.random.default_rng(seed)
    n_vox, n_t = bold.shape
    n_spikes = rng.poisson(rate_per_100 * n_t / 100.0)
    if n_spikes == 0:
        return bold
    times = rng.choice(n_t, size=min(n_spikes, n_t), replace=False)
    for t in times:
        offset = amplitude * rng.standard_normal((n_vox,)).astype(np.float32)
        bold[:, t] += offset
        if t + 1 < n_t:
            bold[:, t + 1] += 0.4 * offset
    return bold


def corrupt_dataset(
    dataset: FMRIDataset, config: NoiseConfig = NoiseConfig()
) -> FMRIDataset:
    """Inject the full noise stack into every subject's scan.

    Seeds derive from ``config.seed`` and the subject id, so corruption
    is deterministic and per-subject independent.
    """
    corrupted = {}
    for subject in dataset.subject_ids():
        bold = dataset.subject_data(subject)
        seed = config.seed * 1000 + subject
        bold = add_scanner_drift(bold, config.drift, seed=seed)
        bold = add_physiological_noise(bold, config.physio, seed=seed + 1)
        bold = add_motion_spikes(
            bold, config.motion, config.motion_rate, seed=seed + 2
        )
        corrupted[subject] = bold
    return FMRIDataset(
        corrupted, dataset.epochs, mask=dataset.mask, name=dataset.name
    )
