"""Dataset persistence: .npz round-trip and epoch text files.

The paper's pipeline "reads in the preprocessed fMRI data ... and the
text files specifying the labeled time epochs".  We persist datasets as a
single ``.npz`` archive (one array per subject plus the epoch table and
optional mask) and support the standalone epoch text format of
:meth:`repro.data.epochs.EpochTable.to_text`.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from .dataset import FMRIDataset
from .epochs import Epoch, EpochTable
from .mask import BrainMask

__all__ = ["save_dataset", "load_dataset", "save_epochs", "load_epochs"]

_FORMAT_VERSION = 1


def save_dataset(dataset: FMRIDataset, path: str | os.PathLike) -> Path:
    """Write a dataset to a ``.npz`` archive; returns the written path."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    arrays: dict[str, np.ndarray] = {
        "format_version": np.array(_FORMAT_VERSION, dtype=np.int64),
        "name": np.array(dataset.name),
        "subjects": np.array(dataset.subject_ids(), dtype=np.int64),
        "epoch_records": np.array(
            [
                (e.subject, e.condition, e.start, e.length)
                for e in dataset.epochs
            ],
            dtype=np.int64,
        ),
    }
    for subject in dataset.subject_ids():
        arrays[f"bold_{subject}"] = dataset.subject_data(subject)
    if dataset.mask is not None:
        arrays["mask"] = dataset.mask.array
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_dataset(path: str | os.PathLike) -> FMRIDataset:
    """Load a dataset written by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {version}; "
                f"this build reads version {_FORMAT_VERSION}"
            )
        name = str(archive["name"])
        subjects = archive["subjects"].tolist()
        records = archive["epoch_records"]
        epochs = EpochTable(
            Epoch(int(s), int(c), int(t0), int(n)) for s, c, t0, n in records
        )
        data = {s: archive[f"bold_{s}"] for s in subjects}
        mask = BrainMask(archive["mask"]) if "mask" in archive else None
    return FMRIDataset(data, epochs, mask=mask, name=name)


def save_epochs(epochs: EpochTable, path: str | os.PathLike) -> Path:
    """Write an epoch table in the paper-style text format."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(epochs.to_text())
    return path


def load_epochs(path: str | os.PathLike) -> EpochTable:
    """Read an epoch table written by :func:`save_epochs`."""
    return EpochTable.from_text(Path(path).read_text())
