"""Synthetic fMRI data with condition-dependent correlation structure.

The paper evaluates on two private datasets (*face-scene*, *attention*).
We cannot obtain them, so this module generates surrogates that exercise
the identical code path: multi-subject BOLD series in which a planted set
of *informative* voxels changes its correlation structure — but not its
mean amplitude — between task conditions.  FCMA's premise is exactly that
such voxels are invisible to amplitude-based MVPA but detectable from the
full correlation matrix, so a correct pipeline must rank the planted
voxels at the top.

Mechanism
---------
Informative voxels are split into ``n_groups`` groups.  Each condition
has its own assignment of voxels to groups (a condition-specific
permutation), and during an epoch all voxels in a group share a fresh
zero-mean latent time series.  Hence *which* voxels co-fluctuate depends
on the condition while every voxel's marginal distribution is condition
independent.  Non-informative voxels carry noise plus an optional global
signal (which correlates everything equally and is therefore
uninformative).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from .dataset import FMRIDataset
from .epochs import EpochTable
from .mask import BrainMask

__all__ = ["SyntheticConfig", "generate_dataset", "ground_truth_voxels"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of the synthetic fMRI generator.

    Defaults give a laptop-scale dataset on which the full pipeline runs
    in seconds; :mod:`repro.data.presets` provides paper-geometry and
    scaled variants.
    """

    n_voxels: int = 1000
    n_subjects: int = 6
    epochs_per_subject: int = 12
    epoch_length: int = 12
    n_conditions: int = 2
    #: Number of planted informative voxels (ground truth ROI size).
    n_informative: int = 40
    #: Groups the informative voxels are split into per condition.
    n_groups: int = 4
    #: Amplitude of the shared group latent relative to unit noise.
    signal_strength: float = 1.2
    #: Std-dev of per-voxel observation noise.
    noise: float = 1.0
    #: Amplitude of a global signal shared by *all* voxels (uninformative).
    global_signal: float = 0.2
    #: AR(1) coefficient of the background drift, 0 disables it.
    ar_coeff: float = 0.3
    #: Rest time points between consecutive epochs.
    gap: int = 4
    #: Condition sequence per subject: "alternating" (block design) or
    #: "shuffled" (randomized balanced order, avoiding time confounds).
    condition_order: str = "alternating"
    seed: int = 2015
    name: str = "synthetic"
    #: Optional 3D grid; if set, a BrainMask is attached and must select
    #: exactly ``n_voxels`` cells.
    grid: tuple[int, int, int] | None = None

    def __post_init__(self) -> None:
        if self.n_voxels < 4:
            raise ValueError("n_voxels must be >= 4")
        if self.n_informative > self.n_voxels:
            raise ValueError("n_informative cannot exceed n_voxels")
        if self.n_informative < self.n_groups * 2:
            raise ValueError(
                "need at least 2 informative voxels per group "
                f"({self.n_informative} < {2 * self.n_groups})"
            )
        if self.n_conditions < 2:
            raise ValueError("n_conditions must be >= 2")
        if self.epochs_per_subject % self.n_conditions != 0:
            raise ValueError(
                "epochs_per_subject must be divisible by n_conditions"
            )
        if not 0.0 <= self.ar_coeff < 1.0:
            raise ValueError("ar_coeff must be in [0, 1)")
        if self.condition_order not in ("alternating", "shuffled"):
            raise ValueError(
                f"unknown condition_order {self.condition_order!r}"
            )
        if self.noise <= 0.0:
            raise ValueError("noise must be > 0")

    def scaled(self, **overrides: object) -> "SyntheticConfig":
        """Copy of this config with fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]


def _group_assignment(
    cfg: SyntheticConfig, condition: int, rng: np.random.Generator
) -> np.ndarray:
    """Condition-specific mapping informative-voxel -> group id.

    Condition 0 uses the identity block partition; each further condition
    uses a deterministic rotation so that group membership is maximally
    reshuffled between conditions (voxels that were grouped together in
    condition 0 are spread over all groups in condition 1).
    """
    n = cfg.n_informative
    base = np.arange(n) * cfg.n_groups // n  # contiguous blocks
    if condition == 0:
        return base
    # Rotating by `condition` within position strides scatters each block.
    return (base + np.arange(n) * condition) % cfg.n_groups


def ground_truth_voxels(cfg: SyntheticConfig) -> np.ndarray:
    """Flat indices of the planted informative voxels.

    The informative set is a deterministic function of the config seed so
    that analysis results can be validated without carrying side-channel
    state.
    """
    rng = np.random.default_rng(cfg.seed)
    return np.sort(
        rng.choice(cfg.n_voxels, size=cfg.n_informative, replace=False)
    )


def _ar1(
    rng: np.random.Generator, shape: tuple[int, ...], coeff: float
) -> np.ndarray:
    """AR(1) noise along the last axis with unit marginal variance."""
    white = rng.standard_normal(shape).astype(np.float32)
    if coeff == 0.0:
        return white
    out = np.empty_like(white)
    out[..., 0] = white[..., 0]
    scale = np.float32(np.sqrt(1.0 - coeff * coeff))
    for t in range(1, shape[-1]):
        out[..., t] = coeff * out[..., t - 1] + scale * white[..., t]
    return out


def generate_dataset(cfg: SyntheticConfig) -> FMRIDataset:
    """Generate a synthetic :class:`~repro.data.dataset.FMRIDataset`.

    The returned dataset's epoch table is subject-grouped and balanced
    (``epochs_per_subject`` alternating conditions with ``cfg.gap`` rest
    time points in between), matching the experimental designs in the
    paper's Table 2.
    """
    rng = np.random.default_rng(cfg.seed)
    informative = ground_truth_voxels(cfg)
    assignments = {
        c: _group_assignment(cfg, c, rng) for c in range(cfg.n_conditions)
    }

    epochs = EpochTable.regular(
        n_subjects=cfg.n_subjects,
        epochs_per_subject=cfg.epochs_per_subject,
        epoch_length=cfg.epoch_length,
        gap=cfg.gap,
        n_conditions=cfg.n_conditions,
        order=cfg.condition_order,
        seed=cfg.seed + 1,
    )
    scan_len = epochs.scan_length_required()

    data: dict[int, np.ndarray] = {}
    for subject in range(cfg.n_subjects):
        bold = cfg.noise * _ar1(
            rng, (cfg.n_voxels, scan_len), cfg.ar_coeff
        )
        if cfg.global_signal > 0.0:
            bold += cfg.global_signal * _ar1(
                rng, (1, scan_len), cfg.ar_coeff
            )
        for epoch in epochs.for_subject(subject):
            groups = assignments[epoch.condition]
            latents = rng.standard_normal(
                (cfg.n_groups, epoch.length)
            ).astype(np.float32)
            window = bold[:, epoch.as_slice()]
            window[informative] += cfg.signal_strength * latents[groups]
        data[subject] = bold

    mask = None
    if cfg.grid is not None:
        mask = BrainMask.full(cfg.grid)
        if mask.n_voxels != cfg.n_voxels:
            raise ValueError(
                f"grid {cfg.grid} has {mask.n_voxels} cells, "
                f"expected n_voxels={cfg.n_voxels}"
            )
    return FMRIDataset(data, epochs, mask=mask, name=cfg.name)
