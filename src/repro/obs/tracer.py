"""The span tracer: hierarchical, thread-safe, clock-injectable.

One :class:`Tracer` records every span of a run.  Open/close nesting is
tracked per thread (the master-worker executor's ranks may share one
tracer), finished spans accumulate in one id-ordered list, and the
clock is injected so tests can drive a deterministic fake clock.

Entering a span also installs the tracer as the *ambient* tracer of the
current execution context (:mod:`repro.obs.runtime`), which is how deep
kernels — the SMO solvers, the batched correlation engine — attach
child spans without threading a tracer through every signature.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Mapping

from . import runtime
from .metrics import validate_metric
from .span import Span, SpanNode, build_tree

__all__ = ["Tracer", "SpanHandle"]


class SpanHandle:
    """Context manager for one live span.

    ``with tracer.span("correlate", kind="stage") as span:`` yields the
    underlying :class:`~repro.obs.span.Span` (or a detached throwaway
    span when the tracer is disabled — callers can attach metrics
    unconditionally).  On exit the span is closed, its ``wall_seconds``
    metric is set from the clock, and nesting state is restored.
    """

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token: Any = None

    def __enter__(self) -> Span:
        if self._tracer.enabled:
            self._tracer._push(self._span)
            self._token = runtime._install(self._tracer)
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        span = self._span
        span.t1 = self._tracer.clock()
        span.metrics.setdefault("wall_seconds", span.duration)
        span.metrics.setdefault("calls", 1.0)
        if self._tracer.enabled:
            runtime._uninstall(self._token)
            self._tracer._pop(span)
            self._tracer._notify(span)


class Tracer:
    """Records a single run's span tree.

    Parameters
    ----------
    clock:
        Monotonic seconds source (default ``time.perf_counter``).
        Inject a fake for deterministic tests.
    enabled:
        When ``False`` the tracer is a near-free stub: :meth:`span`
        still times (callers may read ``Span.duration``) but nothing is
        recorded.  This is the overhead-measurement baseline.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        *,
        enabled: bool = True,
    ) -> None:
        self.clock = clock
        self.enabled = enabled
        self._spans: list[Span] = []
        self._next_id = 0
        self._lock = threading.Lock()
        self._local = threading.local()
        self._listeners: list[Callable[[Span], None]] = []

    # -- close listeners ---------------------------------------------------

    def add_listener(self, listener: Callable[[Span], None]) -> None:
        """Register a callback fired on every locally closed span.

        Listeners are the dual-write seam of the live telemetry plane
        (:mod:`repro.obs.live`) and the incremental trace writer: they
        fire when a ``with``-managed span exits and when :meth:`record`
        appends a synthetic span, but **not** for spans folded in via
        :meth:`merge` — merged worker exports were already observed (or
        counted) where they closed, and re-notifying here would double
        count them.  Callbacks run on the closing thread and must be
        fast and thread-safe.
        """
        with self._lock:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[Span], None]) -> None:
        """Unregister a close listener (no-op if absent)."""
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def _notify(self, span: Span) -> None:
        if not self._listeners:
            return
        with self._lock:
            listeners = tuple(self._listeners)
        for listener in listeners:
            listener(span)

    # -- nesting bookkeeping ---------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current(self) -> Span | None:
        """The innermost span open on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def open_kinds(self) -> set[str]:
        """Kinds of the spans open on the calling thread."""
        return {span.kind for span in self._stack()}

    # -- recording -------------------------------------------------------

    def span(
        self,
        name: str,
        kind: str = "kernel",
        attrs: Mapping[str, Any] | None = None,
    ) -> SpanHandle:
        """Open a span as a context manager (see :class:`SpanHandle`)."""
        t0 = self.clock()
        if not self.enabled:
            detached = Span(span_id=-1, name=name, kind=kind, t0=t0)
            return SpanHandle(self, detached)
        parent = self.current()
        with self._lock:
            span = Span(
                span_id=self._next_id,
                name=name,
                kind=kind,
                t0=t0,
                parent_id=None if parent is None else parent.span_id,
                thread=threading.get_ident() & 0xFFFF,
                attrs=dict(attrs) if attrs else {},
            )
            self._next_id += 1
            self._spans.append(span)
        return SpanHandle(self, span)

    def record(
        self,
        name: str,
        kind: str = "counter",
        seconds: float = 0.0,
        metrics: Mapping[str, float] | None = None,
        attrs: Mapping[str, Any] | None = None,
    ) -> Span | None:
        """Append an already-measured (synthetic, zero-width) span.

        This is how externally timed quantities — legacy ``add_time``
        charges, merged worker exports, simulated schedules — enter the
        trace without a live ``with`` block.  Returns the span, or
        ``None`` when the tracer is disabled.
        """
        if seconds < 0:
            raise ValueError("seconds must be >= 0")
        if not self.enabled:
            return None
        now = self.clock()
        parent = self.current()
        resolved = {"wall_seconds": float(seconds), "calls": 1.0}
        if metrics:
            resolved.update(
                {name_: validate_metric(name_, v) for name_, v in metrics.items()}
            )
        with self._lock:
            span = Span(
                span_id=self._next_id,
                name=name,
                kind=kind,
                t0=now,
                t1=now,
                parent_id=None if parent is None else parent.span_id,
                thread=threading.get_ident() & 0xFFFF,
                metrics=resolved,
                attrs=dict(attrs) if attrs else {},
            )
            self._next_id += 1
            self._spans.append(span)
        self._notify(span)
        return span

    def add_metric(self, name: str, value: float) -> bool:
        """Accumulate a metric onto the innermost open span.

        Returns ``False`` (and records nothing) when no span is open or
        the tracer is disabled — callers need not guard.
        """
        if not self.enabled:
            return False
        span = self.current()
        if span is None:
            return False
        span.add_metric(name, value)
        return True

    # -- reading ---------------------------------------------------------

    def spans(self) -> list[Span]:
        """All recorded spans in id (start) order; a shallow copy."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def tree(self) -> list[SpanNode]:
        """The trace as root :class:`~repro.obs.span.SpanNode` trees."""
        return build_tree(self.spans())

    def aggregate(self, kind: str | None = None) -> dict[str, dict[str, float]]:
        """Metric sums grouped by span name (optionally one kind only).

        Every metric is summed across the matching spans; ``calls``
        defaults to 1 per span so the result doubles as a call count.
        """
        out: dict[str, dict[str, float]] = {}
        for span in self.spans():
            if kind is not None and span.kind != kind:
                continue
            bucket = out.setdefault(span.name, {})
            metrics = span.metrics if span.metrics else {"calls": 1.0}
            for mname, value in metrics.items():
                bucket[mname] = bucket.get(mname, 0.0) + value
            bucket.setdefault("calls", 1.0)
        return out

    # -- merging ---------------------------------------------------------

    def export(self) -> list[dict[str, Any]]:
        """Picklable span records (the worker → master payload)."""
        return [span.to_dict() for span in self.spans()]

    def merge(
        self,
        spans: "Iterable[Mapping[str, Any] | Span] | Tracer",
        reroot: bool = True,
    ) -> int:
        """Fold foreign spans (another tracer, or exported records) in.

        Incoming spans are re-identified into this tracer's id space
        with their internal parent links preserved; incoming *roots*
        are attached under the calling thread's innermost open span
        (``reroot=True``) so worker traces nest under the run span they
        are merged into.  Returns the number of spans merged.
        """
        if isinstance(spans, Tracer):
            spans = spans.spans()
        incoming = [
            s if isinstance(s, Span) else Span.from_dict(s) for s in spans
        ]
        if not self.enabled or not incoming:
            return 0
        incoming.sort(key=lambda s: s.span_id)
        anchor = self.current() if reroot else None
        with self._lock:
            id_map: dict[int, int] = {}
            for span in incoming:
                id_map[span.span_id] = self._next_id
                self._next_id += 1
            known = set(id_map)
            for span in incoming:
                if span.parent_id is not None and span.parent_id in known:
                    parent_id: int | None = id_map[span.parent_id]
                elif anchor is not None:
                    parent_id = anchor.span_id
                else:
                    parent_id = None
                self._spans.append(
                    Span(
                        span_id=id_map[span.span_id],
                        name=span.name,
                        kind=span.kind,
                        t0=span.t0,
                        t1=span.t1,
                        parent_id=parent_id,
                        thread=span.thread,
                        metrics=dict(span.metrics),
                        attrs=dict(span.attrs),
                    )
                )
        return len(incoming)
