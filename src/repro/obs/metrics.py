"""The typed metric vocabulary spans may carry.

Every metric attached to a :class:`~repro.obs.span.Span` is a float
keyed by a name from this registry.  The fixed vocabulary covers the
paper's evaluation quantities (wall time, memory references / bytes
moved, cache hits and misses, simulated cycles) plus pipeline progress
counts (tasks, voxels, tiles, solver iterations); two open namespaces
extend it without registration:

* ``pc.<field>`` — a :class:`~repro.hw.counters.PerfCounters` field
  (the paper's Table-1 vocabulary) attributed to the span;
* ``ctr.<name>`` — a free-form run counter (plan-cache hits, ...)
  mirrored from :meth:`repro.exec.context.RunContext.increment`;
* ``acc.<scenario>.<metric>`` — ground-truth accuracy scores from the
  scenario harness (:mod:`repro.eval.scenarios`): deterministic
  retrieval metrics (``roc_auc``, ``average_precision``,
  ``top_k_hit_rate``) plus a timing-classified ``wall_seconds``.

Exporters and the regression harness rely on :func:`is_timing_metric`
to know which metrics are wall-clock-dependent (and therefore excluded
from cross-executor trace equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MetricSpec",
    "METRICS",
    "WALL_SECONDS",
    "SIM_CYCLES",
    "CACHE_HITS",
    "CACHE_MISSES",
    "BYTES_MOVED",
    "TASKS",
    "VOXELS",
    "TILES",
    "TILES_PRUNED",
    "ROWS",
    "COLS",
    "NNZ",
    "ELEMENTS",
    "DENSITY",
    "VOXEL_SWEEP",
    "TARGET_BLOCK",
    "ITERATIONS",
    "TRS",
    "CALLS",
    "PREDICTED_SECONDS",
    "PREDICTED_GFLOPS",
    "COMM_FETCH_WAIT",
    "OVERLAP_HIDDEN_SECONDS",
    "is_known_metric",
    "is_timing_metric",
    "validate_metric",
]


@dataclass(frozen=True)
class MetricSpec:
    """One registered metric: its key, unit, and meaning."""

    name: str
    unit: str
    description: str
    #: Wall-clock-dependent metrics differ between two otherwise
    #: identical runs; structural trace comparison ignores them.
    timing: bool = False


#: Wall-clock seconds spent inside the span (set automatically on close).
WALL_SECONDS = MetricSpec(
    "wall_seconds", "s", "wall-clock seconds inside the span", timing=True
)
#: Simulated processor cycles (cache-model or cluster-simulator output).
SIM_CYCLES = MetricSpec("sim_cycles", "cycles", "simulated processor cycles")
#: Simulated cache hits attributed to the span.
CACHE_HITS = MetricSpec("cache_hits", "count", "simulated cache hits")
#: Simulated cache misses attributed to the span.
CACHE_MISSES = MetricSpec("cache_misses", "count", "simulated cache misses")
#: Bytes read plus written by the span's kernel(s).
BYTES_MOVED = MetricSpec("bytes_moved", "bytes", "bytes read + written")
#: Pipeline tasks completed inside the span.
TASKS = MetricSpec("tasks", "count", "pipeline tasks processed")
#: Assigned voxels processed inside the span.
VOXELS = MetricSpec("voxels", "count", "assigned voxels processed")
#: Stage-1/2 tiles (normalization sweeps) processed.
TILES = MetricSpec("tiles", "count", "stage-1/2 tiles processed")
#: Sparse stage-1/2 tiles whose filter kept nothing.
TILES_PRUNED = MetricSpec(
    "tiles_pruned", "count", "sparse tiles with no surviving entries"
)
#: Row extent of a 2-D correlation tile (owner panel's voxel count).
ROWS = MetricSpec("rows", "count", "row extent of a 2-D tile")
#: Column extent of a 2-D correlation tile.
COLS = MetricSpec("cols", "count", "column extent of a 2-D tile")
#: Stored entries of a sparse kernel's output (CSR nnz).
NNZ = MetricSpec("nnz", "count", "stored (non-pruned) output entries")
#: Dense elements the kernel scanned to produce its output.
ELEMENTS = MetricSpec("elements", "count", "dense elements scanned")
#: Kept fraction nnz / elements, in [0, 1].
DENSITY = MetricSpec("density", "fraction", "kept fraction of dense output")
#: Voxel-slab width of the sparse tile loop (``BlockingPlan.voxel_block``).
VOXEL_SWEEP = MetricSpec("voxel_sweep", "voxels", "sparse tile slab width")
#: Target-column width of the sparse tile loop.
TARGET_BLOCK = MetricSpec("target_block", "voxels", "sparse tile column width")
#: Solver (SMO) working-set iterations performed.
ITERATIONS = MetricSpec("iterations", "count", "solver iterations")
#: TR volumes folded into a streaming kernel span (the incremental
#: engine's epoch length / update count).
TRS = MetricSpec("trs", "count", "TR volumes processed by the span")
#: Times the spanned operation ran (aggregation weight for merged spans).
CALLS = MetricSpec("calls", "count", "number of calls aggregated")
#: Model-predicted elapsed seconds for the spanned kernel (attached by
#: the performance observatory, :mod:`repro.obs.perf`).  Deterministic
#: given geometry + machine spec, so *not* a timing metric: two enriched
#: runs of the same pipeline must predict identically.
PREDICTED_SECONDS = MetricSpec(
    "predicted_seconds", "s", "model-predicted elapsed seconds"
)
#: Model-predicted GFLOPS at the predicted time (same provenance).
PREDICTED_GFLOPS = MetricSpec(
    "predicted_gflops", "GFLOPS", "model-predicted achieved GFLOPS"
)
#: Exposed (non-overlapped) seconds a tiled worker waited for its next
#: work item (the prefetch-overlap instrumentation's residual).  Pure
#: wall clock, so excluded from cross-executor trace equivalence.
COMM_FETCH_WAIT = MetricSpec(
    "comm.fetch_wait", "s", "exposed wait for the next work item",
    timing=True,
)
#: Seconds of fetch latency hidden behind compute by prefetching.
#: Recorded through :meth:`repro.exec.context.RunContext.increment`, so
#: the metric name carries the counter-namespace ``ctr.`` prefix; the
#: explicit registration (rather than open-namespace fallback) is what
#: classifies it as a timing metric.
OVERLAP_HIDDEN_SECONDS = MetricSpec(
    "ctr.overlap_hidden_seconds", "s",
    "fetch latency hidden behind compute by prefetch overlap",
    timing=True,
)

#: The closed part of the vocabulary, keyed by metric name.
METRICS: dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        WALL_SECONDS,
        SIM_CYCLES,
        CACHE_HITS,
        CACHE_MISSES,
        BYTES_MOVED,
        TASKS,
        VOXELS,
        TILES,
        TILES_PRUNED,
        ROWS,
        COLS,
        NNZ,
        ELEMENTS,
        DENSITY,
        VOXEL_SWEEP,
        TARGET_BLOCK,
        ITERATIONS,
        TRS,
        CALLS,
        PREDICTED_SECONDS,
        PREDICTED_GFLOPS,
        COMM_FETCH_WAIT,
        OVERLAP_HIDDEN_SECONDS,
    )
}

#: Open namespaces: ``pc.`` (PerfCounters fields), ``ctr.`` (run
#: counters), ``acc.`` (scenario accuracy scores).
_OPEN_PREFIXES = ("pc.", "ctr.", "acc.")


def is_known_metric(name: str) -> bool:
    """Whether ``name`` is registered or in an open namespace."""
    return name in METRICS or name.startswith(_OPEN_PREFIXES)


def is_timing_metric(name: str) -> bool:
    """Whether the metric is wall-clock-dependent (see :class:`MetricSpec`)."""
    spec = METRICS.get(name)
    return spec.timing if spec is not None else False


def validate_metric(name: str, value: float) -> float:
    """Check a metric assignment; returns the value as ``float``.

    Raises ``ValueError`` for unknown names (outside both the registry
    and the open namespaces) and non-finite values — catching typos at
    the recording site instead of at export time.
    """
    if not is_known_metric(name):
        raise ValueError(
            f"unknown metric {name!r}; register it in repro.obs.metrics or "
            f"use the pc./ctr. namespaces"
        )
    value = float(value)
    if value != value or value in (float("inf"), float("-inf")):
        raise ValueError(f"metric {name!r} must be finite, got {value!r}")
    return value
