"""Trace exporters and loaders.

Three interchange forms, all lossless for span structure and metrics:

* **JSON-lines** (:func:`write_jsonl` / :func:`read_jsonl`) — the native
  on-disk form: a meta header line then one span record per line, so
  traces stream and concatenate.
* **Chrome ``trace_event``** (:func:`to_chrome_trace` /
  :func:`from_chrome_trace`) — loads in ``chrome://tracing`` / Perfetto;
  span identity and exact float timestamps ride in each event's
  ``args`` so a round trip reproduces the tree exactly.
* **Flat metrics table** (:func:`metrics_table` /
  :func:`format_metrics_table`) — per-(kind, name) metric sums, the
  paper-figure-style per-stage breakdown.

:func:`spans_from_cluster_trace` bridges the discrete-event cluster
simulator: a simulated schedule becomes a span tree (one worker per
``tid``) exportable to the same formats as a measured run.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping, TextIO

from .span import Span, SpanNode, build_tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cluster.trace import ClusterTrace

__all__ = [
    "SCHEMA",
    "IncrementalJsonlWriter",
    "write_jsonl",
    "read_jsonl",
    "to_chrome_trace",
    "from_chrome_trace",
    "metrics_table",
    "format_metrics_table",
    "render_tree",
    "spans_from_cluster_trace",
]

#: Schema tag written into every export; bump on breaking changes.
SCHEMA = "repro.obs/v1"


# -- JSON lines -----------------------------------------------------------


def write_jsonl(
    spans: Iterable[Span], target: str | Path | TextIO
) -> int:
    """Write spans as JSON-lines (meta header + one record per line).

    ``target`` may be a path or an open text stream.  Returns the
    number of span records written.
    """
    records = [span.to_dict() for span in spans]
    header = {"type": "meta", "schema": SCHEMA, "n_spans": len(records)}

    def _emit(fh: TextIO) -> None:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for record in records:
            fh.write(
                json.dumps({"type": "span", **record}, sort_keys=True) + "\n"
            )

    if isinstance(target, (str, Path)):
        with open(target, "w") as fh:
            _emit(fh)
    else:
        _emit(target)
    return len(records)


def read_jsonl(source: str | Path | TextIO) -> list[Span]:
    """Load spans from a JSON-lines export.

    Unknown record types are skipped (forward compatibility); a schema
    mismatch in the meta header raises ``ValueError``.  An undecodable
    *final* line is tolerated — an incrementally appended trace from a
    process that died mid-write still loads as its valid prefix.  A
    decode error anywhere earlier is real corruption and raises.
    """
    if isinstance(source, (str, Path)):
        text = Path(source).read_text()
    else:
        text = source.read()
    lines = text.splitlines()
    spans: list[Span] = []
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines):
                break
            raise
        rtype = record.get("type")
        if rtype == "meta":
            if record.get("schema") != SCHEMA:
                raise ValueError(
                    f"line {lineno}: unsupported trace schema "
                    f"{record.get('schema')!r} (expected {SCHEMA!r})"
                )
        elif rtype == "span":
            spans.append(Span.from_dict(record))
    return spans


class IncrementalJsonlWriter:
    """Crash-durable JSON-lines trace writer: append-on-close, flush-per-span.

    Attach :meth:`on_span_close` as a tracer listener
    (``tracer.add_listener(writer.on_span_close)``) and every span is
    appended — and flushed to the OS — the moment it closes, so a run
    killed midway leaves a valid trace prefix on disk instead of
    nothing.  The meta header carries ``"incremental": true`` and no
    span count (the count is unknowable up front); :func:`read_jsonl`
    loads such files unchanged, tolerating a torn final line.

    On a *successful* run the CLI rewrites the file with
    :func:`write_jsonl` (complete, enriched, counted header); this
    writer is purely the crash-safety net underneath.
    """

    def __init__(self, target: str | Path) -> None:
        self.path = Path(target)
        self._lock = threading.Lock()
        self._fh: TextIO | None = open(self.path, "w")
        self._n_spans = 0
        header = {"type": "meta", "schema": SCHEMA, "incremental": True}
        self._fh.write(json.dumps(header, sort_keys=True) + "\n")
        self._fh.flush()

    @property
    def n_spans(self) -> int:
        """Number of span records appended so far."""
        return self._n_spans

    def on_span_close(self, span: Span) -> None:
        """Tracer listener: append one closed span and flush."""
        line = json.dumps({"type": "span", **span.to_dict()}, sort_keys=True)
        with self._lock:
            if self._fh is None:
                return
            self._fh.write(line + "\n")
            self._fh.flush()
            self._n_spans += 1

    def close(self) -> None:
        """Stop accepting spans and close the file (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "IncrementalJsonlWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# -- Chrome trace_event ---------------------------------------------------


def to_chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Spans as a Chrome ``trace_event`` JSON object.

    Each span becomes one complete (``ph: "X"``) event with
    microsecond timestamps; span ids, parent links, exact float
    start/end seconds, metrics, and attrs travel in ``args`` so
    :func:`from_chrome_trace` rebuilds the identical tree.

    Counter metrics — the ``pc.`` (modeled hardware counters) and
    ``ctr.`` (run counters) namespaces, plus the observatory's
    ``predicted_*`` predictions — are *additionally* flattened to
    top-level ``args`` keys, which is where ``chrome://tracing`` and
    Perfetto surface slice properties; the nested ``metrics`` dict
    stays authoritative for the round trip.
    """
    events: list[dict[str, Any]] = []
    for span in spans:
        t1 = span.t1 if span.t1 is not None else span.t0
        args: dict[str, Any] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "t0_s": span.t0,
            "t1_s": span.t1,
            "metrics": dict(span.metrics),
            "attrs": dict(span.attrs),
        }
        for mname, value in span.metrics.items():
            if mname.startswith(("pc.", "ctr.", "predicted_")):
                args[mname] = value
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.t0 * 1e6,
                "dur": (t1 - span.t0) * 1e6,
                "pid": 0,
                "tid": span.thread,
                "args": args,
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": SCHEMA},
    }


def from_chrome_trace(payload: Mapping[str, Any]) -> list[Span]:
    """Rebuild spans from :func:`to_chrome_trace` output.

    Events without ``args.span_id`` (foreign events mixed into the
    file) are ignored.
    """
    spans: list[Span] = []
    for event in payload.get("traceEvents", ()):
        args = event.get("args") or {}
        if event.get("ph") != "X" or "span_id" not in args:
            continue
        t1 = args.get("t1_s")
        spans.append(
            Span(
                span_id=int(args["span_id"]),
                parent_id=(
                    None if args.get("parent_id") is None
                    else int(args["parent_id"])
                ),
                name=str(event["name"]),
                kind=str(event.get("cat", "kernel")),
                t0=float(args.get("t0_s", event["ts"] / 1e6)),
                t1=None if t1 is None else float(t1),
                thread=int(event.get("tid", 0)),
                metrics={
                    str(k): float(v)
                    for k, v in dict(args.get("metrics", {})).items()
                },
                attrs=dict(args.get("attrs", {})),
            )
        )
    spans.sort(key=lambda s: s.span_id)
    return spans


# -- flat metrics table ---------------------------------------------------


def metrics_table(spans: Iterable[Span]) -> list[dict[str, Any]]:
    """Per-(kind, name) metric sums as flat rows.

    Rows are ordered by first appearance; every metric seen anywhere in
    the group is summed (missing = 0).  This is the paper's per-stage
    breakdown view of a trace.
    """
    rows: dict[tuple[str, str], dict[str, Any]] = {}
    for span in spans:
        key = (span.kind, span.name)
        row = rows.setdefault(
            key, {"kind": span.kind, "name": span.name, "spans": 0}
        )
        row["spans"] += 1
        metrics = span.metrics if span.metrics else {"calls": 1.0}
        for mname, value in metrics.items():
            row[mname] = row.get(mname, 0.0) + value
    return list(rows.values())


def format_metrics_table(rows: list[dict[str, Any]]) -> str:
    """Render :func:`metrics_table` rows as an aligned text table."""
    if not rows:
        return "(empty trace)"
    metric_names = sorted(
        {k for row in rows for k in row if k not in ("kind", "name", "spans")}
    )
    headers = ["kind", "name", "spans", *metric_names]
    table = [headers]
    for row in rows:
        table.append(
            [
                str(row["kind"]),
                str(row["name"]),
                str(row["spans"]),
                *(f"{row.get(m, 0.0):.6g}" for m in metric_names),
            ]
        )
    widths = [max(len(line[i]) for line in table) for i in range(len(headers))]
    lines = [
        "  ".join(cell.ljust(w) for cell, w in zip(line, widths)).rstrip()
        for line in table
    ]
    lines.insert(1, "  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_tree(spans: Iterable[Span], max_depth: int | None = None) -> str:
    """Human-readable indented tree of a trace (the CLI summary view)."""
    roots = build_tree(spans)
    if not roots:
        return "(empty trace)"
    lines: list[str] = []

    def _walk(node: SpanNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        span = node.span
        wall = span.metrics.get("wall_seconds", span.duration)
        extra = ", ".join(
            f"{k}={v:.6g}"
            for k, v in sorted(span.metrics.items())
            if k not in ("wall_seconds", "calls")
        )
        suffix = f"  [{extra}]" if extra else ""
        lines.append(
            f"{'  ' * depth}{span.kind}:{span.name}  "
            f"{wall * 1e3:.3f} ms{suffix}"
        )
        for child in node.children:
            _walk(child, depth + 1)

    for root in roots:
        _walk(root, 0)
    return "\n".join(lines)


# -- cluster-simulator bridge ---------------------------------------------


def spans_from_cluster_trace(trace: "ClusterTrace") -> list[Span]:
    """A simulated schedule as a span tree.

    The run span covers the whole simulated makespan; the one-time data
    distribution becomes a kernel span; each task record becomes a task
    span on its worker's ``tid`` with its queue/compute split carried as
    attributes.  Timestamps are *simulated* seconds on the simulator's
    clock — the Chrome export shows the schedule exactly as
    :func:`repro.cluster.trace.render_gantt` does, but zoomable.
    """
    spans: list[Span] = [
        Span(
            span_id=0,
            name="simulated-run",
            kind="run",
            t0=0.0,
            t1=trace.elapsed_seconds,
            metrics={
                "wall_seconds": trace.elapsed_seconds,
                "tasks": float(len(trace.records)),
                "calls": 1.0,
            },
            attrs={"n_workers": trace.n_workers, "simulated": True},
        ),
        Span(
            span_id=1,
            name="distribute-data",
            kind="kernel",
            t0=0.0,
            t1=trace.distribution_seconds,
            parent_id=0,
            metrics={
                "wall_seconds": trace.distribution_seconds,
                "calls": 1.0,
            },
        ),
    ]
    next_id = 2
    for record in trace.records:
        spans.append(
            Span(
                span_id=next_id,
                name=f"fold{record.fold}-task{record.task_index}",
                kind="task",
                t0=record.handout_start_s,
                t1=record.finish_s,
                parent_id=0,
                thread=record.worker,
                metrics={
                    "wall_seconds": record.finish_s - record.handout_start_s,
                    "sim_cycles": 0.0,
                    "calls": 1.0,
                },
                attrs={
                    "worker": record.worker,
                    "fold": record.fold,
                    "queue_seconds": record.queue_seconds,
                    "compute_seconds": record.compute_seconds,
                },
            )
        )
        next_id += 1
    return spans
