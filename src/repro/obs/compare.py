"""Structural trace comparison: equality modulo timing.

Two runs of the same pipeline on different executors must produce the
*same dataflow* — the same span tree shape, names, kinds, and
non-timing metrics — while wall-clock values, timestamps, thread ids,
and span-id numbering all legitimately differ.  :func:`span_structure`
canonicalizes a trace down to exactly the invariant part (children
sorted by a content digest, so sibling completion order does not
matter), and :func:`assert_same_structure` diffs two of them with a
readable failure message.
"""

from __future__ import annotations

from typing import Any, Collection, Iterable

from .metrics import METRICS
from .span import Span, SpanNode, build_tree

__all__ = ["span_structure", "assert_same_structure", "TIMING_METRICS"]

#: Metric names excluded from structural comparison by default.
TIMING_METRICS = frozenset(
    name for name, spec in METRICS.items() if spec.timing
)

#: Attr keys that identify the execution environment, not the dataflow.
_ENV_ATTRS = frozenset({"executor", "n_workers", "worker", "pid"})

Structure = tuple[Any, ...]


def _canonical(
    node: SpanNode,
    ignore_metrics: Collection[str],
    ignore_attrs: Collection[str],
) -> Structure:
    span = node.span
    metrics = tuple(
        sorted(
            (k, round(v, 12))
            for k, v in span.metrics.items()
            if k not in ignore_metrics
        )
    )
    attrs = tuple(
        sorted(
            (k, repr(v))
            for k, v in span.attrs.items()
            if k not in ignore_attrs
        )
    )
    children = tuple(
        sorted(
            _canonical(child, ignore_metrics, ignore_attrs)
            for child in node.children
        )
    )
    return (span.kind, span.name, metrics, attrs, children)


def span_structure(
    spans: Iterable[Span],
    ignore_metrics: Collection[str] | None = None,
    ignore_attrs: Collection[str] | None = None,
) -> Structure:
    """The timing-invariant canonical form of a trace.

    ``ignore_metrics`` defaults to :data:`TIMING_METRICS`; pass a larger
    set to also ignore environment-dependent counters (e.g. per-process
    plan-cache hits).  Environment attrs (executor name, worker ids)
    are always excluded unless ``ignore_attrs`` overrides the default.
    """
    if ignore_metrics is None:
        ignore_metrics = TIMING_METRICS
    if ignore_attrs is None:
        ignore_attrs = _ENV_ATTRS
    roots = build_tree(spans)
    return tuple(
        sorted(_canonical(root, ignore_metrics, ignore_attrs) for root in roots)
    )


def _describe(structure: Structure, depth: int = 0, limit: int = 40) -> list[str]:
    lines: list[str] = []

    def _walk(node: Structure, d: int) -> None:
        if len(lines) >= limit:
            return
        kind, name, metrics, attrs, children = node
        parts = [f"{'  ' * d}{kind}:{name}"]
        if metrics:
            parts.append(" " + ",".join(f"{k}={v}" for k, v in metrics))
        lines.append("".join(parts))
        for child in children:
            _walk(child, d + 1)

    for root in structure:
        _walk(root, depth)
    return lines


def assert_same_structure(
    a: Iterable[Span],
    b: Iterable[Span],
    ignore_metrics: Collection[str] | None = None,
) -> None:
    """Raise ``AssertionError`` with a tree diff if structures differ."""
    sa = span_structure(a, ignore_metrics=ignore_metrics)
    sb = span_structure(b, ignore_metrics=ignore_metrics)
    if sa != sb:
        raise AssertionError(
            "trace structures differ:\n--- a ---\n"
            + "\n".join(_describe(sa))
            + "\n--- b ---\n"
            + "\n".join(_describe(sb))
        )
