"""Spans: the nodes of a hierarchical execution trace.

A :class:`Span` is one timed region of a run — the run itself, a
pipeline stage, one task, or an individual kernel — with typed metric
attachments (see :mod:`repro.obs.metrics`) and free-form attributes.
Spans are flat records linked by ``parent_id``; :func:`build_tree`
reassembles the hierarchy for rendering and structural comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .metrics import validate_metric

__all__ = [
    "KINDS",
    "Span",
    "SpanNode",
    "build_tree",
]

#: The span taxonomy, outermost first.  ``counter`` spans are synthetic
#: zero-width records carrying metrics with no timed region of their own.
KINDS = ("run", "task", "stage", "kernel", "counter")


@dataclass
class Span:
    """One timed (or synthetic) region of a traced run."""

    #: Tracer-unique id; ids are allocated in start order.
    span_id: int
    name: str
    #: One of :data:`KINDS`.
    kind: str
    #: Start time on the tracer's clock (seconds; monotonic, relative
    #: to the clock's own epoch).
    t0: float
    #: End time; ``None`` while the span is still open.
    t1: float | None = None
    #: Enclosing span's id; ``None`` for roots.
    parent_id: int | None = None
    #: Identity of the recording thread/worker (Chrome-trace ``tid``).
    thread: int = 0
    #: Typed metric attachments (validated names, finite floats).
    metrics: dict[str, float] = field(default_factory=dict)
    #: Free-form annotations (executor name, voxel counts, ...).
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("span name must be non-empty")
        if self.kind not in KINDS:
            raise ValueError(f"unknown span kind {self.kind!r}; use one of {KINDS}")

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return 0.0 if self.t1 is None else self.t1 - self.t0

    def add_metric(self, name: str, value: float) -> None:
        """Accumulate ``value`` onto the named metric (additive)."""
        value = validate_metric(name, value)
        self.metrics[name] = self.metrics.get(name, 0.0) + value

    def set_metric(self, name: str, value: float) -> None:
        """Overwrite the named metric."""
        self.metrics[name] = validate_metric(name, value)

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (the JSON-lines record body)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
            "thread": self.thread,
            "metrics": dict(self.metrics),
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        metrics = {
            str(k): float(v) for k, v in dict(payload.get("metrics", {})).items()
        }
        t1 = payload.get("t1")
        return cls(
            span_id=int(payload["span_id"]),
            parent_id=(
                None if payload.get("parent_id") is None
                else int(payload["parent_id"])
            ),
            name=str(payload["name"]),
            kind=str(payload["kind"]),
            t0=float(payload["t0"]),
            t1=None if t1 is None else float(t1),
            thread=int(payload.get("thread", 0)),
            metrics=metrics,
            attrs=dict(payload.get("attrs", {})),
        )


@dataclass
class SpanNode:
    """A span with its resolved children (the tree view of a trace)."""

    span: Span
    children: list["SpanNode"] = field(default_factory=list)

    def walk(self) -> Iterable["SpanNode"]:
        """This node and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


def build_tree(spans: Iterable[Span]) -> list[SpanNode]:
    """Link flat spans into root trees (children in start order).

    Spans whose ``parent_id`` is unknown (e.g. a partial export) are
    promoted to roots rather than dropped.
    """
    ordered = sorted(spans, key=lambda s: s.span_id)
    nodes = {s.span_id: SpanNode(s) for s in ordered}
    roots: list[SpanNode] = []
    for span in ordered:
        node = nodes[span.span_id]
        parent = (
            nodes.get(span.parent_id) if span.parent_id is not None else None
        )
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots
