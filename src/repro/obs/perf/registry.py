"""The benchmark history registry: structured run records, append-only.

Every measured run — a benchmark suite, ``fcma run --trace --history``,
``fcma perf record`` — appends one :class:`BenchmarkRecord` to a
JSON-lines store (default ``benchmarks/results/history.jsonl``, override
with the ``FCMA_HISTORY_PATH`` environment variable or an explicit
path).  A record carries everything drift detection needs to decide
which comparisons are meaningful: the git sha and timestamp (what code,
when), a machine fingerprint (wall-clock metrics only compare within
one machine), a config hash (surfaced in reports when setups differ),
and a flat metric dict.

The registry also ingests the legacy root-level ``BENCH_*.json`` blobs
(:func:`ingest_legacy_bench`), so the pre-registry benchmark trajectory
joins the same history stream.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..span import Span, build_tree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..span import SpanNode

__all__ = [
    "RECORD_SCHEMA",
    "DEFAULT_HISTORY_PATH",
    "BenchmarkRecord",
    "HistoryRegistry",
    "config_fingerprint",
    "current_git_sha",
    "default_history_path",
    "ingest_legacy_bench",
    "machine_fingerprint",
    "metrics_from_trace",
    "record_from_trace",
]

#: Schema tag written into every record; bump on breaking changes.
RECORD_SCHEMA = "repro.bench/v1"

#: The repo-conventional store, relative to the working directory.
DEFAULT_HISTORY_PATH = Path("benchmarks") / "results" / "history.jsonl"

#: Environment override for the store location.
_ENV_VAR = "FCMA_HISTORY_PATH"


def default_history_path() -> Path:
    """The history store path (``FCMA_HISTORY_PATH`` wins if set)."""
    env = os.environ.get(_ENV_VAR)
    return Path(env) if env else DEFAULT_HISTORY_PATH


def machine_fingerprint() -> dict[str, Any]:
    """Identity of the measuring machine (wall-time comparability key)."""
    return {
        "node": platform.node(),
        "platform": platform.platform(),
        "arch": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 0,
    }


def current_git_sha(cwd: str | Path | None = None) -> str:
    """The working tree's HEAD sha, or ``"unknown"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=None if cwd is None else str(cwd),
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def config_fingerprint(*parts: Any) -> str:
    """Short stable hash of configuration objects.

    Dataclass-ish objects contribute their ``__dict__`` (or themselves
    when primitive); ordering is canonicalized so equal configs hash
    equal across processes.
    """

    def _plain(obj: Any) -> Any:
        if obj is None or isinstance(obj, (bool, int, float, str)):
            return obj
        if isinstance(obj, Mapping):
            return {str(k): _plain(v) for k, v in sorted(obj.items())}
        if isinstance(obj, (list, tuple)):
            return [_plain(v) for v in obj]
        inner = getattr(obj, "__dict__", None)
        if inner:
            return {str(k): _plain(v) for k, v in sorted(inner.items())}
        return repr(obj)

    blob = json.dumps([_plain(p) for p in parts], sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


def _fingerprint_id(fingerprint: Mapping[str, Any]) -> str:
    blob = json.dumps(dict(fingerprint), sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


@dataclass
class BenchmarkRecord:
    """One structured measurement: who ran what, where, and the numbers."""

    #: Logical series name; drift checks compare records of one name.
    name: str
    #: Flat metric dict (see :func:`metrics_from_trace` for the trace
    #: vocabulary; benchmark suites use their own keys).
    metrics: dict[str, float] = field(default_factory=dict)
    git_sha: str = field(default_factory=current_git_sha)
    #: ISO-8601 UTC timestamp of the measurement.
    timestamp: str = field(
        default_factory=lambda: time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
        )
    )
    machine: dict[str, Any] = field(default_factory=machine_fingerprint)
    #: Hash of the run configuration (dataset geometry + pipeline knobs).
    config_hash: str = ""
    #: Free-form annotations (preset name, executor, legacy source, ...).
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("record name must be non-empty")
        self.metrics = {
            str(k): float(v) for k, v in dict(self.metrics).items()
        }

    @property
    def machine_id(self) -> str:
        """Short digest of the machine fingerprint (comparability key)."""
        return _fingerprint_id(self.machine)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (one JSON line in the store)."""
        return {
            "type": "record",
            "schema": RECORD_SCHEMA,
            "name": self.name,
            "git_sha": self.git_sha,
            "timestamp": self.timestamp,
            "machine": dict(self.machine),
            "config_hash": self.config_hash,
            "metrics": dict(self.metrics),
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchmarkRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            name=str(payload["name"]),
            metrics={
                str(k): float(v)
                for k, v in dict(payload.get("metrics", {})).items()
            },
            git_sha=str(payload.get("git_sha", "unknown")),
            timestamp=str(payload.get("timestamp", "")),
            machine=dict(payload.get("machine", {})),
            config_hash=str(payload.get("config_hash", "")),
            attrs=dict(payload.get("attrs", {})),
        )


class HistoryRegistry:
    """Append-only JSON-lines store of :class:`BenchmarkRecord`.

    Records append atomically enough for the use case (one ``write`` of
    one line in append mode); loading tolerates foreign or malformed
    lines so a partially-written or hand-edited store never takes the
    drift gate down with it.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else default_history_path()

    def append(self, record: BenchmarkRecord) -> Path:
        """Write one record; creates the store (and parents) on demand."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True)
        with open(self.path, "a") as fh:
            fh.write(line + "\n")
        return self.path

    def load(self) -> list[BenchmarkRecord]:
        """All parseable records, in file (append) order."""
        if not self.path.exists():
            return []
        records: list[BenchmarkRecord] = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(payload, dict) or payload.get("type") != "record":
                continue
            try:
                records.append(BenchmarkRecord.from_dict(payload))
            except (KeyError, TypeError, ValueError):
                continue
        return records

    def records(self, name: str | None = None) -> list[BenchmarkRecord]:
        """Records, optionally restricted to one series name."""
        loaded = self.load()
        if name is None:
            return loaded
        return [r for r in loaded if r.name == name]

    def latest(self, name: str | None = None) -> BenchmarkRecord | None:
        """The newest (last-appended) record of a series, if any."""
        matching = self.records(name)
        return matching[-1] if matching else None

    def names(self) -> list[str]:
        """Distinct series names, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.load():
            seen.setdefault(record.name, None)
        return list(seen)


# -- trace -> record -------------------------------------------------------

#: Kernel metrics folded into a trace record, besides wall/predicted.
_KERNEL_COUNTER_METRICS = ("pc.l2_misses", "pc.l2_remote_hits", "pc.flops")


def metrics_from_trace(spans: Iterable[Span]) -> dict[str, float]:
    """Flatten a (preferably enriched) trace into the record vocabulary.

    * ``run.wall_seconds`` / ``run.tasks`` — the root span's totals;
    * ``stage.<name>.seconds`` / ``stage.<name>.calls`` — per-stage sums;
    * ``kernel.<name>.wall_seconds`` — per-kernel measured time;
    * ``kernel.<name>.predicted_seconds`` / ``.predicted_gflops`` /
      ``.pc.*`` — model predictions where the observatory attached them
      (:func:`repro.obs.perf.enrich_spans`);
    * ``kernel.<name>.model_ratio`` — measured over predicted seconds;
    * ``counter.<name>`` — run counters (``ctr.`` span metrics) summed
      across all spans; the sparse stage-1/2 counters (``stage12_nnz``,
      ``stage12_tiles_pruned``, ...) reach drift detection this way.
    """
    metrics: dict[str, float] = {}
    span_list = list(spans)
    for root in build_tree(span_list):
        if root.span.kind != "run":
            continue
        metrics["run.wall_seconds"] = metrics.get(
            "run.wall_seconds", 0.0
        ) + root.span.metrics.get("wall_seconds", root.span.duration)
    metrics["run.tasks"] = float(
        sum(1 for s in span_list if s.kind == "task")
    )

    def _bump(key: str, value: float) -> None:
        metrics[key] = metrics.get(key, 0.0) + value

    for span in span_list:
        for metric_name, value in span.metrics.items():
            if metric_name.startswith("ctr."):
                _bump(f"counter.{metric_name[4:]}", value)
        if span.kind == "stage":
            _bump(
                f"stage.{span.name}.seconds",
                span.metrics.get("wall_seconds", span.duration),
            )
            _bump(f"stage.{span.name}.calls", span.metrics.get("calls", 1.0))
        elif span.kind == "kernel":
            prefix = f"kernel.{span.name}"
            _bump(
                f"{prefix}.wall_seconds",
                span.metrics.get("wall_seconds", span.duration),
            )
            if "predicted_seconds" in span.metrics:
                _bump(
                    f"{prefix}.predicted_seconds",
                    span.metrics["predicted_seconds"],
                )
                for counter in _KERNEL_COUNTER_METRICS:
                    if counter in span.metrics:
                        _bump(f"{prefix}.{counter}", span.metrics[counter])

    # Derived: model fidelity per enriched kernel + predicted GFLOPS at
    # the *aggregate* level (per-span GFLOPS don't sum).
    for key in [k for k in metrics if k.endswith(".predicted_seconds")]:
        prefix = key[: -len(".predicted_seconds")]
        predicted = metrics[key]
        measured = metrics.get(f"{prefix}.wall_seconds", 0.0)
        if predicted > 0 and measured > 0:
            metrics[f"{prefix}.model_ratio"] = measured / predicted
        flops = metrics.get(f"{prefix}.pc.flops", 0.0)
        if predicted > 0 and flops > 0:
            metrics[f"{prefix}.predicted_gflops"] = flops / predicted / 1e9
    return metrics


def record_from_trace(
    spans: Iterable[Span],
    name: str,
    *,
    config_hash: str = "",
    attrs: Mapping[str, Any] | None = None,
) -> BenchmarkRecord:
    """Build a history record summarizing one traced run."""
    span_list = list(spans)
    resolved_attrs: dict[str, Any] = {}
    for root in build_tree(span_list):
        node: "SpanNode" = root
        if node.span.kind == "run":
            for key in ("executor", "variant", "dataset", "n_voxels"):
                value = node.span.attrs.get(key)
                if value is not None:
                    resolved_attrs[key] = value
            break
    if attrs:
        resolved_attrs.update(dict(attrs))
    return BenchmarkRecord(
        name=name,
        metrics=metrics_from_trace(span_list),
        config_hash=config_hash,
        attrs=resolved_attrs,
    )


# -- legacy BENCH_*.json ingestion ----------------------------------------


def ingest_legacy_bench(
    path: str | Path, name: str | None = None
) -> BenchmarkRecord:
    """Convert a legacy root-level ``BENCH_*.json`` blob into a record.

    Numeric fields become metrics; everything else (benchmark title,
    preset description) lands in ``attrs`` together with the source
    path.  The record name defaults to the file stem lower-cased
    (``BENCH_stage3.json`` -> ``bench_stage3``).
    """
    path = Path(path)
    payload = json.loads(path.read_text())
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: expected a JSON object")
    metrics: dict[str, float] = {}
    attrs: dict[str, Any] = {"legacy_source": path.name}
    for key, value in payload.items():
        if isinstance(value, bool):
            attrs[key] = value
        elif isinstance(value, (int, float)):
            metrics[key] = float(value)
        else:
            attrs[key] = value
    return BenchmarkRecord(
        name=name or path.stem.lower(),
        metrics=metrics,
        attrs=attrs,
    )
