"""Calibration gate: modeled kernels vs the paper's published numbers.

``fcma perf calibrate`` replays the paper's evaluation tables through
the ``repro.perf`` models at full paper scale (the models consume
geometry only, so no data is materialized) and checks each modeled
quantity against the published value within a per-class tolerance band:

* modeled **times** track the paper within ~10 % — they are the
  calibrated quantity;
* **memory references** and **vectorization intensity** derive from the
  calibrated descriptors near-exactly (~5 %);
* **L2 miss** counts come from first-principles sweep arithmetic and
  legitimately overshoot the measured values (the model ignores some
  reuse the real cache finds) — the band is wide (~75 %);
* end-to-end **speedups** compound several models (~35 %).

A check drifting outside its band means a model or calibration change
moved the repro away from the paper — the CLI exits non-zero, same
contract as ``fcma perf check``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ...data.presets import ATTENTION, FACE_SCENE, DatasetSpec
from ...hw.spec import HardwareSpec
from ...perf import (
    model_correlation_matmul,
    model_kernel_syrk,
    model_normalization,
    model_svm_cv,
)

__all__ = [
    "CalibrationCheck",
    "calibration_checks",
    "format_calibration_report",
    "run_calibration",
]

#: Per-class relative tolerance bands (see module docstring).
_TOL_TIME = 0.10
_TOL_REFS = 0.05
_TOL_VI = 0.05
_TOL_MISS = 0.75
_TOL_SPEEDUP = 0.35

#: The paper's standard single-task size on face-scene.
_V = 120


@dataclass(frozen=True)
class CalibrationCheck:
    """One modeled quantity vs its published value."""

    #: Which paper table/figure the value comes from.
    source: str
    #: The quantity being checked (e.g. ``ours corr ms``).
    name: str
    modeled: float
    paper: float
    tolerance: float

    @property
    def ratio(self) -> float:
        """Modeled over published."""
        if self.paper == 0:
            return float("inf")
        return self.modeled / self.paper

    @property
    def deviation(self) -> float:
        """Symmetric relative deviation: ``max(r, 1/r) - 1``.

        Treats a model at half the paper's value exactly as badly as
        one at double it.
        """
        r = self.ratio
        if r <= 0:
            return float("inf")
        return max(r, 1.0 / r) - 1.0

    @property
    def ok(self) -> bool:
        return self.deviation <= self.tolerance


def _fig9_speedup(
    spec: DatasetSpec, hw: HardwareSpec, v_base: int, v_opt: int
) -> float:
    """Per-voxel baseline-over-optimized time ratio (Fig 9/10 shape)."""

    def per_voxel(v: int, corr: str, norm: str, syrk: str, svm: str) -> float:
        total = (
            model_correlation_matmul(spec, v, hw, corr).seconds
            + model_normalization(spec, v, hw, norm).seconds
            + model_kernel_syrk(spec, v, hw, syrk).seconds
            + model_svm_cv(spec, v, hw, svm).seconds
        )
        return total / v

    base = per_voxel(v_base, "mkl", "baseline", "mkl", "libsvm")
    opt = per_voxel(v_opt, "ours", "merged", "ours", "phisvm")
    return base / opt


def calibration_checks(
    tolerance_scale: float = 1.0,
) -> list[CalibrationCheck]:
    """The full check list: Tables 1, 5–8 and Figures 9, 10.

    ``tolerance_scale`` multiplies every band uniformly (a strictness
    knob for the CLI); the relative widths between classes are fixed.
    """
    if tolerance_scale <= 0:
        raise ValueError("tolerance_scale must be positive")
    from ...hw import E5_2670, PHI_5110P

    hw = PHI_5110P
    fs = FACE_SCENE

    def tol(base: float) -> float:
        return base * tolerance_scale

    checks: list[CalibrationCheck] = []

    def add(source: str, name: str, modeled: float, paper: float, band: float) -> None:
        checks.append(
            CalibrationCheck(
                source=source,
                name=name,
                modeled=modeled,
                paper=paper,
                tolerance=tol(band),
            )
        )

    # Table 5: the four stage-1/3a kernels on the Phi, times + GFLOPS.
    ours_corr = model_correlation_matmul(fs, _V, hw, "ours")
    ours_syrk = model_kernel_syrk(fs, _V, hw, "ours")
    mkl_corr = model_correlation_matmul(fs, _V, hw, "mkl")
    mkl_syrk = model_kernel_syrk(fs, _V, hw, "mkl")
    for name, est, paper_ms in (
        ("ours corr ms", ours_corr, 170.0),
        ("ours syrk ms", ours_syrk, 400.0),
        ("mkl corr ms", mkl_corr, 230.0),
        ("mkl syrk ms", mkl_syrk, 1600.0),
    ):
        add("Table 5", name, est.milliseconds, paper_ms, _TOL_TIME)

    # Table 6: combined stage-1+3a counters per implementation.
    for name, a, b, paper_refs, paper_miss, paper_vi in (
        ("ours", ours_corr, ours_syrk, 9.97e9, 121.8e6, 16.0),
        ("mkl", mkl_corr, mkl_syrk, 34.86e9, 708.9e6, 3.6),
    ):
        combined = a.counters + b.counters
        add("Table 6", f"{name} mem refs", combined.mem_refs, paper_refs, _TOL_REFS)
        add(
            "Table 6",
            f"{name} L2 misses",
            combined.total_l2_misses,
            paper_miss,
            _TOL_MISS,
        )
        add(
            "Table 6",
            f"{name} VI",
            combined.vectorization_intensity,
            paper_vi,
            _TOL_VI,
        )

    # Table 7: correlation + normalization, merged vs separated.
    for variant, paper_ms, paper_refs, paper_miss in (
        ("merged", 320.0, 1.93e9, 67.5e6),
        ("separated", 420.0, 4.35e9, 188.1e6),
    ):
        norm = model_normalization(fs, _V, hw, variant)
        combined = ours_corr.counters + norm.counters
        add(
            "Table 7",
            f"{variant} ms",
            ours_corr.milliseconds + norm.milliseconds,
            paper_ms,
            _TOL_TIME,
        )
        add("Table 7", f"{variant} mem refs", combined.mem_refs, paper_refs, _TOL_REFS)
        add(
            "Table 7",
            f"{variant} L2 misses",
            combined.total_l2_misses,
            paper_miss,
            _TOL_MISS,
        )

    # Table 1: the Section-3.2 baseline normalization time.
    add(
        "Table 1",
        "baseline norm ms",
        model_normalization(fs, _V, hw, "baseline").milliseconds,
        766.0,
        _TOL_TIME,
    )

    # Table 8: the three SVM implementations.
    for variant, paper_ms in (
        ("libsvm", 3600.0),
        ("libsvm-opt", 1150.0),
        ("phisvm", 390.0),
    ):
        add(
            "Table 8",
            f"{variant} ms",
            model_svm_cv(fs, _V, hw, variant).milliseconds,
            paper_ms,
            _TOL_TIME,
        )

    # Fig 9: single-task per-voxel speedups on the Phi.
    for spec, v_base, v_opt, paper in (
        (FACE_SCENE, 120, 240, 5.24),
        (ATTENTION, 60, 240, 16.39),
    ):
        add(
            "Fig 9",
            f"{spec.name} speedup",
            _fig9_speedup(spec, hw, v_base, v_opt),
            paper,
            _TOL_SPEEDUP,
        )

    # Fig 10: the same pipeline comparison on the Xeon host.
    for spec, v_base, paper in ((FACE_SCENE, 120, 1.4), (ATTENTION, 60, 2.5)):
        add(
            "Fig 10",
            f"{spec.name} xeon speedup",
            _fig9_speedup(spec, E5_2670, v_base, v_base),
            paper,
            _TOL_SPEEDUP,
        )

    return checks


def format_calibration_report(checks: list[CalibrationCheck]) -> str:
    """Fixed-width modeled-vs-paper table with per-row verdicts."""
    lines = [
        f"{'source':<9} {'check':<26} {'modeled':>12} {'paper':>12} "
        f"{'ratio':>6} {'band':>6} verdict",
    ]
    for check in checks:
        verdict = "ok" if check.ok else "DRIFT"
        lines.append(
            f"{check.source:<9} {check.name:<26} {check.modeled:>12.4g} "
            f"{check.paper:>12.4g} {check.ratio:>6.2f} "
            f"±{check.tolerance:>5.0%} {verdict}"
        )
    failures = [c for c in checks if not c.ok]
    lines.append(
        f"{len(checks)} checks, {len(failures)} drifted"
        + (
            ""
            if not failures
            else " — model calibration moved away from the paper"
        )
    )
    return "\n".join(lines)


def run_calibration(
    tolerance_scale: float = 1.0,
    emit: Callable[[str], None] = print,
) -> int:
    """Run all checks, print the report, return a process exit code."""
    checks = calibration_checks(tolerance_scale)
    emit(format_calibration_report(checks))
    return 0 if all(c.ok for c in checks) else 1
