"""The performance observatory: predicted-vs-measured as an observable.

Three pieces, layered on the span tracer (:mod:`repro.obs`) and the
analytic models (:mod:`repro.perf`):

* **enrichment** (:mod:`.enrich`) — attach modeled hardware counters
  and predicted time/GFLOPS to the kernel spans a traced run emits;
* **history registry** (:mod:`.registry`) — an append-only JSON-lines
  store of structured run records (git sha, timestamp, machine
  fingerprint, config hash, metrics);
* **drift detection** (:mod:`.drift`) — robust comparison of a record
  against its series' history, with timing metrics judged only against
  same-machine samples.

Plus the human outputs: the predicted-vs-measured + roofline report
(:mod:`.report`) and the paper-calibration gate (:mod:`.calibrate`).
All of it is surfaced by the ``fcma perf`` CLI family.

This subpackage is intentionally *not* imported by ``repro.obs``'s
``__init__`` — it depends on :mod:`repro.perf`, which itself imports
the obs span layer; importing it lazily keeps the layering acyclic.
"""

from .calibrate import (
    CalibrationCheck,
    calibration_checks,
    format_calibration_report,
    run_calibration,
)
from .drift import (
    DEFAULT_EXACT_TOLERANCE,
    DEFAULT_TIMING_SLACK_SECONDS,
    DEFAULT_TIMING_TOLERANCE,
    DriftFinding,
    DriftReport,
    check_record,
    is_timing_name,
)
from .enrich import (
    MODELED_KERNELS,
    TraceGeometry,
    default_hardware,
    enrich_spans,
    geometry_from_spans,
    predict_kernel,
)
from .registry import (
    DEFAULT_HISTORY_PATH,
    RECORD_SCHEMA,
    BenchmarkRecord,
    HistoryRegistry,
    config_fingerprint,
    current_git_sha,
    default_history_path,
    ingest_legacy_bench,
    machine_fingerprint,
    metrics_from_trace,
    record_from_trace,
)
from .report import (
    KernelComparison,
    format_density_section,
    format_perf_report,
    format_scaleout_section,
    kernel_comparisons,
)

__all__ = [
    "BenchmarkRecord",
    "CalibrationCheck",
    "DEFAULT_EXACT_TOLERANCE",
    "DEFAULT_HISTORY_PATH",
    "DEFAULT_TIMING_SLACK_SECONDS",
    "DEFAULT_TIMING_TOLERANCE",
    "DriftFinding",
    "DriftReport",
    "HistoryRegistry",
    "KernelComparison",
    "MODELED_KERNELS",
    "RECORD_SCHEMA",
    "TraceGeometry",
    "calibration_checks",
    "check_record",
    "config_fingerprint",
    "current_git_sha",
    "default_hardware",
    "default_history_path",
    "enrich_spans",
    "format_calibration_report",
    "format_density_section",
    "format_perf_report",
    "format_scaleout_section",
    "geometry_from_spans",
    "ingest_legacy_bench",
    "is_timing_name",
    "kernel_comparisons",
    "machine_fingerprint",
    "metrics_from_trace",
    "predict_kernel",
    "record_from_trace",
    "run_calibration",
]
