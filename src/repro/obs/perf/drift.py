"""Drift detection: robust checks of a run against recorded history.

The comparison machinery mirrors the tracing-overhead test's statistics:
noisy wall-clock metrics are judged against the *median* of the
historical sample (immune to the occasional scheduler spike that skews
means), within a wide relative tolerance band; deterministic metrics —
model predictions, modeled counters, structural counts — must match
essentially exactly, because two runs of the same code on the same
geometry have no legitimate reason to differ.

Two comparability rules keep the checks honest:

* wall-clock metrics only compare against history recorded on the
  **same machine** (fingerprint digest match) — cross-machine timing
  deltas are hardware news, not regressions;
* deterministic metrics compare against *all* history of the series,
  machine-independent.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .registry import BenchmarkRecord

__all__ = [
    "DEFAULT_EXACT_TOLERANCE",
    "DEFAULT_TIMING_SLACK_SECONDS",
    "DEFAULT_TIMING_TOLERANCE",
    "DriftFinding",
    "DriftReport",
    "check_record",
    "is_timing_name",
]

#: Relative band for wall-clock metrics (generous: single-run jitter).
DEFAULT_TIMING_TOLERANCE = 0.5
#: Relative band for deterministic metrics (model outputs, counts).
DEFAULT_EXACT_TOLERANCE = 1e-6
#: Absolute slack for *seconds-valued* timing metrics: below this delta
#: a relative band is noise, not signal (a 0.2 ms planner call jitters
#: by 3x between otherwise identical runs).
DEFAULT_TIMING_SLACK_SECONDS = 0.01

#: Metric-name suffixes that mark wall-clock-dependent quantities.
_TIMING_SUFFIXES = ("wall_seconds", ".seconds", "_seconds", "model_ratio")
#: The subset of timing metrics measured in seconds (absolute slack
#: applies); ratios and speedups are unitless and get none.
_SECONDS_SUFFIXES = ("wall_seconds", ".seconds", "_seconds")
#: Substrings that mark a metric as model-derived (deterministic) even
#: when its suffix looks like a timing quantity.
_DETERMINISTIC_MARKERS = ("predicted", "pc.", "floor")


def is_timing_name(name: str) -> bool:
    """Whether a registry metric name is wall-clock-dependent.

    ``kernel.x.wall_seconds`` and ``run.wall_seconds`` are timing;
    ``kernel.x.predicted_seconds`` and ``kernel.x.pc.l2_misses`` are
    deterministic model outputs; counts (``run.tasks``, ``tiles``) are
    deterministic.  Speedup-style ratios of two measured times
    (``model_ratio``, bare ``speedup``) count as timing because both
    numerator and denominator jitter.
    """
    if any(marker in name for marker in _DETERMINISTIC_MARKERS):
        return False
    if name.endswith(_TIMING_SUFFIXES) or name == "speedup":
        return True
    return False


@dataclass(frozen=True)
class DriftFinding:
    """One metric's verdict against its historical baseline."""

    metric: str
    current: float
    #: Median of the comparable history sample.
    baseline: float
    #: Relative deviation |current - baseline| / max(|baseline|, eps).
    deviation: float
    tolerance: float
    #: Records that contributed to the baseline.
    n_history: int
    #: True when the metric was judged as wall-clock-dependent.
    timing: bool
    #: Absolute |current - baseline| slack (seconds-valued timing
    #: metrics only); a delta inside it passes regardless of the
    #: relative deviation.
    slack: float = 0.0

    @property
    def ok(self) -> bool:
        if abs(self.current - self.baseline) <= self.slack:
            return True
        return self.deviation <= self.tolerance


@dataclass
class DriftReport:
    """The full verdict of one record against history."""

    name: str
    findings: list[DriftFinding] = field(default_factory=list)
    #: Metrics that could not be checked (no comparable history) and why.
    skipped: dict[str, str] = field(default_factory=dict)

    @property
    def failures(self) -> list[DriftFinding]:
        return [f for f in self.findings if not f.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def checked(self) -> int:
        return len(self.findings)

    def summary(self) -> str:
        """One-line human verdict."""
        status = "OK" if self.ok else "DRIFT"
        return (
            f"{status}: {self.name}: {self.checked} metrics checked, "
            f"{len(self.failures)} drifted, {len(self.skipped)} skipped"
        )


def _relative_deviation(current: float, baseline: float) -> float:
    scale = max(abs(baseline), 1e-12)
    return abs(current - baseline) / scale


def check_record(
    current: BenchmarkRecord,
    history: Sequence[BenchmarkRecord] | Iterable[BenchmarkRecord],
    *,
    timing_tolerance: float = DEFAULT_TIMING_TOLERANCE,
    exact_tolerance: float = DEFAULT_EXACT_TOLERANCE,
    timing_slack_seconds: float = DEFAULT_TIMING_SLACK_SECONDS,
    min_history: int = 1,
) -> DriftReport:
    """Judge ``current`` against the historical records of its series.

    For every metric of the current record, the comparable history
    sample is selected (same-machine records for timing metrics, all
    records otherwise), its median becomes the baseline, and the
    relative deviation is checked against the class tolerance.  Seconds-
    valued timing metrics additionally pass whenever the absolute delta
    is under ``timing_slack_seconds`` — sub-millisecond kernels jitter
    by integer factors without meaning anything.  Metrics with fewer
    than ``min_history`` comparable observations are skipped (reported,
    not failed) — a fresh series cannot drift.
    """
    if timing_tolerance <= 0 or exact_tolerance <= 0:
        raise ValueError("tolerances must be positive")
    if timing_slack_seconds < 0:
        raise ValueError("timing_slack_seconds must be >= 0")
    if min_history < 1:
        raise ValueError("min_history must be >= 1")
    report = DriftReport(name=current.name)
    prior = [
        r
        for r in history
        if r.name == current.name and r is not current
    ]
    if not prior:
        for metric in current.metrics:
            report.skipped[metric] = "no history for series"
        return report

    same_machine = [r for r in prior if r.machine_id == current.machine_id]
    for metric, value in sorted(current.metrics.items()):
        timing = is_timing_name(metric)
        pool = same_machine if timing else prior
        sample = [r.metrics[metric] for r in pool if metric in r.metrics]
        if len(sample) < min_history:
            report.skipped[metric] = (
                "no same-machine history" if timing and prior else "no history"
            )
            continue
        baseline = statistics.median(sample)
        seconds_valued = timing and metric.endswith(_SECONDS_SUFFIXES)
        report.findings.append(
            DriftFinding(
                metric=metric,
                current=value,
                baseline=baseline,
                deviation=_relative_deviation(value, baseline),
                tolerance=timing_tolerance if timing else exact_tolerance,
                n_history=len(sample),
                timing=timing,
                slack=timing_slack_seconds if seconds_valued else 0.0,
            )
        )
    return report
