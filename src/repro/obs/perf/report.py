"""Human-readable predicted-vs-measured reports from enriched traces.

One enriched trace file (``fcma run --trace`` + :func:`enrich_spans`,
or ``fcma perf record --trace``) carries everything the paper's
per-kernel evaluation tables need: measured wall time, model-predicted
time, modeled memory references / L2 misses, and GFLOPS.  This module
renders that into the ``fcma perf report`` text: a per-kernel
comparison table followed by the roofline placement
(:func:`repro.perf.roofline.format_roofline_report`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ...hw.spec import HardwareSpec
from ...perf import (
    LOOPBACK_TCP,
    InterconnectSpec,
    TileCommShape,
    dense_crossover_density,
    density_sweep,
    format_density_sweep,
    format_roofline_report,
    model_panel_comm,
    model_tile_comm,
    predict_scaleout,
    roofline_rows,
)
from ..span import Span
from .enrich import default_hardware, geometry_from_spans

__all__ = [
    "KernelComparison",
    "format_density_section",
    "format_perf_report",
    "format_scaleout_section",
    "kernel_comparisons",
]


@dataclass(frozen=True)
class KernelComparison:
    """One kernel's measured-vs-predicted aggregate across a trace."""

    kernel: str
    calls: int
    measured_seconds: float
    predicted_seconds: float
    #: Modeled memory references (element granular).
    mem_refs: float
    #: Modeled DRAM-served L2 misses (line granular).
    l2_misses: float
    #: GFLOPS at the measured time.
    achieved_gflops: float

    @property
    def ratio(self) -> float:
        """Measured over predicted seconds (1.0 = perfect model)."""
        if self.predicted_seconds <= 0:
            return 0.0
        return self.measured_seconds / self.predicted_seconds


def kernel_comparisons(spans: Iterable[Span]) -> list[KernelComparison]:
    """Aggregate enriched kernel spans by name, first-appearance order.

    Spans without a prediction (un-modeled kernels, un-enriched traces)
    are skipped.
    """
    order: list[str] = []
    acc: dict[str, dict[str, float]] = {}
    for span in spans:
        if span.kind != "kernel" or "predicted_seconds" not in span.metrics:
            continue
        if span.name not in acc:
            order.append(span.name)
            acc[span.name] = {
                "calls": 0.0,
                "measured": 0.0,
                "predicted": 0.0,
                "refs": 0.0,
                "l2": 0.0,
                "flops": 0.0,
            }
        slot = acc[span.name]
        slot["calls"] += 1.0
        slot["measured"] += span.metrics.get("wall_seconds", span.duration)
        slot["predicted"] += span.metrics["predicted_seconds"]
        slot["refs"] += span.metrics.get("pc.mem_reads", 0.0) + span.metrics.get(
            "pc.mem_writes", 0.0
        )
        slot["l2"] += span.metrics.get("pc.l2_misses", 0.0)
        slot["flops"] += span.metrics.get("pc.flops", 0.0)

    rows: list[KernelComparison] = []
    for name in order:
        slot = acc[name]
        achieved = (
            slot["flops"] / slot["measured"] / 1e9 if slot["measured"] > 0 else 0.0
        )
        rows.append(
            KernelComparison(
                kernel=name,
                calls=int(slot["calls"]),
                measured_seconds=slot["measured"],
                predicted_seconds=slot["predicted"],
                mem_refs=slot["refs"],
                l2_misses=slot["l2"],
                achieved_gflops=achieved,
            )
        )
    return rows


def format_density_section(
    spans: Iterable[Span], hw: HardwareSpec | None = None
) -> str | None:
    """Density-sweep table for a trace with sparse stage-1/2 spans.

    Aggregates every ``correlate_normalize_sparse`` kernel span (summed
    voxels as the task size, tile geometry from the first span, measured
    density as total nnz over total elements), then tabulates the
    model's predicted sparse-vs-dense seconds over a density grid, the
    dense crossover point, and the measured wall time on the row nearest
    the measured density.  Returns ``None`` when the trace has no sparse
    spans or no recorded geometry.
    """
    if hw is None:
        hw = default_hardware()
    span_list = list(spans)
    sparse = [
        s
        for s in span_list
        if s.kind == "kernel" and s.name == "correlate_normalize_sparse"
    ]
    if not sparse:
        return None
    geometry = geometry_from_spans(span_list)
    if geometry is None:
        return None
    try:
        spec = geometry.spec()
    except ValueError:
        return None
    n_assigned = int(sum(s.metrics.get("voxels", 0.0) for s in sparse))
    sweep = int(sparse[0].metrics.get("voxel_sweep", 0)) or n_assigned
    target_block = (
        int(sparse[0].metrics.get("target_block", 0)) or spec.n_voxels
    )
    if n_assigned < 1:
        return None
    elements = sum(s.metrics.get("elements", 0.0) for s in sparse)
    nnz = sum(s.metrics.get("nnz", 0.0) for s in sparse)
    wall = sum(s.metrics.get("wall_seconds", s.duration) for s in sparse)
    measured = (nnz / elements, wall) if elements > 0 else None
    rows = density_sweep(spec, n_assigned, hw, sweep, target_block)
    crossover = dense_crossover_density(spec, n_assigned, hw, sweep, target_block)
    header = (
        f"sparse stage 1/2 density sweep "
        f"(V={n_assigned}, sweep={sweep}, target_block={target_block}"
        + (f", measured density {measured[0]:.4f}" if measured else "")
        + ")"
    )
    return header + "\n" + format_density_sweep(
        rows, crossover=crossover, measured=measured
    )


def format_scaleout_section(
    spans: Iterable[Span],
    hw: HardwareSpec | None = None,
    net: InterconnectSpec | None = None,
) -> str | None:
    """Wire-model table for a trace with 2-D tile spans.

    Replays every ``correlate_normalize_tile2d`` and ``score_panel``
    kernel span through the scale-out communication model
    (:mod:`repro.perf.scaleout_model`) on the chosen interconnect
    (default: loopback TCP, the CI smoke topology), then appends the
    predicted strong-scaling envelope for the trace's tile geometry.
    Returns ``None`` when the trace has no tile spans or no recorded
    geometry.
    """
    if hw is None:
        hw = default_hardware()
    if net is None:
        net = LOOPBACK_TCP
    span_list = list(spans)
    tiles = [
        s
        for s in span_list
        if s.kind == "kernel" and s.name == "correlate_normalize_tile2d"
    ]
    if not tiles:
        return None
    geometry = geometry_from_spans(span_list)
    if geometry is None:
        return None
    try:
        spec = geometry.spec()
    except ValueError:
        return None
    panels = [
        s for s in span_list if s.kind == "kernel" and s.name == "score_panel"
    ]

    tile_seconds = 0.0
    tile_bytes = 0.0
    max_rows = 0
    max_cols = 0
    for s in tiles:
        rows = int(s.metrics.get("rows", 0)) or 1
        cols = int(s.metrics.get("cols", 0)) or 1
        max_rows = max(max_rows, rows)
        max_cols = max(max_cols, cols)
        est = model_tile_comm(
            TileCommShape(rows=rows, cols=cols, n_epochs=spec.n_epochs), net
        )
        tile_seconds += est.seconds
        tile_bytes += est.total_bytes
    panel_seconds = 0.0
    panel_bytes = 0.0
    for s in panels:
        rows = int(s.metrics.get("voxels", 0)) or 1
        est = model_panel_comm(rows, spec.n_epochs, spec.n_voxels, net)
        panel_seconds += est.seconds
        panel_bytes += est.total_bytes

    lines = [
        f"scale-out wire model ({net.name}: "
        f"{net.latency_s * 1e6:.0f} us latency, "
        f"{net.bandwidth_bytes_s / 1e9:.2f} GB/s)",
        f"  {len(tiles)} tile transfer(s): "
        f"{tile_bytes / 1e6:>8.2f} MB  {tile_seconds * 1e3:>8.2f} ms predicted",
    ]
    if panels:
        lines.append(
            f"  {len(panels)} panel transfer(s): "
            f"{panel_bytes / 1e6:>8.2f} MB  "
            f"{panel_seconds * 1e3:>8.2f} ms predicted"
        )
    if max_rows and max_cols:
        points = predict_scaleout(
            spec, hw, net, max_rows, max_cols, workers=(1, 2, 4, 8)
        )
        base = points[0].elapsed_seconds
        curve = "  ".join(
            f"{p.n_workers}w {base / p.elapsed_seconds:.2f}x"
            + ("*" if p.comm_bound else "")
            for p in points
        )
        lines.append(
            f"  predicted strong scaling (rows={max_rows}, cols={max_cols}; "
            "* = comm-bound):"
        )
        lines.append(f"    {curve}")
    return "\n".join(lines)


def format_perf_report(
    spans: Iterable[Span], hw: HardwareSpec | None = None
) -> str:
    """The ``fcma perf report`` text for one enriched trace.

    Section 1: per-kernel measured vs predicted milliseconds, the
    measured/predicted ratio, modeled references and L2 misses (the
    paper's table vocabulary).  Section 2: the roofline placement of
    the same kernels on the chosen machine model.  Section 3 (only when
    the trace ran the sparse variant): the density sweep of
    :func:`format_density_section`.  Section 4 (only when the trace ran
    the 2-D tiled partition): the wire model and predicted scaling of
    :func:`format_scaleout_section`.
    """
    if hw is None:
        hw = default_hardware()
    span_list = list(spans)
    comparisons = kernel_comparisons(span_list)
    if not comparisons:
        return (
            "no enriched kernel spans in trace "
            "(run `fcma perf record` or enrich_spans first)"
        )
    lines = [
        "predicted vs measured (per kernel, summed over calls)",
        f"{'kernel':<30} {'calls':>5} {'meas ms':>10} {'pred ms':>10} "
        f"{'ratio':>6} {'refs':>9} {'L2miss':>9} {'GFLOPS':>8}",
    ]
    for row in comparisons:
        lines.append(
            f"{row.kernel:<30} {row.calls:>5d} "
            f"{row.measured_seconds * 1e3:>10.2f} "
            f"{row.predicted_seconds * 1e3:>10.2f} "
            f"{row.ratio:>6.2f} "
            f"{row.mem_refs / 1e9:>8.2f}G "
            f"{row.l2_misses / 1e6:>8.1f}M "
            f"{row.achieved_gflops:>8.2f}"
        )
    lines.append("")
    lines.append(format_roofline_report(roofline_rows(span_list, hw), hw))
    density_section = format_density_section(span_list, hw)
    if density_section is not None:
        lines.append("")
        lines.append(density_section)
    scaleout_section = format_scaleout_section(span_list, hw)
    if scaleout_section is not None:
        lines.append("")
        lines.append(scaleout_section)
    return "\n".join(lines)
