"""Counter enrichment: attach model predictions to kernel spans.

The tracer records what *happened* (wall seconds per kernel); the
``repro.perf`` models know what *should* happen on a given machine
(elapsed time, memory references, L2 misses, GFLOPS — the paper's
Table 1/5–8 vocabulary).  :func:`enrich_spans` joins the two on the
spans themselves: every kernel span the stage graph emits gains the
modeled :class:`~repro.hw.counters.PerfCounters` under the existing
``pc.`` metric namespace plus ``predicted_seconds`` /
``predicted_gflops``, so a single trace file carries measured-vs-
predicted side by side.

The join key is the kernel span *name* (the stage graph's fixed
vocabulary) plus the geometry the run span records
(:meth:`repro.exec.context.RunContext.run_span` with a dataset) — no
re-execution, no access to the original arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ...data.presets import DatasetSpec
from ...hw.counters import PerfCounters
from ...hw.spec import HardwareSpec
from ...perf import (
    IncrementalStepShape,
    KernelEstimate,
    model_batched_stage12,
    model_correlation_matmul,
    model_incremental_epoch_close,
    model_incremental_tr_update,
    model_kernel_syrk,
    model_normalization,
    model_sparse_stage12,
    model_svm_cv,
    model_tile2d_compute,
)
from ..span import Span, SpanNode, build_tree

__all__ = [
    "MODELED_KERNELS",
    "TraceGeometry",
    "default_hardware",
    "enrich_spans",
    "geometry_from_spans",
    "predict_kernel",
]


def default_hardware() -> HardwareSpec:
    """The observatory's default machine model (the Xeon host)."""
    from ...hw import E5_2670

    return E5_2670


@dataclass(frozen=True)
class TraceGeometry:
    """Dataset geometry recovered from a trace (or given directly)."""

    n_voxels: int
    n_subjects: int
    n_epochs: int
    epoch_length: int
    name: str = "trace"

    def spec(self) -> DatasetSpec:
        """The equivalent :class:`~repro.data.presets.DatasetSpec`.

        Raises ``ValueError`` when the recorded epoch count is not
        divisible by the subject count (the spec invariant).
        """
        return DatasetSpec(
            name=self.name,
            n_voxels=self.n_voxels,
            n_subjects=self.n_subjects,
            n_epochs=self.n_epochs,
            epoch_length=self.epoch_length,
        )

    @classmethod
    def from_attrs(cls, attrs: Mapping[str, Any]) -> "TraceGeometry | None":
        """Geometry from a run span's attributes, if complete."""
        try:
            return cls(
                n_voxels=int(attrs["n_voxels"]),
                n_subjects=int(attrs["n_subjects"]),
                n_epochs=int(attrs["n_epochs"]),
                epoch_length=int(attrs["epoch_length"]),
                name=str(attrs.get("dataset") or "trace"),
            )
        except (KeyError, TypeError, ValueError):
            return None

    @classmethod
    def from_dataset(cls, dataset: Any) -> "TraceGeometry":
        """Geometry from any object exposing the four dimensions."""
        return cls(
            n_voxels=int(dataset.n_voxels),
            n_subjects=int(dataset.n_subjects),
            n_epochs=int(dataset.n_epochs),
            epoch_length=int(dataset.epoch_length),
            name=str(getattr(dataset, "name", None) or "trace"),
        )


def geometry_from_spans(spans: Iterable[Span]) -> TraceGeometry | None:
    """Recover geometry from the trace's run span, if recorded."""
    for span in spans:
        if span.kind == "run":
            geometry = TraceGeometry.from_attrs(span.attrs)
            if geometry is not None:
                return geometry
    return None


def _variant_from_spans(spans: Iterable[Span]) -> str | None:
    for span in spans:
        if span.kind == "run":
            variant = span.attrs.get("variant")
            if variant is not None:
                return str(variant)
    return None


def _combine(estimates: Iterable[KernelEstimate]) -> tuple[PerfCounters, float]:
    """Sum counters and modeled seconds across composed kernels.

    The fused pipeline nodes cover more than one modeled kernel (the
    merged correlate+normalize, the syrk+SVM scoring stage), so their
    span prediction is the sum of the parts.
    """
    counters = PerfCounters()
    seconds = 0.0
    for estimate in estimates:
        counters += estimate.counters
        seconds += estimate.seconds
    return counters, seconds


def predict_kernel(
    name: str,
    spec: DatasetSpec,
    n_assigned: int,
    hw: HardwareSpec,
    *,
    variant: str = "optimized-batched",
    voxel_sweep: int | None = None,
    target_block: int | None = None,
    density: float | None = None,
    epoch_len: int | None = None,
    cols: int | None = None,
) -> tuple[PerfCounters, float] | None:
    """Model one kernel span's counters and elapsed seconds.

    ``name`` is a stage-graph kernel span name; returns ``None`` for
    kernels with no model (``plan_blocks``, solver internals).  For the
    scoring node, ``variant`` selects the implementation pair the run
    actually used (baseline -> MKL syrk + LibSVM; optimized ->
    panel syrk + PhiSVM).  The sparse kernel additionally needs its
    recorded tile geometry and kept fraction (``target_block``,
    ``density`` — span metrics of ``correlate_normalize_sparse``).
    """
    if n_assigned < 1:
        return None
    if name == "correlate_normalize_sparse":
        sweep = voxel_sweep if voxel_sweep else n_assigned
        tb = target_block if target_block else spec.n_voxels
        return _combine([
            model_sparse_stage12(
                spec, n_assigned, hw, sweep, tb,
                density if density is not None else 1.0,
            )
        ])
    if name in ("incremental_tr_update", "incremental_epoch_close"):
        # Streaming kernels of the rtfmri loop: per-span cost of one
        # update / one epoch close (the span's ``calls`` metric scales
        # an aggregated tr-update span back up in enrich_spans).
        shape = IncrementalStepShape(
            n_assigned=n_assigned,
            n_voxels=spec.n_voxels,
            epoch_len=epoch_len if epoch_len else spec.epoch_length,
            window_epochs=spec.n_epochs,
        )
        if name == "incremental_tr_update":
            return _combine([model_incremental_tr_update(shape, hw)])
        return _combine([model_incremental_epoch_close(shape, hw)])
    if name == "correlate_baseline":
        return _combine([model_correlation_matmul(spec, n_assigned, hw, "mkl")])
    if name == "normalize_separated":
        return _combine([model_normalization(spec, n_assigned, hw, "separated")])
    if name == "correlate_blocked+merge":
        return _combine([
            model_correlation_matmul(spec, n_assigned, hw, "ours"),
            model_normalization(spec, n_assigned, hw, "merged"),
        ])
    if name == "correlate_normalize_batched":
        sweep = voxel_sweep if voxel_sweep else n_assigned
        return _combine([model_batched_stage12(spec, n_assigned, hw, sweep)])
    if name == "correlate_normalize_tile2d":
        # One 2-D tile of the scale-out path: the blocked gemm + merged
        # normalization restricted to the tile's column slab.
        width = cols if cols else spec.n_voxels
        return model_tile2d_compute(spec, n_assigned, min(width, spec.n_voxels), hw)
    if name in ("score_voxels", "score_panel"):
        if variant == "baseline":
            syrk_impl, svm_impl = "mkl", "libsvm"
        else:
            syrk_impl, svm_impl = "ours", "phisvm"
        return _combine([
            model_kernel_syrk(spec, n_assigned, hw, syrk_impl),
            model_svm_cv(spec, n_assigned, hw, svm_impl),
        ])
    return None


#: Kernel span names :func:`predict_kernel` has a model for.
MODELED_KERNELS = (
    "correlate_baseline",
    "normalize_separated",
    "correlate_blocked+merge",
    "correlate_normalize_batched",
    "correlate_normalize_sparse",
    "correlate_normalize_tile2d",
    "incremental_tr_update",
    "incremental_epoch_close",
    "score_voxels",
    "score_panel",
)


def enrich_spans(
    spans: Iterable[Span],
    *,
    geometry: TraceGeometry | None = None,
    hw: HardwareSpec | None = None,
    variant: str | None = None,
) -> int:
    """Attach model predictions to every modeled kernel span, in place.

    Geometry and pipeline variant default to what the trace's run span
    recorded; ``hw`` defaults to the Xeon host model.  Each enriched
    span gains the modeled ``pc.*`` counter fields (nonzero only, the
    :meth:`~repro.exec.context.RunContext.add_counters` convention) plus
    ``predicted_seconds`` and ``predicted_gflops``.  Spans already
    carrying ``predicted_seconds`` are left untouched (idempotent), as
    are spans whose kernel has no model or whose geometry violates the
    spec invariants.  Returns the number of spans enriched.
    """
    span_list = list(spans)
    if geometry is None:
        geometry = geometry_from_spans(span_list)
    if geometry is None:
        return 0
    try:
        spec = geometry.spec()
    except ValueError:
        return 0
    if hw is None:
        hw = default_hardware()
    if variant is None:
        variant = _variant_from_spans(span_list) or "optimized-batched"

    # Map stage/kernel spans to their enclosing task's voxel count so
    # kernels without a ``voxels`` metric (normalize_separated) still
    # resolve their task size.
    task_voxels: dict[int, int] = {}
    nodes: list[SpanNode] = []
    for root in build_tree(span_list):
        for node in root.walk():
            nodes.append(node)
            if node.span.kind == "task":
                n = node.span.attrs.get("n_voxels") or node.span.metrics.get(
                    "voxels"
                )
                if n:
                    for child in node.walk():
                        task_voxels[child.span.span_id] = int(n)

    enriched = 0
    for node in nodes:
        span = node.span
        if span.kind != "kernel" or span.name not in MODELED_KERNELS:
            continue
        if "predicted_seconds" in span.metrics:
            continue
        n_assigned = int(
            span.metrics.get("voxels")
            or task_voxels.get(span.span_id, 0)
        )
        sweep: int | None = None
        target_block: int | None = None
        density: float | None = None
        epoch_len: int | None = None
        cols: int | None = None
        scale = 1.0
        if span.name == "correlate_normalize_tile2d":
            # The 2-D tile records its own geometry: row extent is the
            # assigned voxel count, column extent bounds the slab.
            if span.metrics.get("rows"):
                n_assigned = int(span.metrics["rows"])
            if span.metrics.get("cols"):
                cols = int(span.metrics["cols"])
        elif span.name.startswith("incremental_"):
            if span.metrics.get("trs"):
                epoch_len = int(span.metrics["trs"])
            if span.name == "incremental_tr_update":
                # The loop records one aggregate span for all updates.
                scale = float(span.metrics.get("calls") or 1.0)
        elif span.name == "correlate_normalize_sparse":
            # The sparse kernel records its tile geometry and kept
            # fraction explicitly; deriving sweep from the tile count
            # would conflate the two tiling axes.
            if span.metrics.get("voxel_sweep"):
                sweep = int(span.metrics["voxel_sweep"])
            if span.metrics.get("target_block"):
                target_block = int(span.metrics["target_block"])
            if "density" in span.metrics:
                density = float(span.metrics["density"])
        else:
            tiles = span.metrics.get("tiles")
            if tiles and n_assigned:
                sweep = max(1, math.ceil(n_assigned / tiles))
        try:
            predicted = predict_kernel(
                span.name,
                spec,
                n_assigned,
                hw,
                variant=variant,
                voxel_sweep=sweep,
                target_block=target_block,
                density=density,
                epoch_len=epoch_len,
                cols=cols,
            )
        except (ValueError, ZeroDivisionError):
            continue
        if predicted is None:
            continue
        counters, seconds = predicted
        if scale != 1.0:
            counters = counters.scaled(scale)
            seconds *= scale
        for field_name in (
            "mem_reads",
            "mem_writes",
            "l1_misses",
            "l2_misses",
            "l2_remote_hits",
            "flops",
            "vpu_instructions",
            "vector_elements",
            "scalar_instructions",
        ):
            value = float(getattr(counters, field_name))
            if value:
                span.set_metric(f"pc.{field_name}", value)
        span.set_metric("predicted_seconds", seconds)
        if seconds > 0 and counters.flops > 0:
            span.set_metric(
                "predicted_gflops", counters.flops / seconds / 1e9
            )
        enriched += 1
    return enriched
