"""repro.obs — span-based tracing and metrics for FCMA runs.

The observability layer the paper's evaluation implies: every run
yields one hierarchical trace (run → task → stage → kernel) with typed
metric attachments, recorded by a clock-injectable
:class:`~repro.obs.tracer.Tracer` that every
:class:`~repro.exec.context.RunContext` carries.  Exporters turn a
trace into JSON-lines, a Chrome ``trace_event`` file, or a flat
per-stage metrics table; :mod:`repro.obs.compare` gives the
timing-invariant equality the regression harness asserts.

Quick start::

    from repro.exec import RunContext, make_executor
    from repro.obs import write_jsonl

    ctx = RunContext(config)
    make_executor("serial").run(dataset, ctx)
    write_jsonl(ctx.tracer.spans(), "trace.jsonl")

Deep kernels attach spans through the *ambient* tracer
(:func:`~repro.obs.runtime.kernel_span`), installed automatically while
any span is open — no signatures change.
"""

from __future__ import annotations

from .compare import TIMING_METRICS, assert_same_structure, span_structure
from .export import (
    SCHEMA,
    IncrementalJsonlWriter,
    format_metrics_table,
    from_chrome_trace,
    metrics_table,
    read_jsonl,
    render_tree,
    spans_from_cluster_trace,
    to_chrome_trace,
    write_jsonl,
)
from .live import (
    SNAPSHOT_SCHEMA,
    JsonlSink,
    LiveRuntime,
    PrometheusFileSink,
    RingSink,
    SnapshotPublisher,
    activate,
    activated,
    build_snapshot,
    current_live,
    deactivate,
)
from .metrics import (
    METRICS,
    MetricSpec,
    is_known_metric,
    is_timing_metric,
    validate_metric,
)
from .runtime import current_tracer, kernel_span, use_tracer
from .span import KINDS, Span, SpanNode, build_tree
from .tracer import SpanHandle, Tracer

__all__ = [
    "IncrementalJsonlWriter",
    "JsonlSink",
    "KINDS",
    "METRICS",
    "LiveRuntime",
    "MetricSpec",
    "PrometheusFileSink",
    "RingSink",
    "SCHEMA",
    "SNAPSHOT_SCHEMA",
    "SnapshotPublisher",
    "Span",
    "SpanHandle",
    "SpanNode",
    "TIMING_METRICS",
    "Tracer",
    "activate",
    "activated",
    "assert_same_structure",
    "build_snapshot",
    "build_tree",
    "current_live",
    "current_tracer",
    "deactivate",
    "format_metrics_table",
    "from_chrome_trace",
    "is_known_metric",
    "is_timing_metric",
    "kernel_span",
    "metrics_table",
    "read_jsonl",
    "render_tree",
    "span_structure",
    "spans_from_cluster_trace",
    "to_chrome_trace",
    "use_tracer",
    "validate_metric",
    "write_jsonl",
]
