"""The ambient tracer: how deep kernels find the active trace.

The SMO solvers, the batched correlation engine, and the cluster
simulator sit several call layers below anything that holds a
:class:`~repro.exec.context.RunContext`.  Rather than threading a
tracer through every signature, the innermost open span's tracer is
installed in a :class:`contextvars.ContextVar` (set/reset by
:class:`~repro.obs.tracer.SpanHandle`); kernels open child spans via
:func:`kernel_span`, which no-ops — one context-variable read — when
nothing is tracing.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar, Token
from typing import TYPE_CHECKING, Any, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .span import Span
    from .tracer import Tracer

__all__ = ["current_tracer", "use_tracer", "kernel_span"]

_AMBIENT: "ContextVar[Tracer | None]" = ContextVar(
    "repro_obs_tracer", default=None
)


def _install(tracer: "Tracer") -> "Token[Tracer | None]":
    return _AMBIENT.set(tracer)


def _uninstall(token: "Token[Tracer | None] | None") -> None:
    if token is not None:
        _AMBIENT.reset(token)


def current_tracer() -> "Tracer | None":
    """The tracer of the innermost open span, if any."""
    return _AMBIENT.get()


@contextmanager
def use_tracer(tracer: "Tracer") -> "Iterator[Tracer]":
    """Explicitly install ``tracer`` as ambient for a block.

    Tests (and library embedders without a RunContext) use this to
    capture kernel spans from code they call directly.
    """
    token = _install(tracer)
    try:
        yield tracer
    finally:
        _uninstall(token)


@contextmanager
def kernel_span(
    name: str, attrs: Mapping[str, Any] | None = None
) -> "Iterator[Span | None]":
    """Open a kernel span on the ambient tracer (no-op when none).

    Yields the live :class:`~repro.obs.span.Span` so the kernel can
    attach metrics, or ``None`` when no tracer is ambient — callers
    guard metric writes with ``if span is not None``.
    """
    tracer = _AMBIENT.get()
    if tracer is None or not tracer.enabled:
        yield None
        return
    with tracer.span(name, kind="kernel", attrs=attrs) as span:
        yield span
