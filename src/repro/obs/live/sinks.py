"""Pluggable snapshot sinks: JSON-lines stream, Prometheus file, ring.

Each sink consumes the same ``repro.live/v1`` snapshot dicts built by
:mod:`repro.obs.live.snapshot`:

* :class:`JsonlSink` appends one line per snapshot and flushes, so a
  tailing consumer (``fcma top --follow``, the future job service) sees
  every snapshot the moment it is published and a crash still leaves a
  valid prefix on disk.
* :class:`PrometheusFileSink` rewrites a text-format exposition file
  atomically (temp file + ``os.replace``) on every snapshot — point a
  node-exporter textfile collector or a plain ``curl``/``cat`` at it.
* :class:`RingSink` keeps the last N snapshots in memory for in-process
  consumers (the CLI's final report embeds the latest one).

Prometheus naming follows the usual conventions: everything is under
the ``fcma_`` namespace, counters get a ``_total`` suffix, histograms
expose cumulative ``_bucket{le="..."}`` series plus ``_sum``/``_count``,
and per-worker series carry a ``rank`` label.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from collections import deque
from pathlib import Path
from typing import Any, Mapping, Protocol

__all__ = [
    "JsonlSink",
    "PrometheusFileSink",
    "RingSink",
    "Sink",
    "render_prometheus",
    "sanitize_metric_name",
]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name: str) -> str:
    """Map an internal metric name onto the Prometheus charset."""
    cleaned = _NAME_RE.sub("_", name).strip("_")
    if not cleaned:
        cleaned = "unnamed"
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned.lower()


class Sink(Protocol):
    """Anything that can consume a stream of snapshot dicts."""

    def emit(self, snapshot: Mapping[str, Any]) -> None:
        """Publish one snapshot."""
        ...

    def close(self) -> None:
        """Flush and release resources; no emits after this."""
        ...


class JsonlSink:
    """Append snapshots to a JSON-lines file, flushing per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", encoding="utf-8")

    def emit(self, snapshot: Mapping[str, Any]) -> None:
        self._fh.write(json.dumps(snapshot, sort_keys=True) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class RingSink:
    """Keep the most recent snapshots in memory for in-process readers."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self._ring: deque[Mapping[str, Any]] = deque(maxlen=capacity)

    def emit(self, snapshot: Mapping[str, Any]) -> None:
        self._ring.append(snapshot)

    def close(self) -> None:  # noqa: D102 - protocol no-op
        pass

    @property
    def latest(self) -> Mapping[str, Any] | None:
        """The most recently emitted snapshot, if any."""
        return self._ring[-1] if self._ring else None

    def snapshots(self) -> list[Mapping[str, Any]]:
        """All retained snapshots, oldest first."""
        return list(self._ring)


def _fmt(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render one snapshot as Prometheus text exposition format."""
    lines: list[str] = []

    def series(
        name: str, kind: str, help_text: str, samples: list[str]
    ) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        lines.extend(samples)

    series(
        "fcma_snapshot_seq",
        "counter",
        "Sequence number of this telemetry snapshot.",
        [f"fcma_snapshot_seq {_fmt(snapshot['seq'])}"],
    )
    series(
        "fcma_elapsed_seconds",
        "gauge",
        "Wall-clock seconds since the live runtime started.",
        [f"fcma_elapsed_seconds {repr(float(snapshot['elapsed_s']))}"],
    )

    progress = snapshot["progress"]
    series(
        "fcma_progress_fraction",
        "gauge",
        "Overall completed fraction of planned work.",
        [f"fcma_progress_fraction {repr(float(progress['fraction']))}"],
    )
    if progress["eta_s"] is not None:
        series(
            "fcma_eta_seconds",
            "gauge",
            "Estimated seconds until the run completes.",
            [f"fcma_eta_seconds {repr(float(progress['eta_s']))}"],
        )
    kind_samples_done: list[str] = []
    kind_samples_total: list[str] = []
    for kind_name, pair in progress["by_kind"].items():
        label = sanitize_metric_name(kind_name)
        kind_samples_done.append(
            f'fcma_progress_done{{kind="{label}"}} {_fmt(pair["done"])}'
        )
        kind_samples_total.append(
            f'fcma_progress_planned{{kind="{label}"}} {_fmt(pair["total"])}'
        )
    if kind_samples_done:
        series(
            "fcma_progress_done",
            "gauge",
            "Completed work items by kind.",
            kind_samples_done,
        )
        series(
            "fcma_progress_planned",
            "gauge",
            "Planned work items by kind.",
            kind_samples_total,
        )

    for name, value in snapshot["counters"].items():
        metric = f"fcma_{sanitize_metric_name(name)}_total"
        series(metric, "counter", f"Monotonic counter {name}.", [
            f"{metric} {_fmt(value)}"
        ])
    for name, value in snapshot["gauges"].items():
        metric = f"fcma_{sanitize_metric_name(name)}"
        series(metric, "gauge", f"Gauge {name}.", [
            f"{metric} {repr(float(value))}"
        ])

    for name, hist in snapshot["histograms"].items():
        metric = f"fcma_{sanitize_metric_name(name)}"
        samples = []
        for bound, cumulative in hist["buckets"]:
            le = "+Inf" if bound == "+Inf" else repr(float(bound))
            samples.append(
                f'{metric}_bucket{{le="{le}"}} {_fmt(cumulative)}'
            )
        samples.append(f"{metric}_sum {repr(float(hist['sum']))}")
        samples.append(f"{metric}_count {_fmt(hist['count'])}")
        series(metric, "histogram", f"Latency histogram {name}.", samples)

    age_samples: list[str] = []
    completed_samples: list[str] = []
    stale_samples: list[str] = []
    for rank, entry in snapshot["workers"].items():
        age_samples.append(
            f'fcma_worker_heartbeat_age_seconds{{rank="{rank}"}} '
            f"{repr(float(entry['age_s']))}"
        )
        if entry["completed"] is not None:
            completed_samples.append(
                f'fcma_worker_completed{{rank="{rank}"}} '
                f"{_fmt(entry['completed'])}"
            )
        flag = 1 if (entry["stale"] or entry["lost"]) else 0
        stale_samples.append(
            f'fcma_worker_unhealthy{{rank="{rank}"}} {flag}'
        )
    if age_samples:
        series(
            "fcma_worker_heartbeat_age_seconds",
            "gauge",
            "Seconds since each worker rank was last heard from.",
            age_samples,
        )
        series(
            "fcma_worker_unhealthy",
            "gauge",
            "1 when a worker rank is stale or lost, else 0.",
            stale_samples,
        )
    if completed_samples:
        series(
            "fcma_worker_completed",
            "gauge",
            "Work items completed per worker rank (self-reported).",
            completed_samples,
        )

    resources = snapshot.get("resources")
    if resources is not None:
        series(
            "fcma_resident_memory_bytes",
            "gauge",
            "Resident set size of the publishing process.",
            [f"fcma_resident_memory_bytes {_fmt(resources['rss_bytes'])}"],
        )
        series(
            "fcma_cpu_seconds_total",
            "counter",
            "Cumulative CPU seconds of the publishing process.",
            [
                "fcma_cpu_seconds_total "
                f"{repr(float(resources['cpu_seconds']))}"
            ],
        )

    return "\n".join(lines) + "\n"


class PrometheusFileSink:
    """Atomically rewrite a Prometheus text exposition file per snapshot."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def emit(self, snapshot: Mapping[str, Any]) -> None:
        text = render_prometheus(snapshot)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.path.parent), prefix=self.path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def close(self) -> None:  # noqa: D102 - final exposition stays on disk
        pass
