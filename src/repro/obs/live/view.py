"""Terminal rendering for ``fcma top``: a refreshing run dashboard.

Pure functions from a ``repro.live/v1`` snapshot dict to text — the CLI
owns the refresh loop and the file tailing; keeping the rendering pure
makes it trivially golden-testable.  :func:`read_snapshots` /
:func:`read_latest_snapshot` tolerate a truncated final line, because
the JSON-lines stream they read is written by a process that may die
mid-line.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = [
    "read_latest_snapshot",
    "read_snapshots",
    "render_snapshot",
]


def read_snapshots(path: str | Path) -> list[dict[str, Any]]:
    """All complete snapshots in a live-events JSONL file, oldest first.

    A truncated (undecodable) final line is skipped — the writer may be
    mid-append or may have died mid-line; every earlier line must parse.
    A missing file reads as empty: ``fcma top --follow`` may legitimately
    start before the run opens its event stream.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return []
    lines = text.splitlines()
    snapshots: list[dict[str, Any]] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break
            raise
        if isinstance(record, dict) and record.get("type") == "snapshot":
            snapshots.append(record)
    return snapshots


def read_latest_snapshot(path: str | Path) -> dict[str, Any] | None:
    """The most recent complete snapshot in the file, if any."""
    snapshots = read_snapshots(path)
    return snapshots[-1] if snapshots else None


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "--"
    if value >= 3600:
        return f"{value / 3600:.1f}h"
    if value >= 60:
        return f"{value / 60:.1f}m"
    if value >= 1:
        return f"{value:.1f}s"
    return f"{value * 1000:.1f}ms"


def _fmt_bytes(value: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


def _progress_bar(fraction: float, width: int = 30) -> str:
    filled = int(round(fraction * width))
    filled = max(0, min(width, filled))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_snapshot(snapshot: dict[str, Any]) -> str:
    """Render one snapshot as the ``fcma top`` dashboard text."""
    lines: list[str] = []
    state = "final" if snapshot.get("final") else "running"
    lines.append(
        f"fcma top — {snapshot.get('schema', '?')} · snapshot "
        f"#{snapshot.get('seq', '?')} · {state} · elapsed "
        f"{_fmt_seconds(float(snapshot.get('elapsed_s', 0.0)))}"
    )

    progress = snapshot.get("progress", {})
    fraction = float(progress.get("fraction", 0.0))
    lines.append(
        f"progress {_progress_bar(fraction)} {fraction * 100:5.1f}%  "
        f"({progress.get('done', 0):.0f}/{progress.get('total', 0):.0f})  "
        f"eta {_fmt_seconds(progress.get('eta_s'))}"
    )
    by_kind = progress.get("by_kind", {})
    if by_kind:
        parts = [
            f"{name} {pair['done']:.0f}/{pair['total']:.0f}"
            for name, pair in sorted(by_kind.items())
        ]
        lines.append("  " + "   ".join(parts))

    workers = snapshot.get("workers", {})
    if workers:
        lines.append("")
        lines.append(f"{'rank':>6}  {'age':>8}  {'done':>8}  state")
        for rank, entry in sorted(workers.items(), key=lambda kv: int(kv[0])):
            if entry.get("lost"):
                status = "LOST"
            elif entry.get("stale"):
                status = "STALE"
            else:
                status = "ok"
            done = entry.get("completed")
            done_text = f"{done:.0f}" if done is not None else "--"
            lines.append(
                f"{rank:>6}  {_fmt_seconds(float(entry['age_s'])):>8}  "
                f"{done_text:>8}  {status}"
            )

    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append(
            f"{'histogram':<24}{'count':>8}  {'p50':>9}  {'p99':>9}  "
            f"{'max':>9}"
        )
        for name, hist in sorted(histograms.items()):
            lines.append(
                f"{name:<24}{hist['count']:>8}  "
                f"{_fmt_seconds(float(hist['p50'])):>9}  "
                f"{_fmt_seconds(float(hist['p99'])):>9}  "
                f"{_fmt_seconds(float(hist['max'])):>9}"
            )

    counters = snapshot.get("counters", {})
    interesting = {
        name: value
        for name, value in sorted(counters.items())
        if not name.startswith("spans_")
    }
    if interesting:
        lines.append("")
        parts = [f"{name}={value:.0f}" for name, value in interesting.items()]
        lines.append("counters: " + "  ".join(parts))

    resources = snapshot.get("resources")
    if resources:
        lines.append(
            f"resources: rss {_fmt_bytes(float(resources['rss_bytes']))}  "
            f"cpu {_fmt_seconds(float(resources['cpu_seconds']))}"
        )
    return "\n".join(lines) + "\n"
