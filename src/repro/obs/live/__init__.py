"""Live telemetry plane: in-flight metrics, heartbeats, progress/ETA.

See :mod:`repro.obs.live.runtime` for the aggregate the hot paths write
into, :mod:`repro.obs.live.snapshot` for the ``repro.live/v1`` snapshot
schema and the periodic publisher, :mod:`repro.obs.live.sinks` for the
JSON-lines / Prometheus / ring outputs, and
:mod:`repro.obs.live.view` for the ``fcma top`` rendering.
"""

from .resources import sample_resources
from .runtime import (
    DEFAULT_BUCKETS,
    LiveHistogram,
    LiveRuntime,
    activate,
    activated,
    current_live,
    deactivate,
)
from .sinks import (
    JsonlSink,
    PrometheusFileSink,
    RingSink,
    Sink,
    render_prometheus,
    sanitize_metric_name,
)
from .snapshot import SNAPSHOT_SCHEMA, SnapshotPublisher, build_snapshot
from .view import read_latest_snapshot, read_snapshots, render_snapshot

__all__ = [
    "DEFAULT_BUCKETS",
    "JsonlSink",
    "LiveHistogram",
    "LiveRuntime",
    "PrometheusFileSink",
    "RingSink",
    "SNAPSHOT_SCHEMA",
    "Sink",
    "SnapshotPublisher",
    "activate",
    "activated",
    "build_snapshot",
    "current_live",
    "deactivate",
    "read_latest_snapshot",
    "read_snapshots",
    "render_snapshot",
    "render_prometheus",
    "sample_resources",
    "sanitize_metric_name",
]
