"""The in-flight telemetry runtime: counters, gauges, histograms, heartbeats.

Post-hoc tracing (:mod:`repro.obs.tracer`) answers "what happened";
this module answers "what is happening".  A :class:`LiveRuntime` is a
small lock-protected aggregate the hot paths update as work completes:

* **monotonic counters** (``inc``) — task/tile completions, span
  closes, comm bytes;
* **gauges** (``set_gauge``) — worker counts, latency budgets;
* **totals** (``set_total``) — the blocking plan's known task/tile
  counts, the denominators progress and ETA are derived from;
* **fixed-bucket histograms** (``observe``) — per-TR / per-tile
  latency distributions with cheap p50/p99 estimates;
* **per-rank heartbeats** (``heartbeat`` / ``worker_lost``) — ages fed
  either by protocol traffic at the master or by a transport-level
  probe (:meth:`set_heartbeat_probe`).

The tracer dual-writes into the runtime through the listener seam
(:meth:`attach_tracer` registers :meth:`on_span_close`), so every
closed ``task`` span becomes a completion tick and a latency sample
without touching executor code.

One runtime may be installed process-global (:func:`activate` /
:func:`current_live`) so deep loops — the engine's tile loop, the
master-worker protocol loops, the rtfmri feedback step — can publish
without threading a handle through every signature.  The global is a
plain module attribute, *not* a ``ContextVar``: master-worker ranks run
on freshly spawned threads where context vars do not propagate.  All
publish methods are cheap no-ops to guard (``live is not None``), and
the whole plane costs nothing when no runtime is active.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..span import Span
    from ..tracer import Tracer

__all__ = [
    "DEFAULT_BUCKETS",
    "LiveHistogram",
    "LiveRuntime",
    "activate",
    "activated",
    "current_live",
    "deactivate",
]

#: Default histogram bucket upper bounds: a 1-2-5 ladder from 10 µs to
#: 500 s, covering per-TR feedback steps through multi-minute stages.
DEFAULT_BUCKETS: tuple[float, ...] = tuple(
    m * (10.0**e) for e in range(-5, 3) for m in (1.0, 2.0, 5.0)
)

#: Seconds of heartbeat silence after which a worker is flagged stale in
#: snapshots.  Matches the TCP transport's loss threshold, so a stale
#: flag here is the early warning of the peer-loss path firing.
DEFAULT_STALE_AFTER = 30.0


class LiveHistogram:
    """A fixed-bucket latency histogram with cumulative-bucket quantiles.

    Buckets are upper bounds (Prometheus ``le`` semantics) plus one
    overflow bucket.  ``observe`` is O(len(bounds)) with no allocation;
    quantile estimates return the upper bound of the bucket containing
    the requested rank (clamped to the observed max), which is exact
    enough for live p50/p99 displays.  Not internally locked — the
    owning :class:`LiveRuntime` serializes access.
    """

    __slots__ = ("bounds", "counts", "total", "count", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be a sorted non-empty tuple")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = overflow
        self.total = 0.0
        self.count = 0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        else:
            self.counts[-1] += 1
        self.total += value
        self.count += 1
        if value > self.max:
            self.max = value

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile sample."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                return min(bound, self.max)
        return self.max

    def state(self) -> dict[str, Any]:
        """JSON-ready snapshot (cumulative bucket counts, ``le`` keyed)."""
        cumulative = 0
        buckets: list[list[Any]] = []
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            buckets.append([bound, cumulative])
        buckets.append(["+Inf", self.count])
        return {
            "count": self.count,
            "sum": self.total,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }


@dataclass
class _WorkerState:
    """Last-seen bookkeeping for one remote rank."""

    last_seen: float
    completed: float | None = None
    lost: bool = False


class LiveRuntime:
    """Thread-safe in-flight telemetry aggregate of one run.

    Parameters
    ----------
    clock:
        Monotonic seconds source (default ``time.monotonic``); inject a
        fake for deterministic tests.
    stale_after:
        Heartbeat age (seconds) past which a worker is flagged stale in
        snapshots.
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.monotonic,
        *,
        stale_after: float = DEFAULT_STALE_AFTER,
    ) -> None:
        if stale_after <= 0:
            raise ValueError("stale_after must be positive")
        self.clock = clock
        self.stale_after = stale_after
        self._lock = threading.Lock()
        self._t0 = clock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._totals: dict[str, float] = {}
        self._hists: dict[str, LiveHistogram] = {}
        self._workers: dict[int, _WorkerState] = {}
        self._probe: Callable[[], Mapping[int, float]] | None = None

    # -- publishing (hot path) -------------------------------------------

    def inc(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to a monotonic counter (negative deltas rejected)."""
        if value < 0:
            raise ValueError("counters are monotonic; value must be >= 0")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time gauge (may move either direction)."""
        with self._lock:
            self._gauges[name] = float(value)

    def set_total(self, name: str, value: float) -> None:
        """Declare the known denominator for progress counter ``name``."""
        if value < 0:
            raise ValueError("totals must be >= 0")
        with self._lock:
            self._totals[name] = float(value)
            self._counters.setdefault(name, 0.0)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the named histogram."""
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists.setdefault(name, LiveHistogram())
            hist.observe(value)

    def heartbeat(
        self, rank: int, completed: float | None = None
    ) -> None:
        """Note a sign of life from ``rank`` (any protocol traffic)."""
        now = self.clock()
        with self._lock:
            state = self._workers.get(rank)
            if state is None:
                state = self._workers.setdefault(rank, _WorkerState(now))
            state.last_seen = now
            state.lost = False
            if completed is not None:
                state.completed = float(completed)

    def worker_lost(self, rank: int) -> None:
        """Flag ``rank`` as lost (the transport's peer-loss verdict)."""
        now = self.clock()
        with self._lock:
            state = self._workers.get(rank)
            if state is None:
                state = self._workers.setdefault(rank, _WorkerState(now))
            state.lost = True

    def set_heartbeat_probe(
        self, probe: Callable[[], Mapping[int, float]] | None
    ) -> None:
        """Install a transport-level age source (rank -> seconds).

        Probe ages override the message-derived ages at snapshot time —
        the TCP transport knows socket liveness more precisely than the
        protocol traffic does.
        """
        with self._lock:
            self._probe = probe

    # -- tracer dual-write -----------------------------------------------

    def on_span_close(self, span: "Span") -> None:
        """Tracer listener: fold one closed span into the live aggregate.

        Every close ticks ``spans_<kind>``; ``task`` spans additionally
        tick the ``tasks`` completion counter and feed the
        ``task_seconds`` histogram.  Merged (foreign) spans do not
        notify, so executors that count completions at the master never
        double-count against this listener.
        """
        wall = float(span.metrics.get("wall_seconds", span.duration))
        with self._lock:
            key = f"spans_{span.kind}"
            self._counters[key] = self._counters.get(key, 0.0) + 1.0
            if span.kind == "task":
                self._counters["tasks"] = self._counters.get("tasks", 0.0) + 1.0
                hist = self._hists.get("task_seconds")
                if hist is None:
                    hist = self._hists.setdefault(
                        "task_seconds", LiveHistogram()
                    )
                hist.observe(wall)

    def attach_tracer(self, tracer: "Tracer") -> None:
        """Register the dual-write listener on ``tracer``."""
        tracer.add_listener(self.on_span_close)

    def detach_tracer(self, tracer: "Tracer") -> None:
        """Remove the dual-write listener from ``tracer``."""
        tracer.remove_listener(self.on_span_close)

    # -- reading ---------------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since the runtime was constructed."""
        return self.clock() - self._t0

    def counter(self, name: str) -> float:
        """Current value of one counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot_state(self) -> dict[str, Any]:
        """A consistent copy of all live state (one lock acquisition).

        The heartbeat probe (if any) is sampled *outside* the lock —
        it belongs to the transport and must not nest under ours.
        """
        probe = self._probe
        probe_ages: Mapping[int, float] = probe() if probe is not None else {}
        now = self.clock()
        with self._lock:
            workers: dict[int, dict[str, Any]] = {}
            for rank, state in self._workers.items():
                workers[rank] = {
                    "age_s": max(0.0, now - state.last_seen),
                    "completed": state.completed,
                    "lost": state.lost,
                }
            for rank, age in probe_ages.items():
                entry = workers.setdefault(
                    rank, {"age_s": 0.0, "completed": None, "lost": False}
                )
                entry["age_s"] = float(age)
            return {
                "elapsed_s": now - self._t0,
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "totals": dict(self._totals),
                "histograms": {
                    name: hist.state() for name, hist in self._hists.items()
                },
                "workers": workers,
            }


# -- the process-global active runtime -------------------------------------

_ACTIVE: LiveRuntime | None = None
_ACTIVE_LOCK = threading.Lock()


def activate(runtime: LiveRuntime) -> None:
    """Install ``runtime`` as the process-global live runtime."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = runtime


def deactivate() -> None:
    """Clear the process-global live runtime."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        _ACTIVE = None


def current_live() -> LiveRuntime | None:
    """The active runtime, or ``None`` when no live plane is running."""
    return _ACTIVE


@contextmanager
def activated(runtime: LiveRuntime) -> Iterator[LiveRuntime]:
    """Scoped :func:`activate` / :func:`deactivate` (restores previous)."""
    global _ACTIVE
    with _ACTIVE_LOCK:
        previous = _ACTIVE
        _ACTIVE = runtime
    try:
        yield runtime
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE = previous
