"""Run-wide telemetry snapshots and the periodic publisher.

A snapshot is one JSON-ready dict — schema ``repro.live/v1`` — that
fuses everything a :class:`~repro.obs.live.runtime.LiveRuntime` knows at
an instant: overall progress and ETA (known totals vs. completion
counters), raw counters and gauges, histogram summaries (count / sum /
p50 / p99 / max / cumulative buckets), per-rank heartbeat ages with
stale/lost flags, and a ``/proc`` resource sample.  The
:class:`SnapshotPublisher` assembles one on a background thread at a
fixed cadence and hands it to every registered sink (JSON-lines stream,
Prometheus file, in-memory ring); ``stop()`` emits one final snapshot
flagged ``"final": true`` so tailing consumers know the run ended.

ETA is the classic remaining-work extrapolation: with fraction ``f``
done after ``t`` elapsed seconds, the remaining time is estimated as
``t * (1 - f) / f``.  It is ``null`` until the first completion lands
and ``0`` once progress hits 100% — monotone inputs (counters never
decrease, totals are fixed up front) make the reported fraction
non-decreasing across snapshots.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from .resources import sample_resources
from .runtime import LiveRuntime
from .sinks import Sink

__all__ = ["SNAPSHOT_SCHEMA", "SnapshotPublisher", "build_snapshot"]

#: Version tag carried by every snapshot; bump on breaking key changes.
SNAPSHOT_SCHEMA = "repro.live/v1"


def _progress(state: dict[str, Any]) -> dict[str, Any]:
    """Fold per-kind totals/counters into one progress block."""
    totals: dict[str, float] = state["totals"]
    counters: dict[str, float] = state["counters"]
    by_kind: dict[str, dict[str, float]] = {}
    done_sum = 0.0
    total_sum = 0.0
    for name, total in sorted(totals.items()):
        done = min(counters.get(name, 0.0), total)
        by_kind[name] = {"done": done, "total": total}
        done_sum += done
        total_sum += total
    fraction = min(1.0, done_sum / total_sum) if total_sum > 0 else 0.0
    elapsed = float(state["elapsed_s"])
    eta_s: float | None
    if fraction >= 1.0 and total_sum > 0:
        eta_s = 0.0
    elif fraction > 0.0:
        eta_s = elapsed * (1.0 - fraction) / fraction
    else:
        eta_s = None
    return {
        "done": done_sum,
        "total": total_sum,
        "fraction": fraction,
        "eta_s": eta_s,
        "by_kind": by_kind,
    }


def build_snapshot(
    runtime: LiveRuntime,
    *,
    seq: int,
    final: bool = False,
    resource_sampler: Callable[[], dict[str, Any] | None] = sample_resources,
) -> dict[str, Any]:
    """Assemble one ``repro.live/v1`` snapshot from ``runtime``."""
    state = runtime.snapshot_state()
    workers: dict[str, dict[str, Any]] = {}
    for rank, entry in sorted(state["workers"].items()):
        age = float(entry["age_s"])
        workers[str(rank)] = {
            "age_s": age,
            "completed": entry["completed"],
            "stale": bool(age > runtime.stale_after and not entry["lost"]),
            "lost": bool(entry["lost"]),
        }
    return {
        "type": "snapshot",
        "schema": SNAPSHOT_SCHEMA,
        "seq": seq,
        "final": final,
        "elapsed_s": float(state["elapsed_s"]),
        "progress": _progress(state),
        "counters": dict(sorted(state["counters"].items())),
        "gauges": dict(sorted(state["gauges"].items())),
        "histograms": dict(sorted(state["histograms"].items())),
        "workers": workers,
        "resources": resource_sampler(),
    }


class SnapshotPublisher:
    """Periodically snapshot a runtime and fan out to sinks.

    The publish loop runs on a daemon thread; a misbehaving sink is
    disabled after its first error instead of killing the loop (the
    telemetry plane must never take the computation down with it).
    ``stop()`` joins the thread, publishes one final snapshot, closes
    every sink, and returns that final snapshot for the run report.
    """

    def __init__(
        self,
        runtime: LiveRuntime,
        sinks: Sequence[Sink],
        *,
        interval: float = 0.5,
    ) -> None:
        if interval <= 0:
            raise ValueError("publish interval must be positive")
        self.runtime = runtime
        self.interval = interval
        self._sinks: list[Sink] = list(sinks)
        self._broken: set[int] = set()
        self._seq = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def publish(self, *, final: bool = False) -> dict[str, Any]:
        """Build one snapshot now and emit it to all healthy sinks."""
        with self._lock:
            snapshot = build_snapshot(self.runtime, seq=self._seq, final=final)
            self._seq += 1
            for i, sink in enumerate(self._sinks):
                if i in self._broken:
                    continue
                try:
                    sink.emit(snapshot)
                except Exception:  # noqa: BLE001 - sinks must not kill runs
                    self._broken.add(i)
            return snapshot

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.publish()

    def start(self) -> None:
        """Start the periodic publish thread (idempotent)."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="fcma-live-publisher", daemon=True
        )
        self._thread.start()

    def stop(self) -> dict[str, Any]:
        """Stop the loop, emit the final snapshot, close sinks."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        snapshot = self.publish(final=True)
        for i, sink in enumerate(self._sinks):
            if i in self._broken:
                continue
            try:
                sink.close()
            except Exception:  # noqa: BLE001 - sinks must not kill runs
                self._broken.add(i)
        return snapshot
