"""``/proc``-based process resource sampling (RSS, CPU time).

Snapshots carry a coarse resource picture of the publishing process so
``fcma top`` can show memory pressure alongside progress.  Only the two
numbers the paper's capacity analysis cares about are sampled — resident
set size (the correlation working set) and cumulative CPU seconds — and
both come from single small reads of ``/proc/self``, cheap enough for a
sub-second publish cadence.  On platforms without procfs the sampler
degrades to ``None`` and snapshots carry ``"resources": null``.
"""

from __future__ import annotations

import os
from typing import Any

__all__ = ["sample_resources"]


def _page_size() -> int:
    try:
        return os.sysconf("SC_PAGE_SIZE")
    except (ValueError, OSError):  # pragma: no cover - exotic platform
        return 4096


def _clock_ticks() -> int:
    try:
        return os.sysconf("SC_CLK_TCK")
    except (ValueError, OSError):  # pragma: no cover - exotic platform
        return 100


def sample_resources(pid: int | str = "self") -> dict[str, Any] | None:
    """RSS bytes and cumulative CPU seconds for ``pid``, or ``None``.

    Reads ``/proc/<pid>/statm`` (resident pages) and ``/proc/<pid>/stat``
    (utime + stime in clock ticks).  Any failure — no procfs, vanished
    pid, unparseable content — yields ``None`` rather than an error:
    resource data is garnish, never worth failing a run over.
    """
    try:
        with open(f"/proc/{pid}/statm", "rb") as fh:
            statm = fh.read().split()
        with open(f"/proc/{pid}/stat", "rb") as fh:
            stat = fh.read()
    except OSError:
        return None
    try:
        rss_pages = int(statm[1])
        # The comm field (field 2) may contain spaces; everything after
        # the closing paren is whitespace-delimited.  utime/stime are
        # fields 14/15 overall, indices 11/12 in the remainder.
        _, _, rest = stat.rpartition(b")")
        fields = rest.split()
        cpu_ticks = int(fields[11]) + int(fields[12])
    except (IndexError, ValueError):  # pragma: no cover - malformed procfs
        return None
    return {
        "rss_bytes": rss_pages * _page_size(),
        "cpu_seconds": cpu_ticks / float(_clock_ticks()),
    }
