"""Parallel runtime: MPI-like comm over pluggable transports (in-process
threads, length-prefixed TCP), the master-worker protocol with 1-D row and
2-D tile partitioning, and the multiprocessing executor."""

from .comm import (
    ANY_SOURCE,
    ANY_TAG,
    Comm,
    CommGroup,
    CommStats,
    CommTimeoutError,
    TAG_PEER_LOST,
    Transport,
    default_timeout,
    run_ranks,
)
from .executor import (
    SharedDatasetHandle,
    attach_shared_dataset,
    parallel_voxel_selection,
    serial_voxel_selection,
    share_dataset,
)
from .master_worker import master_loop, mpi_voxel_selection, worker_loop
from .tiled import collect_worker_reports, tiled_master_loop, tiled_worker_loop
from .transport import TcpListener, TcpTransport, spawn_local_workers

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "CommGroup",
    "CommStats",
    "CommTimeoutError",
    "SharedDatasetHandle",
    "TAG_PEER_LOST",
    "TcpListener",
    "TcpTransport",
    "Transport",
    "attach_shared_dataset",
    "collect_worker_reports",
    "default_timeout",
    "master_loop",
    "mpi_voxel_selection",
    "parallel_voxel_selection",
    "run_ranks",
    "serial_voxel_selection",
    "share_dataset",
    "spawn_local_workers",
    "tiled_master_loop",
    "tiled_worker_loop",
    "worker_loop",
]
