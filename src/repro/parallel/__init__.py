"""Parallel runtime: MPI-like comm, the master-worker protocol, and the
multiprocessing executor."""

from .comm import ANY_SOURCE, ANY_TAG, Comm, CommGroup, run_ranks
from .executor import (
    SharedDatasetHandle,
    attach_shared_dataset,
    parallel_voxel_selection,
    serial_voxel_selection,
    share_dataset,
)
from .master_worker import master_loop, mpi_voxel_selection, worker_loop

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "CommGroup",
    "SharedDatasetHandle",
    "attach_shared_dataset",
    "master_loop",
    "mpi_voxel_selection",
    "parallel_voxel_selection",
    "run_ranks",
    "serial_voxel_selection",
    "share_dataset",
    "worker_loop",
]
