"""2-D tile-partitioned master-worker voxel selection.

The row-partitioned protocol (:mod:`repro.parallel.master_worker`)
ships whole correlation row panels as single tasks — the paper's 1-D
decomposition.  This module distributes the *tiles* of the
``(assigned × all-voxels)`` stage-1/2 matrix instead, the scheme that
scaled all-pairs Pearson to thousands of cores in *Parallel Pairwise
Correlation Computation on Intel Xeon Phi Clusters*:

* **Tile tasks.**  :func:`repro.exec.partition.partition_tiles` carves
  row panels × column blocks; a worker computes one tile's fused
  stage 1/2 (per-tile gemm + in-cache
  :func:`~repro.core.normalization.fuse_normalize_tile`, the bitwise
  tiling-invariant kernel of the engine's tiled mode) and returns the
  normalized block.
* **Owner-computes merge.**  The master owns panel assembly
  (:class:`~repro.core.results.PanelAssembler`): tiles land in any
  order from any worker; a completed panel immediately becomes a
  stage-3 *score task* dispatched back to a worker.
* **Communication/compute overlap.**  A worker sends its next work
  request *before* computing the current item, so the master's reply
  travels (and the next tile is chosen) while the gemm runs.  The
  exposed remainder is timed under the ``comm.fetch_wait`` stage; the
  hidden part accumulates in the ``overlap_hidden_seconds`` counter.
* **Fault tolerance at tile granularity.**  TAG_ERROR re-queues a
  single tile/score item (sorted, deterministic); TAG_PEER_LOST
  re-queues everything the dead worker had in flight.  Because the
  per-tile kernels are bitwise deterministic, results are identical
  whichever worker re-runs a tile — worker loss is invisible in the
  output bits.

Work-item payloads (over TAG_TASK/TAG_RESULT of the same tag set as
the row protocol):

========  =======================================  ==============================
kind      TAG_TASK payload                         TAG_RESULT payload
========  =======================================  ==============================
"tile"    ("tile", index, panel, rows, c0, c1)     ("tile", index, panel, c0, c1, block)
"score"   ("score", panel, rows, corr)             ("score", panel, VoxelScores)
========  =======================================  ==============================
"""

from __future__ import annotations

import bisect
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from ..core.normalization import NormalizationWorkspace, fuse_normalize_tile
from ..core.pipeline import FCMAConfig, preprocess_dataset
from ..core.results import PanelAssembler, VoxelScores
from ..data.dataset import FMRIDataset
from ..obs.live.runtime import current_live
from .comm import Comm, TAG_PEER_LOST, TAG_TELEMETRY
from .master_worker import (
    TAG_DONE,
    TAG_ERROR,
    TAG_REQUEST,
    TAG_RESULT,
    TAG_STOP,
    TAG_TASK,
    TELEMETRY_INTERVAL,
    TaskFailedError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.context import RunContext
    from ..exec.partition import TileTask

__all__ = [
    "collect_worker_reports",
    "compute_tile",
    "score_panel",
    "tiled_master_loop",
    "tiled_worker_loop",
]

#: Work-item key: ("tile", tile index) or ("score", panel id).
WorkKey = tuple[str, int]


def compute_tile(
    z: np.ndarray,
    rows: np.ndarray,
    col_start: int,
    col_stop: int,
    epochs_per_subject: int,
    workspace: NormalizationWorkspace | None = None,
    panel: np.ndarray | None = None,
) -> np.ndarray:
    """Fused stage-1/2 of one 2-D tile: gemm + in-cache normalize.

    Same arithmetic as the engine's tiled mode
    (:func:`repro.core.engine._run_tiled`): ``panel @ z.T`` through an
    axis-swapped output view, then the bitwise-exact fused normalizer.
    The result is a fresh C-contiguous float32 ``(rows, E, cols)``
    block, safe to ship.  ``panel`` lets the caller reuse the
    ``z[:, rows]`` contiguous copy across column tiles of one row
    panel.
    """
    n_epochs = z.shape[0]
    if panel is None:
        panel = z[:, rows]  # (E, width, T) contiguous copy
    tile = np.empty(
        (rows.size, n_epochs, col_stop - col_start), dtype=np.float32
    )
    zt = z.swapaxes(1, 2)
    np.matmul(panel, zt[:, :, col_start:col_stop], out=tile.swapaxes(0, 1))
    fuse_normalize_tile(tile, epochs_per_subject, workspace=workspace)
    return tile


def score_panel(
    grouped: FMRIDataset,
    config: FCMAConfig,
    rows: np.ndarray,
    correlations: np.ndarray,
    ctx: "RunContext",
) -> VoxelScores:
    """Stage 3 of one assembled row panel (same path as the stage graph)."""
    from ..core.kernels import kernel_matrix_blocked
    from ..core.voxel_selection import score_voxels
    from ..exec.registry import create_backend
    from ..svm.cross_validation import kfold_ids

    epochs = grouped.epochs
    if epochs.n_subjects >= 2:
        fold_ids = np.asarray(epochs.subjects())
    else:
        fold_ids = np.asarray(kfold_ids(len(epochs), config.online_folds))
    backend = create_backend(config)
    return score_voxels(
        correlations,
        rows,
        epochs.labels(),
        fold_ids,
        backend,
        kernel_fn=kernel_matrix_blocked,
        batch_voxels=config.batch_voxels,
    )


def tiled_master_loop(
    comm: Comm,
    tiles: Sequence["TileTask"],
    n_voxels: int,
    n_epochs: int,
    max_retries: int = 2,
    reports: dict[int, Any] | None = None,
) -> VoxelScores:
    """Serve tile and score tasks until every panel is scored.

    Runs on rank 0.  Dispatch priority: re-queued score items, freshly
    completed panels, re-queued tiles, fresh tiles — all in sorted id
    order, so scheduling is deterministic given the same event
    sequence.  Workers that ask while all current work is in flight are
    parked and woken by the next completion or re-queue.
    """
    if comm.rank != 0:
        raise ValueError("tiled_master_loop must run on rank 0")
    if max_retries < 1:
        raise ValueError("max_retries must be >= 1")
    if comm.size - 1 < 1:
        raise ValueError("need at least one worker rank")
    if not tiles:
        raise ValueError("no tiles to serve")

    assembler = PanelAssembler(n_voxels, n_epochs)
    panel_tiles: dict[int, int] = {}
    for t in tiles:
        panel_tiles[t.panel] = panel_tiles.get(t.panel, 0) + 1
    for panel_id in sorted(panel_tiles):
        rows = next(t.rows for t in tiles if t.panel == panel_id)
        assembler.expect(panel_id, rows, panel_tiles[panel_id])

    tile_pending = deque(range(len(tiles)))
    retry_tiles: list[int] = []
    retry_scores: list[int] = []
    score_ready: list[int] = []  # completed panels awaiting dispatch
    scores: dict[int, VoxelScores] = {}
    attempts: dict[WorkKey, int] = {}
    in_flight: dict[int, set[WorkKey]] = {}
    failure: tuple[WorkKey, str] | None = None
    parked: deque[int] = deque()
    active = set(range(1, comm.size))
    stopped: set[int] = set()
    n_panels = len(panel_tiles)

    def send_tile(dest: int, idx: int) -> None:
        t = tiles[idx]
        key: WorkKey = ("tile", idx)
        attempts[key] = attempts.get(key, 0) + 1
        in_flight.setdefault(dest, set()).add(key)
        comm.send(
            ("tile", idx, t.panel, np.asarray(t.rows), t.col_start, t.col_stop),
            dest,
            TAG_TASK,
        )

    def send_score(dest: int, panel_id: int) -> None:
        key: WorkKey = ("score", panel_id)
        attempts[key] = attempts.get(key, 0) + 1
        in_flight.setdefault(dest, set()).add(key)
        comm.send(
            (
                "score",
                panel_id,
                assembler.rows_of(panel_id),
                assembler.panel_buffer(panel_id),
            ),
            dest,
            TAG_TASK,
        )

    def dispatch(dest: int) -> bool:
        if retry_scores:
            send_score(dest, retry_scores.pop(0))
        elif score_ready:
            send_score(dest, score_ready.pop(0))
        elif retry_tiles:
            send_tile(dest, retry_tiles.pop(0))
        elif tile_pending:
            send_tile(dest, tile_pending.popleft())
        else:
            return False
        return True

    def work_outstanding() -> bool:
        return bool(
            retry_scores
            or score_ready
            or retry_tiles
            or tile_pending
            or any(in_flight.values())
        )

    def drain_parked() -> None:
        while parked and (retry_scores or score_ready or retry_tiles or tile_pending):
            dispatch(parked.popleft())
        if not work_outstanding():
            while parked:
                rank = parked.popleft()
                comm.send(None, rank, TAG_STOP)
                stopped.add(rank)

    def requeue(key: WorkKey, *, refund: bool) -> None:
        if refund:
            attempts[key] = max(0, attempts.get(key, 1) - 1)
        kind, ident = key
        if kind == "tile":
            bisect.insort(retry_tiles, ident)
        else:
            bisect.insort(retry_scores, ident)

    live = current_live()
    while len(stopped) < len(active):
        src, tag, payload = comm.recv()
        if live is not None and tag != TAG_PEER_LOST:
            live.heartbeat(src)
        if tag == TAG_TELEMETRY:
            if live is not None and isinstance(payload, dict):
                live.heartbeat(src, completed=payload.get("completed"))
            continue
        if tag == TAG_DONE:
            # Post-stop telemetry from an already-stopped worker (TCP
            # workers report before disconnecting); collected here for
            # collect_worker_reports to pick up after the loop.
            if reports is not None:
                reports[src] = payload
            continue
        if tag == TAG_REQUEST:
            if dispatch(src):
                pass
            elif work_outstanding():
                parked.append(src)
            else:
                comm.send(None, src, TAG_STOP)
                stopped.add(src)
        elif tag == TAG_RESULT:
            kind = payload[0]
            if kind == "tile":
                _, idx, panel_id, c0, c1, block = payload
                in_flight.get(src, set()).discard(("tile", idx))
                if live is not None:
                    live.inc("tiles")
                done = assembler.add(panel_id, c0, c1, block)
                if done is not None:
                    bisect.insort(score_ready, panel_id)
            else:
                _, panel_id, result = payload
                in_flight.get(src, set()).discard(("score", panel_id))
                if live is not None:
                    live.inc("tasks")
                if panel_id not in scores:
                    scores[panel_id] = result
                    assembler.release(panel_id)
            drain_parked()
        elif tag == TAG_ERROR:
            key, message = payload
            key = (key[0], key[1])
            in_flight.get(src, set()).discard(key)
            if attempts.get(key, 0) < max_retries:
                requeue(key, refund=False)
            elif failure is None:
                failure = (key, message)
            if live is not None:
                live.inc("task_errors")
            drain_parked()
        elif tag == TAG_PEER_LOST:
            if live is not None:
                live.worker_lost(src)
            if src not in active:
                continue
            active.discard(src)
            stopped.discard(src)
            if src in parked:
                parked.remove(src)
            for key in sorted(in_flight.pop(src, set())):
                requeue(key, refund=True)
            if not active and work_outstanding():
                raise RuntimeError(
                    "all workers lost with tile/score work unfinished"
                )
            drain_parked()
        else:
            raise RuntimeError(f"master got unexpected tag {tag} from {src}")

    if failure is not None:
        (kind, ident), message = failure
        raise TaskFailedError(
            f"{kind} task {ident} failed after {max_retries} attempts: "
            f"{message}"
        )
    missing = [p for p in range(n_panels) if p not in scores]
    if missing:
        raise RuntimeError(f"panels without scores: {missing}")
    parts = [scores[p] for p in range(n_panels)]
    return VoxelScores.concatenate(parts).sorted_by_accuracy()


def tiled_worker_loop(
    comm: Comm,
    dataset: FMRIDataset,
    config: FCMAConfig,
    ctx: "RunContext",
) -> int:
    """Pull tile/score work until stopped; returns items completed.

    Overlap structure: the request for the *next* item goes out before
    the current one computes, so the master round-trip hides behind the
    gemm.  Exposed wait lands in the ``comm.fetch_wait`` stage; the
    hidden fraction (message arrived while computing) accumulates in
    the ``overlap_hidden_seconds`` counter.  Item failures are reported
    per item (TAG_ERROR) and the loop keeps serving.
    """
    if comm.rank == 0:
        raise ValueError("tiled_worker_loop must not run on rank 0")
    grouped, z = preprocess_dataset(dataset)
    epochs_per_subject = grouped.epochs.epochs_per_subject()
    workspace = NormalizationWorkspace()
    panel_cache: tuple[int, np.ndarray] | None = None
    completed = 0
    # In-process ranks (thread transport) see the master's live runtime
    # and can feed per-tile latency histograms directly; TCP worker
    # processes see None and publish only via telemetry frames.
    live = current_live()
    last_telemetry = time.monotonic()

    comm.send(None, 0, TAG_REQUEST)
    t_request = time.monotonic()
    while True:
        t_wait = time.monotonic()
        src, tag, payload, arrived = comm.recv_timed(source=0)
        exposed = time.monotonic() - t_wait
        ctx.add_time("comm.fetch_wait", exposed)
        ctx.increment(
            "overlap_hidden_seconds",
            max(0.0, (arrived - t_request) - exposed),
        )
        if tag == TAG_STOP:
            return completed
        if tag == TAG_PEER_LOST:
            raise RuntimeError("master connection lost")
        if tag != TAG_TASK:
            raise RuntimeError(f"worker got unexpected tag {tag}")
        # Prefetch: ask for the next item before computing this one.
        comm.send(None, 0, TAG_REQUEST)
        t_request = time.monotonic()
        kind = payload[0]
        try:
            if kind == "tile":
                _, idx, panel_id, rows, c0, c1 = payload
                rows = np.asarray(rows, dtype=np.int64)
                if panel_cache is None or panel_cache[0] != panel_id:
                    panel_cache = (panel_id, z[:, rows])
                with ctx.task_span(rows.size, int(rows[0])) as span:
                    with ctx.tracer.span(
                        "correlate_normalize_tile2d", kind="kernel"
                    ) as kspan:
                        block = compute_tile(
                            z,
                            rows,
                            c0,
                            c1,
                            epochs_per_subject,
                            workspace=workspace,
                            panel=panel_cache[1],
                        )
                        kspan.add_metric("rows", float(rows.size))
                        kspan.add_metric("cols", float(c1 - c0))
                        kspan.add_metric("bytes_moved", float(block.nbytes))
                    span.add_metric("voxels", float(rows.size))
                if live is not None:
                    live.observe("tile_seconds", kspan.duration)
                comm.send(("tile", idx, panel_id, c0, c1, block), 0, TAG_RESULT)
            elif kind == "score":
                _, panel_id, rows, corr = payload
                rows = np.asarray(rows, dtype=np.int64)
                corr = np.ascontiguousarray(corr, dtype=np.float32)
                with ctx.task_span(rows.size, int(rows[0])) as span:
                    with ctx.tracer.span("score_panel", kind="kernel") as kspan:
                        result = score_panel(grouped, config, rows, corr, ctx)
                        kspan.add_metric("voxels", float(rows.size))
                    span.add_metric("voxels", float(rows.size))
                comm.send(("score", panel_id, result), 0, TAG_RESULT)
            else:
                raise RuntimeError(f"unknown work kind {kind!r}")
        except Exception as exc:  # noqa: BLE001 - reported to master
            key: WorkKey = (kind, payload[1])
            comm.send((key, f"{type(exc).__name__}: {exc}"), 0, TAG_ERROR)
            continue
        completed += 1
        now = time.monotonic()
        if now - last_telemetry >= TELEMETRY_INTERVAL:
            comm.send_telemetry({"completed": completed})
            last_telemetry = now


def collect_worker_reports(
    comm: Comm, expected: set[int], collected: dict[int, Any] | None = None
) -> dict[int, Any]:
    """Gather each worker's post-stop TAG_DONE telemetry payload.

    ``collected`` carries reports the master loop already absorbed
    while other workers were still active (its ``reports=`` out-param).
    Workers that die between their STOP and their report shrink the
    expectation via TAG_PEER_LOST instead of deadlocking the collect.
    """
    reports: dict[int, Any] = dict(collected or {})
    waiting = set(expected) - set(reports)
    while waiting:
        src, tag, payload = comm.recv()
        if tag == TAG_DONE:
            reports[src] = payload
            waiting.discard(src)
        elif tag == TAG_PEER_LOST:
            waiting.discard(src)
        # anything else (stale duplicate results) is ignored
    return reports
