"""Length-prefixed TCP transport: the master-worker protocol over sockets.

This is the second implementation of the :class:`~repro.parallel.comm.Transport`
seam (the first is the in-process :class:`~repro.parallel.comm.CommGroup`).
It runs the *unchanged* master-worker protocol across real processes and
hosts:

* **Star topology.**  Rank 0 (the master) listens; each worker connects
  and is assigned the next rank in accept order.  Worker↔worker frames
  are routed through the master without unpickling — the router reads
  the fixed header, sees ``dest != 0``, and relays the raw bytes.
* **Frames.**  Every frame is ``magic | kind | body``.  Message bodies
  are pickle protocol 5 with out-of-band numpy buffers
  (``buffer_callback``), so large arrays are sent as raw length-prefixed
  chunks with no serialization copy; on receive they land in writable
  ``bytearray`` buffers.
* **Handshake.**  Worker sends HELLO, master replies WELCOME with the
  assigned rank and world size.
* **Liveness.**  Both sides exchange heartbeat frames; a closed socket
  or a stale peer turns into a :data:`~repro.parallel.comm.TAG_PEER_LOST`
  message in the master's mailbox, which the master loop converts into
  a task re-queue.  A clean shutdown sends BYE first, so normal exits
  are not reported as losses.

Timeouts come from :func:`repro.parallel.comm.default_timeout` (the
``FCMA_COMM_TIMEOUT`` environment variable or ``FCMAConfig.comm_timeout``
via the executor) unless given explicitly.
"""

from __future__ import annotations

import os
import pickle
import queue
import socket
import struct
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from .comm import (
    CommStats,
    CommTimeoutError,
    Message,
    TAG_PEER_LOST,
    default_timeout,
)

__all__ = [
    "TcpListener",
    "TcpTransport",
    "spawn_local_workers",
    "worker_command",
]

_MAGIC = b"FCM1"

# Frame kinds.
_K_MSG = 1        # routed message: src, dest, tag, pickled payload
_K_HELLO = 2      # worker -> master: join request
_K_WELCOME = 3    # master -> worker: assigned rank + world size
_K_HEARTBEAT = 4  # either direction: liveness
_K_BARRIER = 5    # worker -> master: arrived at barrier
_K_RELEASE = 6    # master -> worker: barrier released
_K_BYE = 7        # either direction: clean shutdown, not a loss

_HEAD = struct.Struct("!iiqI")  # src, dest, tag, n_buffers
_LEN = struct.Struct("!Q")
_PAIR = struct.Struct("!ii")

#: Seconds between heartbeat frames.
_HEARTBEAT_INTERVAL = 1.0
#: Seconds of silence after which a peer is declared lost.  A killed
#: process is detected immediately via EOF; this only catches network
#: hangs, so it is deliberately generous.
_HEARTBEAT_TIMEOUT = 30.0


def _recv_exact(sock: socket.socket, n: int) -> bytearray:
    """Read exactly ``n`` bytes into a writable buffer (EOF -> error)."""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        k = sock.recv_into(view[got:], n - got)
        if k == 0:
            raise ConnectionError("peer closed the connection")
        got += k
    return buf


def _read_frame(
    sock: socket.socket,
) -> tuple[int, tuple[int, int, int] | None, list[bytearray]]:
    """Read one frame: ``(kind, msg_header, chunks)``.

    For ``_K_MSG`` the header is ``(src, dest, tag)`` and ``chunks`` is
    the pickle body followed by its out-of-band buffers; for WELCOME and
    BARRIER the two ints ride in ``msg_header[:2]``; other kinds carry
    nothing.
    """
    magic = bytes(_recv_exact(sock, 4))
    if magic != _MAGIC:
        raise ConnectionError(f"bad frame magic {magic!r}")
    kind = _recv_exact(sock, 1)[0]
    if kind == _K_MSG:
        src, dest, tag, nbufs = _HEAD.unpack(bytes(_recv_exact(sock, _HEAD.size)))
        lens = [
            _LEN.unpack(bytes(_recv_exact(sock, _LEN.size)))[0]
            for _ in range(nbufs)
        ]
        chunks = [_recv_exact(sock, n) for n in lens]
        return kind, (src, dest, tag), chunks
    if kind in (_K_WELCOME, _K_BARRIER):
        a, b = _PAIR.unpack(bytes(_recv_exact(sock, _PAIR.size)))
        return kind, (a, b, 0), []
    return kind, None, []


def _msg_frame(src: int, dest: int, tag: int, payload: Any) -> list[Any]:
    """Encode a message as sendable parts (header bytes + buffers)."""
    buffers: list[pickle.PickleBuffer] = []
    data = pickle.dumps(payload, protocol=5, buffer_callback=buffers.append)
    chunks: list[Any] = [data] + [b.raw() for b in buffers]
    head = bytearray(_MAGIC)
    head.append(_K_MSG)
    head += _HEAD.pack(src, dest, tag, len(chunks))
    for c in chunks:
        head += _LEN.pack(len(memoryview(c)))
    return [bytes(head), *chunks]


def _raw_frame(src: int, dest: int, tag: int, chunks: Sequence[Any]) -> list[Any]:
    """Re-frame already-serialized chunks (master-side relay path)."""
    head = bytearray(_MAGIC)
    head.append(_K_MSG)
    head += _HEAD.pack(src, dest, tag, len(chunks))
    for c in chunks:
        head += _LEN.pack(len(c))
    return [bytes(head), *chunks]


def _control_frame(kind: int, a: int = 0, b: int = 0) -> bytes:
    head = bytearray(_MAGIC)
    head.append(kind)
    if kind in (_K_WELCOME, _K_BARRIER):
        head += _PAIR.pack(a, b)
    return bytes(head)


def _decode(chunks: Sequence[bytearray]) -> Any:
    return pickle.loads(bytes(chunks[0]), buffers=list(chunks[1:]))


@dataclass
class _Peer:
    """Master-side state for one connected worker."""

    rank: int
    sock: socket.socket
    lock: threading.Lock = field(default_factory=threading.Lock)
    last_seen: float = field(default_factory=time.monotonic)
    alive: bool = True
    departed: bool = False  # sent BYE: a clean exit, not a loss


class TcpListener:
    """Bound-but-not-yet-connected master endpoint.

    Splitting bind from accept lets the caller learn the chosen port
    (``port=0``) and launch worker processes *before* blocking in
    :meth:`accept`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(128)

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` workers should connect to."""
        host, port = self._server.getsockname()[:2]
        return str(host), int(port)

    def accept(
        self, n_workers: int, timeout: float | None = None
    ) -> "TcpTransport":
        """Accept ``n_workers`` connections and hand out ranks.

        Ranks are assigned in accept order (1..n).  Returns the rank-0
        transport endpoint with its router threads running.
        """
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        resolved = default_timeout() if timeout is None else timeout
        transport = TcpTransport(
            rank=0, size=n_workers + 1, timeout=resolved
        )
        self._server.settimeout(resolved)
        try:
            for rank in range(1, n_workers + 1):
                try:
                    sock, _addr = self._server.accept()
                except socket.timeout:
                    raise CommTimeoutError(
                        f"master: only {rank - 1}/{n_workers} workers "
                        f"connected within {resolved}s"
                    ) from None
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                kind, _, _ = _read_frame(sock)
                if kind != _K_HELLO:
                    sock.close()
                    raise ConnectionError(
                        f"expected HELLO from connecting worker, got kind {kind}"
                    )
                sock.sendall(_control_frame(_K_WELCOME, rank, n_workers + 1))
                transport._add_peer(_Peer(rank=rank, sock=sock))
        finally:
            self._server.close()
        transport._start()
        return transport

    def close(self) -> None:
        self._server.close()


class TcpTransport:
    """One process's endpoint of the TCP fabric (master or worker).

    Implements the :class:`~repro.parallel.comm.Transport` protocol for
    exactly one local rank; construct via :meth:`TcpListener.accept`
    (master) or :meth:`connect` (worker).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        timeout: float,
        heartbeat_interval: float = _HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = _HEARTBEAT_TIMEOUT,
    ):
        self._rank = rank
        self._size = size
        self._timeout = timeout
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout
        self._box: "queue.Queue[Message]" = queue.Queue()
        self._stash: list[Message] = []
        self._local_stats = CommStats()
        self._closed = threading.Event()
        self._threads: list[threading.Thread] = []
        # Master-side routing + barrier state.
        self._peers: dict[int, _Peer] = {}
        self._barrier_cv = threading.Condition()
        self._barrier_arrived: set[int] = set()
        # Worker-side link to the master.
        self._master_sock: socket.socket | None = None
        self._master_lock = threading.Lock()
        self._master_last_seen = time.monotonic()
        self._releases: "queue.Queue[int]" = queue.Queue()

    # -- construction ----------------------------------------------------

    @classmethod
    def connect(
        cls,
        host: str,
        port: int,
        timeout: float | None = None,
        heartbeat_interval: float = _HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = _HEARTBEAT_TIMEOUT,
    ) -> "TcpTransport":
        """Join the fabric as a worker; blocks until WELCOME."""
        resolved = default_timeout() if timeout is None else timeout
        sock = socket.create_connection((host, port), timeout=resolved)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.sendall(_control_frame(_K_HELLO))
        kind, header, _ = _read_frame(sock)
        if kind != _K_WELCOME or header is None:
            raise ConnectionError(f"expected WELCOME, got kind {kind}")
        rank, size = header[0], header[1]
        sock.settimeout(None)
        transport = cls(
            rank=rank,
            size=size,
            timeout=resolved,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
        )
        transport._master_sock = sock
        transport._start()
        return transport

    def _add_peer(self, peer: _Peer) -> None:
        self._peers[peer.rank] = peer

    def _start(self) -> None:
        if self._rank == 0:
            for peer in self._peers.values():
                t = threading.Thread(
                    target=self._route, args=(peer,), daemon=True,
                    name=f"tcp-route-{peer.rank}",
                )
                t.start()
                self._threads.append(t)
        else:
            t = threading.Thread(
                target=self._reader, daemon=True, name="tcp-reader"
            )
            t.start()
            self._threads.append(t)
        hb = threading.Thread(
            target=self._heartbeat, daemon=True, name="tcp-heartbeat"
        )
        hb.start()
        self._threads.append(hb)

    # -- Transport interface ---------------------------------------------

    @property
    def size(self) -> int:
        return self._size

    @property
    def timeout(self) -> float:
        return self._timeout

    @property
    def rank(self) -> int:
        """The single local rank this endpoint serves."""
        return self._rank

    def _check(self, rank: int) -> None:
        if rank != self._rank:
            raise ValueError(
                f"TCP endpoint serves rank {self._rank}, not {rank}"
            )

    def deliver(self, src: int, dest: int, tag: int, payload: Any) -> int:
        if dest == self._rank:
            parts = _msg_frame(src, dest, tag, payload)
            nbytes = sum(len(memoryview(p)) for p in parts[1:])
            self._local_deliver(src, tag, _decode(parts[1:]), nbytes)
            return nbytes
        parts = _msg_frame(src, dest, tag, payload)
        nbytes = sum(len(memoryview(p)) for p in parts[1:])
        if self._rank == 0:
            peer = self._peers.get(dest)
            if peer is None:
                raise ValueError(f"dest {dest} out of range")
            if not peer.alive:
                # The loss has (or will) put TAG_PEER_LOST in our own
                # mailbox; the message is dropped, not an error.
                return nbytes
            self._send_parts(peer.sock, peer.lock, parts)
        else:
            sock = self._master_sock
            if sock is None or self._closed.is_set():
                raise ConnectionError("transport is closed")
            self._send_parts(sock, self._master_lock, parts)
        return nbytes

    def poll(self, rank: int, timeout: float) -> Message:
        self._check(rank)
        try:
            return self._box.get(timeout=timeout)
        except queue.Empty:
            raise CommTimeoutError("mailbox empty") from None

    def stash(self, rank: int) -> list[Message]:
        self._check(rank)
        return self._stash

    def stats(self, rank: int) -> CommStats:
        self._check(rank)
        return self._local_stats

    def alive_workers(self) -> list[int]:
        """Worker ranks still connected (master endpoint only)."""
        return sorted(r for r, p in self._peers.items() if p.alive)

    def heartbeat_ages(self) -> dict[int, float]:
        """Seconds since each live worker was last heard from.

        Socket-level liveness (data frames and transport heartbeats both
        refresh ``last_seen``), so it is fresher than protocol traffic
        alone.  Master endpoint only; the live telemetry plane installs
        this as its heartbeat probe for TCP runs.
        """
        now = time.monotonic()
        return {
            r: max(0.0, now - p.last_seen)
            for r, p in self._peers.items()
            if p.alive
        }

    def barrier(self, rank: int) -> None:
        self._check(rank)
        if self._rank == 0:
            deadline = time.monotonic() + self._timeout
            with self._barrier_cv:
                while True:
                    alive = {r for r, p in self._peers.items() if p.alive}
                    if alive <= self._barrier_arrived:
                        self._barrier_arrived -= alive
                        break
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._barrier_cv.wait(remaining):
                        raise CommTimeoutError(
                            f"rank 0: barrier timed out after {self._timeout}s "
                            f"(arrived: {sorted(self._barrier_arrived)}, "
                            f"alive: {sorted(alive)})"
                        )
            for r in sorted(alive):
                peer = self._peers[r]
                self._send_parts(
                    peer.sock, peer.lock, [_control_frame(_K_RELEASE)]
                )
        else:
            sock = self._master_sock
            if sock is None:
                raise ConnectionError("transport is closed")
            self._send_parts(
                sock, self._master_lock, [_control_frame(_K_BARRIER, self._rank, 0)]
            )
            try:
                self._releases.get(timeout=self._timeout)
            except queue.Empty:
                raise CommTimeoutError(
                    f"rank {self._rank}: barrier release not received "
                    f"within {self._timeout}s"
                ) from None

    # -- internals -------------------------------------------------------

    def _local_deliver(self, src: int, tag: int, payload: Any, nbytes: int) -> None:
        self._box.put((src, tag, payload, time.monotonic()))
        self._local_stats.add_recv(nbytes)

    @staticmethod
    def _send_parts(
        sock: socket.socket, lock: threading.Lock, parts: Sequence[Any]
    ) -> None:
        try:
            with lock:
                for part in parts:
                    sock.sendall(part)
        except OSError as exc:
            raise ConnectionError(f"send failed: {exc}") from exc

    def _route(self, peer: _Peer) -> None:
        """Master-side per-worker reader: deliver to rank 0 or relay."""
        try:
            while not self._closed.is_set():
                kind, header, chunks = _read_frame(peer.sock)
                peer.last_seen = time.monotonic()
                if kind == _K_MSG and header is not None:
                    src, dest, tag = header
                    if dest == 0:
                        nbytes = sum(len(c) for c in chunks)
                        self._local_deliver(src, tag, _decode(chunks), nbytes)
                    else:
                        target = self._peers.get(dest)
                        if target is not None and target.alive:
                            self._send_parts(
                                target.sock,
                                target.lock,
                                _raw_frame(src, dest, tag, chunks),
                            )
                elif kind == _K_BARRIER and header is not None:
                    with self._barrier_cv:
                        self._barrier_arrived.add(header[0])
                        self._barrier_cv.notify_all()
                elif kind == _K_BYE:
                    peer.departed = True
                    return
                # heartbeats only refresh last_seen
        except (ConnectionError, OSError):
            pass
        finally:
            if not peer.departed and not self._closed.is_set():
                self._peer_lost(peer)

    def _reader(self) -> None:
        """Worker-side reader: everything arrives from the master link."""
        sock = self._master_sock
        assert sock is not None
        try:
            while not self._closed.is_set():
                kind, header, chunks = _read_frame(sock)
                self._master_last_seen = time.monotonic()
                if kind == _K_MSG and header is not None:
                    src, _dest, tag = header
                    nbytes = sum(len(c) for c in chunks)
                    self._local_deliver(src, tag, _decode(chunks), nbytes)
                elif kind == _K_RELEASE:
                    self._releases.put(1)
                elif kind == _K_BYE:
                    return
        except (ConnectionError, OSError):
            if not self._closed.is_set():
                self._local_deliver(0, TAG_PEER_LOST, None, 0)

    def _heartbeat(self) -> None:
        while not self._closed.wait(self._heartbeat_interval):
            now = time.monotonic()
            if self._rank == 0:
                for peer in list(self._peers.values()):
                    if not peer.alive or peer.departed:
                        continue
                    if now - peer.last_seen > self._heartbeat_timeout:
                        self._peer_lost(peer)
                        continue
                    try:
                        self._send_parts(
                            peer.sock, peer.lock, [_control_frame(_K_HEARTBEAT)]
                        )
                    except ConnectionError:
                        self._peer_lost(peer)
            else:
                sock = self._master_sock
                if sock is None:
                    return
                if now - self._master_last_seen > self._heartbeat_timeout:
                    self._local_deliver(0, TAG_PEER_LOST, None, 0)
                    return
                try:
                    self._send_parts(
                        sock, self._master_lock, [_control_frame(_K_HEARTBEAT)]
                    )
                except ConnectionError:
                    if not self._closed.is_set():
                        self._local_deliver(0, TAG_PEER_LOST, None, 0)
                    return

    def _peer_lost(self, peer: _Peer) -> None:
        """Mark a worker dead and tell the master loop (idempotent)."""
        if not peer.alive:
            return
        peer.alive = False
        try:
            peer.sock.close()
        except OSError:
            pass
        with self._barrier_cv:
            self._barrier_cv.notify_all()
        self._local_deliver(peer.rank, TAG_PEER_LOST, None, 0)

    def close(self) -> None:
        """Clean shutdown: BYE to peers, close sockets, stop threads."""
        if self._closed.is_set():
            return
        self._closed.set()
        if self._rank == 0:
            for peer in self._peers.values():
                if peer.alive and not peer.departed:
                    try:
                        self._send_parts(
                            peer.sock, peer.lock, [_control_frame(_K_BYE)]
                        )
                    except ConnectionError:
                        pass
                try:
                    peer.sock.close()
                except OSError:
                    pass
        else:
            sock = self._master_sock
            if sock is not None:
                try:
                    self._send_parts(
                        sock, self._master_lock, [_control_frame(_K_BYE)]
                    )
                except ConnectionError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# -- worker process helpers ------------------------------------------------


def worker_command(
    host: str,
    port: int,
    timeout: float | None = None,
    python: str | None = None,
) -> list[str]:
    """The argv that starts one TCP worker process against ``host:port``."""
    cmd = [
        python or sys.executable,
        "-m",
        "repro.parallel.tcp_worker",
        "--connect",
        f"{host}:{port}",
    ]
    if timeout is not None:
        cmd += ["--timeout", str(timeout)]
    return cmd


def spawn_local_workers(
    address: tuple[str, int],
    n_workers: int,
    timeout: float | None = None,
) -> list[subprocess.Popen[bytes]]:
    """Launch ``n_workers`` local worker processes joining ``address``.

    ``PYTHONPATH`` is extended with this package's source root so the
    children import the same ``repro`` regardless of the caller's cwd.
    """
    import repro

    src_root = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        src_root + os.pathsep + existing if existing else src_root
    )
    host, port = address
    cmd = worker_command(host, port, timeout=timeout)
    return [
        subprocess.Popen(cmd, env=env) for _ in range(n_workers)
    ]
