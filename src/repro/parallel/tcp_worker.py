"""TCP worker process entry point: ``python -m repro.parallel.tcp_worker``.

One process, one worker rank.  Connects to a listening master
(:class:`~repro.parallel.transport.TcpListener`), receives the run's
config + dataset over the broadcast, serves the pull protocol (row or
tiled partitioning, chosen by the master), then ships its telemetry
back (TAG_DONE) so the master's trace covers work that happened in
this process.

Also exposed as ``fcma worker --connect HOST:PORT`` — the command to
start on *other* hosts when the master runs with
``--transport tcp --listen``.
"""

from __future__ import annotations

import argparse
from typing import Any, Sequence

import numpy as np

from .comm import Comm, default_timeout
from .master_worker import TAG_DONE, _worker_loop
from .tiled import tiled_worker_loop
from .transport import TcpTransport

__all__ = ["main", "parse_endpoint", "run_worker"]


def parse_endpoint(value: str) -> tuple[str, int]:
    """Parse ``host:port`` (the ``--connect``/``--listen`` argument)."""
    host, sep, port = value.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def run_worker(comm: Comm) -> int:
    """The SPMD worker body every transport shares.

    Receives ``{"config", "dataset", "partition"}`` from the rank-0
    broadcast, pulls work until stopped, then reports telemetry:
    ``{"export": <RunContext.export()>, "stats": <comm byte counters>,
    "completed": <n items>}`` under TAG_DONE.  Returns the completed
    item count.
    """
    from ..exec.context import RunContext
    from ..exec.stage_graph import execute_task

    setup = comm.bcast(None)
    config = setup["config"]
    dataset = setup["dataset"]
    partition = setup.get("partition", "rows")
    ctx = RunContext(config)
    if partition == "tiles":
        completed = tiled_worker_loop(comm, dataset, config, ctx)
    else:

        def run_one(d: Any, assigned: np.ndarray, _cfg: Any) -> Any:
            return execute_task(d, assigned, ctx)

        completed = _worker_loop(comm, dataset, config, run=run_one)
    stats = comm.stats
    ctx.increment("comm.bytes_sent", stats.bytes_sent)
    ctx.increment("comm.bytes_recv", stats.bytes_recv)
    comm.send(
        {
            "rank": comm.rank,
            "export": ctx.export(),
            "stats": stats.as_dict(),
            "completed": completed,
        },
        0,
        TAG_DONE,
    )
    return completed


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.parallel.tcp_worker",
        description="join a listening FCMA master as one TCP worker rank",
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="address the master is listening on",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="communicator timeout in seconds "
        "(default: FCMA_COMM_TIMEOUT or 120)",
    )
    args = parser.parse_args(argv)
    host, port = parse_endpoint(args.connect)
    timeout = args.timeout if args.timeout is not None else default_timeout()
    transport = TcpTransport.connect(host, port, timeout=timeout)
    try:
        comm = Comm(transport, transport.rank)
        run_worker(comm)
    finally:
        transport.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    raise SystemExit(main())
