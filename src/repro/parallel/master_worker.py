"""The FCMA master-worker protocol (paper Section 3.1.1) over Comm.

"The master node first distributes brain data to the worker nodes and
then sends tasks to the workers to process in parallel.  A worker works
on one task at a time.  When a worker finishes a task, it will receive a
new task from the master."

This module implements exactly that pull-based protocol against the
MPI-like :class:`~repro.parallel.comm.Comm`:

* rank 0 is the master: broadcasts the dataset, serves tasks on demand,
  collects :class:`~repro.core.results.VoxelScores`, and returns the
  sorted aggregate;
* ranks 1..n-1 are workers: request a task, run the three-stage pipeline
  on it, send the result back, repeat until a stop message.

Beyond the paper, the protocol is fault tolerant: a worker whose task
raises reports the failure instead of dying, and the master re-queues
the task (up to ``max_retries`` attempts per task) so a transient
failure on one node cannot lose voxels from the analysis.
"""

from __future__ import annotations

import bisect
import time
import warnings
from collections import deque
from typing import Callable, Sequence

import numpy as np

from ..core.pipeline import FCMAConfig, run_task
from ..core.results import VoxelScores
from ..data.dataset import FMRIDataset
from ..obs.live.runtime import current_live
from .comm import Comm, TAG_PEER_LOST, TAG_TELEMETRY

__all__ = ["mpi_voxel_selection", "master_loop", "worker_loop", "TaskFailedError"]

#: Message tags of the protocol.
TAG_REQUEST = 1  # worker -> master: "give me work" (payload: None)
TAG_TASK = 2     # master -> worker: (task_index, voxel ndarray)
TAG_RESULT = 3   # worker -> master: (task_index, VoxelScores)
TAG_STOP = 4     # master -> worker: no more tasks
TAG_ERROR = 5    # worker -> master: (task_index, error message)
TAG_DONE = 6     # worker -> master: post-stop telemetry (ctx export, comm stats)

#: Minimum seconds between a worker's live-telemetry frames.  Bounds the
#: piggybacked traffic to ~2 tiny messages per second per worker no
#: matter how fast tasks complete; workers send unconditionally (the
#: frames are dropped at the master when no live plane is active).
TELEMETRY_INTERVAL = 0.5


class TaskFailedError(RuntimeError):
    """A task exhausted its retries across workers."""


def _master_loop(
    comm: Comm,
    tasks: Sequence[np.ndarray],
    max_retries: int = 2,
    reports: dict[int, object] | None = None,
) -> VoxelScores:
    """Serve ``tasks`` to workers on demand and aggregate their results.

    Runs on rank 0.  Each worker gets a new task the moment it asks;
    results arrive in any order.  A reported task failure re-queues the
    task until ``max_retries`` attempts are spent, after which the
    master drains the workers and raises :class:`TaskFailedError`.

    Two fault domains are handled distinctly:

    * **task failures** (TAG_ERROR): the retry queue is kept sorted, so
      when several workers fail concurrently the re-dispatch order is
      the task order, not the failure-arrival order — deterministic
      scheduling regardless of which failure report races in first;
    * **worker loss** (:data:`~repro.parallel.comm.TAG_PEER_LOST`, TCP
      transport only): the dead worker's in-flight tasks are re-queued
      without charging their retry budget, and a worker that asks for
      work while tasks are still in flight elsewhere is *parked* rather
      than stopped, so it stays available to absorb those re-queues.
    """
    if comm.rank != 0:
        raise ValueError("master_loop must run on rank 0")
    if max_retries < 1:
        raise ValueError("max_retries must be >= 1")
    if comm.size - 1 < 1:
        raise ValueError("need at least one worker rank")

    pending = deque(range(len(tasks)))
    retry: list[int] = []  # sorted: deterministic re-dispatch order
    attempts = {i: 0 for i in range(len(tasks))}
    results: dict[int, VoxelScores] = {}
    failure: tuple[int, str] | None = None
    in_flight: dict[int, set[int]] = {}
    parked: deque[int] = deque()
    active = set(range(1, comm.size))
    stopped: set[int] = set()

    def dispatch(dest: int) -> bool:
        if retry:
            idx = retry.pop(0)
        elif pending:
            idx = pending.popleft()
        else:
            return False
        attempts[idx] += 1
        in_flight.setdefault(dest, set()).add(idx)
        comm.send((idx, np.asarray(tasks[idx])), dest, TAG_TASK)
        return True

    def work_outstanding() -> bool:
        return bool(retry or pending or any(in_flight.values()))

    def drain_parked() -> None:
        while parked and (retry or pending):
            dispatch(parked.popleft())
        if not work_outstanding():
            while parked:
                rank = parked.popleft()
                comm.send(None, rank, TAG_STOP)
                stopped.add(rank)

    live = current_live()
    while len(stopped) < len(active):
        src, tag, payload = comm.recv()
        if live is not None and tag != TAG_PEER_LOST:
            # Any protocol traffic is a sign of life for heartbeat ages.
            live.heartbeat(src)
        if tag == TAG_TELEMETRY:
            if live is not None and isinstance(payload, dict):
                live.heartbeat(src, completed=payload.get("completed"))
            continue
        if tag == TAG_DONE:
            # Post-stop telemetry from an already-stopped worker (TCP
            # workers report before disconnecting); collected here for
            # collect_worker_reports to pick up after the loop.
            if reports is not None:
                reports[src] = payload
            continue
        if tag == TAG_REQUEST:
            # Even after a permanent task failure the master keeps
            # serving the remaining healthy tasks, so one bad task
            # yields the maximum information before the raise below.
            if dispatch(src):
                pass
            elif work_outstanding():
                parked.append(src)  # may absorb a re-queue later
            else:
                comm.send(None, src, TAG_STOP)
                stopped.add(src)
        elif tag == TAG_RESULT:
            idx, scores = payload
            in_flight.get(src, set()).discard(idx)
            results[idx] = scores
            if live is not None:
                live.inc("tasks")
            drain_parked()
        elif tag == TAG_ERROR:
            idx, message = payload
            in_flight.get(src, set()).discard(idx)
            if attempts[idx] < max_retries:
                bisect.insort(retry, idx)
            elif failure is None:
                failure = (idx, message)
            if live is not None:
                live.inc("task_errors")
            drain_parked()
        elif tag == TAG_PEER_LOST:
            if live is not None:
                live.worker_lost(src)
            if src not in active:
                continue
            active.discard(src)
            stopped.discard(src)
            if src in parked:
                parked.remove(src)
            for idx in sorted(in_flight.pop(src, set())):
                # A dead worker is not a task failure: give the task
                # its attempt back and re-queue in sorted order.
                attempts[idx] = max(0, attempts[idx] - 1)
                bisect.insort(retry, idx)
            if not active and work_outstanding():
                raise RuntimeError(
                    f"all workers lost with {len(retry) + len(pending)} "
                    f"task(s) unfinished"
                )
            drain_parked()
        else:
            raise RuntimeError(f"master got unexpected tag {tag} from {src}")

    if failure is not None:
        idx, message = failure
        raise TaskFailedError(
            f"task {idx} failed after {max_retries} attempts: {message}"
        )
    missing = [i for i in range(len(tasks)) if i not in results]
    if missing:
        raise RuntimeError(f"tasks without results: {missing}")
    parts = [results[i] for i in range(len(tasks))]
    return VoxelScores.concatenate(parts).sorted_by_accuracy()


def _worker_loop(
    comm: Comm,
    dataset: FMRIDataset,
    config: FCMAConfig,
    run: Callable[[FMRIDataset, np.ndarray, FCMAConfig], VoxelScores] = run_task,
) -> int:
    """Pull tasks from the master until stopped; returns tasks completed.

    Exceptions raised by ``run`` are reported to the master (TAG_ERROR)
    rather than killing the worker, which then asks for more work.
    """
    if comm.rank == 0:
        raise ValueError("worker_loop must not run on rank 0")
    completed = 0
    last_telemetry = time.monotonic()
    while True:
        comm.send(None, 0, TAG_REQUEST)
        _, tag, payload = comm.recv(source=0)
        if tag == TAG_STOP:
            return completed
        if tag != TAG_TASK:
            raise RuntimeError(f"worker got unexpected tag {tag}")
        idx, voxels = payload
        try:
            scores = run(dataset, voxels, config)
        except Exception as exc:  # noqa: BLE001 - reported to master
            comm.send((idx, f"{type(exc).__name__}: {exc}"), 0, TAG_ERROR)
            continue
        comm.send((idx, scores), 0, TAG_RESULT)
        completed += 1
        now = time.monotonic()
        if now - last_telemetry >= TELEMETRY_INTERVAL:
            comm.send_telemetry({"completed": completed})
            last_telemetry = now


def master_loop(
    comm: Comm,
    tasks: Sequence[np.ndarray],
    max_retries: int = 2,
) -> VoxelScores:
    """Deprecated public alias of the master's serve-and-aggregate loop.

    .. deprecated:: 1.1
        Use :class:`repro.exec.MasterWorkerExecutor`, which wraps this
        protocol, merges per-stage timings into a
        :class:`~repro.exec.RunContext`, and feeds the measured task
        stream to the cluster simulator.  Results are identical.
    """
    warnings.warn(
        "direct master_loop use is deprecated; use "
        "repro.exec.MasterWorkerExecutor(n_workers).run(dataset, RunContext(config))",
        DeprecationWarning,
        stacklevel=2,
    )
    return _master_loop(comm, tasks, max_retries=max_retries)


def worker_loop(
    comm: Comm,
    dataset: FMRIDataset,
    config: FCMAConfig,
    run: Callable[[FMRIDataset, np.ndarray, FCMAConfig], VoxelScores] = run_task,
) -> int:
    """Public alias of the worker's pull-execute-report loop.

    Kept un-deprecated as the customization seam (its ``run`` hook is
    how fault-tolerance tests inject failures), but new code should go
    through :class:`repro.exec.MasterWorkerExecutor`.
    """
    return _worker_loop(comm, dataset, config, run=run)


def mpi_voxel_selection(
    dataset: FMRIDataset,
    config: FCMAConfig = FCMAConfig(),
    n_workers: int = 2,
    voxels: np.ndarray | None = None,
    max_retries: int = 2,
) -> VoxelScores:
    """Full voxel selection through the master-worker protocol.

    Shim over :class:`repro.exec.MasterWorkerExecutor`: spawns
    ``n_workers + 1`` thread ranks (threads, because the protocol layer
    is what is being exercised; for real multi-core speedup use the
    process-pool executor, which runs the same task decomposition across
    processes).
    """
    from ..exec.context import RunContext
    from ..exec.executors import MasterWorkerExecutor

    executor = MasterWorkerExecutor(n_workers=n_workers, max_retries=max_retries)
    return executor.run(dataset, RunContext(config), voxels)
