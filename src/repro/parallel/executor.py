"""Zero-copy dataset sharing + legacy process-pool entry points.

This module owns the shared-memory plumbing the pool executor rides on:
the master packs every subject's BOLD array into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment and sends
workers only a :class:`SharedDatasetHandle` — segment name plus subject
offsets — so the per-pool pickle payload is a few hundred bytes no
matter how large the scan is.  Each worker attaches views over the
segment and rebuilds the dataset without copying.

The execution logic itself moved to :mod:`repro.exec.executors`:
:func:`serial_voxel_selection` and :func:`parallel_voxel_selection`
remain as compatibility shims over :class:`~repro.exec.SerialExecutor`
and :class:`~repro.exec.ProcessPoolExecutor` (the latter emits a
:class:`DeprecationWarning`), returning seed-identical results.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..core.pipeline import FCMAConfig
from ..core.results import VoxelScores
from ..data.dataset import FMRIDataset
from ..data.epochs import EpochTable
from ..data.mask import BrainMask
from ..exec.partition import auto_chunksize, partition_tasks

__all__ = [
    "SharedDatasetHandle",
    "attach_shared_dataset",
    "parallel_voxel_selection",
    "serial_voxel_selection",
    "share_dataset",
]


@dataclass(frozen=True)
class SharedDatasetHandle:
    """Picklable recipe for rebuilding a dataset from shared memory.

    Carries only metadata — the BOLD arrays themselves live in the named
    shared-memory segment — so pickling the handle costs bytes, not the
    gigabytes the paper's datasets occupy.
    """

    #: Name of the shared-memory segment holding all subjects' BOLD data.
    shm_name: str
    #: Per subject: (subject id, byte offset into the segment, array shape).
    subjects: tuple[tuple[int, int, tuple[int, int]], ...]
    epochs: EpochTable
    mask: BrainMask | None
    name: str


def share_dataset(
    dataset: FMRIDataset,
) -> tuple[shared_memory.SharedMemory, SharedDatasetHandle]:
    """Pack a dataset's BOLD arrays into one shared-memory segment.

    Returns the owning segment (caller must ``close()`` and ``unlink()``
    it when the pool is done) and the handle workers rebuild from.
    """
    total = dataset.nbytes()
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    subjects: list[tuple[int, int, tuple[int, int]]] = []
    offset = 0
    for subject in dataset.subject_ids():
        arr = dataset.subject_data(subject)
        view = np.ndarray(arr.shape, dtype=np.float32, buffer=shm.buf, offset=offset)
        view[:] = arr
        subjects.append((subject, offset, arr.shape))
        offset += arr.nbytes
    handle = SharedDatasetHandle(
        shm_name=shm.name,
        subjects=tuple(subjects),
        epochs=dataset.epochs,
        mask=dataset.mask,
        name=dataset.name,
    )
    return shm, handle


def attach_shared_dataset(
    handle: SharedDatasetHandle,
) -> tuple[FMRIDataset, shared_memory.SharedMemory]:
    """Rebuild a dataset as zero-copy views over the shared segment.

    The returned dataset's subject arrays alias the segment's buffer
    (``FMRIDataset`` keeps already-contiguous float32 arrays as-is), so
    the caller must hold the returned segment open for the dataset's
    lifetime and treat the data as read-only.
    """
    # Python 3.11's SharedMemory registers attachments with the resource
    # tracker as if they were owners (bpo-39959).  Pool workers share the
    # parent's tracker process, whose cache is a *set*: attach
    # registrations dedupe against the owner's and the single unregister
    # at unlink() cleans them all up, so no correction is needed here —
    # an explicit per-attach unregister would instead strip the owner's
    # entry and make unlink() crash the tracker with a KeyError.
    shm = shared_memory.SharedMemory(name=handle.shm_name, create=False)
    data = {
        subject: np.ndarray(shape, dtype=np.float32, buffer=shm.buf, offset=offset)
        for subject, offset, shape in handle.subjects
    }
    dataset = FMRIDataset(data, handle.epochs, mask=handle.mask, name=handle.name)
    return dataset, shm


def _tasks_for(
    dataset: FMRIDataset, config: FCMAConfig, voxels: np.ndarray | None
) -> list[np.ndarray]:
    """Compatibility alias for :func:`repro.exec.partition.partition_tasks`."""
    return partition_tasks(dataset.n_voxels, config.task_voxels, voxels)


def _auto_chunksize(n_tasks: int, n_workers: int) -> int:
    """Compatibility alias for :func:`repro.exec.partition.auto_chunksize`."""
    return auto_chunksize(n_tasks, n_workers)


def serial_voxel_selection(
    dataset: FMRIDataset,
    config: FCMAConfig = FCMAConfig(),
    voxels: np.ndarray | None = None,
) -> VoxelScores:
    """Single-process voxel selection (the 1-worker reference).

    Shim over :class:`repro.exec.SerialExecutor`; pass a
    :class:`~repro.exec.RunContext` to the executor directly to keep the
    per-stage timings this wrapper throws away.
    """
    from ..exec.context import RunContext
    from ..exec.executors import SerialExecutor

    return SerialExecutor().run(dataset, RunContext(config), voxels)


def parallel_voxel_selection(
    dataset: FMRIDataset,
    config: FCMAConfig = FCMAConfig(),
    n_workers: int | None = None,
    voxels: np.ndarray | None = None,
) -> VoxelScores:
    """Voxel selection across a local process pool.

    .. deprecated:: 1.1
        Use :class:`repro.exec.ProcessPoolExecutor` — same zero-copy
        fan-out, identical results, plus per-stage telemetry through the
        :class:`~repro.exec.RunContext` this shim discards.
    """
    warnings.warn(
        "parallel_voxel_selection is deprecated; use "
        "repro.exec.ProcessPoolExecutor(n_workers).run(dataset, RunContext(config))",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..exec.context import RunContext
    from ..exec.executors import ProcessPoolExecutor

    return ProcessPoolExecutor(n_workers=n_workers).run(
        dataset, RunContext(config), voxels
    )
