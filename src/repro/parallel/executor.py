"""Real multi-core execution of FCMA tasks via multiprocessing.

While :mod:`repro.parallel.master_worker` exercises the paper's MPI
protocol in-process, this module provides the path a user runs for
actual wall-clock speedup on one machine: the same row-partitioned task
decomposition fanned out over a process pool.

The BOLD data is shipped to workers **once, zero-copy**: the master
packs every subject's array into a single
:class:`multiprocessing.shared_memory.SharedMemory` segment and sends
workers only a :class:`SharedDatasetHandle` — segment name plus subject
offsets — so the per-pool pickle payload is a few hundred bytes no
matter how large the scan is.  Each worker attaches views over the
segment, rebuilds the dataset without copying, and memoizes the
task-invariant preprocessing (subject-contiguous regrouping + epoch
windows) in its process globals.  Per-task messages then carry only
voxel index arrays and score arrays, in chunks of ``config.chunksize``
tasks per round-trip.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..core.pipeline import FCMAConfig, preprocess_dataset, run_task, task_partition
from ..core.results import VoxelScores
from ..data.dataset import FMRIDataset
from ..data.epochs import EpochTable
from ..data.mask import BrainMask

__all__ = [
    "SharedDatasetHandle",
    "attach_shared_dataset",
    "parallel_voxel_selection",
    "serial_voxel_selection",
    "share_dataset",
]


@dataclass(frozen=True)
class SharedDatasetHandle:
    """Picklable recipe for rebuilding a dataset from shared memory.

    Carries only metadata — the BOLD arrays themselves live in the named
    shared-memory segment — so pickling the handle costs bytes, not the
    gigabytes the paper's datasets occupy.
    """

    #: Name of the shared-memory segment holding all subjects' BOLD data.
    shm_name: str
    #: Per subject: (subject id, byte offset into the segment, array shape).
    subjects: tuple[tuple[int, int, tuple[int, int]], ...]
    epochs: EpochTable
    mask: BrainMask | None
    name: str


def share_dataset(
    dataset: FMRIDataset,
) -> tuple[shared_memory.SharedMemory, SharedDatasetHandle]:
    """Pack a dataset's BOLD arrays into one shared-memory segment.

    Returns the owning segment (caller must ``close()`` and ``unlink()``
    it when the pool is done) and the handle workers rebuild from.
    """
    total = dataset.nbytes()
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1))
    subjects: list[tuple[int, int, tuple[int, int]]] = []
    offset = 0
    for subject in dataset.subject_ids():
        arr = dataset.subject_data(subject)
        view = np.ndarray(arr.shape, dtype=np.float32, buffer=shm.buf, offset=offset)
        view[:] = arr
        subjects.append((subject, offset, arr.shape))
        offset += arr.nbytes
    handle = SharedDatasetHandle(
        shm_name=shm.name,
        subjects=tuple(subjects),
        epochs=dataset.epochs,
        mask=dataset.mask,
        name=dataset.name,
    )
    return shm, handle


def attach_shared_dataset(
    handle: SharedDatasetHandle,
) -> tuple[FMRIDataset, shared_memory.SharedMemory]:
    """Rebuild a dataset as zero-copy views over the shared segment.

    The returned dataset's subject arrays alias the segment's buffer
    (``FMRIDataset`` keeps already-contiguous float32 arrays as-is), so
    the caller must hold the returned segment open for the dataset's
    lifetime and treat the data as read-only.
    """
    # Python 3.11's SharedMemory registers attachments with the resource
    # tracker as if they were owners (bpo-39959).  Pool workers share the
    # parent's tracker process, whose cache is a *set*: attach
    # registrations dedupe against the owner's and the single unregister
    # at unlink() cleans them all up, so no correction is needed here —
    # an explicit per-attach unregister would instead strip the owner's
    # entry and make unlink() crash the tracker with a KeyError.
    shm = shared_memory.SharedMemory(name=handle.shm_name, create=False)
    data = {
        subject: np.ndarray(shape, dtype=np.float32, buffer=shm.buf, offset=offset)
        for subject, offset, shape in handle.subjects
    }
    dataset = FMRIDataset(data, handle.epochs, mask=handle.mask, name=handle.name)
    return dataset, shm


# Worker-process globals installed by the pool initializer; module-level
# so the per-task pickle payload stays tiny.  The segment is held to keep
# the dataset's views backed for the worker's lifetime.
_WORKER_DATASET: FMRIDataset | None = None
_WORKER_CONFIG: FCMAConfig | None = None
_WORKER_SHM: shared_memory.SharedMemory | None = None


def _init_worker(handle: SharedDatasetHandle, config: FCMAConfig) -> None:
    global _WORKER_DATASET, _WORKER_CONFIG, _WORKER_SHM
    _WORKER_DATASET, _WORKER_SHM = attach_shared_dataset(handle)
    _WORKER_CONFIG = config
    # Warm the task-invariant preprocessing (grouped epochs + normalized
    # windows) once per worker instead of lazily inside the first task.
    preprocess_dataset(_WORKER_DATASET)


def _run_assigned(assigned: np.ndarray) -> VoxelScores:
    assert _WORKER_DATASET is not None and _WORKER_CONFIG is not None
    return run_task(_WORKER_DATASET, assigned, _WORKER_CONFIG)


def _tasks_for(
    dataset: FMRIDataset, config: FCMAConfig, voxels: np.ndarray | None
) -> list[np.ndarray]:
    if voxels is None:
        return task_partition(dataset.n_voxels, config.task_voxels)
    voxels = np.asarray(voxels, dtype=np.int64)
    if voxels.ndim != 1 or voxels.size == 0:
        raise ValueError("voxels must be a non-empty 1D index array")
    return [
        voxels[s : s + config.task_voxels]
        for s in range(0, voxels.size, config.task_voxels)
    ]


def _auto_chunksize(n_tasks: int, n_workers: int) -> int:
    """~4 chunks per worker: amortizes round-trips, keeps the tail short."""
    return max(1, -(-n_tasks // (n_workers * 4)))


def serial_voxel_selection(
    dataset: FMRIDataset,
    config: FCMAConfig = FCMAConfig(),
    voxels: np.ndarray | None = None,
) -> VoxelScores:
    """Single-process voxel selection (the 1-worker reference)."""
    parts = [run_task(dataset, t, config) for t in _tasks_for(dataset, config, voxels)]
    return VoxelScores.concatenate(parts).sorted_by_accuracy()


def parallel_voxel_selection(
    dataset: FMRIDataset,
    config: FCMAConfig = FCMAConfig(),
    n_workers: int | None = None,
    voxels: np.ndarray | None = None,
) -> VoxelScores:
    """Voxel selection across a local process pool.

    ``n_workers`` defaults to the CPU count.  Falls back to the serial
    path for a single worker so callers can sweep worker counts
    uniformly in scaling studies.
    """
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    tasks = _tasks_for(dataset, config, voxels)
    if n_workers == 1 or len(tasks) == 1:
        return serial_voxel_selection(dataset, config, voxels)
    workers = min(n_workers, len(tasks))
    chunksize = (
        config.chunksize
        if config.chunksize is not None
        else _auto_chunksize(len(tasks), workers)
    )
    shm, handle = share_dataset(dataset)
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(handle, config),
        ) as pool:
            parts = list(pool.map(_run_assigned, tasks, chunksize=chunksize))
    finally:
        shm.close()
        shm.unlink()
    return VoxelScores.concatenate(parts).sorted_by_accuracy()
