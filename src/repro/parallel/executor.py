"""Real multi-core execution of FCMA tasks via multiprocessing.

While :mod:`repro.parallel.master_worker` exercises the paper's MPI
protocol in-process, this module provides the path a user runs for
actual wall-clock speedup on one machine: the same row-partitioned task
decomposition fanned out over a process pool.  The dataset is shipped to
workers once at pool start (initializer), mirroring the master's one-time
data distribution, so per-task messages carry only voxel index arrays
and score arrays.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..core.pipeline import FCMAConfig, run_task, task_partition
from ..core.results import VoxelScores
from ..data.dataset import FMRIDataset

__all__ = ["parallel_voxel_selection", "serial_voxel_selection"]

# Worker-process globals installed by the pool initializer; module-level
# so the per-task pickle payload stays tiny.
_WORKER_DATASET: FMRIDataset | None = None
_WORKER_CONFIG: FCMAConfig | None = None


def _init_worker(dataset: FMRIDataset, config: FCMAConfig) -> None:
    global _WORKER_DATASET, _WORKER_CONFIG
    _WORKER_DATASET = dataset
    _WORKER_CONFIG = config


def _run_assigned(assigned: np.ndarray) -> VoxelScores:
    assert _WORKER_DATASET is not None and _WORKER_CONFIG is not None
    return run_task(_WORKER_DATASET, assigned, _WORKER_CONFIG)


def _tasks_for(
    dataset: FMRIDataset, config: FCMAConfig, voxels: np.ndarray | None
) -> list[np.ndarray]:
    if voxels is None:
        return task_partition(dataset.n_voxels, config.task_voxels)
    voxels = np.asarray(voxels, dtype=np.int64)
    if voxels.ndim != 1 or voxels.size == 0:
        raise ValueError("voxels must be a non-empty 1D index array")
    return [
        voxels[s : s + config.task_voxels]
        for s in range(0, voxels.size, config.task_voxels)
    ]


def serial_voxel_selection(
    dataset: FMRIDataset,
    config: FCMAConfig = FCMAConfig(),
    voxels: np.ndarray | None = None,
) -> VoxelScores:
    """Single-process voxel selection (the 1-worker reference)."""
    parts = [run_task(dataset, t, config) for t in _tasks_for(dataset, config, voxels)]
    return VoxelScores.concatenate(parts).sorted_by_accuracy()


def parallel_voxel_selection(
    dataset: FMRIDataset,
    config: FCMAConfig = FCMAConfig(),
    n_workers: int | None = None,
    voxels: np.ndarray | None = None,
) -> VoxelScores:
    """Voxel selection across a local process pool.

    ``n_workers`` defaults to the CPU count.  Falls back to the serial
    path for a single worker so callers can sweep worker counts
    uniformly in scaling studies.
    """
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    tasks = _tasks_for(dataset, config, voxels)
    if n_workers == 1 or len(tasks) == 1:
        return serial_voxel_selection(dataset, config, voxels)
    with ProcessPoolExecutor(
        max_workers=min(n_workers, len(tasks)),
        initializer=_init_worker,
        initargs=(dataset, config),
    ) as pool:
        parts = list(pool.map(_run_assigned, tasks))
    return VoxelScores.concatenate(parts).sorted_by_accuracy()
