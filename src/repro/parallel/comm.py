"""MPI-like communicator over pluggable transports.

The paper's cluster framework communicates "via MPI calls".  mpi4py is
not available in this environment, so this module provides a faithful
subset of the MPI point-to-point and collective API — ``send``/``recv``
with tags, ``bcast``, ``scatter``, ``gather``, ``allgather``,
``allreduce``, and ``barrier`` — over a *transport* seam:

* :class:`CommGroup` is the in-process thread transport (the historical
  default): rank mailboxes are queues, the barrier is
  ``threading.Barrier``, and everything runs deterministically in one
  process.  Results through this transport are bitwise-identical to the
  pre-transport implementation.
* :class:`repro.parallel.transport.TcpTransport` speaks the same
  interface over length-prefixed socket frames, so the unchanged
  master-worker protocol spans real processes and hosts.

A transport implements the small :class:`Transport` surface —
``deliver`` / ``poll`` / ``stash`` / ``barrier`` / ``stats`` — and
:class:`Comm` layers the MPI-flavoured API (selective receive,
collectives, timeout errors with rank/tag/elapsed context) on top.
"""

from __future__ import annotations

import os
import queue
import sys
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Protocol, Sequence

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Comm",
    "CommGroup",
    "CommStats",
    "CommTimeoutError",
    "TAG_PEER_LOST",
    "TAG_TELEMETRY",
    "Transport",
    "default_timeout",
    "payload_nbytes",
    "run_ranks",
]

#: Wildcard source rank for :meth:`Comm.recv`.
ANY_SOURCE = -1
#: Wildcard message tag for :meth:`Comm.recv`.
ANY_TAG = -1

#: Seconds before a blocked collective/recv aborts (deadlock guard in
#: tests; generous enough for real work).  Overridable per run via the
#: ``FCMA_COMM_TIMEOUT`` environment variable or
#: ``FCMAConfig.comm_timeout``.
_DEFAULT_TIMEOUT = 120.0

#: Environment override for the default communicator timeout.
_TIMEOUT_ENV_VAR = "FCMA_COMM_TIMEOUT"

#: First tag reserved for internal (collective/control) messages; user
#: tags must stay below it.
_COLL_TAG_BASE = 1_000_000

#: Control tag a transport delivers when a peer dies (connection reset,
#: missed heartbeats).  Payload is ``None``; the source rank is the lost
#: peer.  Only transports with real failure domains (TCP) emit it — the
#: thread transport cannot lose a rank silently.
TAG_PEER_LOST = _COLL_TAG_BASE + 99

#: Control tag for live-telemetry frames piggybacked on the transport
#: (:meth:`Comm.send_telemetry`).  Workers emit small progress dicts at
#: a bounded rate; the master folds them into the active
#: :class:`~repro.obs.live.runtime.LiveRuntime` (or drops them when no
#: live plane is running).  Loops that predate the tag must ignore it.
TAG_TELEMETRY = _COLL_TAG_BASE + 98


def default_timeout() -> float:
    """The communicator timeout: ``FCMA_COMM_TIMEOUT`` env or 120 s."""
    raw = os.environ.get(_TIMEOUT_ENV_VAR)
    if raw is None:
        return _DEFAULT_TIMEOUT
    try:
        value = float(raw)
    except ValueError as exc:
        raise ValueError(
            f"{_TIMEOUT_ENV_VAR}={raw!r} is not a number"
        ) from exc
    if value <= 0:
        raise ValueError(f"{_TIMEOUT_ENV_VAR} must be positive, got {value}")
    return value


class CommTimeoutError(TimeoutError):
    """A blocked receive or collective exceeded the transport timeout."""


@dataclass
class CommStats:
    """Per-rank traffic accounting a transport maintains.

    Byte counts are exact for framed transports (TCP) and payload-size
    estimates (:func:`payload_nbytes`) for the in-process transport,
    where no serialization happens.
    """

    bytes_sent: int = 0
    bytes_recv: int = 0
    msgs_sent: int = 0
    msgs_recv: int = 0

    def add_sent(self, nbytes: int) -> None:
        self.bytes_sent += int(nbytes)
        self.msgs_sent += 1

    def add_recv(self, nbytes: int) -> None:
        self.bytes_recv += int(nbytes)
        self.msgs_recv += 1

    def as_dict(self) -> dict[str, int]:
        return {
            "bytes_sent": self.bytes_sent,
            "bytes_recv": self.bytes_recv,
            "msgs_sent": self.msgs_sent,
            "msgs_recv": self.msgs_recv,
        }


def payload_nbytes(obj: Any) -> int:
    """Cheap wire-size estimate of a message payload.

    Counts numpy buffers exactly (they dominate) and containers
    recursively; everything else is a flat object-header estimate.  The
    thread transport uses this so ``comm.bytes_sent``/``bytes_recv``
    stay meaningful without serializing anything.
    """
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, (int, float)):
        return int(nbytes)
    if isinstance(obj, (tuple, list)):
        return 56 + sum(payload_nbytes(item) for item in obj)
    if isinstance(obj, dict):
        return 64 + sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        )
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return 49 + len(obj)
    if obj is None:
        return 8
    if hasattr(obj, "__dataclass_fields__"):
        return 56 + sum(
            payload_nbytes(getattr(obj, name))
            for name in obj.__dataclass_fields__
        )
    return int(sys.getsizeof(obj, 64))


#: One queued message: ``(source, tag, payload, arrival_monotonic)``.
Message = tuple[int, int, Any, float]


class Transport(Protocol):
    """What a communicator fabric must provide per rank.

    ``deliver`` moves a message toward ``dest``'s mailbox (possibly over
    a wire) and returns the bytes charged to the sender; ``poll`` blocks
    for the next message addressed to ``rank``; ``stash`` is the
    per-rank buffer of messages popped but not yet matched (selective
    receive); ``barrier`` synchronizes all ranks; ``stats`` exposes the
    per-rank traffic counters.
    """

    @property
    def size(self) -> int: ...

    @property
    def timeout(self) -> float: ...

    def deliver(self, src: int, dest: int, tag: int, payload: Any) -> int: ...

    def poll(self, rank: int, timeout: float) -> Message: ...

    def stash(self, rank: int) -> list[Message]: ...

    def barrier(self, rank: int) -> None: ...

    def stats(self, rank: int) -> CommStats: ...


class CommGroup:
    """The in-process thread transport: queue mailboxes + a Barrier.

    Shared state of one communicator; :meth:`comm` hands out the
    per-rank :class:`Comm` endpoints the SPMD ranks use.
    """

    def __init__(self, size: int, timeout: float | None = None):
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self._size = size
        self._timeout = default_timeout() if timeout is None else timeout
        if self._timeout <= 0:
            raise ValueError("timeout must be positive")
        # One mailbox per destination rank holding Message tuples.
        self._boxes: list["queue.Queue[Message]"] = [
            queue.Queue() for _ in range(size)
        ]
        # Per-rank stash of messages popped while matching selectively.
        self._stashes: list[list[Message]] = [[] for _ in range(size)]
        self._stats = [CommStats() for _ in range(size)]
        self._barrier = threading.Barrier(size)

    @property
    def size(self) -> int:
        return self._size

    @property
    def timeout(self) -> float:
        return self._timeout

    def comm(self, rank: int) -> "Comm":
        """The communicator endpoint for one rank."""
        if not 0 <= rank < self._size:
            raise ValueError(f"rank {rank} out of range for size {self._size}")
        return Comm(self, rank)

    # -- Transport interface ---------------------------------------------

    def deliver(self, src: int, dest: int, tag: int, payload: Any) -> int:
        nbytes = payload_nbytes(payload)
        self._boxes[dest].put((src, tag, payload, time.monotonic()))
        self._stats[dest].add_recv(nbytes)
        return nbytes

    def poll(self, rank: int, timeout: float) -> Message:
        try:
            return self._boxes[rank].get(timeout=timeout)
        except queue.Empty:
            raise CommTimeoutError("mailbox empty") from None

    def stash(self, rank: int) -> list[Message]:
        return self._stashes[rank]

    def barrier(self, rank: int) -> None:
        try:
            self._barrier.wait(timeout=self._timeout)
        except threading.BrokenBarrierError:
            raise CommTimeoutError(
                f"rank {rank}: barrier broken or timed out after "
                f"{self._timeout}s"
            ) from None

    def stats(self, rank: int) -> CommStats:
        return self._stats[rank]


class Comm:
    """One rank's endpoint: the MPI-like API surface over a transport."""

    def __init__(self, transport: Transport, rank: int):
        self._transport = transport
        self._rank = rank

    # -- introspection ---------------------------------------------------

    @property
    def rank(self) -> int:
        """This endpoint's rank (``Get_rank``)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks (``Get_size``)."""
        return self._transport.size

    @property
    def transport(self) -> Transport:
        """The fabric this endpoint speaks over."""
        return self._transport

    @property
    def stats(self) -> CommStats:
        """This rank's traffic counters (bytes/messages sent+received)."""
        return self._transport.stats(self._rank)

    # -- point to point ----------------------------------------------------

    _COLL_TAG_BASE = _COLL_TAG_BASE

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Deliver ``obj`` to ``dest``'s mailbox (non-blocking buffered)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        if not 0 <= tag < _COLL_TAG_BASE:
            raise ValueError(
                f"user tags must be in [0, {_COLL_TAG_BASE})"
            )
        nbytes = self._transport.deliver(self._rank, dest, tag, obj)
        self.stats.add_sent(nbytes)

    def _send_internal(self, obj: Any, dest: int, tag: int) -> None:
        nbytes = self._transport.deliver(self._rank, dest, tag, obj)
        self.stats.add_sent(nbytes)

    def send_telemetry(self, obj: Any, dest: int = 0) -> None:
        """Best-effort live-telemetry frame to ``dest`` (default master).

        Rides the control-tag space (:data:`TAG_TELEMETRY`), so it never
        collides with user tags, and swallows connection errors —
        telemetry must never take a healthy worker down with it.
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        try:
            self._send_internal(obj, dest, TAG_TELEMETRY)
        except (ConnectionError, OSError):
            pass

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[int, int, Any]:
        """Blocking receive; returns ``(source, tag, obj)``.

        Supports selective receive by source and/or tag; non-matching
        messages are stashed and re-examined first on later calls, so
        ordering per (source, tag) pair is preserved.
        """
        src, t, obj, _ = self.recv_timed(source=source, tag=tag)
        return src, t, obj

    def recv_timed(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Message:
        """:meth:`recv` plus the message's transport arrival time.

        The fourth element is the ``time.monotonic()`` stamp of when the
        message landed in this rank's mailbox — what the overlap
        accounting in the tiled worker loop subtracts its exposed wait
        from to compute ``overlap_hidden_seconds``.
        """
        stash = self._transport.stash(self._rank)
        for idx, (src, t, obj, arrived) in enumerate(stash):
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                return stash.pop(idx)
        started = time.monotonic()
        timeout = self._transport.timeout
        while True:
            remaining = timeout - (time.monotonic() - started)
            if remaining <= 0:
                self._raise_timeout(source, tag, started)
            try:
                src, t, obj, arrived = self._transport.poll(
                    self._rank, remaining
                )
            except CommTimeoutError:
                self._raise_timeout(source, tag, started)
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                return src, t, obj, arrived
            stash.append((src, t, obj, arrived))

    def _raise_timeout(self, source: int, tag: int, started: float) -> None:
        elapsed = time.monotonic() - started
        stashed = len(self._transport.stash(self._rank))
        raise CommTimeoutError(
            f"rank {self._rank}/{self.size}: recv(source="
            f"{'ANY' if source == ANY_SOURCE else source}, "
            f"tag={'ANY' if tag == ANY_TAG else tag}) timed out after "
            f"{elapsed:.1f}s (transport timeout {self._transport.timeout}s, "
            f"{stashed} non-matching message(s) stashed); raise "
            f"FCMA_COMM_TIMEOUT or FCMAConfig.comm_timeout if the work "
            f"is legitimately this slow"
        ) from None

    # -- collectives -------------------------------------------------------

    def barrier(self) -> None:
        """Synchronize all ranks."""
        self._transport.barrier(self._rank)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to everyone; returns it."""
        tag = _COLL_TAG_BASE + 1
        if self._rank == root:
            for dest in range(self.size):
                if dest != root:
                    self._send_internal(obj, dest, tag)
            return obj
        _, _, received, _ = self.recv_timed(source=root, tag=tag)
        return received

    def scatter(self, objs: Sequence[Any] | None = None, root: int = 0) -> Any:
        """Scatter one element of ``objs`` to each rank."""
        tag = _COLL_TAG_BASE + 2
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} items")
            for dest in range(self.size):
                if dest != root:
                    self._send_internal(objs[dest], dest, tag)
            return objs[root]
        _, _, received, _ = self.recv_timed(source=root, tag=tag)
        return received

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank at ``root`` (rank order preserved)."""
        tag = _COLL_TAG_BASE + 3
        if self._rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for _ in range(self.size - 1):
                src, _, payload, _ = self.recv_timed(tag=tag)
                out[src] = payload
            return out
        self._send_internal(obj, root, tag)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather at rank 0, then broadcast the list."""
        gathered = self.gather(obj, root=0)
        return list(self.bcast(gathered, root=0))

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Reduce with binary ``op`` across ranks; all ranks get the result."""
        values = self.allgather(obj)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc


def run_ranks(
    size: int,
    target: Callable[[Comm], Any],
    timeout: float | None = None,
) -> list[Any]:
    """SPMD launcher: run ``target(comm)`` on ``size`` thread ranks.

    Returns each rank's return value in rank order.  Exceptions in any
    rank are re-raised in the caller after all threads stop (the first
    failing rank wins).  ``timeout`` defaults to :func:`default_timeout`
    (the ``FCMA_COMM_TIMEOUT`` environment variable, or 120 s).
    """
    resolved = default_timeout() if timeout is None else timeout
    group = CommGroup(size, timeout=resolved)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(rank: int) -> None:
        try:
            results[rank] = target(group.comm(rank))
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            with lock:
                errors.append((rank, exc))

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=resolved)
    if any(t.is_alive() for t in threads):
        raise TimeoutError("rank threads did not finish before timeout")
    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results
