"""In-process MPI-like communicator.

The paper's cluster framework communicates "via MPI calls".  mpi4py is
not available in this environment, so this module provides a faithful
subset of the MPI point-to-point and collective API over thread-backed
rank groups: ``send``/``recv`` with tags, ``bcast``, ``scatter``,
``gather``, ``allgather``, ``allreduce``, and ``barrier``.  The
master-worker protocol in :mod:`repro.parallel.master_worker` is written
against this interface, so it reads like the MPI original and is tested
deterministically in a single process.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Sequence

__all__ = ["Comm", "CommGroup", "run_ranks", "ANY_SOURCE", "ANY_TAG"]

#: Wildcard source rank for :meth:`Comm.recv`.
ANY_SOURCE = -1
#: Wildcard message tag for :meth:`Comm.recv`.
ANY_TAG = -1

#: Seconds before a blocked collective/recv aborts (deadlock guard in
#: tests; generous enough for real work).
_DEFAULT_TIMEOUT = 120.0


class CommGroup:
    """Shared state of one communicator: mailboxes and barrier."""

    def __init__(self, size: int, timeout: float = _DEFAULT_TIMEOUT):
        if size < 1:
            raise ValueError("communicator size must be >= 1")
        self.size = size
        self.timeout = timeout
        # One mailbox per destination rank holding (source, tag, payload).
        self._boxes: list[queue.Queue] = [queue.Queue() for _ in range(size)]
        # Per-rank stash of messages popped while matching selectively.
        self._stashes: list[list[tuple[int, int, Any]]] = [[] for _ in range(size)]
        self._barrier = threading.Barrier(size)

    def comm(self, rank: int) -> "Comm":
        """The communicator endpoint for one rank."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        return Comm(self, rank)


class Comm:
    """One rank's endpoint: the MPI-like API surface."""

    def __init__(self, group: CommGroup, rank: int):
        self._group = group
        self._rank = rank

    # -- introspection ---------------------------------------------------

    @property
    def rank(self) -> int:
        """This endpoint's rank (``Get_rank``)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks (``Get_size``)."""
        return self._group.size

    # -- point to point ----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Deliver ``obj`` to ``dest``'s mailbox (non-blocking buffered)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range")
        if not 0 <= tag < self._COLL_TAG_BASE:
            raise ValueError(
                f"user tags must be in [0, {self._COLL_TAG_BASE})"
            )
        self._group._boxes[dest].put((self._rank, tag, obj))

    def _send_internal(self, obj: Any, dest: int, tag: int) -> None:
        self._group._boxes[dest].put((self._rank, tag, obj))

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[int, int, Any]:
        """Blocking receive; returns ``(source, tag, obj)``.

        Supports selective receive by source and/or tag; non-matching
        messages are stashed and re-examined first on later calls, so
        ordering per (source, tag) pair is preserved.
        """
        stash = self._group._stashes[self._rank]
        for idx, (src, t, obj) in enumerate(stash):
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                return stash.pop(idx)
        box = self._group._boxes[self._rank]
        while True:
            try:
                src, t, obj = box.get(timeout=self._group.timeout)
            except queue.Empty:
                raise TimeoutError(
                    f"rank {self._rank}: recv(source={source}, tag={tag}) "
                    f"timed out after {self._group.timeout}s"
                ) from None
            if (source in (ANY_SOURCE, src)) and (tag in (ANY_TAG, t)):
                return src, t, obj
            stash.append((src, t, obj))

    # -- collectives -------------------------------------------------------

    _COLL_TAG_BASE = 1_000_000

    def barrier(self) -> None:
        """Synchronize all ranks."""
        self._group._barrier.wait(timeout=self._group.timeout)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """Broadcast ``obj`` from ``root`` to everyone; returns it."""
        tag = self._COLL_TAG_BASE + 1
        if self._rank == root:
            for dest in range(self.size):
                if dest != root:
                    self._send_internal(obj, dest, tag)
            return obj
        _, _, received = self.recv(source=root, tag=tag)
        return received

    def scatter(self, objs: Sequence[Any] | None = None, root: int = 0) -> Any:
        """Scatter one element of ``objs`` to each rank."""
        tag = self._COLL_TAG_BASE + 2
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} items")
            for dest in range(self.size):
                if dest != root:
                    self._send_internal(objs[dest], dest, tag)
            return objs[root]
        _, _, received = self.recv(source=root, tag=tag)
        return received

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank at ``root`` (rank order preserved)."""
        tag = self._COLL_TAG_BASE + 3
        if self._rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for _ in range(self.size - 1):
                src, _, payload = self.recv(tag=tag)
                out[src] = payload
            return out
        self._send_internal(obj, root, tag)
        return None

    def allgather(self, obj: Any) -> list[Any]:
        """Gather at rank 0, then broadcast the list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any]) -> Any:
        """Reduce with binary ``op`` across ranks; all ranks get the result."""
        values = self.allgather(obj)
        acc = values[0]
        for v in values[1:]:
            acc = op(acc, v)
        return acc


def run_ranks(
    size: int,
    target: Callable[[Comm], Any],
    timeout: float = _DEFAULT_TIMEOUT,
) -> list[Any]:
    """SPMD launcher: run ``target(comm)`` on ``size`` thread ranks.

    Returns each rank's return value in rank order.  Exceptions in any
    rank are re-raised in the caller after all threads stop (the first
    failing rank wins).
    """
    group = CommGroup(size, timeout=timeout)
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []
    lock = threading.Lock()

    def runner(rank: int) -> None:
        try:
            results[rank] = target(group.comm(rank))
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            with lock:
                errors.append((rank, exc))

    threads = [
        threading.Thread(target=runner, args=(r,), name=f"rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    if any(t.is_alive() for t in threads):
        raise TimeoutError("rank threads did not finish before timeout")
    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"rank {rank} failed: {exc!r}") from exc
    return results
