"""vTune-style instrumentation reports (the paper's Table 1 format).

Rows carry the four columns the paper reports per kernel: elapsed time,
memory references, L2 cache misses (DRAM-served, as vTune's KNC miss
event counts), and vectorization intensity.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.presets import DatasetSpec
from ..hw.spec import HardwareSpec
from .base import KernelEstimate
from .matmul_model import model_correlation_matmul, model_kernel_syrk
from .norm_model import model_normalization
from .svm_model import model_svm_cv

__all__ = ["InstrumentationRow", "row_from_estimate", "baseline_report", "format_report"]


@dataclass(frozen=True)
class InstrumentationRow:
    """One kernel's vTune-style measurements."""

    name: str
    time_ms: float
    mem_refs: float
    l2_misses: float
    vector_intensity: float

    def formatted(self) -> str:
        """The row in the paper's units (ms, billions, millions)."""
        return (
            f"{self.name:28s} {self.time_ms:8.0f} ms "
            f"{self.mem_refs / 1e9:8.2f} G refs "
            f"{self.l2_misses / 1e6:8.1f} M miss "
            f"VI {self.vector_intensity:5.1f}"
        )


def row_from_estimate(name: str, *estimates: KernelEstimate) -> InstrumentationRow:
    """Combine one or more kernel estimates into a report row.

    Multiple estimates are summed (e.g. Table 1's "matrix
    multiplication" row covers both the correlation gemm and the SVM
    kernel syrk).
    """
    if not estimates:
        raise ValueError("need at least one estimate")
    counters = estimates[0].counters
    for e in estimates[1:]:
        counters = counters + e.counters
    return InstrumentationRow(
        name=name,
        time_ms=sum(e.milliseconds for e in estimates),
        mem_refs=counters.mem_refs,
        l2_misses=counters.l2_misses,
        vector_intensity=counters.vectorization_intensity,
    )


def baseline_report(
    spec: DatasetSpec, n_assigned: int, hw: HardwareSpec
) -> list[InstrumentationRow]:
    """Reproduce Table 1: the baseline's three instrumented rows."""
    return [
        row_from_estimate(
            "Matrix multiplication",
            model_correlation_matmul(spec, n_assigned, hw, "mkl"),
            model_kernel_syrk(spec, n_assigned, hw, "mkl"),
        ),
        row_from_estimate(
            "Normalization",
            model_normalization(spec, n_assigned, hw, "baseline"),
        ),
        row_from_estimate(
            "LibSVM",
            model_svm_cv(spec, n_assigned, hw, "libsvm"),
        ),
    ]


def format_report(rows: list[InstrumentationRow], title: str = "") -> str:
    """Multi-line textual report."""
    lines = []
    if title:
        lines.append(title)
        lines.append("-" * len(title))
    lines.extend(r.formatted() for r in rows)
    return "\n".join(lines)
