"""Access-pattern model of the fused batched stage-1/2 engine.

The fused engine (:func:`repro.core.correlation.correlate_normalize_batched`)
replaces two Python-dispatch-bound loops:

* the blocked stage-1 loop issued one tiny ``(B, T) x (T, B')`` gemm per
  epoch per tile plus a per-tile normalization callback — the batched
  engine issues **one** 3D gufunc matmul for the whole task;
* stage-2 normalization then sweeps the voxel-major output in
  ``voxel_sweep``-voxel slabs, so its seven full-slab vector passes
  (clip, arctanh, sum, subtract, square, sum, divide) run against a
  cache-resident slab instead of re-streaming the task from DRAM seven
  times.

What the model captures is therefore (a) **dispatch amortization** —
thousands of interpreter/BLAS fixed costs collapse to a handful — and
(b) **sweep residency** — whether a normalization slab (plus its
equal-size squaring scratch) fits the thread's L2 share decides whether
the post-clip passes are cache traffic or DRAM traffic.  This is the
quantity the blocking autotuner (``core.blocking``) measures directly;
the model explains *why* small sweeps win and supplies the analytic
seed's expected ordering.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..data.presets import DatasetSpec
from ..hw.counters import PerfCounters
from ..hw.spec import HardwareSpec
from .base import KernelEstimate, calibration_for, estimate_kernel
from .batched_model import DISPATCH_OVERHEAD_SECONDS

__all__ = [
    "DISPATCH_OVERHEAD_SECONDS",
    "NORM_VECTOR_PASSES",
    "BatchedStage12Shape",
    "batched_stage12_shape_for",
    "model_batched_stage12",
    "stage12_dispatch_amortization",
    "sweep_slab_bytes",
    "sweep_fits_l2",
]

#: Full-slab vector passes of the fused normalizer: clip, arctanh,
#: sum (mean), subtract, square, sum (variance), divide.  The mean/std
#: side buffers are ``1/E`` the slab size and ignored.
NORM_VECTOR_PASSES = 7


@dataclass(frozen=True)
class BatchedStage12Shape:
    """Shape of one task's fused stage-1/2 work."""

    n_epochs: int
    n_assigned: int  # V
    epoch_len: int   # T
    n_voxels: int    # N
    #: Normalization sweep width (``BlockingPlan.voxel_block``).
    voxel_sweep: int
    #: Tile sizes of the *pre-batching* blocked loop being replaced
    #: (for the dispatch-amortization comparison).
    loop_voxel_block: int = 16
    loop_target_block: int = 512

    def __post_init__(self) -> None:
        if min(self.n_epochs, self.n_assigned, self.epoch_len, self.n_voxels) < 1:
            raise ValueError("all shape dimensions must be >= 1")
        if self.voxel_sweep < 1:
            raise ValueError("voxel_sweep must be >= 1")
        if self.loop_voxel_block < 1 or self.loop_target_block < 1:
            raise ValueError("loop block sizes must be >= 1")

    @property
    def flops(self) -> float:
        """Gemm FLOPs: one multiply-add per (epoch, v, t, n).

        The normalization adds ~``NORM_VECTOR_PASSES`` ops per output
        element — three orders of magnitude below the gemm for realistic
        ``T`` — and is accounted as memory traffic, not FLOPs.
        """
        return 2.0 * self.n_epochs * self.n_assigned * self.epoch_len * self.n_voxels

    @property
    def output_elements(self) -> float:
        """Correlation elements written (V x E x N)."""
        return float(self.n_assigned) * self.n_epochs * self.n_voxels

    @property
    def n_sweep_tiles(self) -> int:
        """Slabs the normalization sweep visits (the tiles counter)."""
        return math.ceil(self.n_assigned / self.voxel_sweep)

    @property
    def fused_dispatches(self) -> int:
        """Python-level dispatches of the fused engine: one batched gemm
        plus three phased normalization passes per sweep slab (the
        handful of whole-task side-buffer ops hoisted out of the sweep
        loop are O(1) and ignored)."""
        return 1 + 3 * self.n_sweep_tiles

    @property
    def loop_dispatches(self) -> int:
        """Dispatches of the pre-batching loop it replaces: per tile,
        one gemm per epoch plus the normalization callback."""
        tiles = math.ceil(self.n_assigned / self.loop_voxel_block) * math.ceil(
            self.n_voxels / self.loop_target_block
        )
        return tiles * (self.n_epochs + 1)


def batched_stage12_shape_for(
    spec: DatasetSpec,
    n_assigned: int,
    voxel_sweep: int,
    loop_voxel_block: int = 16,
    loop_target_block: int = 512,
) -> BatchedStage12Shape:
    """Fused stage-1/2 shape for a task on a dataset (all epochs)."""
    return BatchedStage12Shape(
        n_epochs=spec.n_epochs,
        n_assigned=n_assigned,
        epoch_len=spec.epoch_length,
        n_voxels=spec.n_voxels,
        voxel_sweep=voxel_sweep,
        loop_voxel_block=loop_voxel_block,
        loop_target_block=loop_target_block,
    )


def stage12_dispatch_amortization(shape: BatchedStage12Shape) -> float:
    """How many loop dispatches one fused dispatch replaces.

    Overhead seconds saved per task are
    ``(loop_dispatches - fused_dispatches) * DISPATCH_OVERHEAD_SECONDS``.
    """
    return shape.loop_dispatches / shape.fused_dispatches


def sweep_slab_bytes(shape: BatchedStage12Shape, dtype_bytes: int = 4) -> int:
    """Live bytes of one normalization slab: the ``(sweep, E, N)`` slice
    plus the equal-size squaring scratch the workspace holds."""
    slab = shape.voxel_sweep * shape.n_epochs * shape.n_voxels * dtype_bytes
    return 2 * slab


def sweep_fits_l2(
    shape: BatchedStage12Shape, hw: HardwareSpec, cache_fraction: float = 0.8
) -> bool:
    """Whether a sweep slab stays resident in one thread's L2 share.

    This is the knee the autotuner finds empirically: below it the six
    post-clip passes run at cache bandwidth, above it each pass
    re-streams the slab from DRAM.
    """
    if not 0.0 < cache_fraction <= 1.0:
        raise ValueError("cache_fraction must be in (0, 1]")
    budget = int(hw.l2_per_thread_bytes() * cache_fraction)
    return sweep_slab_bytes(shape) <= budget


def model_batched_stage12(
    spec: DatasetSpec,
    n_assigned: int,
    hw: HardwareSpec,
    voxel_sweep: int,
) -> KernelEstimate:
    """Model the fused batched stage 1/2 for one task.

    Miss accounting (lines of ``hw.l2.line_bytes``):

    * gemm: output write-allocate + one streaming read of B + A — the
      single batched pass reads B exactly once, so the blocked path's
      per-voxel-block B re-reads disappear entirely (no remote-L2 term);
    * normalization: one read+write pass over C always (clip/arctanh);
      the remaining :data:`NORM_VECTOR_PASSES` - 1 passes are free when
      the sweep slab fits L2 (:func:`sweep_fits_l2`), else each
      re-streams C from DRAM.

    The estimate's time excludes Python dispatch cost; add
    ``shape.fused_dispatches * DISPATCH_OVERHEAD_SECONDS`` (versus
    ``shape.loop_dispatches`` for the loop) for end-to-end comparisons.
    """
    shape = batched_stage12_shape_for(spec, n_assigned, voxel_sweep)
    line_elems = hw.elements_per_line()
    c_lines = shape.output_elements / line_elems
    b_lines = float(shape.n_epochs) * shape.n_voxels * shape.epoch_len / line_elems
    a_lines = float(shape.n_epochs) * shape.n_assigned * shape.epoch_len / line_elems

    dram = c_lines + b_lines + a_lines
    # Normalization: first pass re-reads + rewrites C.
    dram += 2.0 * c_lines
    if not sweep_fits_l2(shape, hw):
        dram += 2.0 * (NORM_VECTOR_PASSES - 1) * c_lines

    calib = calibration_for("matmul/ours/corr", hw)
    refs = shape.flops * calib.refs_per_flop
    vpu = shape.flops / (2.0 * calib.vi)
    counters = PerfCounters(
        mem_reads=refs * 0.5,
        mem_writes=refs * 0.5,
        l2_misses=dram,
        l2_remote_hits=0.0,
        flops=shape.flops,
        vpu_instructions=vpu,
        vector_elements=vpu * calib.vi,
        scalar_instructions=refs * calib.instr_per_ref,
    )
    return estimate_kernel("matmul/ours/corr-batched", hw, counters, calib)
