"""Roofline helpers: arithmetic intensity and attainable performance.

Used by the ablation benchmarks to show where each kernel sits relative
to the machine's compute and bandwidth ceilings — the lens behind the
paper's observation that the correlation gemm (write-heavy) cannot reach
the syrk's GFLOPS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.counters import PerfCounters
from ..hw.spec import HardwareSpec

__all__ = ["RooflinePoint", "roofline_point", "attainable_gflops"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on a machine's roofline."""

    #: FLOPs per byte of DRAM traffic.
    arithmetic_intensity: float
    #: min(peak, AI x bandwidth) in GFLOPS.
    attainable_gflops: float
    #: Achieved GFLOPS (if an elapsed time was supplied).
    achieved_gflops: float | None
    #: True when the bandwidth ceiling binds.
    memory_bound: bool

    @property
    def efficiency(self) -> float | None:
        """Achieved / attainable, if achieved is known."""
        if self.achieved_gflops is None:
            return None
        return self.achieved_gflops / self.attainable_gflops


def attainable_gflops(spec: HardwareSpec, arithmetic_intensity: float) -> float:
    """The roofline: ``min(peak, AI x BW)``."""
    if arithmetic_intensity < 0:
        raise ValueError("arithmetic intensity must be >= 0")
    bw_bound = arithmetic_intensity * spec.mem_bandwidth_gbs
    return min(spec.peak_sp_gflops, bw_bound)


def roofline_point(
    spec: HardwareSpec,
    counters: PerfCounters,
    elapsed_seconds: float | None = None,
) -> RooflinePoint:
    """Place a kernel's counters on the machine's roofline.

    DRAM traffic is the kernel's L2 miss lines times the line size.
    """
    bytes_moved = counters.l2_misses * spec.l2.line_bytes
    if bytes_moved <= 0:
        ai = float("inf")
        attainable = spec.peak_sp_gflops
    else:
        ai = counters.flops / bytes_moved
        attainable = attainable_gflops(spec, ai)
    achieved = None
    if elapsed_seconds is not None:
        if elapsed_seconds <= 0:
            raise ValueError("elapsed_seconds must be positive")
        achieved = counters.flops / elapsed_seconds / 1e9
    return RooflinePoint(
        arithmetic_intensity=ai,
        attainable_gflops=attainable,
        achieved_gflops=achieved,
        memory_bound=attainable < spec.peak_sp_gflops,
    )
