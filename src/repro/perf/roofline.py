"""Roofline helpers: arithmetic intensity and attainable performance.

Used by the ablation benchmarks to show where each kernel sits relative
to the machine's compute and bandwidth ceilings — the lens behind the
paper's observation that the correlation gemm (write-heavy) cannot reach
the syrk's GFLOPS.

Besides the point-wise helpers, this module renders a per-kernel
roofline report directly from *trace data*: kernel spans enriched by the
performance observatory (:mod:`repro.obs.perf`) carry modeled ``pc.``
counters and measured wall time, which is exactly what a roofline needs
(:func:`roofline_rows`, :func:`format_roofline_report`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..hw.counters import PerfCounters
from ..hw.spec import HardwareSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.span import Span

__all__ = [
    "RooflinePoint",
    "RooflineRow",
    "attainable_gflops",
    "format_roofline_report",
    "ridge_intensity",
    "roofline_point",
    "roofline_rows",
]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on a machine's roofline."""

    #: FLOPs per byte of DRAM traffic.
    arithmetic_intensity: float
    #: min(peak, AI x bandwidth) in GFLOPS.
    attainable_gflops: float
    #: Achieved GFLOPS (if an elapsed time was supplied).
    achieved_gflops: float | None
    #: True when the bandwidth ceiling binds.
    memory_bound: bool

    @property
    def efficiency(self) -> float | None:
        """Achieved / attainable, if achieved is known."""
        if self.achieved_gflops is None:
            return None
        return self.achieved_gflops / self.attainable_gflops


def attainable_gflops(spec: HardwareSpec, arithmetic_intensity: float) -> float:
    """The roofline: ``min(peak, AI x BW)``."""
    if arithmetic_intensity < 0:
        raise ValueError("arithmetic intensity must be >= 0")
    bw_bound = arithmetic_intensity * spec.mem_bandwidth_gbs
    return min(spec.peak_sp_gflops, bw_bound)


def ridge_intensity(spec: HardwareSpec) -> float:
    """The ridge point: the AI where the two ceilings meet.

    Below ``peak / BW`` FLOPs-per-byte a kernel is bandwidth-bound on
    this machine; above it, compute-bound.
    """
    return spec.peak_sp_gflops / spec.mem_bandwidth_gbs


def roofline_point(
    spec: HardwareSpec,
    counters: PerfCounters,
    elapsed_seconds: float | None = None,
) -> RooflinePoint:
    """Place a kernel's counters on the machine's roofline.

    DRAM traffic is the kernel's L2 miss lines times the line size.
    """
    bytes_moved = counters.l2_misses * spec.l2.line_bytes
    if bytes_moved <= 0:
        ai = float("inf")
        attainable = spec.peak_sp_gflops
    else:
        ai = counters.flops / bytes_moved
        attainable = attainable_gflops(spec, ai)
    achieved = None
    if elapsed_seconds is not None:
        if elapsed_seconds <= 0:
            raise ValueError("elapsed_seconds must be positive")
        achieved = counters.flops / elapsed_seconds / 1e9
    return RooflinePoint(
        arithmetic_intensity=ai,
        attainable_gflops=attainable,
        achieved_gflops=achieved,
        memory_bound=attainable < spec.peak_sp_gflops,
    )


# -- trace-driven report ---------------------------------------------------


@dataclass(frozen=True)
class RooflineRow:
    """One kernel's aggregated trace data placed on the roofline."""

    kernel: str
    #: Kernel spans aggregated into this row.
    calls: int
    #: Measured wall seconds summed over those spans.
    wall_seconds: float
    #: Model-predicted seconds summed over those spans.
    predicted_seconds: float
    point: RooflinePoint

    @property
    def predicted_gflops(self) -> float:
        """GFLOPS the model expects at its own predicted time."""
        if self.predicted_seconds <= 0 or self.point.achieved_gflops is None:
            return 0.0
        return (
            self.point.achieved_gflops
            * self.wall_seconds
            / self.predicted_seconds
        )


def roofline_rows(
    spans: "Iterable[Span]", spec: HardwareSpec
) -> list[RooflineRow]:
    """Per-kernel roofline placements from an *enriched* trace.

    Kernel spans carrying modeled counters (``pc.flops``,
    ``pc.l2_misses`` — attached by :func:`repro.obs.perf.enrich_spans`)
    are aggregated by name; each aggregate becomes one point: AI from
    the modeled DRAM traffic, achieved GFLOPS from the *measured* wall
    time.  Kernels without counters (un-modeled helpers) are skipped.
    Rows come back in first-appearance order.
    """
    order: list[str] = []
    acc: dict[str, dict[str, float]] = {}
    for span in spans:
        if span.kind != "kernel" or "pc.flops" not in span.metrics:
            continue
        if span.name not in acc:
            order.append(span.name)
            acc[span.name] = {
                "calls": 0.0,
                "wall": 0.0,
                "predicted": 0.0,
                "flops": 0.0,
                "l2_misses": 0.0,
            }
        slot = acc[span.name]
        slot["calls"] += 1.0
        slot["wall"] += span.metrics.get("wall_seconds", span.duration)
        slot["predicted"] += span.metrics.get("predicted_seconds", 0.0)
        slot["flops"] += span.metrics["pc.flops"]
        slot["l2_misses"] += span.metrics.get("pc.l2_misses", 0.0)

    rows: list[RooflineRow] = []
    for name in order:
        slot = acc[name]
        counters = PerfCounters(
            flops=slot["flops"], l2_misses=slot["l2_misses"]
        )
        elapsed = slot["wall"] if slot["wall"] > 0 else None
        rows.append(
            RooflineRow(
                kernel=name,
                calls=int(slot["calls"]),
                wall_seconds=slot["wall"],
                predicted_seconds=slot["predicted"],
                point=roofline_point(spec, counters, elapsed),
            )
        )
    return rows


def format_roofline_report(
    rows: Iterable[RooflineRow], spec: HardwareSpec
) -> str:
    """Fixed-width per-kernel roofline table.

    Columns: arithmetic intensity, the machine's attainable ceiling at
    that AI, achieved GFLOPS from measured wall time, efficiency, and
    which ceiling binds.  The header states the machine's two ceilings
    and their ridge point so the table reads standalone.
    """
    lines = [
        f"roofline: peak {spec.peak_sp_gflops:.0f} GFLOPS, "
        f"bw {spec.mem_bandwidth_gbs:.0f} GB/s, "
        f"ridge {ridge_intensity(spec):.1f} flop/byte",
        f"{'kernel':<30} {'calls':>5} {'AI':>8} {'attain':>8} "
        f"{'achieved':>8} {'eff':>6} bound",
    ]
    for row in rows:
        point = row.point
        ai = (
            "inf"
            if point.arithmetic_intensity == float("inf")
            else f"{point.arithmetic_intensity:.2f}"
        )
        achieved = (
            "-"
            if point.achieved_gflops is None
            else f"{point.achieved_gflops:.2f}"
        )
        eff = (
            "-"
            if point.efficiency is None
            else f"{point.efficiency:.0%}"
        )
        bound = "memory" if point.memory_bound else "compute"
        lines.append(
            f"{row.kernel:<30} {row.calls:>5d} {ai:>8} "
            f"{point.attainable_gflops:>8.1f} {achieved:>8} {eff:>6} {bound}"
        )
    return "\n".join(lines)
