"""Access-pattern model of the incremental (streaming) stage-1/2 engine.

The streaming engine (:class:`repro.core.incremental.IncrementalEmitter`)
splits each feedback-phase TR into two very different kernels:

* **Per-TR update** — fold one volume into the running sums and refresh
  the in-progress epoch's Pearson plane from them: a rank-1 update of
  the ``(V, N)`` float64 cross-product accumulator plus a fixed number
  of elementwise passes over same-size scratch.  ``O(V*N)`` work and
  bytes, *independent of how many TRs the epoch already holds* — this
  is the flat step cost the paper's interactive-latency motivation
  (PAPERS.md) asks for.
* **Epoch close** — at each epoch boundary the closed window goes
  through the engine's full-width batch gemm once (``2*V*T*N`` FLOPs),
  producing the plane that is bitwise-equal to an offline recompute.

The comparison target is what a naive loop would do on *every* TR to
keep its state current: run batch stage 1/2 over the whole retained
window from scratch (``model_full_recompute_step``).  Its cost scales
with the window depth ``W`` while the incremental update stays flat, so
the modeled median-step speedup (``incremental_speedup``) is the
model-side counterpart of the measured ``BENCH_incremental.json``
floor.

All three estimates share the machine model and calibration family of
the batch engine, so they are directly comparable to
:func:`~repro.perf.stage12_model.model_batched_stage12` and land on the
same roofline axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.presets import DatasetSpec
from ..hw.counters import PerfCounters
from ..hw.spec import HardwareSpec
from .base import KernelEstimate, calibration_for, estimate_kernel
from .stage12_model import model_batched_stage12

__all__ = [
    "ACCUMULATOR_BYTES",
    "TR_UPDATE_FLOPS_PER_ELEMENT",
    "TR_UPDATE_PASSES",
    "IncrementalStepShape",
    "amortized_step_seconds",
    "incremental_speedup",
    "incremental_step_shape_for",
    "model_full_recompute_step",
    "model_incremental_epoch_close",
    "model_incremental_tr_update",
]

#: The running-sum accumulators are float64 (the emitter keeps the
#: rank-1 updates in double so thousands of TRs do not drift).
ACCUMULATOR_BYTES = 8

#: Full ``(V, N)`` array passes per TR: the rank-1 outer-product write,
#: the cross-accumulator read+update (2), and the partial-correlation
#: refresh's numerator/denominator/mask/divide/clip/copy chain (6).
TR_UPDATE_PASSES = 9

#: FLOPs per ``(V, N)`` element per TR: multiply+add of the rank-1
#: update plus the ~6 arithmetic ops of the closed-form Pearson
#: refresh (scale, two subtractions, sqrt, divide, clip).
TR_UPDATE_FLOPS_PER_ELEMENT = 8.0


@dataclass(frozen=True)
class IncrementalStepShape:
    """Shape of one streaming step for a bound task."""

    n_assigned: int    # V — selected voxel rows
    n_voxels: int      # N — brain size
    epoch_len: int     # T — TRs per epoch at the boundary
    window_epochs: int  # W — planes retained in the sliding window

    def __post_init__(self) -> None:
        if min(self.n_assigned, self.n_voxels, self.epoch_len) < 1:
            raise ValueError("all shape dimensions must be >= 1")
        if self.window_epochs < 1:
            raise ValueError("window_epochs must be >= 1")

    @property
    def plane_elements(self) -> float:
        """Elements of one ``(V, N)`` correlation plane."""
        return float(self.n_assigned) * self.n_voxels

    @property
    def tr_update_flops(self) -> float:
        """FLOPs of one per-TR running-sum update + partial refresh."""
        return TR_UPDATE_FLOPS_PER_ELEMENT * self.plane_elements

    @property
    def epoch_close_flops(self) -> float:
        """Gemm FLOPs of closing one epoch (the batch kernel's count)."""
        return 2.0 * self.n_assigned * self.epoch_len * self.n_voxels

    @property
    def accumulator_bytes(self) -> float:
        """Resident float64 running-sum state (the per-TR working set)."""
        return self.plane_elements * ACCUMULATOR_BYTES


def incremental_step_shape_for(
    spec: DatasetSpec,
    n_assigned: int,
    window_epochs: int | None = None,
) -> IncrementalStepShape:
    """Streaming step shape for a classifier task on a dataset."""
    return IncrementalStepShape(
        n_assigned=n_assigned,
        n_voxels=spec.n_voxels,
        epoch_len=spec.epoch_length,
        window_epochs=window_epochs if window_epochs else spec.n_epochs,
    )


def model_incremental_tr_update(
    shape: IncrementalStepShape, hw: HardwareSpec
) -> KernelEstimate:
    """Model one per-TR streaming update (``push_tr`` + partial refresh).

    Miss accounting: the ``(V, N)`` float64 accumulators far exceed one
    thread's L2 share at any realistic brain size, so every pass
    streams from DRAM — :data:`TR_UPDATE_PASSES` lines over
    :attr:`~IncrementalStepShape.accumulator_bytes`, plus the per-voxel
    sum/sum-of-squares vectors (4 passes of ``N`` doubles).  The
    elementwise chain has no gemm, so the norm calibration family (not
    the matmul one) supplies instruction mix and latency hiding.
    """
    line_bytes = hw.l2.line_bytes
    plane_lines = shape.accumulator_bytes / line_bytes
    vector_lines = 4.0 * shape.n_voxels * ACCUMULATOR_BYTES / line_bytes
    dram = TR_UPDATE_PASSES * plane_lines + vector_lines

    calib = calibration_for("norm/merged", hw)
    flops = shape.tr_update_flops
    refs = 2.0 * TR_UPDATE_PASSES * shape.plane_elements  # read+write/pass
    vpu = flops / calib.vi
    counters = PerfCounters(
        mem_reads=refs * 0.5,
        mem_writes=refs * 0.5,
        l2_misses=dram,
        l2_remote_hits=0.0,
        flops=flops,
        vpu_instructions=vpu,
        vector_elements=flops,
        scalar_instructions=refs * calib.instr_per_ref,
    )
    return estimate_kernel("incremental/tr-update", hw, counters, calib)


def model_incremental_epoch_close(
    shape: IncrementalStepShape, hw: HardwareSpec
) -> KernelEstimate:
    """Model the epoch-boundary plane: one full-width batch gemm.

    The closed epoch's ``(N, T)`` window is equation-2-normalized and
    multiplied against the ``V`` selected rows — the same kernel and
    calibration as the offline batch engine, at single-epoch depth.
    Operands stream once; the plane is written once (write-allocate).
    """
    line_elems = hw.elements_per_line()
    a_lines = float(shape.n_assigned) * shape.epoch_len / line_elems
    b_lines = float(shape.n_voxels) * shape.epoch_len / line_elems
    out_lines = 2.0 * shape.plane_elements / line_elems
    dram = a_lines + b_lines + out_lines

    calib = calibration_for("matmul/ours/corr", hw)
    flops = shape.epoch_close_flops
    refs = flops * calib.refs_per_flop
    vpu = flops / (2.0 * calib.vi)
    counters = PerfCounters(
        mem_reads=refs * 0.5,
        mem_writes=refs * 0.5,
        l2_misses=dram,
        l2_remote_hits=0.0,
        flops=flops,
        vpu_instructions=vpu,
        vector_elements=vpu * calib.vi,
        scalar_instructions=refs * calib.instr_per_ref,
    )
    return estimate_kernel("incremental/epoch-close", hw, counters, calib)


def model_full_recompute_step(
    shape: IncrementalStepShape, hw: HardwareSpec
) -> KernelEstimate:
    """Model the naive per-TR alternative: batch stage 1/2 on the window.

    What the pre-refactor feedback loop paid to keep its state current:
    re-normalize and recompute the dense ``V x W x N`` correlation stack
    over *all* retained epochs on every incoming TR — the batch engine
    (:func:`~repro.perf.stage12_model.model_batched_stage12`) at full
    sweep width, over a single-subject window of ``W`` epochs.  Its cost
    scales with the window; the incremental update's does not, which is
    the whole argument for streaming.
    """
    spec = DatasetSpec(
        name="incremental-window",
        n_voxels=shape.n_voxels,
        n_subjects=1,
        n_epochs=shape.window_epochs,
        epoch_length=shape.epoch_len,
    )
    return model_batched_stage12(spec, shape.n_assigned, hw, shape.n_assigned)


def incremental_speedup(
    shape: IncrementalStepShape, hw: HardwareSpec
) -> float:
    """Modeled median-step speedup of streaming over naive recompute.

    Both step costs are flat across an epoch (the incremental update by
    construction, the naive recompute because the window dominates the
    in-progress TRs), so the median ratio is just the ratio of the two
    models.  This is the model-side counterpart of the measured
    ``BENCH_incremental.json`` floor (>= 5x): the model should predict
    comfortably above it at any realistic window.
    """
    naive = model_full_recompute_step(shape, hw)
    step = model_incremental_tr_update(shape, hw)
    if step.seconds <= 0:
        return float("inf")
    return naive.seconds / step.seconds


def amortized_step_seconds(
    shape: IncrementalStepShape, hw: HardwareSpec
) -> float:
    """Modeled per-TR cost with the boundary gemm amortized in.

    ``T - 1`` flat updates plus one epoch close per epoch; this is the
    quantity to compare against a scanner's TR budget when gating p99
    (the close lands on one TR, so p99 tracks the close itself once
    epochs are longer than ~100 TRs).
    """
    update = model_incremental_tr_update(shape, hw).seconds
    close = model_incremental_epoch_close(shape, hw).seconds
    return update + close / shape.epoch_len
