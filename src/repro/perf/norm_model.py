"""Access-pattern model of the stage-2 normalization (Tables 1 and 7).

Stage 2 is sweep-shaped: every kernel variant makes a small number of
passes over the task's ``V x M x N`` correlation array.  The variants
differ in how many of those passes touch memory:

* ``baseline`` — the Section 3.2 code: Fisher read+write, a statistics
  read, and a read+write application pass, with extra passes from its
  less fused loop structure (Table 1: 6.2 G refs, 179 M misses).
* ``separated`` — the vectorized stage run after stage 1 completes: the
  array has been evicted, so the Fisher pass and the application pass
  each re-fetch every line (Table 7: 4.35 G refs incl. stage 1,
  188.1 M misses incl. stage 1).
* ``merged`` — the same vector code fused into the stage-1 tile loop:
  tiles are still L2-resident, so only tile-boundary traffic misses
  (Table 7: 1.93 G refs incl. stage 1, 67.5 M misses incl. stage 1).

Sweep counts below are *normalization-only*; the Table 7 benchmark adds
the stage-1 matmul model to reconstruct the paper's combined rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.presets import DatasetSpec
from ..hw.counters import PerfCounters
from ..hw.spec import HardwareSpec
from .base import KernelEstimate, calibration_for, estimate_kernel

__all__ = ["NormSweeps", "NORM_SWEEPS", "model_normalization"]

#: Floating-point work per normalized element: the arctanh sequence
#: (log, divide) plus the two z-scoring passes.
FLOPS_PER_ELEMENT = 12.0


@dataclass(frozen=True)
class NormSweeps:
    """Memory behaviour of one normalization variant, in array sweeps."""

    #: Element-granular reference sweeps (the paper's "#mem refs" for
    #: this stage divided by V*M*N).
    ref_sweeps: float
    #: Line-granular DRAM miss sweeps (misses / (V*M*N / line_elems)).
    miss_sweeps: float

    def __post_init__(self) -> None:
        if self.ref_sweeps <= 0 or self.miss_sweeps < 0:
            raise ValueError("sweep counts must be positive")


#: Derivation per variant (see module docstring); ref sweeps for
#: baseline/separated/merged pin to Table 1 / Table 7 after subtracting
#: the stage-1 contribution.
NORM_SWEEPS: dict[str, NormSweeps] = {
    # fisher r+w (2) + stats read (1) + apply r+w (2) + unfused extra
    # passes in the baseline loop structure (~2) -> ~6.9 sweeps of refs;
    # three of those passes miss all the way to DRAM.
    "baseline": NormSweeps(ref_sweeps=6.94, miss_sweeps=3.2),
    # vectorized: fisher r+w (2) + stats read (1, mostly cached) +
    # apply r+w (2) -> ~3.6 ref sweeps; the fisher read and the apply
    # read each re-fetch the array (2.16 miss sweeps).
    "separated": NormSweeps(ref_sweeps=3.64, miss_sweeps=2.16),
    # fused into the tile loop: only the in-cache second pass issues
    # fresh references (~0.9 sweeps); misses only at tile boundaries.
    "merged": NormSweeps(ref_sweeps=0.93, miss_sweeps=0.10),
}


def model_normalization(
    spec: DatasetSpec,
    n_assigned: int,
    hw: HardwareSpec,
    variant: str = "merged",
) -> KernelEstimate:
    """Model stage 2 for one task of ``n_assigned`` voxels."""
    try:
        sweeps = NORM_SWEEPS[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; choose from {sorted(NORM_SWEEPS)}"
        ) from None
    elements = float(n_assigned) * spec.n_epochs * spec.n_voxels
    line_elems = hw.elements_per_line()
    calib = calibration_for(f"norm/{variant}", hw)

    refs = elements * sweeps.ref_sweeps * calib.refs_per_element
    vpu = refs / calib.vi
    counters = PerfCounters(
        mem_reads=refs * 0.6,
        mem_writes=refs * 0.4,
        l2_misses=elements / line_elems * sweeps.miss_sweeps,
        flops=elements * FLOPS_PER_ELEMENT,
        vpu_instructions=vpu,
        vector_elements=vpu * calib.vi,
        scalar_instructions=refs * calib.instr_per_ref,
    )
    return estimate_kernel(f"norm/{variant}", hw, counters, calib)
