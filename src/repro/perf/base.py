"""Shared plumbing for the kernel performance models."""

from __future__ import annotations

from dataclasses import dataclass

from ..hw.counters import PerfCounters
from ..hw.spec import HardwareSpec
from ..hw.timing import TimeBreakdown, TimeModel
from .calibration import KernelCalibration

__all__ = ["KernelEstimate", "arch_key", "calibration_for", "estimate_kernel", "issue_rate_for"]


def arch_key(spec: HardwareSpec) -> str | None:
    """Calibration override key for a machine (None = KNC baseline)."""
    return "xeon" if spec.llc is not None else None


def calibration_for(kernel_id: str, spec: HardwareSpec) -> KernelCalibration:
    """Arch-aware calibration lookup."""
    from .calibration import get_calibration

    return get_calibration(kernel_id, arch=arch_key(spec))


@dataclass(frozen=True)
class KernelEstimate:
    """A modeled kernel execution: counters plus derived time."""

    kernel_id: str
    counters: PerfCounters
    breakdown: TimeBreakdown

    @property
    def seconds(self) -> float:
        """Modeled elapsed seconds."""
        return self.breakdown.elapsed

    @property
    def milliseconds(self) -> float:
        """Modeled elapsed milliseconds (the paper's unit)."""
        return self.breakdown.elapsed * 1e3

    @property
    def gflops(self) -> float:
        """Achieved GFLOPS at the modeled time."""
        if self.counters.flops == 0:
            return 0.0
        return self.counters.gflops_at(self.breakdown.elapsed)

    def summary(self) -> str:
        """One line in the paper's table vocabulary."""
        return (
            f"{self.kernel_id}: {self.milliseconds:.0f} ms, "
            f"{self.counters.summary()}, {self.gflops:.0f} GFLOPS"
        )


def issue_rate_for(spec: HardwareSpec) -> float:
    """Instructions per core-cycle the issue model assumes.

    The KNC core is in-order single-issue on the vector pipe; Sandy
    Bridge is 4-wide out-of-order, modeled as sustaining ~2 of the
    modeled instruction mix per cycle.
    """
    return 1.0 if spec.llc is None else 2.0


def estimate_kernel(
    kernel_id: str,
    spec: HardwareSpec,
    counters: PerfCounters,
    calib: KernelCalibration,
    threads: int | None = None,
) -> KernelEstimate:
    """Run the machine timing model over modeled counters.

    On out-of-order hosts (spec has an LLC) the exposed miss latency is
    further reduced: the reorder window and hardware prefetchers hide
    ~70% of what an in-order KNC core would expose.
    """
    hiding = calib.latency_hiding
    if spec.llc is not None:
        hiding = 1.0 - (1.0 - hiding) * 0.3
    model = TimeModel(spec, issue_per_core_per_cycle=issue_rate_for(spec))
    breakdown = model.estimate(counters, latency_hiding=hiding, threads=threads)
    return KernelEstimate(kernel_id=kernel_id, counters=counters, breakdown=breakdown)
