"""Access-pattern model of the *batched* stage-3a kernel syrk.

The batched kernel (:func:`repro.core.kernels.kernel_matrix_batched`)
computes all ``B`` voxel kernels of a stage-3 block in one stacked GEMM
``(B, M, N) @ (B, N, M)`` instead of ``B`` separate ``(M, N) @ (N, M)``
calls.  The arithmetic and the DRAM traffic are identical to ``B``
per-voxel syrks — each A panel is still read once, each C triangle
written once — so what the model captures is what batching actually
changes:

* **dispatch amortization** — the per-call fixed cost (interpreter,
  BLAS setup, thread wake-up) is paid once per *stacked* call instead of
  once per voxel.  On KNC this is the paper's motivation for keeping
  "240+ voxel problems resident": tiny M x M problems cannot amortize
  offload overhead individually.
* **output residency** — the panel-accumulated variant re-touches the
  whole ``B x M x M`` output block once per depth panel; whether those
  re-touches hit cache or DRAM depends on the batch size, which gives a
  principled ceiling for ``batch_voxels``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..data.presets import DatasetSpec
from ..hw.counters import PerfCounters
from ..hw.spec import HardwareSpec
from .base import KernelEstimate, calibration_for, estimate_kernel
from .matmul_model import SyrkShape, syrk_shape_for

__all__ = [
    "BatchedSyrkShape",
    "DISPATCH_OVERHEAD_SECONDS",
    "batched_syrk_shape_for",
    "dispatch_amortization",
    "max_resident_batch",
    "model_batched_syrk",
]

#: Fixed cost of one stacked-GEMM dispatch (interpreter + BLAS setup).
#: Measured order-of-magnitude for a numpy matmul call on the host; the
#: KNC offload analogue is far larger, which only strengthens the case.
DISPATCH_OVERHEAD_SECONDS = 5e-6


@dataclass(frozen=True)
class BatchedSyrkShape:
    """Shape of one task's stage-3a work under batched dispatch."""

    #: Total voxel problems in the task.
    n_problems: int
    #: Training epochs (kernel matrix is m x m).
    m: int
    #: Brain voxels (the long reduction dimension).
    n: int
    #: Voxel problems per stacked GEMM call.
    batch: int
    #: Reduction-depth panel (None = single full-depth call per batch).
    panel_depth: int | None = None

    def __post_init__(self) -> None:
        if self.n_problems < 1 or self.m < 1 or self.n < 1:
            raise ValueError("n_problems, m, n must all be >= 1")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        if self.panel_depth is not None and self.panel_depth < 1:
            raise ValueError("panel_depth must be >= 1 (or None)")

    @property
    def as_syrk(self) -> SyrkShape:
        """The equivalent per-voxel shape (arithmetic is identical)."""
        return SyrkShape(n_problems=self.n_problems, m=self.m, n=self.n)

    @property
    def flops(self) -> float:
        """Triangle-only FLOPs — batching does not change arithmetic."""
        return self.as_syrk.flops

    @property
    def n_batches(self) -> int:
        """Stacked GEMM groups the task splits into."""
        return math.ceil(self.n_problems / self.batch)

    @property
    def n_panels(self) -> int:
        """Depth panels per batch (1 without panel accumulation)."""
        if self.panel_depth is None:
            return 1
        return math.ceil(self.n / self.panel_depth)

    @property
    def dispatches(self) -> int:
        """GEMM dispatches the batched driver issues."""
        return self.n_batches * self.n_panels

    @property
    def dispatches_per_voxel_path(self) -> int:
        """GEMM dispatches the per-voxel reference driver issues."""
        return self.n_problems * self.n_panels

    @property
    def batch_a_bytes(self) -> int:
        """Input bytes of one full batch's data matrices (float32)."""
        return 4 * self.batch * self.m * self.n

    @property
    def batch_c_bytes(self) -> int:
        """Output bytes of one batch's kernel matrices (float32)."""
        return 4 * self.batch * self.m * self.m

    @property
    def panel_working_set_bytes(self) -> int:
        """Bytes live during one dispatch: A panel slice + C block."""
        depth = self.panel_depth if self.panel_depth is not None else self.n
        depth = min(depth, self.n)
        return 4 * self.batch * self.m * depth + self.batch_c_bytes


def batched_syrk_shape_for(
    spec: DatasetSpec,
    n_assigned: int,
    batch: int,
    panel_depth: int | None = None,
) -> BatchedSyrkShape:
    """Batched stage-3a shape for a task on a dataset (LOSO training)."""
    base = syrk_shape_for(spec, n_assigned)
    return BatchedSyrkShape(
        n_problems=base.n_problems,
        m=base.m,
        n=base.n,
        batch=batch,
        panel_depth=panel_depth,
    )


def dispatch_amortization(shape: BatchedSyrkShape) -> float:
    """How many per-voxel dispatches one batched dispatch replaces.

    Equals the effective batch size: overhead seconds saved per task are
    ``(dispatches_per_voxel_path - dispatches) * DISPATCH_OVERHEAD_SECONDS``.
    """
    return shape.dispatches_per_voxel_path / shape.dispatches


def max_resident_batch(
    hw: HardwareSpec, m: int, panel_depth: int | None = None, n: int | None = None
) -> int:
    """Largest batch whose per-dispatch working set stays cache-resident.

    Uses the LLC when the machine has one (host), else the aggregate L2
    (KNC keeps a task's working set distributed across the ring).  With
    panel accumulation only the current depth slice of A competes with
    the C block, so deep reductions allow much larger batches.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if hw.llc is not None:
        capacity = hw.llc.size_bytes
    else:
        capacity = hw.l2.size_bytes * hw.cores
    depth = panel_depth if panel_depth is not None else (n if n is not None else m)
    per_problem = 4 * (m * depth + m * m)
    return max(1, capacity // per_problem)


def model_batched_syrk(
    spec: DatasetSpec,
    n_assigned: int,
    hw: HardwareSpec,
    batch: int,
    panel_depth: int | None = None,
) -> KernelEstimate:
    """Model the batched stage-3a kernel precompute for one task.

    DRAM accounting matches the optimized per-voxel syrk — A read once,
    C written once — plus the panel variant's C re-touches: the output
    block is revisited once per depth panel, from cache while the batch
    C block fits (:func:`max_resident_batch`), from DRAM beyond that.
    The returned estimate's time excludes the dispatch fixed cost; add
    ``shape.dispatches * DISPATCH_OVERHEAD_SECONDS`` for end-to-end
    driver comparisons (kept separate because it is a host-side cost,
    not a kernel cost).
    """
    shape = batched_syrk_shape_for(spec, n_assigned, batch, panel_depth)
    syrk = shape.as_syrk
    line_elems = hw.elements_per_line()
    a_lines = syrk.n_problems * syrk.a_elements / line_elems
    c_lines = syrk.output_elements / line_elems

    remote = 0.0
    dram = a_lines + c_lines
    if shape.n_panels > 1:
        # C re-touched (read + write) once per extra panel pass.
        retouch_lines = 2.0 * (shape.n_panels - 1) * c_lines
        if batch <= max_resident_batch(hw, syrk.m, panel_depth, syrk.n):
            remote = retouch_lines
        else:
            dram += retouch_lines

    calib = calibration_for("matmul/ours/syrk", hw)
    refs = syrk.flops * calib.refs_per_flop
    vpu = syrk.flops / (2.0 * calib.vi)
    counters = PerfCounters(
        mem_reads=refs * 0.98,
        mem_writes=refs * 0.02,
        l2_misses=dram,
        l2_remote_hits=remote,
        flops=syrk.flops,
        vpu_instructions=vpu,
        vector_elements=vpu * calib.vi,
        scalar_instructions=refs * calib.instr_per_ref,
    )
    return estimate_kernel("matmul/ours/syrk-batched", hw, counters, calib)
