"""Scale-out model: bandwidth + latency terms for the 2-D tiled protocol.

The single-node models (:mod:`repro.perf.matmul_model` and friends) cost
the kernels; this module costs what scale-out adds around them — the
master-worker *communication* of the TCP transport under 2-D tile
partitioning:

* per **tile**, the master sends a small descriptor (panel id, row ids,
  column range) and receives the computed ``(rows, epochs, cols)``
  float32 block — the dominant upstream term;
* per **panel**, the master ships the assembled ``(rows, epochs, V)``
  buffer back out for stage-3 scoring and receives the per-voxel
  accuracies — the dominant downstream term.

Every transfer is modeled as ``latency + bytes / bandwidth`` on an
:class:`InterconnectSpec`.  The master's link is shared, so the wire
terms *serialize* there while compute scales with workers; the
strong-scaling prediction is the resulting
``max(compute / n, wire_seconds)`` envelope, which is what the worker
loop's request prefetch (communication/compute overlap) can at best
achieve.  Everything is deterministic given geometry + machine + network
specs, so predictions are comparable across machines and live next to
measured curves in ``BENCH_scaleout.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..data.presets import DatasetSpec
from ..hw.counters import PerfCounters
from ..hw.spec import HardwareSpec
from .matmul_model import model_correlation_matmul, model_kernel_syrk
from .norm_model import model_normalization
from .svm_model import model_svm_cv

__all__ = [
    "GIGABIT_ETHERNET",
    "IN_PROCESS",
    "LOOPBACK_TCP",
    "TEN_GBE_FABRIC",
    "TRANSPORT_INTERCONNECTS",
    "CommEstimate",
    "InterconnectSpec",
    "ScaleoutPoint",
    "TileCommShape",
    "model_panel_comm",
    "model_tile2d_compute",
    "model_tile_comm",
    "predict_scaleout",
]

#: Bytes of frame header + pickle framing per message (both directions).
MESSAGE_OVERHEAD_BYTES = 256
#: float32 payload elements.
_F32 = 4
#: Bytes per scored voxel in a result (int64 id + float64 accuracy).
_SCORE_BYTES = 16


@dataclass(frozen=True)
class InterconnectSpec:
    """One link of the master's star fabric."""

    name: str
    #: One-way message latency in seconds (handshake + kernel wakeup).
    latency_s: float
    #: Sustained point-to-point bandwidth in bytes/second.
    bandwidth_bytes_s: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if self.bandwidth_bytes_s <= 0:
            raise ValueError("bandwidth_bytes_s must be positive")

    def transfer_seconds(self, nbytes: float, messages: int = 1) -> float:
        """Wire time of ``messages`` transfers totalling ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        if messages < 0:
            raise ValueError("messages must be >= 0")
        payload = nbytes + messages * MESSAGE_OVERHEAD_BYTES
        return messages * self.latency_s + payload / self.bandwidth_bytes_s


#: The thread transport: a queue hand-off, payloads move by reference.
IN_PROCESS = InterconnectSpec(
    "in-process", latency_s=2e-6, bandwidth_bytes_s=2.0e10
)
#: Localhost TCP through the loopback device (the CI smoke topology).
LOOPBACK_TCP = InterconnectSpec(
    "loopback-tcp", latency_s=25e-6, bandwidth_bytes_s=3.0e9
)
#: Commodity gigabit Ethernet between hosts.
GIGABIT_ETHERNET = InterconnectSpec(
    "gigabit-ethernet", latency_s=60e-6, bandwidth_bytes_s=117e6
)
#: The paper's testbed fabric (Arista 10 GbE), matching
#: :data:`repro.cluster.network.TEN_GBE`.
TEN_GBE_FABRIC = InterconnectSpec(
    "ten-gbe", latency_s=50e-6, bandwidth_bytes_s=1.25e9
)

#: Transport-name -> interconnect used for predicted-vs-measured hooks.
TRANSPORT_INTERCONNECTS = {
    "thread": IN_PROCESS,
    "tcp": LOOPBACK_TCP,
}


@dataclass(frozen=True)
class TileCommShape:
    """The messages one 2-D tile costs on the wire."""

    rows: int
    cols: int
    n_epochs: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1 or self.n_epochs < 1:
            raise ValueError("rows, cols, n_epochs must all be >= 1")

    @property
    def task_bytes(self) -> int:
        """Master -> worker descriptor: row ids + column range."""
        return self.rows * 8 + 32

    @property
    def result_bytes(self) -> int:
        """Worker -> master block: ``(rows, epochs, cols)`` float32."""
        return self.rows * self.n_epochs * self.cols * _F32


@dataclass(frozen=True)
class CommEstimate:
    """Wire cost of one protocol exchange."""

    bytes_down: float  # master -> worker
    bytes_up: float    # worker -> master
    seconds: float

    @property
    def total_bytes(self) -> float:
        return self.bytes_down + self.bytes_up


def model_tile_comm(shape: TileCommShape, net: InterconnectSpec) -> CommEstimate:
    """Request/descriptor down, computed tile block up."""
    down = float(shape.task_bytes)
    up = float(shape.result_bytes)
    seconds = net.transfer_seconds(down, messages=1) + net.transfer_seconds(
        up, messages=1
    )
    return CommEstimate(bytes_down=down, bytes_up=up, seconds=seconds)


def model_panel_comm(
    rows: int, n_epochs: int, n_voxels: int, net: InterconnectSpec
) -> CommEstimate:
    """Assembled panel down for scoring, voxel accuracies up."""
    if rows < 1 or n_epochs < 1 or n_voxels < 1:
        raise ValueError("rows, n_epochs, n_voxels must all be >= 1")
    down = float(rows * n_epochs * n_voxels * _F32 + rows * 8)
    up = float(rows * _SCORE_BYTES)
    seconds = net.transfer_seconds(down, messages=1) + net.transfer_seconds(
        up, messages=1
    )
    return CommEstimate(bytes_down=down, bytes_up=up, seconds=seconds)


def model_tile2d_compute(
    spec: DatasetSpec, rows: int, cols: int, hw: HardwareSpec
) -> tuple[PerfCounters, float]:
    """Counters + seconds of one fused correlate+normalize 2-D tile.

    The tile kernel is the full-width blocked gemm + merged
    normalization restricted to a ``cols``-wide column slab, so its cost
    is the column fraction of the single-node models — the same
    first-principles counters, scaled by ``cols / V``.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    if cols > spec.n_voxels:
        raise ValueError("cols cannot exceed the dataset's voxel count")
    frac = cols / spec.n_voxels
    matmul = model_correlation_matmul(spec, rows, hw, "ours")
    norm = model_normalization(spec, rows, hw, "merged")
    counters = (matmul.counters + norm.counters).scaled(frac)
    seconds = (matmul.seconds + norm.seconds) * frac
    return counters, seconds


@dataclass(frozen=True)
class ScaleoutPoint:
    """Predicted elapsed time of the tiled run at one worker count."""

    n_workers: int
    #: Sum of all tile + scoring compute, spread over the workers.
    compute_seconds: float
    #: Wire time serialized on the master's shared link.
    comm_seconds: float
    #: Total protocol bytes over the run (both directions).
    comm_bytes: float
    #: ``max(compute / n, comm)`` — the overlapped-envelope prediction.
    elapsed_seconds: float

    @property
    def comm_bound(self) -> bool:
        """True when the master's link, not compute, sets the time."""
        return self.comm_seconds > self.compute_seconds / self.n_workers


def predict_scaleout(
    spec: DatasetSpec,
    hw: HardwareSpec,
    net: InterconnectSpec,
    task_voxels: int,
    tile_cols: int,
    workers: Sequence[int],
    variant: str = "optimized",
) -> list[ScaleoutPoint]:
    """Strong-scaling curve of the 2-D tiled master-worker run.

    Total compute is the per-panel single-node cost (stage 1/2 via the
    tile model summed over column slabs, stage 3 via the syrk + SVM
    models) summed over panels; total communication is every tile and
    panel exchange serialized on the master link.  With the worker
    loop's request prefetch the best achievable elapsed time is the
    envelope ``max(compute / n, comm)`` — returned per worker count.
    Weak-scaling curves come from calling this per problem size.
    """
    if task_voxels < 1 or tile_cols < 1:
        raise ValueError("task_voxels and tile_cols must be >= 1")
    if not workers:
        raise ValueError("need at least one worker count")
    v = spec.n_voxels
    panels = [
        min(task_voxels, v - start) for start in range(0, v, task_voxels)
    ]
    cols = [min(tile_cols, v - start) for start in range(0, v, tile_cols)]

    compute = 0.0
    comm_seconds = 0.0
    comm_bytes = 0.0
    if variant == "baseline":
        syrk_impl, svm_impl = "mkl", "libsvm"
    else:
        syrk_impl, svm_impl = "ours", "phisvm"
    for rows in panels:
        for c in cols:
            _, tile_s = model_tile2d_compute(spec, rows, c, hw)
            compute += tile_s
            tile_comm = model_tile_comm(
                TileCommShape(rows=rows, cols=c, n_epochs=spec.n_epochs), net
            )
            comm_seconds += tile_comm.seconds
            comm_bytes += tile_comm.total_bytes
        compute += model_kernel_syrk(spec, rows, hw, syrk_impl).seconds
        compute += model_svm_cv(spec, rows, hw, svm_impl).seconds
        panel_comm = model_panel_comm(rows, spec.n_epochs, v, net)
        comm_seconds += panel_comm.seconds
        comm_bytes += panel_comm.total_bytes

    points = []
    for n in workers:
        if n < 1:
            raise ValueError("worker counts must be >= 1")
        elapsed = max(compute / n, comm_seconds)
        points.append(
            ScaleoutPoint(
                n_workers=n,
                compute_seconds=compute,
                comm_seconds=comm_seconds,
                comm_bytes=comm_bytes,
                elapsed_seconds=elapsed,
            )
        )
    return points
