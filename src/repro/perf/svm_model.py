"""Access-pattern model of the stage-3b SVM cross-validation (Table 8).

The work is SMO-shaped: per training problem, ``iterations`` passes of
O(M) work (working-set scan, second-order gain row, two kernel rows,
gradient update).  The three implementations differ in:

* **iteration count** — PhiSVM's adaptive heuristic converges in fewer
  iterations (the factor is measured by running our own solver with
  both heuristics, see ``tests/perf/test_svm_model.py``);
* **per-element traffic** — LibSVM's sparse (index, value) nodes double
  it, and double precision halves line utilization;
* **thread occupancy** — the baseline pins one thread per voxel, so a
  120-voxel task uses only 120 of 240 threads ("thread starvation",
  Section 3.3.3); the optimized pipeline accumulates >= 240 kernel
  matrices before cross-validating, filling the machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.presets import DatasetSpec
from ..hw.counters import PerfCounters
from ..hw.spec import HardwareSpec
from .base import KernelEstimate, calibration_for, estimate_kernel

__all__ = ["SvmVariant", "SVM_VARIANTS", "model_svm_cv", "svm_problem_count"]

#: Elements touched per SMO iteration, in units of M: selection scan
#: (2M: gradient + masks), second-order gain row (M), two kernel rows
#: (2M), gradient update (2M).
ELEMENTS_PER_ITER_FACTOR = 7.0


@dataclass(frozen=True)
class SvmVariant:
    """Behavioural descriptor of one SVM implementation."""

    calib_id: str
    #: SMO iterations per training problem, in units of the training-set
    #: size M (empirically SMO needs a small multiple of M iterations).
    iter_factor: float
    #: True if the implementation is limited to one thread per voxel
    #: (the baseline's memory-bound task sizing).
    one_thread_per_voxel: bool


SVM_VARIANTS: dict[str, SvmVariant] = {
    # LibSVM's WSS2 on these noisy problems: ~22 M iterations (matches
    # the paper's 23 G refs over a 120-voxel task when combined with the
    # sparse-node traffic factor).
    "libsvm": SvmVariant("svm/libsvm", iter_factor=22.0, one_thread_per_voxel=True),
    # Same algorithm, dense float32 loops.
    "libsvm-opt": SvmVariant(
        "svm/libsvm-opt", iter_factor=22.0, one_thread_per_voxel=True
    ),
    # Adaptive heuristic: ~0.6x the iterations, full thread occupancy.
    "phisvm": SvmVariant("svm/phisvm", iter_factor=13.0, one_thread_per_voxel=False),
}


def svm_problem_count(spec: DatasetSpec) -> tuple[int, int]:
    """(problems per voxel, per-problem training size) for one task.

    A voxel's kernel matrix covers the outer-fold training epochs
    (M = ``training_epochs_loso``); the inner leave-one-subject-out CV
    trains ``n_subjects - 1`` models, each on M minus one subject's
    epochs.
    """
    folds = spec.n_subjects - 1
    m_inner = spec.training_epochs_loso - spec.epochs_per_subject
    return folds, m_inner


def model_svm_cv(
    spec: DatasetSpec,
    n_assigned: int,
    hw: HardwareSpec,
    variant: str = "phisvm",
    iter_factor: float | None = None,
) -> KernelEstimate:
    """Model stage 3b for one task of ``n_assigned`` voxels.

    ``iter_factor`` overrides the variant's default iterations-per-M
    (useful for feeding in iteration counts measured from the real
    solver).
    """
    try:
        v = SVM_VARIANTS[variant]
    except KeyError:
        raise ValueError(
            f"unknown variant {variant!r}; choose from {sorted(SVM_VARIANTS)}"
        ) from None
    calib = calibration_for(v.calib_id, hw)
    folds, m_inner = svm_problem_count(spec)
    factor = v.iter_factor if iter_factor is None else iter_factor
    if factor <= 0:
        raise ValueError("iter_factor must be positive")

    iterations = factor * m_inner
    elements = (
        float(n_assigned) * folds * iterations * ELEMENTS_PER_ITER_FACTOR * m_inner
    )
    refs = elements * calib.refs_per_element
    vpu = elements / calib.vi

    # L2-overflow stalls: SMO sweeps its M x M kernel every iteration.
    # When the kernel no longer fits the core's cache neighbourhood
    # (~2x L2 with sharing), every sweep stalls on refills — this is why
    # the *attention* dataset (M=522; 2.2 MB in LibSVM's double
    # precision vs 1.1 MB in PhiSVM's float32) gains so much more from
    # the optimized SVM than face-scene (M=192 fits everywhere).
    dtype_bytes = 8 if variant == "libsvm" else 4
    kernel_bytes = m_inner * m_inner * dtype_bytes
    cache_budget = 2 * hw.l2.size_bytes
    overflow = kernel_bytes / cache_budget
    stall_factor = 1.0 + 0.5 * min(max(overflow - 1.0, 0.0), 4.0)
    # SMO's working set is the M x M kernel (fits L2 at these sizes), so
    # DRAM misses are only the first-touch of each problem's kernel.
    line_elems = hw.elements_per_line()
    dtype_elems_per_line = line_elems if calib.refs_per_element < 2.0 else line_elems // 2
    first_touch_lines = (
        float(n_assigned) * folds * m_inner * m_inner / dtype_elems_per_line
    )
    counters = PerfCounters(
        mem_reads=refs * 0.9,
        mem_writes=refs * 0.1,
        l2_misses=first_touch_lines,
        flops=2.0 * elements,  # roughly one FMA per touched element
        vpu_instructions=vpu,
        vector_elements=vpu * calib.vi,
        scalar_instructions=refs * calib.instr_per_ref * stall_factor,
    )
    threads = None
    if v.one_thread_per_voxel:
        threads = min(n_assigned, hw.total_threads)
    return estimate_kernel(v.calib_id, hw, counters, calib, threads=threads)
