"""Calibrated per-kernel descriptors for the performance models.

The perf models separate *first-principles* quantities from *calibrated*
ones, and this module is the single home of everything calibrated:

* **First principles** (computed in the models, never calibrated):
  FLOP counts from the matrix shapes; L2 miss counts from cache-sweep
  arithmetic over the kernels' documented blocking structure (validated
  against the trace-driven cache simulator in the tests).
* **Calibrated** (this file): vectorization intensity, memory-reference
  density, instruction overhead per memory reference, and the fraction
  of miss latency a kernel overlaps with compute.  VI and reference
  counts are microarchitectural properties of code we cannot run (ICC's
  KNC code generation, MKL's and LibSVM's binaries); we pin them to the
  paper's vTune measurements and document the provenance per entry.

With these descriptors fixed once, the machine model in
:mod:`repro.hw.timing` *derives* every elapsed time, GFLOPS figure, and
speedup ratio in the evaluation — none of those are pasted in.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KernelCalibration", "CALIBRATION", "get_calibration"]


@dataclass(frozen=True)
class KernelCalibration:
    """Microarchitectural descriptor of one kernel implementation."""

    #: Vectorization intensity (elements per VPU instruction; 16 ideal
    #: on KNC).  Source: paper Tables 1, 6, 8 where measured.
    vi: float
    #: Memory-reference instructions issued per floating-point operation
    #: (vTune "#mem refs" / FLOPs).  Matmul kernels only.
    refs_per_flop: float = 0.0
    #: Memory-reference instructions issued per element-sweep reference
    #: (normalization / SVM kernels, whose work is sweep-shaped).
    refs_per_element: float = 1.0
    #: Non-memory instructions issued per memory reference (address
    #: arithmetic, transcendental sequences, branches).
    instr_per_ref: float = 1.0
    #: Fraction of per-thread miss latency hidden by other work, in
    #: [0, 1]; feeds TimeModel.estimate's latency_hiding.
    latency_hiding: float = 0.0

    def __post_init__(self) -> None:
        if self.vi <= 0:
            raise ValueError("vi must be positive")
        if self.refs_per_flop < 0 or self.refs_per_element < 0:
            raise ValueError("reference densities must be >= 0")
        if self.instr_per_ref < 0:
            raise ValueError("instr_per_ref must be >= 0")
        if not 0.0 <= self.latency_hiding <= 1.0:
            raise ValueError("latency_hiding must be in [0, 1]")


#: Kernel id -> descriptor.  Provenance notes per entry.
CALIBRATION: dict[str, KernelCalibration] = {
    # --- stage 1 + 3a matrix multiplications -------------------------------
    # Paper Table 6: our blocking reached VI 16 (theoretical peak) with
    # 9.97e9 refs over 193.6 GFLOP -> 0.0515 refs/flop.  Stage-1 writes
    # stall (write-allocate misses are not prefetched), so no hiding
    # there; the syrk is issue-bound with panels L2-resident.
    "matmul/ours/corr": KernelCalibration(
        vi=16.0, refs_per_flop=0.0515, instr_per_ref=0.82, latency_hiding=0.0
    ),
    "matmul/ours/syrk": KernelCalibration(
        vi=16.0, refs_per_flop=0.0515, instr_per_ref=0.82, latency_hiding=1.0
    ),
    # Paper Tables 1/6: MKL measured VI 3.6 and 34.86e9 refs over the
    # same 193.6 GFLOP -> 0.18 refs/flop.  MKL software-prefetches its
    # streams (partial hiding on the small-k gemm; full on syrk).
    "matmul/mkl/corr": KernelCalibration(
        vi=3.6, refs_per_flop=0.18, instr_per_ref=0.9, latency_hiding=0.8
    ),
    "matmul/mkl/syrk": KernelCalibration(
        vi=3.6, refs_per_flop=0.18, instr_per_ref=0.9, latency_hiding=1.0
    ),
    # --- stage 2 normalization --------------------------------------------
    # Table 1 baseline row: VI 8.5 (partially vectorized z-scoring).
    # Element sweeps are derived in norm_model; instr_per_ref covers the
    # arctanh/logf sequence (EMU-assisted on KNC).
    "norm/baseline": KernelCalibration(
        vi=8.5, refs_per_element=1.0, instr_per_ref=2.7, latency_hiding=0.0
    ),
    # Table 7 "separated": vectorized (SIMD pragma) but still re-reads
    # everything from memory.
    "norm/separated": KernelCalibration(
        vi=16.0, refs_per_element=1.0, instr_per_ref=2.6, latency_hiding=1.0
    ),
    # Table 7 "merged": same vector code, data already L2-resident.
    "norm/merged": KernelCalibration(
        vi=16.0, refs_per_element=1.0, instr_per_ref=5.5, latency_hiding=0.0
    ),
    # --- stage 3b SVM cross-validation -------------------------------------
    # Table 8: LibSVM VI 1.9 (sparse node walks defeat the VPU); the
    # double-precision sparse representation roughly doubles per-element
    # traffic (index+value) -> refs_per_element 2.0.
    "svm/libsvm": KernelCalibration(
        vi=1.9, refs_per_element=2.0, instr_per_ref=2.2, latency_hiding=1.0
    ),
    # Table 8 "optimized LibSVM": float32 + dense loops, VI 7.3.
    "svm/libsvm-opt": KernelCalibration(
        vi=7.3, refs_per_element=1.0, instr_per_ref=1.45, latency_hiding=1.0
    ),
    # Table 8 PhiSVM: VI 9.8, adaptive heuristic cuts iterations (the
    # factor is measured by our own solver, not calibrated here).
    "svm/phisvm": KernelCalibration(
        vi=9.8, refs_per_element=1.0, instr_per_ref=1.7, latency_hiding=1.0
    ),
}


#: Host-processor overrides: on the E5-2670 the foil libraries behave
#: much better (MKL's AVX kernels are mature; 16 threads cannot starve),
#: so the optimized/baseline gap shrinks — the paper's Fig. 10 point.
CALIBRATION.update(
    {
        "matmul/mkl/corr@xeon": KernelCalibration(
            vi=6.4, refs_per_flop=0.09, instr_per_ref=0.6, latency_hiding=0.9
        ),
        "matmul/mkl/syrk@xeon": KernelCalibration(
            vi=6.4, refs_per_flop=0.09, instr_per_ref=0.6, latency_hiding=1.0
        ),
        "matmul/ours/corr@xeon": KernelCalibration(
            vi=8.0, refs_per_flop=0.0515, instr_per_ref=0.82, latency_hiding=0.5
        ),
        "matmul/ours/syrk@xeon": KernelCalibration(
            vi=8.0, refs_per_flop=0.0515, instr_per_ref=0.82, latency_hiding=1.0
        ),
        "norm/baseline@xeon": KernelCalibration(
            vi=8.0, refs_per_element=1.0, instr_per_ref=1.2, latency_hiding=0.7
        ),
        "norm/separated@xeon": KernelCalibration(
            vi=8.0, refs_per_element=1.0, instr_per_ref=2.0, latency_hiding=0.9
        ),
        "norm/merged@xeon": KernelCalibration(
            vi=8.0, refs_per_element=1.0, instr_per_ref=2.6, latency_hiding=0.5
        ),
        "svm/libsvm@xeon": KernelCalibration(
            vi=4.0, refs_per_element=1.2, instr_per_ref=1.0, latency_hiding=1.0
        ),
        "svm/libsvm-opt@xeon": KernelCalibration(
            vi=6.0, refs_per_element=1.0, instr_per_ref=1.6, latency_hiding=1.0
        ),
        "svm/phisvm@xeon": KernelCalibration(
            vi=5.0, refs_per_element=1.0, instr_per_ref=1.45, latency_hiding=1.0
        ),
    }
)


def get_calibration(kernel_id: str, arch: str | None = None) -> KernelCalibration:
    """Look up a kernel descriptor, preferring an ``@arch`` override.

    ``arch`` is e.g. ``"xeon"``; the bare id is the KNC (coprocessor)
    calibration, matching the paper's vTune measurements.
    """
    if arch is not None:
        override = CALIBRATION.get(f"{kernel_id}@{arch}")
        if override is not None:
            return override
    try:
        return CALIBRATION[kernel_id]
    except KeyError:
        known = ", ".join(sorted(CALIBRATION))
        raise KeyError(f"unknown kernel id {kernel_id!r}; known: {known}") from None
