"""Whole-task performance model: the three stages composed.

Aggregates the per-kernel models into the quantities the paper's
system-level results are built from:

* per-task and per-voxel times for the baseline and optimized
  implementations on either machine (Figs. 9-11);
* the per-task seconds that drive the cluster simulator (Tables 3-4).

Task sizing reproduces Section 5.4.1: the baseline can only hold the
full correlation data of a task in the coprocessor's ~6 GB (120 voxels
for face-scene, 60 for attention), while the optimized pipeline reduces
to kernel matrices portion-by-portion and takes 240 voxels.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.presets import DatasetSpec
from ..hw.spec import HardwareSpec
from .base import KernelEstimate
from .matmul_model import model_correlation_matmul, model_kernel_syrk
from .norm_model import model_normalization
from .svm_model import model_svm_cv

__all__ = [
    "TaskEstimate",
    "baseline_task_voxels",
    "OPTIMIZED_TASK_VOXELS",
    "model_task",
    "per_voxel_seconds",
    "offline_task_seconds",
    "online_task_seconds",
]

#: The optimized pipeline accumulates at least one kernel matrix per
#: hardware thread before cross-validating (Section 4.4).
OPTIMIZED_TASK_VOXELS = 240


def baseline_task_voxels(
    spec: DatasetSpec, hw: HardwareSpec, memory_headroom: float = 0.6
) -> int:
    """Largest voxel count whose correlation data fits usable DRAM.

    One voxel's correlation vectors occupy ``n_epochs x n_voxels``
    floats; only ``memory_headroom`` of usable DRAM is budgeted for them
    (the rest holds the input epoch data, kernel matrices, and runtime
    buffers — the paper quotes 8.3 GB total for 240 face-scene voxels
    whose raw vectors are 7.2 GB).  Rounded down to a multiple of 60
    (the paper's task granularity), minimum 60; reproduces 120
    (face-scene) and 60 (attention) on the 5110P.
    """
    if not 0.0 < memory_headroom <= 1.0:
        raise ValueError("memory_headroom must be in (0, 1]")
    bytes_per_voxel = spec.n_epochs * spec.n_voxels * 4
    limit = int(hw.usable_dram_bytes * memory_headroom // bytes_per_voxel)
    return max(60, (limit // 60) * 60)


@dataclass(frozen=True)
class TaskEstimate:
    """Stage-by-stage model of one worker task."""

    variant: str
    n_voxels_task: int
    correlation: KernelEstimate
    normalization: KernelEstimate
    kernel_precompute: KernelEstimate
    svm: KernelEstimate

    @property
    def stages(self) -> dict[str, KernelEstimate]:
        """Stage name -> estimate."""
        return {
            "correlation": self.correlation,
            "normalization": self.normalization,
            "kernel_precompute": self.kernel_precompute,
            "svm": self.svm,
        }

    @property
    def seconds(self) -> float:
        """Total task time."""
        return sum(e.seconds for e in self.stages.values())

    @property
    def seconds_per_voxel(self) -> float:
        """Per-voxel time — the paper's Fig. 9 normalization."""
        return self.seconds / self.n_voxels_task


def model_task(
    spec: DatasetSpec,
    hw: HardwareSpec,
    variant: str = "optimized",
    n_voxels_task: int | None = None,
) -> TaskEstimate:
    """Model one worker task end to end.

    ``variant`` picks the implementation bundle: ``"baseline"`` = MKL
    gemm/syrk + separate un-fused normalization + LibSVM; ``"optimized"``
    = blocked matmuls + merged normalization + PhiSVM.
    """
    if variant == "baseline":
        v = n_voxels_task or baseline_task_voxels(spec, hw)
        return TaskEstimate(
            variant=variant,
            n_voxels_task=v,
            correlation=model_correlation_matmul(spec, v, hw, "mkl"),
            normalization=model_normalization(spec, v, hw, "baseline"),
            kernel_precompute=model_kernel_syrk(spec, v, hw, "mkl"),
            svm=model_svm_cv(spec, v, hw, "libsvm"),
        )
    if variant == "optimized":
        v = n_voxels_task or OPTIMIZED_TASK_VOXELS
        return TaskEstimate(
            variant=variant,
            n_voxels_task=v,
            correlation=model_correlation_matmul(spec, v, hw, "ours"),
            normalization=model_normalization(spec, v, hw, "merged"),
            kernel_precompute=model_kernel_syrk(spec, v, hw, "ours"),
            svm=model_svm_cv(spec, v, hw, "phisvm"),
        )
    raise ValueError(f"unknown variant {variant!r}")


def per_voxel_seconds(spec: DatasetSpec, hw: HardwareSpec, variant: str) -> float:
    """Per-voxel task time (Fig. 9 / Fig. 10 metric)."""
    return model_task(spec, hw, variant).seconds_per_voxel


def offline_task_seconds(
    spec: DatasetSpec, hw: HardwareSpec, n_voxels_task: int
) -> float:
    """Optimized per-task seconds for the offline cluster runs.

    The master partitions work in ``n_voxels_task`` chunks (120/60 in
    Table 3's runs); this scales the per-voxel optimized model to that
    chunk size.
    """
    return per_voxel_seconds(spec, hw, "optimized") * n_voxels_task


def online_task_seconds(
    spec: DatasetSpec, hw: HardwareSpec, n_voxels_task: int
) -> float:
    """Per-task seconds for online (single-subject) voxel selection.

    The online pipeline runs the same stages on one subject's E epochs
    instead of the full M, with within-subject k-fold CV.  Work scales
    roughly with the epoch count in stage 1 and quadratically in the
    SVM stages, so the online task is modeled on a reduced geometry.
    """
    single = DatasetSpec(
        name=f"{spec.name}-online",
        n_voxels=spec.n_voxels,
        # One subject's epochs; keep >= 2 "subjects" so the spec's
        # training-split accounting stays meaningful (k-fold CV online).
        n_subjects=2,
        n_epochs=2 * spec.epochs_per_subject,
        epoch_length=spec.epoch_length,
    )
    return per_voxel_seconds(single, hw, "optimized") * n_voxels_task
