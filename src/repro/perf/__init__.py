"""Performance models: kernel access-pattern models + machine timing.

These regenerate the paper's instrumentation tables (1, 5, 6, 7, 8) and
the single-node comparison figures (9, 10, 11); see DESIGN.md for which
columns are first-principles vs calibrated.
"""

from .base import KernelEstimate, arch_key, calibration_for, estimate_kernel
from .batched_model import (
    DISPATCH_OVERHEAD_SECONDS,
    BatchedSyrkShape,
    batched_syrk_shape_for,
    dispatch_amortization,
    max_resident_batch,
    model_batched_syrk,
)
from .calibration import CALIBRATION, KernelCalibration, get_calibration
from .memory_model import MemoryFootprint, max_resident_voxels, task_memory
from .matmul_model import (
    MKL_SYRK_COLUMN_BLOCK,
    CorrShape,
    SyrkShape,
    corr_shape_for,
    model_correlation_matmul,
    model_kernel_syrk,
    syrk_shape_for,
)
from .norm_model import NORM_SWEEPS, NormSweeps, model_normalization
from .stage12_model import (
    NORM_VECTOR_PASSES,
    BatchedStage12Shape,
    batched_stage12_shape_for,
    model_batched_stage12,
    stage12_dispatch_amortization,
    sweep_fits_l2,
    sweep_slab_bytes,
)
from .sparse_model import (
    CSR_ASSEMBLY_PASSES,
    CSR_BYTES_PER_ENTRY,
    SparseStage12Shape,
    dense_crossover_density,
    density_sweep,
    format_density_sweep,
    model_sparse_stage12,
    sparse_stage12_shape_for,
    tile_bytes,
    tile_fits_l2,
)
from .roofline import (
    RooflinePoint,
    RooflineRow,
    attainable_gflops,
    format_roofline_report,
    ridge_intensity,
    roofline_point,
    roofline_rows,
)
from .svm_model import SVM_VARIANTS, SvmVariant, model_svm_cv, svm_problem_count
from .task_model import (
    OPTIMIZED_TASK_VOXELS,
    TaskEstimate,
    baseline_task_voxels,
    model_task,
    offline_task_seconds,
    online_task_seconds,
    per_voxel_seconds,
)
from .vtune import (
    InstrumentationRow,
    baseline_report,
    format_report,
    row_from_estimate,
)

__all__ = [
    "BatchedStage12Shape",
    "BatchedSyrkShape",
    "CALIBRATION",
    "CSR_ASSEMBLY_PASSES",
    "CSR_BYTES_PER_ENTRY",
    "CorrShape",
    "DISPATCH_OVERHEAD_SECONDS",
    "InstrumentationRow",
    "KernelCalibration",
    "KernelEstimate",
    "MKL_SYRK_COLUMN_BLOCK",
    "MemoryFootprint",
    "NORM_SWEEPS",
    "NORM_VECTOR_PASSES",
    "NormSweeps",
    "OPTIMIZED_TASK_VOXELS",
    "RooflinePoint",
    "RooflineRow",
    "SVM_VARIANTS",
    "SparseStage12Shape",
    "SvmVariant",
    "SyrkShape",
    "TaskEstimate",
    "arch_key",
    "attainable_gflops",
    "baseline_report",
    "baseline_task_voxels",
    "batched_stage12_shape_for",
    "batched_syrk_shape_for",
    "calibration_for",
    "corr_shape_for",
    "dense_crossover_density",
    "density_sweep",
    "dispatch_amortization",
    "estimate_kernel",
    "format_density_sweep",
    "format_report",
    "format_roofline_report",
    "get_calibration",
    "max_resident_batch",
    "max_resident_voxels",
    "model_batched_stage12",
    "model_batched_syrk",
    "model_correlation_matmul",
    "model_kernel_syrk",
    "model_normalization",
    "model_sparse_stage12",
    "model_svm_cv",
    "model_task",
    "offline_task_seconds",
    "online_task_seconds",
    "per_voxel_seconds",
    "ridge_intensity",
    "roofline_point",
    "roofline_rows",
    "row_from_estimate",
    "sparse_stage12_shape_for",
    "stage12_dispatch_amortization",
    "svm_problem_count",
    "sweep_fits_l2",
    "sweep_slab_bytes",
    "syrk_shape_for",
    "task_memory",
    "tile_bytes",
    "tile_fits_l2",
]
