"""Access-pattern model of the sparse thresholded stage-1/2 engine.

The sparse engine (:func:`repro.core.sparse.correlate_normalize_sparse_batched`)
keeps the fused batched tile pipeline of :mod:`repro.perf.stage12_model`
but filters every ``(sweep, E, target_block)`` tile *while it is still
L2-resident*, emitting only the surviving entries as CSR fragments.  The
dense ``V x E x N`` correlation buffer — the term that dominates DRAM
traffic and memory footprint at scale — never exists.

What changes relative to the dense model is therefore purely the memory
side; the gemm FLOPs are identical (every correlation is still computed
before the filter discards it):

* the output write-allocate + re-read terms shrink from the full dense
  buffer to ``density x elements`` CSR bytes (value + column index per
  kept entry, plus the assembly sort's extra passes);
* the B operand is re-streamed once per voxel slab (the tile loop walks
  all N columns per slab) instead of exactly once;
* when a tile (plus its normalization scratch) does *not* fit L2, the
  filter degrades to dense traffic: the tile spills and is re-read.

At realistic densities (~1%) the kernel drops well below the machine's
ridge intensity: same FLOPs over far fewer DRAM bytes moves the *cost*
down but moves the roofline placement deeper into the memory-bound
regime, because what little traffic remains (B re-streams, CSR
assembly) has almost no FLOPs of its own.  :func:`density_sweep` and
:func:`dense_crossover_density` quantify when the dense engine is the
better choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..data.presets import DatasetSpec
from ..hw.counters import PerfCounters
from ..hw.spec import HardwareSpec
from .base import KernelEstimate, calibration_for, estimate_kernel
from .stage12_model import model_batched_stage12

__all__ = [
    "CSR_ASSEMBLY_PASSES",
    "CSR_BYTES_PER_ENTRY",
    "SparseStage12Shape",
    "dense_crossover_density",
    "density_sweep",
    "format_density_sweep",
    "model_sparse_stage12",
    "sparse_stage12_shape_for",
    "tile_bytes",
    "tile_fits_l2",
]

#: Bytes stored per kept entry: float32 value + int32 column index.
#: The int64 ``indptr`` is one entry per *row* (``V x E`` of them), three
#: orders of magnitude below nnz at realistic densities, and ignored.
CSR_BYTES_PER_ENTRY = 8

#: Full passes over the fragment arrays during CSR assembly: the stable
#: row sort's key read, the gather of (indices, data) through the
#: permutation, and the final write of the assembled arrays.
CSR_ASSEMBLY_PASSES = 3


@dataclass(frozen=True)
class SparseStage12Shape:
    """Shape of one task's sparse fused stage-1/2 work."""

    n_epochs: int
    n_assigned: int  # V
    epoch_len: int   # T
    n_voxels: int    # N
    #: Voxel-slab width of the tile loop (``BlockingPlan.voxel_block``).
    voxel_sweep: int
    #: Target-column width of the tile loop.
    target_block: int
    #: Kept fraction of the dense output, in [0, 1].  Exact for top-k
    #: mode (``k / n_voxels``); measured or quantile-estimated for tau.
    density: float

    def __post_init__(self) -> None:
        if min(self.n_epochs, self.n_assigned, self.epoch_len, self.n_voxels) < 1:
            raise ValueError("all shape dimensions must be >= 1")
        if self.voxel_sweep < 1 or self.target_block < 1:
            raise ValueError("voxel_sweep and target_block must be >= 1")
        if not 0.0 <= self.density <= 1.0:
            raise ValueError(f"density must be in [0, 1], got {self.density}")

    @property
    def flops(self) -> float:
        """Gemm FLOPs — identical to the dense engine's: the filter
        discards entries *after* they are computed."""
        return 2.0 * self.n_epochs * self.n_assigned * self.epoch_len * self.n_voxels

    @property
    def elements(self) -> float:
        """Dense correlation elements scanned (V x E x N)."""
        return float(self.n_assigned) * self.n_epochs * self.n_voxels

    @property
    def kept(self) -> float:
        """Entries surviving the filter (the CSR nnz)."""
        return self.density * self.elements

    @property
    def n_slabs(self) -> int:
        """Voxel slabs of the outer tile loop."""
        return math.ceil(self.n_assigned / self.voxel_sweep)

    @property
    def n_tiles(self) -> int:
        """Tiles visited (the ``stage12_tiles`` counter)."""
        return self.n_slabs * math.ceil(self.n_voxels / self.target_block)


def sparse_stage12_shape_for(
    spec: DatasetSpec,
    n_assigned: int,
    voxel_sweep: int,
    target_block: int,
    density: float,
) -> SparseStage12Shape:
    """Sparse stage-1/2 shape for a task on a dataset (all epochs)."""
    return SparseStage12Shape(
        n_epochs=spec.n_epochs,
        n_assigned=n_assigned,
        epoch_len=spec.epoch_length,
        n_voxels=spec.n_voxels,
        voxel_sweep=voxel_sweep,
        target_block=target_block,
        density=density,
    )


def tile_bytes(shape: SparseStage12Shape, dtype_bytes: int = 4) -> int:
    """Live bytes of one tile: the ``(sweep, E, target_block)`` gemm
    output plus the equal-size normalization scratch."""
    tile = shape.voxel_sweep * shape.n_epochs * shape.target_block * dtype_bytes
    return 2 * tile


def tile_fits_l2(
    shape: SparseStage12Shape, hw: HardwareSpec, cache_fraction: float = 0.8
) -> bool:
    """Whether a tile stays resident in one thread's L2 share.

    This is the sparse engine's analogue of the dense model's
    ``sweep_fits_l2`` knee: a resident tile is normalized and filtered
    entirely in cache, so the dense tile never touches DRAM; a spilled
    tile degrades to dense write + re-read traffic.
    """
    if not 0.0 < cache_fraction <= 1.0:
        raise ValueError("cache_fraction must be in (0, 1]")
    budget = int(hw.l2_per_thread_bytes() * cache_fraction)
    return tile_bytes(shape) <= budget


def model_sparse_stage12(
    spec: DatasetSpec,
    n_assigned: int,
    hw: HardwareSpec,
    voxel_sweep: int,
    target_block: int,
    density: float,
) -> KernelEstimate:
    """Model the sparse fused stage 1/2 for one task.

    Miss accounting (lines of ``hw.l2.line_bytes``):

    * gemm operands: A read once; B re-streamed once per voxel slab
      (the inner tile loop walks all N columns for every slab);
    * CSR output: ``kept x CSR_BYTES_PER_ENTRY`` bytes written once by
      the filter, then re-walked :data:`CSR_ASSEMBLY_PASSES` times by
      the fragment sort/gather/write of the final assembly;
    * degradation: when a tile does not fit L2
      (:func:`tile_fits_l2`), the dense tile spills — add the dense
      write-allocate + re-read traffic over all elements.

    The FLOP and reference counters are the dense engine's (same gemm,
    same calibration family), so the estimate is directly comparable to
    :func:`~repro.perf.stage12_model.model_batched_stage12`.
    """
    shape = sparse_stage12_shape_for(
        spec, n_assigned, voxel_sweep, target_block, density
    )
    line_elems = hw.elements_per_line()
    line_bytes = hw.l2.line_bytes
    a_lines = float(shape.n_epochs) * shape.n_assigned * shape.epoch_len / line_elems
    b_lines = (
        float(shape.n_epochs) * shape.n_voxels * shape.epoch_len / line_elems
    ) * shape.n_slabs
    csr_bytes = shape.kept * CSR_BYTES_PER_ENTRY
    csr_lines = (1 + CSR_ASSEMBLY_PASSES) * csr_bytes / line_bytes

    dram = a_lines + b_lines + csr_lines
    if not tile_fits_l2(shape, hw):
        dram += 2.0 * shape.elements / line_elems

    calib = calibration_for("matmul/ours/corr", hw)
    refs = shape.flops * calib.refs_per_flop
    vpu = shape.flops / (2.0 * calib.vi)
    counters = PerfCounters(
        mem_reads=refs * 0.5,
        mem_writes=refs * 0.5,
        l2_misses=dram,
        l2_remote_hits=0.0,
        flops=shape.flops,
        vpu_instructions=vpu,
        vector_elements=vpu * calib.vi,
        scalar_instructions=refs * calib.instr_per_ref,
    )
    return estimate_kernel("matmul/ours/corr-sparse", hw, counters, calib)


#: Default density grid for sweeps and crossover reports.
DEFAULT_DENSITIES = (0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)


def density_sweep(
    spec: DatasetSpec,
    n_assigned: int,
    hw: HardwareSpec,
    voxel_sweep: int,
    target_block: int,
    densities: Sequence[float] = DEFAULT_DENSITIES,
) -> list[tuple[float, float, float]]:
    """``(density, sparse_seconds, dense_seconds)`` over a density grid.

    The dense comparator is the fused batched engine at the same sweep
    width; its cost does not depend on density, so the column is
    constant — it is repeated per row to keep each tuple standalone.
    """
    dense_seconds = model_batched_stage12(spec, n_assigned, hw, voxel_sweep).seconds
    rows: list[tuple[float, float, float]] = []
    for density in densities:
        sparse = model_sparse_stage12(
            spec, n_assigned, hw, voxel_sweep, target_block, density
        )
        rows.append((density, sparse.seconds, dense_seconds))
    return rows


def dense_crossover_density(
    spec: DatasetSpec,
    n_assigned: int,
    hw: HardwareSpec,
    voxel_sweep: int,
    target_block: int,
    iterations: int = 40,
) -> float | None:
    """The density above which the dense engine is modeled faster.

    Bisects the (monotone-in-density) sparse cost against the constant
    dense cost.  Returns ``None`` when the sparse engine wins even at
    density 1.0 — it then does strictly less DRAM work at every density,
    which happens when the dense engine's full-buffer normalization
    passes dominate.  Returns 0.0 when dense wins everywhere (spilled
    tiles: the sparse engine pays dense traffic *plus* CSR assembly).
    """

    def sparse_seconds(density: float) -> float:
        return model_sparse_stage12(
            spec, n_assigned, hw, voxel_sweep, target_block, density
        ).seconds

    dense_seconds = model_batched_stage12(spec, n_assigned, hw, voxel_sweep).seconds
    if sparse_seconds(1.0) <= dense_seconds:
        return None
    if sparse_seconds(0.0) >= dense_seconds:
        return 0.0
    lo, hi = 0.0, 1.0
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if sparse_seconds(mid) <= dense_seconds:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def format_density_sweep(
    rows: Sequence[tuple[float, float, float]],
    *,
    crossover: float | None = None,
    measured: tuple[float, float] | None = None,
) -> str:
    """Fixed-width density-sweep table.

    Columns: density, predicted sparse seconds, predicted dense seconds,
    and the modeled dense/sparse speedup.  ``measured`` marks the row
    nearest a measured ``(density, wall_seconds)`` pair with the actual
    number; ``crossover`` appends the modeled break-even density.
    """
    lines = [
        f"{'density':>8} {'sparse_s':>10} {'dense_s':>10} "
        f"{'speedup':>8} {'measured_s':>10}"
    ]
    nearest = -1
    if measured is not None and rows:
        nearest = min(
            range(len(rows)), key=lambda i: abs(rows[i][0] - measured[0])
        )
    for i, (density, sparse_s, dense_s) in enumerate(rows):
        speedup = dense_s / sparse_s if sparse_s > 0 else float("inf")
        measured_col = (
            f"{measured[1]:>10.3f}"
            if measured is not None and i == nearest
            else f"{'-':>10}"
        )
        lines.append(
            f"{density:>8.4f} {sparse_s:>10.3f} {dense_s:>10.3f} "
            f"{speedup:>7.2f}x {measured_col}"
        )
    if crossover is None:
        lines.append("crossover: none (sparse modeled faster at every density)")
    else:
        lines.append(
            f"crossover: dense engine modeled faster above "
            f"density {crossover:.3f}"
        )
    return "\n".join(lines)
