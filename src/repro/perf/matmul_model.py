"""Access-pattern models of the two FCMA matrix multiplications.

Models the counters of Tables 1, 5 and 6 for both implementations:

* **Stage-1 correlation gemm** — per epoch, ``A[V, T] x B[T, N]`` with a
  tiny inner dimension (T = epoch length, ~12).  DRAM misses are the
  write-allocated output plus one streaming read of B; the blocked
  implementation re-reads B once per voxel block, but those re-reads hit
  *remote L2* on the ring (another core fetched the line this pass), not
  DRAM.
* **Stage-3a kernel syrk** — per voxel, ``A[M, N] x A^T`` with N huge.
  The optimized panel algorithm reads A exactly once per voxel; MKL's
  square-blocking re-reads A once per ~16-column block of C, the
  dominant source of its 5.8x higher miss count.

FLOPs are exact; miss counts follow from this sweep arithmetic
(validated against the cache simulator at small scale in the tests);
reference counts and vectorization intensity come from the calibrated
descriptors (see :mod:`repro.perf.calibration`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..data.presets import DatasetSpec
from ..hw.counters import PerfCounters
from ..hw.spec import HardwareSpec
from .base import KernelEstimate, calibration_for, estimate_kernel
from .calibration import KernelCalibration

__all__ = [
    "CorrShape",
    "SyrkShape",
    "corr_shape_for",
    "syrk_shape_for",
    "model_correlation_matmul",
    "model_kernel_syrk",
    "MKL_SYRK_COLUMN_BLOCK",
]

#: Effective C-column block of MKL's syrk on KNC: the register budget
#: limits the output tile, so A is re-read once per ~16 columns of C.
MKL_SYRK_COLUMN_BLOCK = 16

#: Voxel-block depth of the optimized stage-1 tiling (Section 4.2).
OURS_CORR_VOXEL_BLOCK = 16


@dataclass(frozen=True)
class CorrShape:
    """Shape of one task's stage-1 work: epochs x (V x T x N)."""

    n_epochs: int
    n_assigned: int  # V
    epoch_len: int   # T
    n_voxels: int    # N

    @property
    def flops(self) -> float:
        """Exact FLOPs: one multiply-add per (epoch, v, t, n)."""
        return 2.0 * self.n_epochs * self.n_assigned * self.epoch_len * self.n_voxels

    @property
    def output_elements(self) -> float:
        """Correlation elements written (V x N per epoch)."""
        return float(self.n_epochs) * self.n_assigned * self.n_voxels

    @property
    def b_elements_per_epoch(self) -> int:
        """Elements of one epoch's B panel (N x T)."""
        return self.n_voxels * self.epoch_len


@dataclass(frozen=True)
class SyrkShape:
    """Shape of one task's stage-3a work: n_problems x (M x N syrk)."""

    n_problems: int  # voxels in the task
    m: int           # training epochs
    n: int           # brain voxels (the long dimension)

    @property
    def flops(self) -> float:
        """FLOPs, triangle only: M^2/2 x N multiply-adds per problem.

        Matches the paper's own count (172.14 GFLOP for 120 problems of
        M=204, N=34,470).
        """
        return float(self.n_problems) * self.m * self.m * self.n

    @property
    def a_elements(self) -> int:
        """Elements of one problem's data matrix."""
        return self.m * self.n

    @property
    def output_elements(self) -> float:
        """Kernel-matrix elements written (triangle)."""
        return float(self.n_problems) * self.m * (self.m + 1) / 2.0


def corr_shape_for(spec: DatasetSpec, n_assigned: int) -> CorrShape:
    """Stage-1 shape of a task on a dataset (all epochs correlated)."""
    return CorrShape(
        n_epochs=spec.n_epochs,
        n_assigned=n_assigned,
        epoch_len=spec.epoch_length,
        n_voxels=spec.n_voxels,
    )


def syrk_shape_for(spec: DatasetSpec, n_assigned: int) -> SyrkShape:
    """Stage-3a shape: one syrk per voxel over the LOSO training epochs."""
    return SyrkShape(
        n_problems=n_assigned,
        m=spec.training_epochs_loso,
        n=spec.n_voxels,
    )


def _matmul_counters(
    flops: float,
    dram_miss_lines: float,
    remote_lines: float,
    write_fraction: float,
    calib: KernelCalibration,
) -> PerfCounters:
    refs = flops * calib.refs_per_flop
    vpu = flops / (2.0 * calib.vi)
    return PerfCounters(
        mem_reads=refs * (1.0 - write_fraction),
        mem_writes=refs * write_fraction,
        l2_misses=dram_miss_lines,
        l2_remote_hits=remote_lines,
        flops=flops,
        vpu_instructions=vpu,
        vector_elements=vpu * calib.vi,
        scalar_instructions=refs * calib.instr_per_ref,
    )


def model_correlation_matmul(
    spec: DatasetSpec,
    n_assigned: int,
    hw: HardwareSpec,
    implementation: str = "ours",
) -> KernelEstimate:
    """Model stage 1 for one task (``implementation``: 'ours' or 'mkl').

    Miss accounting (lines of ``hw.l2.line_bytes``):

    * output write-allocate: every C element missed once;
    * B streamed from DRAM once per epoch (both implementations);
    * blocked-only: ``ceil(V / voxel_block) - 1`` extra passes over B
      that hit remote L2 on the ring.
    """
    if implementation not in ("ours", "mkl"):
        raise ValueError(f"implementation must be 'ours' or 'mkl', got {implementation!r}")
    shape = corr_shape_for(spec, n_assigned)
    line_elems = hw.elements_per_line()
    c_write_lines = shape.output_elements / line_elems
    b_lines_per_pass = shape.n_epochs * shape.b_elements_per_epoch / line_elems
    a_lines = shape.n_epochs * shape.n_assigned * shape.epoch_len / line_elems

    if implementation == "ours":
        passes = math.ceil(n_assigned / OURS_CORR_VOXEL_BLOCK)
        dram = c_write_lines + b_lines_per_pass + a_lines
        remote = max(passes - 1, 0) * b_lines_per_pass
    else:
        dram = c_write_lines + b_lines_per_pass + a_lines
        remote = 0.0

    calib = calibration_for(f"matmul/{implementation}/corr", hw)
    counters = _matmul_counters(
        flops=shape.flops,
        dram_miss_lines=dram,
        remote_lines=remote,
        write_fraction=0.5,
        calib=calib,
    )
    return estimate_kernel(f"matmul/{implementation}/corr", hw, counters, calib)


def model_kernel_syrk(
    spec: DatasetSpec,
    n_assigned: int,
    hw: HardwareSpec,
    implementation: str = "ours",
) -> KernelEstimate:
    """Model stage 3a (kernel precompute) for one task.

    The optimized panel walk touches each A line exactly once per voxel;
    MKL re-reads A once per :data:`MKL_SYRK_COLUMN_BLOCK` columns of C.
    Output lines are negligible next to A (M^2 vs M x N elements) but
    included.
    """
    if implementation not in ("ours", "mkl"):
        raise ValueError(f"implementation must be 'ours' or 'mkl', got {implementation!r}")
    shape = syrk_shape_for(spec, n_assigned)
    line_elems = hw.elements_per_line()
    a_lines = shape.n_problems * shape.a_elements / line_elems
    c_lines = shape.output_elements / line_elems

    remote = 0.0
    if implementation == "ours":
        dram = a_lines + c_lines
    else:
        passes = math.ceil(shape.m / MKL_SYRK_COLUMN_BLOCK)
        reread_lines = (passes - 1) * a_lines
        if hw.llc is not None:
            # On a host with a big LLC, re-read passes mostly hit it
            # (the paper's Fig. 10 discussion): the fraction of A the
            # LLC retains services rereads at LLC latency.
            a_bytes = shape.a_elements * 4
            llc_fraction = min(1.0, hw.llc.size_bytes / a_bytes)
            remote = llc_fraction * reread_lines
            dram = a_lines + (1.0 - llc_fraction) * reread_lines + c_lines
        else:
            dram = a_lines + reread_lines + c_lines

    calib = calibration_for(f"matmul/{implementation}/syrk", hw)
    counters = _matmul_counters(
        flops=shape.flops,
        dram_miss_lines=dram,
        remote_lines=remote,
        write_fraction=0.02,
        calib=calib,
    )
    return estimate_kernel(f"matmul/{implementation}/syrk", hw, counters, calib)
