"""Device-memory footprint model (paper Section 3.3.3 / 4.4).

The baseline's task size is memory-bound: holding a task's full
correlation data on the coprocessor costs ``V x M x N`` floats ("240
voxels' correlation vectors will consume 8.3 GB"), which caps face-scene
tasks at 120 voxels and starves the SVM stage of threads.  The
optimized pipeline instead reduces correlations to ``M x M`` kernel
matrices *portion by portion*, so only a small correlation slab is ever
resident and 240+ voxel problems fit easily.

This model quantifies both regimes so the task-sizing logic (and the
paper's Fig. 9 thread-starvation mechanism) is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.presets import DatasetSpec
from ..hw.spec import HardwareSpec

__all__ = ["MemoryFootprint", "task_memory", "max_resident_voxels"]

#: Voxels whose correlation slab is in flight at once in the optimized
#: pipeline (one stage-1 voxel block).
PORTION_VOXELS = 16


@dataclass(frozen=True)
class MemoryFootprint:
    """Bytes resident on the device for one task."""

    variant: str
    n_voxels_task: int
    #: The epoch-windowed input data (shared by all tasks).
    input_bytes: int
    #: Correlation vectors resident at peak.
    correlation_bytes: int
    #: Precomputed kernel matrices for the task's voxels.
    kernel_bytes: int

    @property
    def total_bytes(self) -> int:
        """Peak resident footprint."""
        return self.input_bytes + self.correlation_bytes + self.kernel_bytes

    @property
    def total_gb(self) -> float:
        """Peak footprint in decimal GB (the paper's unit)."""
        return self.total_bytes / 1e9


def task_memory(
    spec: DatasetSpec,
    n_voxels_task: int,
    variant: str = "optimized",
    portion_voxels: int = PORTION_VOXELS,
) -> MemoryFootprint:
    """Footprint of one task under either memory regime."""
    if n_voxels_task < 1:
        raise ValueError("n_voxels_task must be >= 1")
    if portion_voxels < 1:
        raise ValueError("portion_voxels must be >= 1")
    if variant not in ("baseline", "optimized"):
        raise ValueError(f"unknown variant {variant!r}")

    input_bytes = spec.n_voxels * spec.n_epochs * spec.epoch_length * 4
    kernel_bytes = n_voxels_task * spec.training_epochs_loso**2 * 4
    if variant == "baseline":
        # All correlation vectors live until the SVM stage reads them.
        corr_bytes = spec.correlation_bytes(n_voxels_task)
    else:
        # Only the in-flight portion's slab is resident.
        corr_bytes = spec.correlation_bytes(min(portion_voxels, n_voxels_task))
    return MemoryFootprint(
        variant=variant,
        n_voxels_task=n_voxels_task,
        input_bytes=input_bytes,
        correlation_bytes=corr_bytes,
        kernel_bytes=kernel_bytes,
    )


def max_resident_voxels(
    spec: DatasetSpec,
    hw: HardwareSpec,
    variant: str = "optimized",
    portion_voxels: int = PORTION_VOXELS,
) -> int:
    """Largest task whose footprint fits the device's usable DRAM.

    For the baseline this reproduces the paper's memory wall; for the
    optimized pipeline the answer is bounded by the kernel matrices
    alone and comfortably exceeds the 240 threads to fill.
    """
    budget = hw.usable_dram_bytes
    lo, hi = 1, spec.n_voxels
    if task_memory(spec, 1, variant, portion_voxels).total_bytes > budget:
        return 0
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if task_memory(spec, mid, variant, portion_voxels).total_bytes <= budget:
            lo = mid
        else:
            hi = mid - 1
    return lo
