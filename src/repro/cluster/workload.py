"""Cluster workload descriptions for the FCMA analyses.

A :class:`Workload` captures what the master has to get done: a one-time
dataset distribution, then a sequence of *folds* (the outer loop of the
nested cross-validation for offline analysis; a single fold for online
voxel selection), each consisting of independent tasks.

Builders mirror the paper's two experiments:

* :func:`offline_workload` — nested leave-one-subject-out n-fold CV
  (Table 3): one fold per subject, each fold re-running voxel selection
  over all tasks.
* :func:`online_workload` — single-subject voxel selection (Table 4):
  one fold, single subject's data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..data.presets import DatasetSpec
from ..exec.partition import n_tasks as _partition_n_tasks

__all__ = ["TaskSpec", "FoldSpec", "Workload", "offline_workload", "online_workload"]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of master-assignable work."""

    #: Worker compute time in seconds.
    compute_seconds: float
    #: Bytes of the task assignment message (voxel indices).
    task_bytes: int = 1024
    #: Bytes of the result message (per-voxel accuracies).
    result_bytes: int = 1024

    def __post_init__(self) -> None:
        if self.compute_seconds < 0:
            raise ValueError("compute_seconds must be >= 0")
        if self.task_bytes < 0 or self.result_bytes < 0:
            raise ValueError("message sizes must be >= 0")


@dataclass(frozen=True)
class FoldSpec:
    """One fold: a bag of independent tasks plus serial master work."""

    tasks: tuple[TaskSpec, ...]
    #: Serial master-side seconds at fold end (aggregation/sort, final
    #: classifier training in the offline analysis).
    serial_seconds: float = 0.0
    label: str = ""

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a fold needs at least one task")
        if self.serial_seconds < 0:
            raise ValueError("serial_seconds must be >= 0")

    @property
    def compute_seconds_total(self) -> float:
        """Sum of task compute times (the fold's ideal parallel work)."""
        return sum(t.compute_seconds for t in self.tasks)


@dataclass(frozen=True)
class Workload:
    """Everything the cluster must execute for one analysis run."""

    name: str
    #: Bytes of brain data distributed to every worker once, up front.
    dataset_bytes: int
    folds: tuple[FoldSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.dataset_bytes < 0:
            raise ValueError("dataset_bytes must be >= 0")
        if not self.folds:
            raise ValueError("a workload needs at least one fold")

    @property
    def total_compute_seconds(self) -> float:
        """All task compute time — the scaling curve's numerator."""
        return sum(f.compute_seconds_total for f in self.folds)

    @property
    def n_tasks(self) -> int:
        """Total tasks across folds."""
        return sum(len(f.tasks) for f in self.folds)


def _n_tasks(spec: DatasetSpec, task_voxels: int) -> int:
    # Same carve as the real executors: one partition helper for all.
    return _partition_n_tasks(spec.n_voxels, task_voxels)


def offline_workload(
    spec: DatasetSpec,
    task_seconds: float,
    task_voxels: int,
    serial_seconds_per_fold: float = 0.2,
) -> Workload:
    """Nested LOSO workload: ``n_subjects`` folds of full voxel selection.

    ``task_seconds`` is the three-stage time of one ``task_voxels`` task
    on one coprocessor (supplied by the perf models or measured).  The
    full dataset (epoch windows, float32) is distributed once.
    """
    if task_seconds <= 0:
        raise ValueError("task_seconds must be positive")
    n = _n_tasks(spec, task_voxels)
    result_bytes = task_voxels * 8  # one float accuracy per voxel
    fold = FoldSpec(
        tasks=tuple(
            TaskSpec(task_seconds, result_bytes=result_bytes) for _ in range(n)
        ),
        serial_seconds=serial_seconds_per_fold,
        label="outer-fold",
    )
    return Workload(
        name=f"offline/{spec.name}",
        dataset_bytes=spec.bold_bytes(),
        folds=tuple(fold for _ in range(spec.n_subjects)),
    )


def online_workload(
    spec: DatasetSpec,
    task_seconds: float,
    task_voxels: int,
    serial_seconds: float = 0.05,
) -> Workload:
    """Single-subject voxel-selection workload (one fold).

    Only the scanned subject's data (1/n_subjects of the dataset) is
    distributed; per-task times are far smaller than offline because a
    single subject contributes E epochs rather than the full M.
    """
    if task_seconds <= 0:
        raise ValueError("task_seconds must be positive")
    n = _n_tasks(spec, task_voxels)
    fold = FoldSpec(
        tasks=tuple(
            TaskSpec(task_seconds, result_bytes=task_voxels * 8)
            for _ in range(n)
        ),
        serial_seconds=serial_seconds,
        label="online-selection",
    )
    return Workload(
        name=f"online/{spec.name}",
        dataset_bytes=spec.bold_bytes() // spec.n_subjects,
        folds=(fold,),
    )
