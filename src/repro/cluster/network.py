"""Network model for the simulated cluster.

The paper's testbed interconnect is an Arista 10 GbE switch.  We model a
full-bisection switch where each endpoint has one 10 Gb/s link: a
point-to-point transfer costs latency plus bytes/bandwidth, and a
master-rooted broadcast is serialized on the master's uplink (the
distribution pattern of the paper's master-worker framework).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkModel", "TEN_GBE"]


@dataclass(frozen=True)
class NetworkModel:
    """Latency/bandwidth cost model of the cluster fabric."""

    #: One-way message latency in seconds (switch + stack).
    latency_s: float = 50e-6
    #: Per-link sustained bandwidth in bytes/second.
    bandwidth_bytes_per_s: float = 1.25e9  # 10 Gb/s

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")

    def transfer_time(self, nbytes: int | float) -> float:
        """Seconds for one point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def broadcast_time(self, nbytes: int | float, n_receivers: int) -> float:
        """Master-serialized broadcast: n sequential sends on one uplink.

        This is the paper's data-distribution step ("the master node
        first distributes brain data to the worker nodes"); with a flat
        send loop the master's link carries ``n`` copies.
        """
        if n_receivers < 0:
            raise ValueError("n_receivers must be >= 0")
        if n_receivers == 0:
            return 0.0
        return self.latency_s + n_receivers * nbytes / self.bandwidth_bytes_per_s


#: The paper's interconnect.
TEN_GBE = NetworkModel()
