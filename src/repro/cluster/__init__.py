"""Cluster substrate: network model, workloads, and the discrete-event
master-worker simulator that regenerates the paper's scaling results."""

from .network import TEN_GBE, NetworkModel
from .simulator import (
    ClusterConfig,
    SimulationResult,
    simulate,
    simulate_with_failures,
    speedup_curve,
)
from .trace import ClusterTrace, TaskRecord, render_gantt, simulate_with_trace
from .workload import (
    FoldSpec,
    TaskSpec,
    Workload,
    offline_workload,
    online_workload,
)

__all__ = [
    "ClusterConfig",
    "ClusterTrace",
    "FoldSpec",
    "NetworkModel",
    "SimulationResult",
    "TEN_GBE",
    "TaskRecord",
    "TaskSpec",
    "Workload",
    "offline_workload",
    "online_workload",
    "render_gantt",
    "simulate",
    "simulate_with_failures",
    "simulate_with_trace",
    "speedup_curve",
]
